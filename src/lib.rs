//! # Heron
//!
//! A from-scratch Rust reproduction of **"Heron: Automatically Constrained
//! High-Performance Library Generation for Deep Learning Accelerators"**
//! (Bi et al., ASPLOS 2023).
//!
//! Heron generates high-performance tensor programs for deep learning
//! accelerators by (1) *automatically* deriving hundreds of accurate
//! architectural constraints from static analysis of the tensor compute —
//! yielding a constrained search space formulated as a constraint
//! satisfaction problem — and (2) exploring that space with a
//! **constraint-based genetic algorithm** whose crossover and mutation act
//! on CSPs rather than concrete chromosomes, so every candidate is valid by
//! construction.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`tensor`] | `heron-tensor` | tensor expressions, operators, stage DAG |
//! | [`sched`] | `heron-sched` | schedule primitives, templates, lowering |
//! | [`csp`] | `heron-csp` | finite-domain CSP + RandSAT solver |
//! | [`dla`] | `heron-dla` | DLA specs + analytic measurer (simulator) |
//! | [`cost`] | `heron-cost` | gradient-boosted-trees cost model |
//! | [`core`] | `heron-core` | space generator (Rules S1–S3, C1–C6), CGA, tuner |
//! | [`baselines`] | `heron-baselines` | AutoTVM/Ansor/AMOS-like tuners, vendor models |
//! | [`graph`] | `heron-graph` | network IR, operator fusion, compile/tuning cache |
//! | [`workloads`] | `heron-workloads` | paper benchmark suites and networks |
//! | [`trace`] | `heron-trace` | span tracing, metrics registry, profile reports |
//! | [`insight`] | `heron-insight` | search-health analytics and regression gates |
//! | [`serve`] | `heron-serve` | supervised, crash-recoverable tuning service |
//! | [`pulse`] | `heron-pulse` | service SLIs/SLOs and the ops dashboard |
//! | [`audit`] | `heron-audit` | differential constraint-space auditor + mutation gate |
//! | [`scope`] | `heron-scope` | schedule forensics: timelines, Gantt, critical path |
//!
//! # Quickstart
//!
//! ```
//! use heron::prelude::*;
//!
//! // 1. Describe the computation (a small GEMM).
//! let dag = heron::tensor::ops::gemm(256, 256, 256);
//!
//! // 2. Generate the constrained space for a TensorCore GPU.
//! let space = SpaceGenerator::new(heron::dla::v100())
//!     .generate(&dag, &SpaceOptions::heron())
//!     .expect("gemm is tensorizable");
//!
//! // 3. Explore it with CGA (tiny budget for the doctest).
//! let mut tuner = Tuner::new(
//!     space,
//!     Measurer::new(heron::dla::v100()),
//!     TuneConfig::quick(16),
//!     42,
//! );
//! let result = tuner.run();
//! assert!(result.best_gflops > 0.0);
//! ```

pub mod paper_map;

pub use heron_audit as audit;
pub use heron_baselines as baselines;
pub use heron_core as core;
pub use heron_cost as cost;
pub use heron_csp as csp;
pub use heron_dla as dla;
pub use heron_graph as graph;
pub use heron_insight as insight;
pub use heron_pulse as pulse;
pub use heron_sched as sched;
pub use heron_scope as scope;
pub use heron_serve as serve;
pub use heron_tensor as tensor;
pub use heron_trace as trace;
pub use heron_workloads as workloads;

/// Convenient single-import surface for the common workflow.
pub mod prelude {
    pub use heron_baselines::{tune, vendor_outcome, Approach};
    pub use heron_core::generate::{GeneratedSpace, SpaceGenerator, SpaceOptions};
    pub use heron_core::tuner::{TuneConfig, TuneResult, Tuner};
    pub use heron_csp::{Csp, Domain, Solution, VarCategory};
    pub use heron_dla::{Measurement, Measurer};
    pub use heron_tensor::{DType, Dag};
    pub use heron_workloads::{operator_suite, Workload};
}
