//! Map from the paper's sections, algorithms, tables and figures to the
//! code that implements them — a reviewer's index.
//!
//! | Paper element | Implementation |
//! |---|---|
//! | §2.1 deep learning compilers (graph opts, tensor expressions) | [`heron_graph`] (fusion front end), [`heron_tensor`] (compute/DAG) |
//! | §2.2 schedule templates, Table 1 primitives | [`heron_sched::primitive::Primitive`], [`heron_sched::state::ScheduleState`] |
//! | §2.2 Ansor derivation rules (Table 2) | [`heron_core::generate::rules`] (`Always-Inline`, `Multi-Level-Tiling`, cache-stage conditions) |
//! | §2.3 genetic algorithm background | [`heron_core::explore::classic::GaExplorer`], roulette-wheel selection in [`heron_core::explore`] |
//! | §2.4 Observation 1 (Table 3 constraints) | [`heron_dla::platforms`] (machine-readable per-DLA constraint sets) |
//! | §2.4 Observation 2 (Tables 4–5 census) | [`heron_csp::stats::SpaceCensus`], `table04_05_space_census` binary |
//! | §2.4 Observation 3 / Figure 2 | [`heron_core::explore::classic`] (`RAND`/`SA`/`GA`), `fig02_irregular_space` binary |
//! | §3 system overview (Figure 3) | Space Generator = [`heron_core::generate`]; Space Explorer = [`heron_core::explore`]; DLA Measurer = [`heron_dla::Measurer`]; Cost Model = [`heron_core::model::CostModel`] over [`heron_cost::Gbdt`] |
//! | §4 Algorithm 1 (constrained space generation) | [`heron_core::generate::SpaceGenerator::generate`], rule engine in [`heron_core::generate::rules::plan`] |
//! | §4 schedule rules S1–S3 (Table 6) | Tensorize/SPM handling inside [`heron_core::generate::tensorcore`], [`heron_core::generate::dlboost`], [`heron_core::generate::vta`] |
//! | §4 constraint types T1–T6 (Table 7) | [`heron_csp::constraint::Constraint`] |
//! | §4 constraint rules C1–C6 (Table 8) | [`heron_core::generate::builder::SpaceBuilder`] (`tile_split`, `fuse_loops`, `candidates`, `select`, `mem_limit`, platform-specific rules) |
//! | §4 Figure 4 example | `examples/inspect_space.rs`, `heron_cli census` |
//! | §4 customization | `examples/custom_dla.rs` (new accelerator from a spec) |
//! | §5 Algorithm 2 (CGA-based exploration) | [`heron_core::tuner::Tuner::run`] |
//! | §5 Algorithm 3 (constraint-based crossover/mutation) | [`heron_core::explore::cga::offspring_csp`] |
//! | §5 CSP solver (RandSAT) | [`heron_csp::solver::rand_sat`] |
//! | §5 key-variable extraction | [`heron_core::model::CostModel::key_variables`] via [`heron_cost::Gbdt::top_features`] |
//! | §5 Figure 5 example | unit tests in [`heron_core::explore::cga`] |
//! | §6 platforms | [`heron_dla::v100`], [`heron_dla::t4`], [`heron_dla::a100`], [`heron_dla::dlboost`], [`heron_dla::vta`] |
//! | §6 benchmarks | [`heron_workloads`] (operator suites, Table 9, networks) |
//! | §6 baselines | [`heron_baselines`] (AutoTVM/Ansor/AMOS/AKG models, vendor libraries) |
//! | §7.1 Figures 6–9 | `fig06_tensorcore_ops`, `fig07_t4_a100`, `fig08_dlboost_ops`, `fig09_vta_ops` binaries |
//! | §7.2 Figure 10 | `fig10_networks` binary, [`heron_graph::compile()`][heron_graph::compile()] for the fused-model path |
//! | §7.3 Figure 11 | `fig11_space_quality` binary |
//! | §7.4 Figures 12–13 | `fig12_cga_convergence`, `fig13_constraint_handling` binaries; variants in [`heron_core::explore::variants`] |
//! | §7.5 Table 10 / Figure 14 | `table10_fig14_compile_time` binary, [`heron_core::tuner::TuneTiming`] |
//! | library generation (title!) | [`heron_core::library::KernelLibrary`], `examples/generate_library.rs` |
//!
//! Every referenced binary lives in `crates/bench/src/bin/` and prints TSV;
//! `EXPERIMENTS.md` records paper-vs-measured numbers for each.
