//! Property tests of the schedule state: random split/fuse/reorder
//! sequences preserve the loop structure's invariants.
//! (heron-testkit harness; see DESIGN.md, "Zero-dependency &
//! determinism policy".)

use heron_sched::{LoopSym, MemScope, ScheduleState, StageRole};
use heron_tensor::{DType, IterKind};
use heron_testkit::{property_cases, Gen};

#[derive(Debug, Clone)]
enum Op {
    Split { loop_idx: usize, parts: usize },
    Fuse { start: usize },
    Reorder { seed: u64 },
}

fn op(g: &mut Gen) -> Op {
    match g.int(0, 3) {
        0 => Op::Split {
            loop_idx: g.index(0, 8),
            parts: g.index(2, 4),
        },
        1 => Op::Fuse {
            start: g.index(0, 8),
        },
        _ => Op::Reorder {
            seed: g.int(0, i64::MAX) as u64,
        },
    }
}

fn fresh_state() -> ScheduleState {
    let mut st = ScheduleState::new();
    st.add_stage(
        "C",
        StageRole::Compute,
        MemScope::Global,
        MemScope::Global,
        DType::F32,
        vec![
            LoopSym::new("C.i", IterKind::Spatial, "i"),
            LoopSym::new("C.j", IterKind::Spatial, "j"),
            LoopSym::new("C.r", IterKind::Reduce, "r"),
        ],
    );
    st
}

/// Random transformation sequences keep invariants: loop names stay
/// unique, origins are preserved per kind, and the template records
/// exactly one primitive per applied transformation.
#[test]
fn transformations_preserve_invariants() {
    property_cases("transformations_preserve_invariants", 128, |g| {
        let ops = g.vec(1, 9, op);
        let mut st = fresh_state();
        let mut fresh = 0usize;
        let mut applied = 0usize;
        for o in ops {
            let loops: Vec<(String, IterKind)> = st
                .stage("C")
                .expect("exists")
                .loops
                .iter()
                .map(|l| (l.name.clone(), l.kind))
                .collect();
            match o {
                Op::Split { loop_idx, parts } => {
                    let idx = loop_idx % loops.len();
                    let names: Vec<String> = (0..parts)
                        .map(|p| {
                            fresh += 1;
                            format!("L{fresh}.{p}")
                        })
                        .collect();
                    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                    st.split("C", &loops[idx].0, &refs);
                    applied += 1;
                }
                Op::Fuse { start } => {
                    if loops.len() < 2 {
                        continue;
                    }
                    let idx = start % (loops.len() - 1);
                    // Only fuse same-kind adjacent loops.
                    if loops[idx].1 != loops[idx + 1].1 {
                        continue;
                    }
                    fresh += 1;
                    let fused = format!("F{fresh}");
                    st.fuse("C", &[&loops[idx].0, &loops[idx + 1].0], &fused);
                    applied += 1;
                }
                Op::Reorder { seed } => {
                    // Deterministic permutation: rotate by seed.
                    let n = loops.len();
                    let rot = (seed as usize) % n;
                    let order: Vec<&str> =
                        (0..n).map(|x| loops[(x + rot) % n].0.as_str()).collect();
                    st.reorder("C", &order);
                    applied += 1;
                }
            }
        }
        let stage = st.stage("C").expect("exists");
        // Unique loop names.
        let mut names: Vec<&str> = stage.loops.iter().map(|l| l.name.as_str()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate loop names");
        // Origins only come from the initial axes.
        for l in &stage.loops {
            assert!(["i", "j", "r"].contains(&l.origin.as_str()));
            // Reduce loops only descend from r.
            if l.kind == IterKind::Reduce {
                assert_eq!(l.origin.as_str(), "r");
            }
        }
        // One template entry per applied transformation.
        assert_eq!(st.template().len(), applied);
    });
}

/// Splitting then fusing the same parts restores a single loop for
/// that origin.
#[test]
fn split_then_fuse_roundtrip() {
    property_cases("split_then_fuse_roundtrip", 128, |g| {
        let parts = g.index(2, 5);
        let mut st = fresh_state();
        let names: Vec<String> = (0..parts).map(|p| format!("C.i{p}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        st.split("C", "C.i", &refs);
        assert_eq!(st.stage("C").expect("exists").loops.len(), 2 + parts);
        // Fuse pairwise back into one.
        let mut current = names.clone();
        while current.len() > 1 {
            let fused = format!("f.{}", current.len());
            st.fuse("C", &[&current[0], &current[1]], &fused);
            let mut next = vec![fused];
            next.extend(current[2..].iter().cloned());
            current = next;
        }
        let stage = st.stage("C").expect("exists");
        assert_eq!(stage.loops.len(), 3);
        assert_eq!(stage.loops[0].origin.as_str(), "i");
    });
}
