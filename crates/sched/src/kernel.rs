//! Concrete kernels: the result of lowering a template under one CSP
//! solution. This is what the DLA measurer simulates.

use std::fmt;

use heron_tensor::DType;

use crate::scope::{MemScope, StageRole};
use crate::template::KernelTemplate;

/// Error produced when a template references a variable the solution does
/// not define — always a generator bug, surfaced loudly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    /// The missing variable.
    pub missing_var: String,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lowering referenced undefined variable `{}`",
            self.missing_var
        )
    }
}

impl std::error::Error for LowerError {}

/// One lowered stage with fully concrete quantities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelStage {
    /// Stage name.
    pub name: String,
    /// Load / compute / store.
    pub role: StageRole,
    /// Scope read from.
    pub src_scope: MemScope,
    /// Scope written to.
    pub dst_scope: MemScope,
    /// Element type.
    pub dtype: DType,
    /// Elements transferred per execution.
    pub elems: i64,
    /// Executions per block.
    pub execs: i64,
    /// Vector width in elements (1 = scalar).
    pub vector: i64,
    /// Storage-align row padding in elements.
    pub align_pad: i64,
    /// Contiguous row length in elements (0 = unknown).
    pub row_elems: i64,
    /// Intrinsic shape `(m, n, k)` for tensorized compute.
    pub intrinsic: Option<(i64, i64, i64)>,
    /// Intrinsic invocations per block.
    pub intrinsic_execs: i64,
    /// Scalar arithmetic ops per block.
    pub scalar_ops: i64,
    /// Maximum unroll length applied (0 = none).
    pub unroll: i64,
}

impl KernelStage {
    /// Bytes transferred per execution of the stage.
    pub fn bytes_per_exec(&self) -> u64 {
        self.elems as u64 * self.dtype.bytes()
    }

    /// Total bytes transferred per block across all executions.
    pub fn bytes_per_block(&self) -> u64 {
        self.bytes_per_exec() * self.execs.max(0) as u64
    }
}

/// A concrete on-chip buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelBuffer {
    /// Buffer name.
    pub name: String,
    /// Scope.
    pub scope: MemScope,
    /// Size in bytes.
    pub bytes: u64,
}

/// A fully lowered kernel ready for measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kernel {
    /// Target DLA name.
    pub dla: String,
    /// Workload label.
    pub workload: String,
    /// Useful arithmetic operations of the whole workload.
    pub total_flops: u64,
    /// Grid size (blocks / tasks / parallel chunks).
    pub grid: i64,
    /// Warps (GPU) or threads (CPU) per block.
    pub threads: i64,
    /// Stages in execution order.
    pub stages: Vec<KernelStage>,
    /// On-chip buffers.
    pub buffers: Vec<KernelBuffer>,
    /// Fingerprint of the originating solution (deterministic jitter seed).
    pub fingerprint: u64,
}

impl Kernel {
    /// Sum of buffer bytes in the given scope.
    pub fn scope_bytes(&self, scope: MemScope) -> u64 {
        self.buffers
            .iter()
            .filter(|b| b.scope == scope)
            .map(|b| b.bytes)
            .sum()
    }

    /// The tensorized compute stage, if any.
    pub fn tensorized_stage(&self) -> Option<&KernelStage> {
        self.stages.iter().find(|s| s.intrinsic.is_some())
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "kernel {} on {}: grid={} threads={}",
            self.workload, self.dla, self.grid, self.threads
        )?;
        for s in &self.stages {
            writeln!(
                f,
                "  {} [{} {}→{}] elems={} execs={} vec={} intrin={:?}×{}",
                s.name,
                s.role,
                s.src_scope,
                s.dst_scope,
                s.elems,
                s.execs,
                s.vector,
                s.intrinsic,
                s.intrinsic_execs
            )?;
        }
        for b in &self.buffers {
            writeln!(f, "  buffer {} @{}: {} B", b.name, b.scope, b.bytes)?;
        }
        Ok(())
    }
}

/// Lowers `template` under the variable assignment `value`.
///
/// # Errors
/// Returns [`LowerError`] if any referenced variable is undefined.
pub fn lower(
    template: &KernelTemplate,
    fingerprint: u64,
    value: &dyn Fn(&str) -> Option<i64>,
) -> Result<Kernel, LowerError> {
    let get = |name: &str| -> Result<i64, LowerError> {
        value(name).ok_or_else(|| LowerError {
            missing_var: name.to_string(),
        })
    };
    let opt = |name: &Option<String>, default: i64| -> Result<i64, LowerError> {
        match name {
            Some(n) => get(n),
            None => Ok(default),
        }
    };

    let mut stages = Vec::with_capacity(template.stages.len());
    for s in &template.stages {
        let intrinsic = match &s.intrinsic {
            Some(i) => Some((get(&i.m)?, get(&i.n)?, get(&i.k)?)),
            None => None,
        };
        stages.push(KernelStage {
            name: s.name.clone(),
            role: s.role,
            src_scope: s.src_scope,
            dst_scope: s.dst_scope,
            dtype: s.dtype,
            elems: opt(&s.var_elems, 0)?,
            execs: opt(&s.var_execs, 1)?,
            vector: opt(&s.var_vector, 1)?,
            align_pad: opt(&s.var_align_pad, 0)?,
            row_elems: opt(&s.var_row_elems, 0)?,
            intrinsic,
            intrinsic_execs: opt(&s.var_intrinsic_execs, 0)?,
            scalar_ops: opt(&s.var_scalar_ops, 0)?,
            unroll: opt(&s.var_unroll, 0)?,
        });
    }
    let mut buffers = Vec::with_capacity(template.buffers.len());
    for b in &template.buffers {
        buffers.push(KernelBuffer {
            name: b.name.clone(),
            scope: b.scope,
            bytes: get(&b.var_bytes)?.max(0) as u64,
        });
    }
    Ok(Kernel {
        dla: template.dla.clone(),
        workload: template.workload.clone(),
        total_flops: template.total_flops,
        grid: get(&template.var_grid)?,
        threads: get(&template.var_threads)?,
        stages,
        buffers,
        fingerprint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::{BufferSpec, IntrinsicRef, StageSpec};

    fn tiny_template() -> KernelTemplate {
        let mut t = KernelTemplate {
            dla: "tensorcore".into(),
            workload: "gemm-64".into(),
            total_flops: 2 * 64 * 64 * 64,
            var_grid: "grid".into(),
            var_threads: "warps".into(),
            ..KernelTemplate::default()
        };
        let mut load = StageSpec::new(
            "A.shared",
            StageRole::Load,
            MemScope::Global,
            MemScope::Shared,
            DType::F16,
        );
        load.var_elems = Some("mem.A".into());
        load.var_execs = Some("r0".into());
        load.var_vector = Some("vec.A".into());
        t.stages.push(load);
        let mut comp = StageSpec::new(
            "C.wmma",
            StageRole::Compute,
            MemScope::FragA,
            MemScope::FragAcc,
            DType::F16,
        );
        comp.intrinsic = Some(IntrinsicRef {
            m: "m".into(),
            n: "n".into(),
            k: "k".into(),
        });
        comp.var_intrinsic_execs = Some("intrin".into());
        t.stages.push(comp);
        t.buffers.push(BufferSpec {
            name: "A.shared".into(),
            scope: MemScope::Shared,
            var_bytes: "bytes.A".into(),
        });
        t
    }

    fn env<'a>(pairs: &'a [(&'a str, i64)]) -> impl Fn(&str) -> Option<i64> + 'a {
        move |name: &str| pairs.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    #[test]
    fn lower_fills_all_fields() {
        let t = tiny_template();
        let vals = [
            ("grid", 16),
            ("warps", 8),
            ("mem.A", 2048),
            ("r0", 4),
            ("vec.A", 8),
            ("m", 16),
            ("n", 16),
            ("k", 16),
            ("intrin", 64),
            ("bytes.A", 4096),
        ];
        let k = lower(&t, 7, &env(&vals)).expect("lowering succeeds");
        assert_eq!(k.grid, 16);
        assert_eq!(k.threads, 8);
        assert_eq!(k.stages[0].bytes_per_exec(), 4096);
        assert_eq!(k.stages[0].bytes_per_block(), 16384);
        assert_eq!(k.stages[1].intrinsic, Some((16, 16, 16)));
        assert_eq!(k.scope_bytes(MemScope::Shared), 4096);
        assert_eq!(
            k.tensorized_stage().map(|s| s.name.as_str()),
            Some("C.wmma")
        );
        assert_eq!(k.fingerprint, 7);
    }

    #[test]
    fn lower_reports_missing_var() {
        let t = tiny_template();
        let err = lower(&t, 0, &env(&[("grid", 1)])).expect_err("missing vars");
        assert!(!err.missing_var.is_empty());
        assert!(err.to_string().contains("undefined variable"));
    }

    #[test]
    fn defaults_for_unset_slots() {
        let mut t = KernelTemplate {
            dla: "d".into(),
            workload: "w".into(),
            total_flops: 1,
            var_grid: "g".into(),
            var_threads: "t".into(),
            ..KernelTemplate::default()
        };
        t.stages.push(StageSpec::new(
            "s",
            StageRole::Store,
            MemScope::Shared,
            MemScope::Global,
            DType::F32,
        ));
        let k = lower(&t, 0, &env(&[("g", 1), ("t", 1)])).expect("ok");
        let s = &k.stages[0];
        assert_eq!((s.elems, s.execs, s.vector, s.align_pad), (0, 1, 1, 0));
    }
}
