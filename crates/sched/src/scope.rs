//! Memory scopes, thread axes, and stage roles shared by the schedule state
//! and the lowered kernel.

use std::fmt;

/// A storage location in a DLA memory hierarchy.
///
/// Covers the scopes of all three evaluated DLAs: GPU TensorCore (shared
/// memory plus `wmma` fragments), DL Boost CPUs (cache levels standing in
/// for software-managed tiles), and VTA (explicit input/weight/accumulator
/// SRAMs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemScope {
    /// Off-chip DRAM / global memory.
    Global,
    /// GPU shared memory (one allocation per thread block).
    Shared,
    /// TensorCore `wmma.matrix_a` fragment registers (per warp).
    FragA,
    /// TensorCore `wmma.matrix_b` fragment registers (per warp).
    FragB,
    /// TensorCore accumulator fragment registers (per warp).
    FragAcc,
    /// Scalar registers.
    Register,
    /// CPU L1 data cache tile.
    L1,
    /// CPU L2 cache tile.
    L2,
    /// VTA input buffer SRAM.
    VtaInput,
    /// VTA weight buffer SRAM.
    VtaWeight,
    /// VTA accumulator buffer SRAM.
    VtaAcc,
}

impl MemScope {
    /// Whether this scope is on-chip, software-managed storage whose
    /// capacity the constraint generator must bound (Rule-C5).
    pub fn is_spm(self) -> bool {
        !matches!(self, MemScope::Global)
    }

    /// Whether the scope is allocated per thread block (GPU) or per core
    /// (CPU) rather than per device.
    pub fn per_block(self) -> bool {
        matches!(
            self,
            MemScope::Shared
                | MemScope::FragA
                | MemScope::FragB
                | MemScope::FragAcc
                | MemScope::Register
                | MemScope::L1
                | MemScope::L2
        )
    }
}

impl fmt::Display for MemScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemScope::Global => "global",
            MemScope::Shared => "shared",
            MemScope::FragA => "wmma.matrix_a",
            MemScope::FragB => "wmma.matrix_b",
            MemScope::FragAcc => "wmma.accumulator",
            MemScope::Register => "local",
            MemScope::L1 => "l1",
            MemScope::L2 => "l2",
            MemScope::VtaInput => "vta.input",
            MemScope::VtaWeight => "vta.weight",
            MemScope::VtaAcc => "vta.acc",
        };
        f.write_str(s)
    }
}

/// Hardware thread axes a loop can be bound to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadAxis {
    /// CUDA `blockIdx.x` (or CPU core / VTA task index).
    BlockX,
    /// CUDA `blockIdx.y`.
    BlockY,
    /// CUDA `threadIdx.x` (lanes within a warp).
    ThreadX,
    /// CUDA `threadIdx.y` (warps within a block).
    ThreadY,
    /// TVM virtual thread (striding over banks/registers).
    Vthread,
}

impl ThreadAxis {
    /// Whether the axis contributes to grid-level parallelism.
    pub fn is_block_level(self) -> bool {
        matches!(self, ThreadAxis::BlockX | ThreadAxis::BlockY)
    }
}

impl fmt::Display for ThreadAxis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ThreadAxis::BlockX => "blockIdx.x",
            ThreadAxis::BlockY => "blockIdx.y",
            ThreadAxis::ThreadX => "threadIdx.x",
            ThreadAxis::ThreadY => "threadIdx.y",
            ThreadAxis::Vthread => "vthread",
        };
        f.write_str(s)
    }
}

/// What a scheduled stage does at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageRole {
    /// Moves data inward (e.g. global → shared, shared → fragment, DRAM →
    /// VTA SRAM).
    Load,
    /// Performs arithmetic (tensorized or scalar).
    Compute,
    /// Moves results outward.
    Store,
}

impl fmt::Display for StageRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StageRole::Load => "load",
            StageRole::Compute => "compute",
            StageRole::Store => "store",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spm_classification() {
        assert!(!MemScope::Global.is_spm());
        assert!(MemScope::Shared.is_spm());
        assert!(MemScope::VtaWeight.is_spm());
    }

    #[test]
    fn per_block_scopes() {
        assert!(MemScope::Shared.per_block());
        assert!(!MemScope::VtaInput.per_block());
        assert!(!MemScope::Global.per_block());
    }

    #[test]
    fn block_level_axes() {
        assert!(ThreadAxis::BlockX.is_block_level());
        assert!(!ThreadAxis::ThreadY.is_block_level());
    }

    #[test]
    fn displays() {
        assert_eq!(MemScope::FragA.to_string(), "wmma.matrix_a");
        assert_eq!(ThreadAxis::Vthread.to_string(), "vthread");
        assert_eq!(StageRole::Compute.to_string(), "compute");
    }
}
