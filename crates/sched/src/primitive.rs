//! The schedule primitives of the paper's Table 1 (plus the DLA-specific
//! `tensorize`, `bind`, and `storage_align`).
//!
//! A primitive records *names* of CSP variables (for split parts, unroll
//! lengths, compute locations, …) rather than concrete numbers: the
//! template stays symbolic and the CSP decides the values.

use std::fmt;

use crate::scope::{MemScope, ThreadAxis};

/// One schedule transformation applied to a stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Primitive {
    /// Splits a loop into sub-loops (multi-way; Table 1 `split`).
    ///
    /// The extent of each part becomes the CSP variable of the same name,
    /// constrained by Rule-C1 so their product equals the original extent.
    Split {
        /// Stage being transformed.
        stage: String,
        /// Loop (extent-variable name) being split.
        loop_name: String,
        /// New sub-loop extent variables, outermost first.
        parts: Vec<String>,
    },
    /// Merges adjacent loops into one (Table 1 `fuse`).
    Fuse {
        /// Stage being transformed.
        stage: String,
        /// Loops being fused, outermost first.
        loops: Vec<String>,
        /// Extent variable of the fused loop (Rule-C2 posts the product).
        fused: String,
    },
    /// Reorders the loops of a stage to the given permutation.
    Reorder {
        /// Stage being transformed.
        stage: String,
        /// New loop order, outermost first.
        order: Vec<String>,
    },
    /// Binds a loop to a hardware thread axis.
    Bind {
        /// Stage being transformed.
        stage: String,
        /// Loop being bound.
        loop_name: String,
        /// Target axis.
        axis: ThreadAxis,
    },
    /// Creates a cached copy of a tensor in an on-chip scope (Table 1
    /// `cache`; Rules S2/S3 insert these).
    CacheRead {
        /// Tensor being cached.
        tensor: String,
        /// Destination scope.
        scope: MemScope,
        /// Name of the new load stage.
        new_stage: String,
    },
    /// Routes a stage's output through an on-chip scope before the final
    /// store (Rule-S3).
    CacheWrite {
        /// Tensor being staged.
        tensor: String,
        /// Intermediate scope.
        scope: MemScope,
        /// Name of the new store stage.
        new_stage: String,
    },
    /// Fuses `stage` into `parent` at a tunable loop position (Table 1
    /// `compute_at`; Rule-C4 posts the SELECT constraints).
    ComputeAt {
        /// Stage being anchored.
        stage: String,
        /// Consumer stage providing the loop nest.
        parent: String,
        /// CSP variable choosing among candidate positions.
        location_var: String,
        /// Loop names (in `parent`) of the candidate positions.
        candidates: Vec<String>,
    },
    /// Unrolls inner loops up to a tunable length (Table 1 `unroll`).
    Unroll {
        /// Stage being transformed.
        stage: String,
        /// CSP variable with the maximum unrolled extent.
        length_var: String,
    },
    /// Vectorises the innermost data-movement loop.
    Vectorize {
        /// Stage being transformed.
        stage: String,
        /// CSP variable with the vector width (elements).
        length_var: String,
    },
    /// Replaces the innermost loops with a hardware intrinsic (Table 1
    /// `tensorize`; Rule-S1).
    Tensorize {
        /// Stage being transformed.
        stage: String,
        /// CSP variables of the intrinsic shape `(m, n, k)`.
        m: String,
        /// Intrinsic `n` variable.
        n: String,
        /// Intrinsic `k` variable.
        k: String,
    },
    /// Pads rows of an on-chip buffer to avoid bank conflicts
    /// (`storage_align`).
    StorageAlign {
        /// Stage whose buffer is padded.
        stage: String,
        /// CSP variable with the padding (elements per row).
        pad_var: String,
    },
}

impl Primitive {
    /// Stage this primitive applies to (the consumer for cache primitives).
    pub fn stage(&self) -> &str {
        match self {
            Primitive::Split { stage, .. }
            | Primitive::Fuse { stage, .. }
            | Primitive::Reorder { stage, .. }
            | Primitive::Bind { stage, .. }
            | Primitive::ComputeAt { stage, .. }
            | Primitive::Unroll { stage, .. }
            | Primitive::Vectorize { stage, .. }
            | Primitive::Tensorize { stage, .. }
            | Primitive::StorageAlign { stage, .. } => stage,
            Primitive::CacheRead { new_stage, .. } | Primitive::CacheWrite { new_stage, .. } => {
                new_stage
            }
        }
    }

    /// Names of the tunable CSP variables this primitive introduces.
    pub fn tunable_vars(&self) -> Vec<&str> {
        match self {
            Primitive::Split { parts, .. } => parts.iter().map(String::as_str).collect(),
            Primitive::ComputeAt { location_var, .. } => vec![location_var],
            Primitive::Unroll { length_var, .. } | Primitive::Vectorize { length_var, .. } => {
                vec![length_var]
            }
            Primitive::StorageAlign { pad_var, .. } => vec![pad_var],
            _ => Vec::new(),
        }
    }
}

impl fmt::Display for Primitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Primitive::Split {
                stage,
                loop_name,
                parts,
            } => {
                write!(f, "{stage}.split({loop_name} -> {})", parts.join(", "))
            }
            Primitive::Fuse {
                stage,
                loops,
                fused,
            } => {
                write!(f, "{stage}.fuse({} -> {fused})", loops.join(", "))
            }
            Primitive::Reorder { stage, order } => {
                write!(f, "{stage}.reorder({})", order.join(", "))
            }
            Primitive::Bind {
                stage,
                loop_name,
                axis,
            } => {
                write!(f, "{stage}.bind({loop_name}, {axis})")
            }
            Primitive::CacheRead {
                tensor,
                scope,
                new_stage,
            } => {
                write!(f, "cache_read({tensor}, \"{scope}\") -> {new_stage}")
            }
            Primitive::CacheWrite {
                tensor,
                scope,
                new_stage,
            } => {
                write!(f, "cache_write({tensor}, \"{scope}\") -> {new_stage}")
            }
            Primitive::ComputeAt {
                stage,
                parent,
                location_var,
                ..
            } => {
                write!(f, "{stage}.compute_at({parent}, loc={location_var})")
            }
            Primitive::Unroll { stage, length_var } => {
                write!(f, "{stage}.unroll(max={length_var})")
            }
            Primitive::Vectorize { stage, length_var } => {
                write!(f, "{stage}.vectorize(len={length_var})")
            }
            Primitive::Tensorize { stage, m, n, k } => {
                write!(f, "{stage}.tensorize(intrin({m}, {n}, {k}))")
            }
            Primitive::StorageAlign { stage, pad_var } => {
                write!(f, "{stage}.storage_align(pad={pad_var})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_exposes_tunables() {
        let p = Primitive::Split {
            stage: "C".into(),
            loop_name: "C.i".into(),
            parts: vec!["C.i0".into(), "C.i1".into()],
        };
        assert_eq!(p.tunable_vars(), vec!["C.i0", "C.i1"]);
        assert_eq!(p.stage(), "C");
        assert_eq!(p.to_string(), "C.split(C.i -> C.i0, C.i1)");
    }

    #[test]
    fn cache_read_names_new_stage() {
        let p = Primitive::CacheRead {
            tensor: "A".into(),
            scope: MemScope::Shared,
            new_stage: "A.shared".into(),
        };
        assert_eq!(p.stage(), "A.shared");
        assert!(p.tunable_vars().is_empty());
        assert!(p.to_string().contains("shared"));
    }

    #[test]
    fn tensorize_display() {
        let p = Primitive::Tensorize {
            stage: "C.wmma".into(),
            m: "m".into(),
            n: "n".into(),
            k: "k".into(),
        };
        assert_eq!(p.to_string(), "C.wmma.tensorize(intrin(m, n, k))");
    }
}
