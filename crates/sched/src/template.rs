//! Kernel templates: the symbolic contract between the space generator and
//! the lowering pass.
//!
//! A [`KernelTemplate`] names, for every stage, the CSP variables that carry
//! the quantities the DLA measurer needs (bytes moved, executions per block,
//! intrinsic invocation counts, vector widths, …). The space generator
//! declares these variables and posts the constraints tying them to the
//! tunable tile factors (Rules C1–C6); lowering is then a pure evaluation.

use heron_tensor::DType;

use crate::primitive::Primitive;
use crate::scope::{MemScope, StageRole};
use crate::state::ScheduleState;

/// Intrinsic shape variables of a tensorized stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntrinsicRef {
    /// CSP variable of the intrinsic `m` dimension.
    pub m: String,
    /// CSP variable of the intrinsic `n` dimension.
    pub n: String,
    /// CSP variable of the intrinsic `k` dimension.
    pub k: String,
}

/// Symbolic description of one lowered stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSpec {
    /// Stage name.
    pub name: String,
    /// Load / compute / store.
    pub role: StageRole,
    /// Scope read from.
    pub src_scope: MemScope,
    /// Scope written to.
    pub dst_scope: MemScope,
    /// Element type moved or produced.
    pub dtype: DType,
    /// Variable: elements transferred per execution (load/store stages).
    pub var_elems: Option<String>,
    /// Variable: executions of this stage per block (or per core).
    pub var_execs: Option<String>,
    /// Variable: vector width in elements.
    pub var_vector: Option<String>,
    /// Variable: storage-align row padding in elements.
    pub var_align_pad: Option<String>,
    /// Variable: contiguous row length in elements (bank-conflict model).
    pub var_row_elems: Option<String>,
    /// Intrinsic shape, if tensorized.
    pub intrinsic: Option<IntrinsicRef>,
    /// Variable: intrinsic invocations per block (tensorized compute).
    pub var_intrinsic_execs: Option<String>,
    /// Variable: scalar arithmetic operations per block (scalar compute).
    pub var_scalar_ops: Option<String>,
    /// Variable: maximum unroll length applied to the stage body.
    pub var_unroll: Option<String>,
}

impl StageSpec {
    /// A minimal spec with the identity fields; variable slots start empty.
    pub fn new(
        name: impl Into<String>,
        role: StageRole,
        src_scope: MemScope,
        dst_scope: MemScope,
        dtype: DType,
    ) -> Self {
        StageSpec {
            name: name.into(),
            role,
            src_scope,
            dst_scope,
            dtype,
            var_elems: None,
            var_execs: None,
            var_vector: None,
            var_align_pad: None,
            var_row_elems: None,
            intrinsic: None,
            var_intrinsic_execs: None,
            var_scalar_ops: None,
            var_unroll: None,
        }
    }
}

/// An on-chip buffer whose size is carried by a CSP variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferSpec {
    /// Buffer name (usually the producing stage).
    pub name: String,
    /// Scope the buffer lives in.
    pub scope: MemScope,
    /// Variable: buffer size in **bytes**.
    pub var_bytes: String,
}

/// The symbolic kernel: everything lowering needs, keyed by variable names.
#[derive(Debug, Clone, Default)]
pub struct KernelTemplate {
    /// Name of the target DLA (matches a `heron-dla` spec name).
    pub dla: String,
    /// Workload label (operator + shape) for reporting.
    pub workload: String,
    /// Total useful arithmetic operations of the workload (for GFLOPS).
    pub total_flops: u64,
    /// Stage specs in execution order.
    pub stages: Vec<StageSpec>,
    /// Variable: number of blocks (grid size / parallel tasks).
    pub var_grid: String,
    /// Variable: warps (GPU) or threads (CPU) per block.
    pub var_threads: String,
    /// On-chip buffers with capacity-constrained sizes.
    pub buffers: Vec<BufferSpec>,
    /// The paper-style schedule template (for printing and census).
    pub primitives: Vec<Primitive>,
    /// Names of all tunable variables, in declaration order.
    pub tunables: Vec<String>,
}

impl KernelTemplate {
    /// Creates a template shell for `dla` and `workload`, copying the
    /// primitives recorded in `state`.
    pub fn from_state(
        dla: impl Into<String>,
        workload: impl Into<String>,
        total_flops: u64,
        state: &ScheduleState,
    ) -> Self {
        KernelTemplate {
            dla: dla.into(),
            workload: workload.into(),
            total_flops,
            stages: Vec::new(),
            var_grid: String::new(),
            var_threads: String::new(),
            buffers: Vec::new(),
            primitives: state.template().to_vec(),
            tunables: Vec::new(),
        }
    }

    /// All variable names referenced anywhere in the template.
    pub fn referenced_vars(&self) -> Vec<&str> {
        let mut vars: Vec<&str> = Vec::new();
        for s in &self.stages {
            let slots = [
                &s.var_elems,
                &s.var_execs,
                &s.var_vector,
                &s.var_align_pad,
                &s.var_row_elems,
                &s.var_intrinsic_execs,
                &s.var_scalar_ops,
                &s.var_unroll,
            ];
            vars.extend(slots.into_iter().flatten().map(String::as_str));
            if let Some(i) = &s.intrinsic {
                vars.push(&i.m);
                vars.push(&i.n);
                vars.push(&i.k);
            }
        }
        if !self.var_grid.is_empty() {
            vars.push(&self.var_grid);
        }
        if !self.var_threads.is_empty() {
            vars.push(&self.var_threads);
        }
        for b in &self.buffers {
            vars.push(&b.var_bytes);
        }
        vars.sort_unstable();
        vars.dedup();
        vars
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn referenced_vars_dedup() {
        let mut t = KernelTemplate {
            dla: "tensorcore".into(),
            workload: "gemm".into(),
            total_flops: 100,
            var_grid: "grid".into(),
            var_threads: "warps".into(),
            ..KernelTemplate::default()
        };
        let mut s = StageSpec::new(
            "A.shared",
            StageRole::Load,
            MemScope::Global,
            MemScope::Shared,
            DType::F16,
        );
        s.var_elems = Some("mem.A".into());
        s.var_execs = Some("execs.A".into());
        s.var_vector = Some("vec".into());
        t.stages.push(s);
        t.buffers.push(BufferSpec {
            name: "A.shared".into(),
            scope: MemScope::Shared,
            var_bytes: "mem.A".into(),
        });
        let vars = t.referenced_vars();
        assert_eq!(vars, vec!["execs.A", "grid", "mem.A", "vec", "warps"]);
    }
}
