//! Symbolic schedule state: stages and loop structure under transformation.
//!
//! The state is the "current program" `S` of the paper's generation rules.
//! All loop extents are names of CSP variables; applying a primitive both
//! rewrites the loop structure and appends the primitive to the growing
//! schedule template.

use std::fmt;

use heron_tensor::{DType, IterKind};

use crate::primitive::Primitive;
use crate::scope::{MemScope, StageRole, ThreadAxis};

/// One symbolic loop: its extent is the CSP variable `name`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopSym {
    /// CSP variable carrying the loop extent (also the loop's identity).
    pub name: String,
    /// Spatial or reduction loop.
    pub kind: IterKind,
    /// Name of the original compute axis this loop descends from.
    pub origin: String,
    /// Hardware binding, if any.
    pub bind: Option<ThreadAxis>,
    /// Whether the loop was consumed by a `tensorize`.
    pub tensorized: bool,
}

impl LoopSym {
    /// Unbound serial loop descending from `origin`.
    pub fn new(name: impl Into<String>, kind: IterKind, origin: impl Into<String>) -> Self {
        LoopSym {
            name: name.into(),
            kind,
            origin: origin.into(),
            bind: None,
            tensorized: false,
        }
    }
}

/// A stage in the symbolic schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSym {
    /// Stage name (`C.wmma`, `A.shared`, …).
    pub name: String,
    /// Load / compute / store.
    pub role: StageRole,
    /// Scope data is read from.
    pub src_scope: MemScope,
    /// Scope data is written to.
    pub dst_scope: MemScope,
    /// Element type handled by the stage.
    pub dtype: DType,
    /// Current loop nest, outermost first.
    pub loops: Vec<LoopSym>,
    /// `(parent stage, location variable, candidate loops)` if anchored.
    pub compute_at: Option<(String, String, Vec<String>)>,
    /// Intrinsic shape variables `(m, n, k)` if tensorized.
    pub tensorize: Option<(String, String, String)>,
    /// Vector-width variable for data movement.
    pub vector_var: Option<String>,
    /// Maximum-unroll variable.
    pub unroll_var: Option<String>,
    /// Storage-align padding variable.
    pub align_pad_var: Option<String>,
}

impl StageSym {
    fn loop_index(&self, name: &str) -> Option<usize> {
        self.loops.iter().position(|l| l.name == name)
    }
}

/// The evolving symbolic schedule (paper's state `S`).
#[derive(Debug, Clone, Default)]
pub struct ScheduleState {
    stages: Vec<StageSym>,
    template: Vec<Primitive>,
}

impl ScheduleState {
    /// Creates an empty state.
    pub fn new() -> Self {
        ScheduleState::default()
    }

    /// Adds a fresh stage with the given initial loops.
    ///
    /// # Panics
    /// Panics on duplicate stage names.
    pub fn add_stage(
        &mut self,
        name: impl Into<String>,
        role: StageRole,
        src_scope: MemScope,
        dst_scope: MemScope,
        dtype: DType,
        loops: Vec<LoopSym>,
    ) -> &mut StageSym {
        let name = name.into();
        assert!(
            self.stages.iter().all(|s| s.name != name),
            "duplicate stage `{name}`"
        );
        self.stages.push(StageSym {
            name,
            role,
            src_scope,
            dst_scope,
            dtype,
            loops,
            compute_at: None,
            tensorize: None,
            vector_var: None,
            unroll_var: None,
            align_pad_var: None,
        });
        self.stages.last_mut().expect("just pushed")
    }

    /// Adds a cache-read stage (Rules S2/S3) and records the primitive.
    #[allow(clippy::too_many_arguments)]
    pub fn cache_read(
        &mut self,
        tensor: impl Into<String>,
        scope: MemScope,
        new_stage: impl Into<String>,
        src_scope: MemScope,
        dtype: DType,
        loops: Vec<LoopSym>,
    ) -> &mut StageSym {
        let tensor = tensor.into();
        let new_stage = new_stage.into();
        self.template.push(Primitive::CacheRead {
            tensor,
            scope,
            new_stage: new_stage.clone(),
        });
        self.add_stage(new_stage, StageRole::Load, src_scope, scope, dtype, loops)
    }

    /// Adds a cache-write stage (Rule S3) and records the primitive.
    pub fn cache_write(
        &mut self,
        tensor: impl Into<String>,
        scope: MemScope,
        new_stage: impl Into<String>,
        dst_scope: MemScope,
        dtype: DType,
        loops: Vec<LoopSym>,
    ) -> &mut StageSym {
        let tensor = tensor.into();
        let new_stage = new_stage.into();
        self.template.push(Primitive::CacheWrite {
            tensor,
            scope,
            new_stage: new_stage.clone(),
        });
        self.add_stage(new_stage, StageRole::Store, scope, dst_scope, dtype, loops)
    }

    /// Stage lookup.
    pub fn stage(&self, name: &str) -> Option<&StageSym> {
        self.stages.iter().find(|s| s.name == name)
    }

    fn stage_mut(&mut self, name: &str) -> &mut StageSym {
        self.stages
            .iter_mut()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("unknown stage `{name}`"))
    }

    /// All stages in insertion order.
    pub fn stages(&self) -> &[StageSym] {
        &self.stages
    }

    /// The accumulated schedule template.
    pub fn template(&self) -> &[Primitive] {
        &self.template
    }

    /// Splits `loop_name` of `stage` into `parts` (outermost first),
    /// replacing it in place.
    ///
    /// # Panics
    /// Panics if the stage or loop is unknown, or `parts.len() < 2`.
    pub fn split(&mut self, stage: &str, loop_name: &str, parts: &[&str]) {
        assert!(parts.len() >= 2, "split needs at least two parts");
        let st = self.stage_mut(stage);
        let idx = st
            .loop_index(loop_name)
            .unwrap_or_else(|| panic!("stage `{stage}` has no loop `{loop_name}`"));
        let old = st.loops.remove(idx);
        assert!(old.bind.is_none(), "cannot split a bound loop");
        for (off, part) in parts.iter().enumerate() {
            st.loops
                .insert(idx + off, LoopSym::new(*part, old.kind, old.origin.clone()));
        }
        self.template.push(Primitive::Split {
            stage: stage.into(),
            loop_name: loop_name.into(),
            parts: parts.iter().map(|p| (*p).to_string()).collect(),
        });
    }

    /// Fuses the (adjacent, in order) `loops` of `stage` into `fused`.
    ///
    /// # Panics
    /// Panics if the loops are not adjacent in the given order.
    pub fn fuse(&mut self, stage: &str, loops: &[&str], fused: &str) {
        assert!(loops.len() >= 2, "fuse needs at least two loops");
        let st = self.stage_mut(stage);
        let first = st
            .loop_index(loops[0])
            .unwrap_or_else(|| panic!("stage `{stage}` has no loop `{}`", loops[0]));
        for (off, l) in loops.iter().enumerate() {
            assert_eq!(
                st.loops.get(first + off).map(|x| x.name.as_str()),
                Some(*l),
                "loops must be adjacent and in order to fuse"
            );
        }
        let kind = st.loops[first].kind;
        let origin = st.loops[first].origin.clone();
        for l in &st.loops[first..first + loops.len()] {
            assert_eq!(l.kind, kind, "cannot fuse spatial with reduce loops");
        }
        st.loops.drain(first..first + loops.len());
        st.loops.insert(first, LoopSym::new(fused, kind, origin));
        self.template.push(Primitive::Fuse {
            stage: stage.into(),
            loops: loops.iter().map(|l| (*l).to_string()).collect(),
            fused: fused.into(),
        });
    }

    /// Reorders the loops of `stage` to the permutation `order`.
    ///
    /// # Panics
    /// Panics unless `order` is a permutation of the current loops.
    pub fn reorder(&mut self, stage: &str, order: &[&str]) {
        let st = self.stage_mut(stage);
        assert_eq!(order.len(), st.loops.len(), "reorder must list every loop");
        let mut new_loops = Vec::with_capacity(order.len());
        for name in order {
            let idx = st
                .loop_index(name)
                .unwrap_or_else(|| panic!("stage `{stage}` has no loop `{name}`"));
            new_loops.push(st.loops[idx].clone());
        }
        assert_eq!(
            new_loops.len(),
            order.iter().collect::<std::collections::HashSet<_>>().len(),
            "reorder contains duplicates"
        );
        st.loops = new_loops;
        self.template.push(Primitive::Reorder {
            stage: stage.into(),
            order: order.iter().map(|o| (*o).to_string()).collect(),
        });
    }

    /// Binds a loop to a thread axis.
    pub fn bind(&mut self, stage: &str, loop_name: &str, axis: ThreadAxis) {
        let st = self.stage_mut(stage);
        let idx = st
            .loop_index(loop_name)
            .unwrap_or_else(|| panic!("stage `{stage}` has no loop `{loop_name}`"));
        assert!(
            st.loops[idx].bind.is_none(),
            "loop `{loop_name}` already bound"
        );
        st.loops[idx].bind = Some(axis);
        self.template.push(Primitive::Bind {
            stage: stage.into(),
            loop_name: loop_name.into(),
            axis,
        });
    }

    /// Tensorizes the innermost loops of `stage` with intrinsic shape
    /// variables `(m, n, k)`; marks the loops named by those variables.
    pub fn tensorize(&mut self, stage: &str, loops: &[&str], m: &str, n: &str, k: &str) {
        let st = self.stage_mut(stage);
        for l in loops {
            let idx = st
                .loop_index(l)
                .unwrap_or_else(|| panic!("stage `{stage}` has no loop `{l}`"));
            st.loops[idx].tensorized = true;
        }
        st.tensorize = Some((m.into(), n.into(), k.into()));
        self.template.push(Primitive::Tensorize {
            stage: stage.into(),
            m: m.into(),
            n: n.into(),
            k: k.into(),
        });
    }

    /// Anchors `stage` inside `parent` at a position selected by
    /// `location_var` among `candidates` (loop names of the parent).
    pub fn compute_at(
        &mut self,
        stage: &str,
        parent: &str,
        location_var: &str,
        candidates: &[&str],
    ) {
        assert!(!candidates.is_empty(), "compute_at needs candidates");
        {
            let p = self
                .stage(parent)
                .unwrap_or_else(|| panic!("unknown parent stage `{parent}`"));
            for c in candidates {
                assert!(
                    p.loop_index(c).is_some(),
                    "parent `{parent}` has no loop `{c}`"
                );
            }
        }
        let st = self.stage_mut(stage);
        st.compute_at = Some((
            parent.into(),
            location_var.into(),
            candidates.iter().map(|c| (*c).to_string()).collect(),
        ));
        self.template.push(Primitive::ComputeAt {
            stage: stage.into(),
            parent: parent.into(),
            location_var: location_var.into(),
            candidates: candidates.iter().map(|c| (*c).to_string()).collect(),
        });
    }

    /// Attaches a tunable maximum-unroll variable to `stage`.
    pub fn unroll(&mut self, stage: &str, length_var: &str) {
        self.stage_mut(stage).unroll_var = Some(length_var.into());
        self.template.push(Primitive::Unroll {
            stage: stage.into(),
            length_var: length_var.into(),
        });
    }

    /// Attaches a tunable vector width to `stage`'s innermost loop.
    pub fn vectorize(&mut self, stage: &str, length_var: &str) {
        self.stage_mut(stage).vector_var = Some(length_var.into());
        self.template.push(Primitive::Vectorize {
            stage: stage.into(),
            length_var: length_var.into(),
        });
    }

    /// Attaches a tunable storage-align pad to `stage`'s buffer.
    pub fn storage_align(&mut self, stage: &str, pad_var: &str) {
        self.stage_mut(stage).align_pad_var = Some(pad_var.into());
        self.template.push(Primitive::StorageAlign {
            stage: stage.into(),
            pad_var: pad_var.into(),
        });
    }
}

impl ScheduleState {
    /// Renders the whole scheduled program as a symbolic loop nest (the
    /// paper's Figure 4, right panel): anchored stages appear nested under
    /// their parent's loops at the *first* candidate location, with the
    /// location variable noted; extents print as the CSP variable names.
    pub fn to_program_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        // Stages that are anchored render inside their parent.
        let anchored: Vec<&StageSym> = self
            .stages
            .iter()
            .filter(|s| s.compute_at.is_some())
            .collect();
        for stage in self.stages.iter().filter(|s| s.compute_at.is_none()) {
            self.render_stage(stage, &anchored, 0, &mut out);
            let _ = writeln!(out);
        }
        out
    }

    fn render_stage(
        &self,
        stage: &StageSym,
        anchored: &[&StageSym],
        indent: usize,
        out: &mut String,
    ) {
        use std::fmt::Write as _;
        let pad = |n: usize| "  ".repeat(n);
        let _ = writeln!(
            out,
            "{}// stage {} [{} {}→{}]",
            pad(indent),
            stage.name,
            stage.role,
            stage.src_scope,
            stage.dst_scope
        );
        let mut depth = indent;
        for l in &stage.loops {
            let mut suffix = String::new();
            if let Some(b) = l.bind {
                let _ = write!(suffix, " // @{b}");
            }
            if l.tensorized {
                suffix.push_str(" // tensorized");
            }
            let _ = writeln!(
                out,
                "{}for {} in 0..{} {{{}",
                pad(depth),
                l.name,
                l.name,
                suffix
            );
            depth += 1;
            // Children anchored at this loop (first candidate position).
            for child in anchored {
                if let Some((parent, loc_var, candidates)) = &child.compute_at {
                    if parent == &stage.name && candidates.first() == Some(&l.name) {
                        let _ = writeln!(
                            out,
                            "{}// compute_at location tunable: {loc_var} in 0..{}",
                            pad(depth),
                            candidates.len()
                        );
                        self.render_stage(child, &[], depth, out);
                    }
                }
            }
        }
        let _ = writeln!(out, "{}{}(...)", pad(depth), stage.name.replace('.', "_"));
        for d in (indent..depth).rev() {
            let _ = writeln!(out, "{}}}", pad(d));
        }
    }
}

impl fmt::Display for ScheduleState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "schedule template ({} primitives):", self.template.len())?;
        for p in &self.template {
            writeln!(f, "  {p}")?;
        }
        writeln!(f, "stages:")?;
        for s in &self.stages {
            write!(
                f,
                "  {} [{} {}→{}]:",
                s.name, s.role, s.src_scope, s.dst_scope
            )?;
            for l in &s.loops {
                write!(f, " {}", l.name)?;
                if let Some(b) = l.bind {
                    write!(f, "@{b}")?;
                }
                if l.tensorized {
                    write!(f, "*")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemm_state() -> ScheduleState {
        let mut st = ScheduleState::new();
        st.add_stage(
            "C",
            StageRole::Compute,
            MemScope::Global,
            MemScope::Global,
            DType::F16,
            vec![
                LoopSym::new("C.i", IterKind::Spatial, "i"),
                LoopSym::new("C.j", IterKind::Spatial, "j"),
                LoopSym::new("C.r", IterKind::Reduce, "r"),
            ],
        );
        st
    }

    #[test]
    fn split_replaces_loop_in_place() {
        let mut st = gemm_state();
        st.split("C", "C.i", &["C.i0", "C.i1", "C.i2"]);
        let loops: Vec<&str> = st
            .stage("C")
            .expect("exists")
            .loops
            .iter()
            .map(|l| l.name.as_str())
            .collect();
        assert_eq!(loops, vec!["C.i0", "C.i1", "C.i2", "C.j", "C.r"]);
        assert_eq!(st.template().len(), 1);
        // Split parts inherit the origin axis of the loop they replace.
        assert!(st
            .stage("C")
            .expect("exists")
            .loops
            .iter()
            .filter(|l| l.name.starts_with("C.i"))
            .all(|l| l.origin == "i"));
    }

    #[test]
    fn fuse_requires_adjacency() {
        let mut st = gemm_state();
        st.fuse("C", &["C.i", "C.j"], "C.ij");
        let loops: Vec<&str> = st
            .stage("C")
            .expect("exists")
            .loops
            .iter()
            .map(|l| l.name.as_str())
            .collect();
        assert_eq!(loops, vec!["C.ij", "C.r"]);
    }

    #[test]
    #[should_panic(expected = "adjacent")]
    fn fuse_non_adjacent_panics() {
        let mut st = gemm_state();
        st.fuse("C", &["C.i", "C.r"], "C.ir");
    }

    #[test]
    #[should_panic(expected = "spatial with reduce")]
    fn fuse_mixed_kinds_panics() {
        let mut st = gemm_state();
        st.reorder("C", &["C.j", "C.r", "C.i"]);
        st.fuse("C", &["C.r", "C.i"], "C.ri");
    }

    #[test]
    fn reorder_permutes() {
        let mut st = gemm_state();
        st.reorder("C", &["C.r", "C.i", "C.j"]);
        let loops: Vec<&str> = st
            .stage("C")
            .expect("exists")
            .loops
            .iter()
            .map(|l| l.name.as_str())
            .collect();
        assert_eq!(loops, vec!["C.r", "C.i", "C.j"]);
    }

    #[test]
    fn bind_marks_loop() {
        let mut st = gemm_state();
        st.split("C", "C.i", &["C.i0", "C.i1"]);
        st.bind("C", "C.i0", ThreadAxis::BlockX);
        let l = &st.stage("C").expect("exists").loops[0];
        assert_eq!(l.bind, Some(ThreadAxis::BlockX));
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn double_bind_panics() {
        let mut st = gemm_state();
        st.bind("C", "C.i", ThreadAxis::BlockX);
        st.bind("C", "C.i", ThreadAxis::BlockY);
    }

    #[test]
    fn tensorize_marks_and_records() {
        let mut st = gemm_state();
        st.split("C", "C.i", &["C.i0", "C.i1"]);
        st.split("C", "C.j", &["C.j0", "C.j1"]);
        st.split("C", "C.r", &["C.r0", "C.r1"]);
        st.reorder("C", &["C.i0", "C.j0", "C.r0", "C.i1", "C.j1", "C.r1"]);
        st.tensorize("C", &["C.i1", "C.j1", "C.r1"], "m", "n", "k");
        let s = st.stage("C").expect("exists");
        assert_eq!(s.tensorize, Some(("m".into(), "n".into(), "k".into())));
        assert!(s.loops.iter().filter(|l| l.tensorized).count() == 3);
    }

    #[test]
    fn compute_at_validates_candidates() {
        let mut st = gemm_state();
        st.split("C", "C.r", &["C.r0", "C.r1"]);
        st.add_stage(
            "A.shared",
            StageRole::Load,
            MemScope::Global,
            MemScope::Shared,
            DType::F16,
            vec![LoopSym::new("A.shared.x", IterKind::Spatial, "x")],
        );
        st.compute_at("A.shared", "C", "loc.A.shared", &["C.r0", "C.r1"]);
        let s = st.stage("A.shared").expect("exists");
        assert!(s.compute_at.is_some());
    }

    #[test]
    #[should_panic(expected = "has no loop")]
    fn compute_at_unknown_candidate_panics() {
        let mut st = gemm_state();
        st.add_stage(
            "A.shared",
            StageRole::Load,
            MemScope::Global,
            MemScope::Shared,
            DType::F16,
            vec![],
        );
        st.compute_at("A.shared", "C", "loc", &["C.zzz"]);
    }

    #[test]
    fn program_text_nests_anchored_stages() {
        let mut st = gemm_state();
        st.split("C", "C.r", &["C.r0", "C.r1"]);
        st.add_stage(
            "A.shared",
            StageRole::Load,
            MemScope::Global,
            MemScope::Shared,
            DType::F16,
            vec![LoopSym::new("A.shared.x", IterKind::Spatial, "x")],
        );
        st.compute_at("A.shared", "C", "loc.A", &["C.r0", "C.r1"]);
        let text = st.to_program_text();
        assert!(text.contains("compute_at location tunable: loc.A"));
        // The anchored stage appears after (inside) the parent's r0 loop.
        let r0_pos = text.find("for C.r0").expect("r0 loop present");
        let child_pos = text.find("stage A.shared").expect("child present");
        assert!(
            child_pos > r0_pos,
            "anchored stage must render inside the parent"
        );
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }

    #[test]
    fn display_renders_template_and_stages() {
        let mut st = gemm_state();
        st.split("C", "C.i", &["C.i0", "C.i1"]);
        st.bind("C", "C.i0", ThreadAxis::BlockX);
        let text = st.to_string();
        assert!(text.contains("C.split"));
        assert!(text.contains("@blockIdx.x"));
    }
}
