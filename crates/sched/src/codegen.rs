//! Pseudo-code generation: renders a lowered [`Kernel`] as readable
//! CUDA-/C-like pseudo-code.
//!
//! The real Heron emits device code through TVM; this reproduction's
//! measurer consumes the structured [`Kernel`] directly, but a human-
//! readable rendering is invaluable for inspecting what the tuner chose
//! (and is what the examples print).

use std::fmt::Write as _;

use crate::kernel::{Kernel, KernelStage};
use crate::scope::{MemScope, StageRole};

/// Renders the kernel as pseudo-code.
pub fn kernel_pseudo_code(kernel: &Kernel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// kernel `{}` for {}", kernel.workload, kernel.dla);
    let _ = writeln!(
        out,
        "// launch: grid = {} blocks, {} warps/block",
        kernel.grid, kernel.threads
    );
    for b in &kernel.buffers {
        let _ = writeln!(
            out,
            "__{}__ u8 {}[{}];",
            scope_keyword(b.scope),
            sanitize(&b.name),
            b.bytes
        );
    }
    let _ = writeln!(out, "void {}() {{", sanitize(&kernel.workload));
    for s in &kernel.stages {
        render_stage(&mut out, s);
    }
    let _ = writeln!(out, "}}");
    out
}

fn render_stage(out: &mut String, s: &KernelStage) {
    let _ = writeln!(
        out,
        "  // stage {} ({:?} {} -> {})",
        s.name, s.role, s.src_scope, s.dst_scope
    );
    match s.role {
        StageRole::Load | StageRole::Store => {
            let _ = writeln!(
                out,
                "  for (int rep = 0; rep < {}; ++rep) {{",
                s.execs.max(1)
            );
            let per_iter = (s.elems / s.vector.max(1)).max(1);
            let pragma = if s.unroll > 0 {
                format!("    #pragma unroll {}\n", s.unroll.min(per_iter))
            } else {
                String::new()
            };
            let _ = write!(out, "{pragma}");
            let _ = writeln!(out, "    for (int v = 0; v < {per_iter}; ++v)");
            let _ = writeln!(
                out,
                "      {}[v] = vec{}_load_{}({}[v]);  // {} B/iter{}",
                sanitize(&s.name),
                s.vector,
                s.src_scope,
                sanitize(&s.name),
                s.vector.max(1) as u64 * s.dtype.bytes(),
                if s.align_pad > 0 {
                    format!(", rows padded by {}", s.align_pad)
                } else {
                    String::new()
                }
            );
            let _ = writeln!(out, "  }}");
        }
        StageRole::Compute => {
            if let Some((m, n, k)) = s.intrinsic {
                let _ = writeln!(
                    out,
                    "  for (int step = 0; step < {}; ++step)",
                    s.intrinsic_execs.max(1)
                );
                let _ = writeln!(out, "    mma_sync_{m}x{n}x{k}(acc, a_frag, b_frag);");
            } else {
                let _ = writeln!(out, "  // {} scalar multiply-accumulates", s.scalar_ops);
                let _ = writeln!(
                    out,
                    "  for (long op = 0; op < {}; ++op)",
                    s.scalar_ops.max(1)
                );
                let _ = writeln!(out, "    acc += a[op] * b[op];");
            }
        }
    }
}

fn scope_keyword(scope: MemScope) -> &'static str {
    match scope {
        MemScope::Global => "device",
        MemScope::Shared => "shared",
        MemScope::FragA | MemScope::FragB | MemScope::FragAcc | MemScope::Register => "regs",
        MemScope::L1 | MemScope::L2 => "cache",
        MemScope::VtaInput | MemScope::VtaWeight | MemScope::VtaAcc => "sram",
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelBuffer;
    use heron_tensor::DType;

    fn kernel() -> Kernel {
        Kernel {
            dla: "v100".into(),
            workload: "gemm-64".into(),
            total_flops: 1,
            grid: 4,
            threads: 8,
            stages: vec![
                KernelStage {
                    name: "A.shared".into(),
                    role: StageRole::Load,
                    src_scope: MemScope::Global,
                    dst_scope: MemScope::Shared,
                    dtype: DType::F16,
                    elems: 512,
                    execs: 4,
                    vector: 8,
                    align_pad: 2,
                    row_elems: 32,
                    intrinsic: None,
                    intrinsic_execs: 0,
                    scalar_ops: 0,
                    unroll: 16,
                },
                KernelStage {
                    name: "C".into(),
                    role: StageRole::Compute,
                    src_scope: MemScope::FragA,
                    dst_scope: MemScope::FragAcc,
                    dtype: DType::F16,
                    elems: 0,
                    execs: 1,
                    vector: 1,
                    align_pad: 0,
                    row_elems: 0,
                    intrinsic: Some((16, 16, 16)),
                    intrinsic_execs: 64,
                    scalar_ops: 0,
                    unroll: 0,
                },
            ],
            buffers: vec![KernelBuffer {
                name: "A.shared".into(),
                scope: MemScope::Shared,
                bytes: 1024,
            }],
            fingerprint: 0,
        }
    }

    #[test]
    fn renders_launch_buffers_and_intrinsic() {
        let code = kernel_pseudo_code(&kernel());
        assert!(code.contains("grid = 4 blocks, 8 warps/block"));
        assert!(code.contains("__shared__ u8 A_shared[1024];"));
        assert!(code.contains("mma_sync_16x16x16"));
        assert!(code.contains("#pragma unroll"));
        assert!(code.contains("rows padded by 2"));
    }

    #[test]
    fn scalar_kernels_render_mac_loop() {
        let mut k = kernel();
        k.stages[1].intrinsic = None;
        k.stages[1].scalar_ops = 1000;
        let code = kernel_pseudo_code(&k);
        assert!(code.contains("acc += a[op] * b[op];"));
        assert!(!code.contains("mma_sync"));
    }

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize("C.wmma-1"), "C_wmma_1");
    }
}
