//! Schedule primitives, symbolic schedule state, kernel templates, and
//! lowering for the Heron reproduction.
//!
//! The pipeline is:
//!
//! 1. `heron-core`'s space generator applies [`primitive::Primitive`]s to a
//!    [`state::ScheduleState`] (TVM-style `split`/`fuse`/`bind`/`tensorize`
//!    …), producing a paper-style schedule *template* whose loop extents are
//!    **names of CSP variables**, not numbers.
//! 2. The same generator wraps the state into a [`template::KernelTemplate`]
//!    that records which CSP variables carry each stage's footprints,
//!    execution counts, vector widths and intrinsic shape.
//! 3. Given one concrete CSP solution, [`kernel::lower`] evaluates every
//!    referenced variable and emits a fully numeric [`kernel::Kernel`] that
//!    the DLA measurer in `heron-dla` simulates.
//!
//! Keeping extents symbolic until lowering is exactly what lets Heron pose
//! the whole space as a constraint satisfaction problem.
//!
//! # Example
//!
//! ```
//! use heron_sched::{LoopSym, MemScope, ScheduleState, StageRole, ThreadAxis};
//! use heron_tensor::{DType, IterKind};
//!
//! let mut state = ScheduleState::new();
//! state.add_stage(
//!     "C", StageRole::Compute, MemScope::Global, MemScope::Global, DType::F16,
//!     vec![
//!         LoopSym::new("C.i", IterKind::Spatial, "i"),
//!         LoopSym::new("C.r", IterKind::Reduce, "r"),
//!     ],
//! );
//! state.split("C", "C.i", &["C.i0", "C.i1"]);
//! state.bind("C", "C.i0", ThreadAxis::BlockX);
//! assert_eq!(state.template().len(), 2); // split + bind recorded
//! ```

pub mod codegen;
pub mod kernel;
pub mod primitive;
pub mod scope;
pub mod state;
pub mod template;

pub use codegen::kernel_pseudo_code;
pub use kernel::{lower, Kernel, KernelBuffer, KernelStage, LowerError};
pub use primitive::Primitive;
pub use scope::{MemScope, StageRole, ThreadAxis};
pub use state::{LoopSym, ScheduleState, StageSym};
pub use template::{IntrinsicRef, KernelTemplate, StageSpec};
