//! Parameterised DLA architecture descriptions.

use heron_sched::MemScope;
use heron_tensor::DType;

/// GPU-family parameters (TensorCore devices).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuParams {
    /// Number of streaming multiprocessors.
    pub sms: i64,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Tensor-core throughput per SM, flops per cycle.
    pub tensor_flops_per_cycle_sm: f64,
    /// CUDA-core (non-tensorized) throughput per SM, flops per cycle.
    pub cuda_flops_per_cycle_sm: f64,
    /// Device-wide global-memory bandwidth, bytes per cycle.
    pub global_bw_bytes_per_cycle: f64,
    /// Shared-memory bandwidth per SM, bytes per cycle.
    pub shared_bw_bytes_per_cycle_sm: f64,
    /// Maximum warps per thread block.
    pub max_warps_per_block: i64,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: i64,
    /// Shared memory per SM in bytes.
    pub smem_per_sm: u64,
    /// Shared memory per block in bytes (the paper's 48 KiB constraint).
    pub smem_per_block: u64,
    /// Accumulator-fragment register budget per warp, in fragments of the
    /// base intrinsic shape.
    pub max_acc_frags_per_warp: i64,
    /// Fixed kernel-launch overhead in cycles.
    pub launch_overhead_cycles: f64,
}

/// CPU-family parameters (DL Boost / VNNI devices).
#[derive(Debug, Clone, PartialEq)]
pub struct CpuParams {
    /// Physical cores.
    pub cores: i64,
    /// Clock in GHz.
    pub clock_ghz: f64,
    /// VNNI multiply-accumulate throughput per core, ops (mul+add) per
    /// cycle.
    pub vnni_ops_per_cycle_core: f64,
    /// Scalar/AVX fallback throughput per core, ops per cycle.
    pub scalar_ops_per_cycle_core: f64,
    /// L1 data cache per core, bytes.
    pub l1_bytes: u64,
    /// L2 cache per core, bytes.
    pub l2_bytes: u64,
    /// DRAM bandwidth, bytes per cycle (whole socket).
    pub dram_bw_bytes_per_cycle: f64,
    /// L2 bandwidth per core, bytes per cycle.
    pub l2_bw_bytes_per_cycle_core: f64,
    /// Task-spawn overhead in cycles.
    pub spawn_overhead_cycles: f64,
}

/// VTA-family parameters (explicit-SRAM accelerator).
#[derive(Debug, Clone, PartialEq)]
pub struct VtaParams {
    /// Clock in GHz.
    pub clock_ghz: f64,
    /// GEMM-unit multiply-accumulates per cycle.
    pub macs_per_cycle: f64,
    /// DMA bandwidth between DRAM and SRAMs, bytes per cycle.
    pub dma_bytes_per_cycle: f64,
    /// Input buffer capacity, bytes (paper: 32 KiB).
    pub input_buf_bytes: u64,
    /// Weight buffer capacity, bytes (paper: 256 KiB).
    pub weight_buf_bytes: u64,
    /// Accumulator buffer capacity, bytes (paper: 128 KiB).
    pub acc_buf_bytes: u64,
    /// Minimum cycles between writes to the same accumulator address
    /// (paper: `2 <= access_cycle`): the innermost reduction extent must be
    /// at least this.
    pub min_access_cycle: i64,
    /// Per-instruction issue overhead in cycles.
    pub issue_overhead_cycles: f64,
}

/// Family-specific portion of a DLA description.
#[derive(Debug, Clone, PartialEq)]
pub enum DlaFamily {
    /// TensorCore-style GPU.
    Gpu(GpuParams),
    /// DL Boost-style CPU.
    Cpu(CpuParams),
    /// VTA-style explicit-SRAM accelerator.
    Vta(VtaParams),
}

/// A complete DLA description: the machine the measurer simulates and the
/// constraint generator characterises.
#[derive(Debug, Clone, PartialEq)]
pub struct DlaSpec {
    /// Platform name (`v100`, `dlboost`, `vta`, …).
    pub name: String,
    /// Family parameters.
    pub family: DlaFamily,
    /// Legal tensor-intrinsic shapes `(m, n, k)` (paper Table 3).
    pub intrinsic_shapes: Vec<(i64, i64, i64)>,
    /// Legal vectorised load/store widths in elements.
    pub vector_lengths: Vec<i64>,
    /// Capacity limits per memory scope, bytes.
    pub capacities: Vec<(MemScope, u64)>,
    /// Input element type the intrinsics consume.
    pub in_dtype: DType,
}

impl DlaSpec {
    /// Capacity of `scope`, if limited.
    pub fn capacity(&self, scope: MemScope) -> Option<u64> {
        self.capacities
            .iter()
            .find(|(s, _)| *s == scope)
            .map(|(_, c)| *c)
    }

    /// Whether `(m, n, k)` is a legal intrinsic shape.
    pub fn allows_intrinsic(&self, m: i64, n: i64, k: i64) -> bool {
        self.intrinsic_shapes.contains(&(m, n, k))
    }

    /// Whether `len` is a legal vector width.
    pub fn allows_vector(&self, len: i64) -> bool {
        self.vector_lengths.contains(&len)
    }

    /// Peak arithmetic throughput in ops/second (for utilisation reports).
    pub fn peak_ops_per_sec(&self) -> f64 {
        match &self.family {
            DlaFamily::Gpu(g) => g.sms as f64 * g.tensor_flops_per_cycle_sm * g.clock_ghz * 1e9,
            DlaFamily::Cpu(c) => c.cores as f64 * c.vnni_ops_per_cycle_core * c.clock_ghz * 1e9,
            DlaFamily::Vta(v) => 2.0 * v.macs_per_cycle * v.clock_ghz * 1e9,
        }
    }

    /// Off-chip memory bandwidth in bytes/second (for graph-level
    /// memory-bound cost estimates).
    pub fn global_bandwidth_bytes_per_sec(&self) -> f64 {
        match &self.family {
            DlaFamily::Gpu(g) => g.global_bw_bytes_per_cycle * g.clock_ghz * 1e9,
            DlaFamily::Cpu(c) => c.dram_bw_bytes_per_cycle * c.clock_ghz * 1e9,
            DlaFamily::Vta(v) => v.dma_bytes_per_cycle * v.clock_ghz * 1e9,
        }
    }

    /// The paper's Table 3 rows for this platform, for reporting.
    pub fn constraint_summary(&self) -> Vec<String> {
        let mut rows = Vec::new();
        if !self.intrinsic_shapes.is_empty() {
            let shapes: Vec<String> = self
                .intrinsic_shapes
                .iter()
                .map(|(m, n, k)| format!("({m},{n},{k})"))
                .collect();
            rows.push(format!(
                "computation size: (m,n,k) in {{{}}}",
                shapes.join(", ")
            ));
        }
        for (scope, cap) in &self.capacities {
            rows.push(format!("memory capacity: {scope} <= {} KiB", cap / 1024));
        }
        if !self.vector_lengths.is_empty() {
            rows.push(format!(
                "memory access: vector_length in {:?}",
                self.vector_lengths
            ));
        }
        if let DlaFamily::Vta(v) = &self.family {
            rows.push(format!(
                "memory access: {} <= access_cycle",
                v.min_access_cycle
            ));
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms;

    #[test]
    fn v100_capacity_lookup() {
        let spec = platforms::v100();
        assert_eq!(spec.capacity(MemScope::Shared), Some(48 * 1024));
        assert_eq!(spec.capacity(MemScope::Global), None);
    }

    #[test]
    fn v100_intrinsics_satisfy_paper_constraint() {
        let spec = platforms::v100();
        for &(m, n, k) in &spec.intrinsic_shapes {
            assert_eq!(m * n * k, 4096, "paper: m*n*k == 4096");
            assert!([8, 16, 32].contains(&m));
        }
        assert!(spec.allows_intrinsic(16, 16, 16));
        assert!(!spec.allows_intrinsic(16, 16, 8));
    }

    #[test]
    fn vector_lengths_match_table3() {
        let spec = platforms::v100();
        assert_eq!(spec.vector_lengths, vec![1, 2, 4, 8]);
        assert!(spec.allows_vector(8));
        assert!(!spec.allows_vector(16));
    }

    #[test]
    fn peak_ops_are_plausible() {
        // V100 TensorCore peak is ~112 Tflops.
        let v100 = platforms::v100().peak_ops_per_sec() / 1e12;
        assert!((100.0..130.0).contains(&v100), "v100 peak {v100} Tflops");
        // DL Boost ~23 Tops.
        let dlb = platforms::dlboost().peak_ops_per_sec() / 1e12;
        assert!((15.0..30.0).contains(&dlb), "dlboost peak {dlb} Tops");
    }

    #[test]
    fn constraint_summaries_cover_categories() {
        let rows = platforms::vta().constraint_summary();
        let text = rows.join("\n");
        assert!(text.contains("computation size"));
        assert!(text.contains("memory capacity"));
        assert!(text.contains("access_cycle"));
    }
}
