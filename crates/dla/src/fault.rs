//! Deterministic fault injection for the measurement pipeline.
//!
//! Real DLA measurement infrastructure (AutoTVM's `LocalRunner`/
//! `RPCRunner`, Ansor's program measurer) lives with timeouts, dropped
//! RPC sessions, hung boards and noisy latencies; Heron's Algorithm-2
//! loop must survive all of them without losing determinism. This module
//! provides:
//!
//! * [`FaultConfig`] — per-class injection rates and cost parameters;
//! * [`FaultPlan`] — a seeded, **stateless** fault oracle: the outcome of
//!   `(kernel fingerprint, attempt)` is a pure hash of
//!   `(plan seed, fingerprint, attempt)`, so replaying a tuning session —
//!   or resuming it from a checkpoint — re-observes byte-identical faults
//!   without serialising any fault state;
//! * [`FaultyMeasurer`] — a [`Measurer`] wrapper that injects the planned
//!   faults into single-run measurements.
//!
//! Fault affinity is *per kernel*: a configuration that hangs the device
//! tends to hang it again (the draw first decides whether a kernel is
//! susceptible to a fault class at all, then whether a given attempt
//! actually fires, with probability [`FaultConfig::persistence`]). That
//! is what makes retry + quarantine meaningful: retries rescue the
//! occasionally flaky, quarantine removes the reliably broken.

use heron_rng::{Rng, SplitMix64};
use heron_sched::Kernel;
use heron_trace::Tracer;

use crate::sim::{hash2, signed_unit, MeasureError, Measurement, Measurer};
use crate::spec::DlaSpec;

/// The injectable fault classes (all map to the transient
/// [`MeasureError`] variants, except [`FaultKind::NoisyLatency`] which
/// perturbs a successful run instead of failing it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Run exceeds the measurement budget.
    Timeout {
        /// Budget charged to the simulated clock when it fires, seconds.
        budget_s: f64,
    },
    /// Device stops responding; costs a budget-exhausting wait plus a
    /// reset.
    DeviceHang,
    /// RPC session to the measurement server drops; cheap to re-establish.
    RpcDropped,
    /// Latency outlier: the run "succeeds" but reports a latency scaled
    /// by a half-normal factor of relative width `sigma`.
    NoisyLatency {
        /// Relative width of the outlier distribution.
        sigma: f64,
    },
    /// Run fails with no diagnosable cause; succeeds on retry.
    SpuriousFailure,
}

/// Per-class fault injection rates and simulated costs.
///
/// Rates are *per kernel*: the probability that a given configuration is
/// susceptible to the class. A susceptible kernel's individual attempts
/// then fire with probability [`FaultConfig::persistence`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Fraction of kernels whose runs can time out.
    pub timeout_rate: f64,
    /// Measurement budget charged when a timeout fires, seconds.
    pub timeout_budget_s: f64,
    /// Fraction of kernels that can hang the device.
    pub hang_rate: f64,
    /// Extra device-reset cost charged on a hang (on top of the timeout
    /// budget), seconds.
    pub hang_reset_s: f64,
    /// Fraction of kernels whose measurements can drop the RPC session.
    pub rpc_drop_rate: f64,
    /// Cost of re-establishing a dropped RPC session, seconds.
    pub rpc_reconnect_s: f64,
    /// Fraction of kernels subject to spurious run failures.
    pub spurious_rate: f64,
    /// Fixed cost of a spurious failed run, seconds.
    pub spurious_cost_s: f64,
    /// Fraction of kernels whose latencies are outlier-prone.
    pub noisy_rate: f64,
    /// Relative width of the latency-outlier distribution.
    pub noisy_sigma: f64,
    /// Probability that one attempt on a susceptible kernel actually
    /// fires the fault (`< 1.0` so retries can rescue flaky kernels).
    pub persistence: f64,
}

impl FaultConfig {
    /// No injected faults at all (the plan every non-fault session uses).
    pub fn none() -> Self {
        FaultConfig {
            timeout_rate: 0.0,
            timeout_budget_s: 4.0,
            hang_rate: 0.0,
            hang_reset_s: 8.0,
            rpc_drop_rate: 0.0,
            rpc_reconnect_s: 0.5,
            spurious_rate: 0.0,
            spurious_cost_s: 0.2,
            noisy_rate: 0.0,
            noisy_sigma: 0.5,
            persistence: 0.7,
        }
    }

    /// A total transient-fault rate split evenly across the four failing
    /// classes (timeout / hang / rpc-drop / spurious), plus the same
    /// fraction of latency-outlier-prone kernels. `rate` is clamped to
    /// `[0, 1]`.
    pub fn uniform(rate: f64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        FaultConfig {
            timeout_rate: rate / 4.0,
            hang_rate: rate / 4.0,
            rpc_drop_rate: rate / 4.0,
            spurious_rate: rate / 4.0,
            noisy_rate: rate,
            ..FaultConfig::none()
        }
    }

    /// Total per-kernel probability of being susceptible to *some*
    /// failing (non-noise) transient class.
    pub fn total_fault_rate(&self) -> f64 {
        (self.timeout_rate + self.hang_rate + self.rpc_drop_rate + self.spurious_rate).min(1.0)
    }

    /// Whether the plan can ever inject anything.
    pub fn is_none(&self) -> bool {
        self.total_fault_rate() == 0.0 && self.noisy_rate == 0.0
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// The outcome the plan dictates for one measurement attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultDraw {
    /// Measure normally.
    None,
    /// Measure normally, then scale the reported latency by `factor`
    /// (≥ 1: outliers are slow, which is what median-of-repeats rejects).
    Noisy {
        /// Latency multiplier.
        factor: f64,
    },
    /// Fail the attempt with this (always transient) error.
    Fault(MeasureError),
}

/// A seeded, deterministic fault schedule.
///
/// `outcome(fingerprint, attempt)` is a pure function — no interior
/// state, no dependence on call order — so identical seeds replay
/// identical fault traces and a resumed session re-draws exactly what
/// the interrupted one saw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    config: FaultConfig,
}

/// Domain-separation salts for the per-class susceptibility hashes.
const SALT_TIMEOUT: u64 = 0x54_49_4d_45; // "TIME"
const SALT_HANG: u64 = 0x48_41_4e_47; // "HANG"
const SALT_RPC: u64 = 0x52_50_43_44; // "RPCD"
const SALT_SPURIOUS: u64 = 0x53_50_55_52; // "SPUR"
const SALT_NOISY: u64 = 0x4e_4f_49_53; // "NOIS"
const SALT_ATTEMPT: u64 = 0x41_54_54_50; // "ATTP"

impl FaultPlan {
    /// A plan injecting according to `config`, deterministically derived
    /// from `seed`.
    pub fn new(seed: u64, config: FaultConfig) -> Self {
        FaultPlan { seed, config }
    }

    /// The no-fault plan (every draw is [`FaultDraw::None`]).
    pub fn none(seed: u64) -> Self {
        FaultPlan::new(seed, FaultConfig::none())
    }

    /// Shorthand for `FaultPlan::new(seed, FaultConfig::uniform(rate))`.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultPlan::new(seed, FaultConfig::uniform(rate))
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Uniform `[0, 1)` hash of `(seed, fingerprint, salt)`.
    fn unit(&self, fingerprint: u64, salt: u64) -> f64 {
        let h = hash2(hash2(self.seed, salt), fingerprint);
        (signed_unit(h) + 1.0) / 2.0
    }

    /// Whether one attempt on a susceptible kernel fires, given the
    /// per-class salt.
    fn attempt_fires(&self, fingerprint: u64, attempt: u32, salt: u64) -> bool {
        let h = hash2(
            hash2(self.seed, salt ^ SALT_ATTEMPT),
            hash2(fingerprint, u64::from(attempt)),
        );
        (signed_unit(h) + 1.0) / 2.0 < self.config.persistence
    }

    /// The deterministic outcome for measurement attempt `attempt` of the
    /// kernel with the given fingerprint.
    ///
    /// Class precedence when a kernel is susceptible to several classes:
    /// hang > timeout > rpc-drop > spurious > noisy (the nastiest fault
    /// wins, mirroring how a hung board masks everything else).
    pub fn outcome(&self, fingerprint: u64, attempt: u32) -> FaultDraw {
        let c = &self.config;
        if c.is_none() {
            return FaultDraw::None;
        }
        if self.unit(fingerprint, SALT_HANG) < c.hang_rate
            && self.attempt_fires(fingerprint, attempt, SALT_HANG)
        {
            return FaultDraw::Fault(MeasureError::DeviceHang);
        }
        if self.unit(fingerprint, SALT_TIMEOUT) < c.timeout_rate
            && self.attempt_fires(fingerprint, attempt, SALT_TIMEOUT)
        {
            return FaultDraw::Fault(MeasureError::Timeout {
                budget_s: c.timeout_budget_s,
            });
        }
        if self.unit(fingerprint, SALT_RPC) < c.rpc_drop_rate
            && self.attempt_fires(fingerprint, attempt, SALT_RPC)
        {
            return FaultDraw::Fault(MeasureError::RpcDropped);
        }
        if self.unit(fingerprint, SALT_SPURIOUS) < c.spurious_rate
            && self.attempt_fires(fingerprint, attempt, SALT_SPURIOUS)
        {
            return FaultDraw::Fault(MeasureError::SpuriousFailure);
        }
        if self.unit(fingerprint, SALT_NOISY) < c.noisy_rate
            && self.attempt_fires(fingerprint, attempt, SALT_NOISY)
        {
            // Half-normal slow-outlier factor ≥ 1, deterministic per
            // (seed, fingerprint, attempt).
            let mut sm = SplitMix64::new(hash2(
                hash2(self.seed, SALT_NOISY ^ SALT_ATTEMPT),
                hash2(fingerprint, u64::from(attempt).wrapping_add(1)),
            ));
            let g = sm.gaussian(0.0, 1.0).abs();
            return FaultDraw::Noisy {
                factor: 1.0 + c.noisy_sigma * g,
            };
        }
        FaultDraw::None
    }

    /// Simulated seconds one *failed* attempt costs the measurement
    /// clock. Deterministic errors cost nothing extra here: they are
    /// host-side compile/validation failures already covered by the
    /// per-trial overhead.
    pub fn fault_cost_s(&self, err: &MeasureError) -> f64 {
        let c = &self.config;
        match err {
            MeasureError::Timeout { budget_s } => *budget_s,
            MeasureError::DeviceHang => c.timeout_budget_s + c.hang_reset_s,
            MeasureError::RpcDropped => c.rpc_reconnect_s,
            MeasureError::SpuriousFailure => c.spurious_cost_s,
            _ => 0.0,
        }
    }
}

/// A [`Measurer`] wrapped with a [`FaultPlan`]: the resilient tuner's
/// view of the device.
#[derive(Debug, Clone)]
pub struct FaultyMeasurer {
    inner: Measurer,
    plan: FaultPlan,
    tracer: Tracer,
}

impl FaultyMeasurer {
    /// Wraps a measurer with an injection plan.
    pub fn new(inner: Measurer, plan: FaultPlan) -> Self {
        FaultyMeasurer {
            inner,
            plan,
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a tracer: attempts and injected faults are counted under
    /// `dla.*` (per-tag: `dla.fault_injected.<tag>`). The tracer observes
    /// only; outcomes are unchanged.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Replaces the attached tracer in place.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// A fault-free wrapper (used by sessions without injection so the
    /// tuner has a single code path).
    pub fn reliable(inner: Measurer) -> Self {
        FaultyMeasurer::new(inner, FaultPlan::none(0))
    }

    /// The wrapped measurer.
    pub fn inner(&self) -> &Measurer {
        &self.inner
    }

    /// The injection plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The simulated platform.
    pub fn spec(&self) -> &DlaSpec {
        self.inner.spec()
    }

    /// Fault-free validity oracle: answers "could this kernel ever
    /// compile and run on the platform" without measuring it.
    ///
    /// This is the constraint-space auditor's entry point, and it is
    /// deliberately *outside* the fault pipeline: an oracle query never
    /// draws from the fault plan (the plan is a pure function of
    /// `(seed, fingerprint, attempt)`, so interleaved oracle queries
    /// cannot shift later [`FaultyMeasurer::measure_attempt`] outcomes),
    /// never counts toward `dla.measure_attempts`, never charges
    /// simulated retry time, and never contributes to quarantine
    /// statistics.
    ///
    /// # Errors
    /// The first violated architectural constraint — always a
    /// deterministic [`MeasureError`], never a transient one.
    pub fn validate_only(&self, kernel: &Kernel) -> Result<(), MeasureError> {
        self.inner.validate(kernel)
    }

    /// One measurement attempt: deterministic architectural validation
    /// first (a kernel that cannot compile fails identically with or
    /// without infrastructure faults), then the planned fault draw, then
    /// a single noisy run keyed by `attempt`.
    ///
    /// # Errors
    /// Deterministic [`MeasureError`]s for invalid kernels; transient
    /// ones when the plan injects a fault into this attempt.
    pub fn measure_attempt(
        &self,
        kernel: &Kernel,
        attempt: u32,
    ) -> Result<Measurement, MeasureError> {
        self.tracer.counter_add("dla.measure_attempts", 1);
        self.inner.validate(kernel)?;
        match self.plan.outcome(kernel.fingerprint, attempt) {
            FaultDraw::Fault(e) => {
                if self.tracer.is_enabled() {
                    self.tracer
                        .counter_add(&format!("dla.fault_injected.{}", e.tag()), 1);
                }
                Err(e)
            }
            FaultDraw::Noisy { factor } => {
                self.tracer.counter_add("dla.noisy_injected", 1);
                let m = self.inner.measure_once(kernel, u64::from(attempt))?;
                let latency_s = m.latency_s * factor;
                Ok(Measurement {
                    latency_s,
                    gflops: kernel.total_flops as f64 / latency_s / 1e9,
                })
            }
            FaultDraw::None => self.inner.measure_once(kernel, u64::from(attempt)),
        }
    }

    /// Simulated seconds a failed attempt costs (see
    /// [`FaultPlan::fault_cost_s`]).
    pub fn fault_cost_s(&self, err: &MeasureError) -> f64 {
        self.plan.fault_cost_s(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_fault_plan_never_injects() {
        let plan = FaultPlan::none(7);
        for fp in 0..200u64 {
            for a in 0..4 {
                assert_eq!(plan.outcome(fp, a), FaultDraw::None);
            }
        }
    }

    #[test]
    fn outcomes_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::uniform(42, 0.5);
        let b = FaultPlan::uniform(42, 0.5);
        let c = FaultPlan::uniform(43, 0.5);
        let mut diverged = false;
        for fp in 0..500u64 {
            for att in 0..3 {
                assert_eq!(a.outcome(fp, att), b.outcome(fp, att), "same seed");
                if a.outcome(fp, att) != c.outcome(fp, att) {
                    diverged = true;
                }
            }
        }
        assert!(diverged, "different seeds never diverged");
    }

    #[test]
    fn injection_rate_is_roughly_honoured() {
        let plan = FaultPlan::uniform(11, 0.2);
        let n = 4000u64;
        let mut affected = 0usize;
        for fp in 0..n {
            // A kernel is "affected" when some early attempt faults.
            if (0..8).any(|a| matches!(plan.outcome(fp, a), FaultDraw::Fault(_))) {
                affected += 1;
            }
        }
        let frac = affected as f64 / n as f64;
        // 20% of kernels are susceptible; with persistence 0.7 over 8
        // attempts nearly all of them fire at least once.
        assert!(
            (0.12..=0.28).contains(&frac),
            "fault fraction {frac} far from configured 0.2"
        );
    }

    #[test]
    fn all_transient_classes_appear_and_cost_time() {
        let plan = FaultPlan::uniform(3, 0.9);
        let mut tags = std::collections::BTreeSet::new();
        let mut saw_noisy = false;
        for fp in 0..3000u64 {
            for a in 0..4 {
                match plan.outcome(fp, a) {
                    FaultDraw::Fault(e) => {
                        assert!(e.is_transient(), "plan injected a deterministic error");
                        assert!(plan.fault_cost_s(&e) > 0.0, "fault {e} is free");
                        tags.insert(e.tag());
                    }
                    FaultDraw::Noisy { factor } => {
                        assert!(factor >= 1.0);
                        saw_noisy = true;
                    }
                    FaultDraw::None => {}
                }
            }
        }
        for want in ["timeout", "device-hang", "rpc-dropped", "spurious"] {
            assert!(tags.contains(want), "class {want} never injected: {tags:?}");
        }
        assert!(saw_noisy, "noisy latency never injected");
    }

    #[test]
    fn tracer_counts_attempts_and_injections_per_tag() {
        use heron_sched::{KernelStage, MemScope, StageRole};
        use heron_tensor::DType;
        let comp = KernelStage {
            name: "C".into(),
            role: StageRole::Compute,
            src_scope: MemScope::FragA,
            dst_scope: MemScope::FragAcc,
            dtype: DType::F16,
            elems: 0,
            execs: 1,
            vector: 1,
            align_pad: 0,
            row_elems: 0,
            intrinsic: Some((16, 16, 16)),
            intrinsic_execs: 1 << 14,
            scalar_ops: 0,
            unroll: 512,
        };
        let mut k = Kernel {
            dla: "v100".into(),
            workload: "t".into(),
            total_flops: 1 << 28,
            grid: 80,
            threads: 8,
            stages: vec![comp],
            buffers: vec![],
            fingerprint: 0,
        };
        let tracer = Tracer::manual();
        let fm = FaultyMeasurer::new(
            Measurer::new(crate::platforms::v100()),
            FaultPlan::uniform(3, 0.9),
        )
        .with_tracer(tracer.clone());
        let mut attempts = 0u64;
        let mut faults = 0u64;
        for fp in 0..300u64 {
            k.fingerprint = fp;
            for a in 0..3u32 {
                attempts += 1;
                if fm.measure_attempt(&k, a).is_err() {
                    faults += 1;
                }
            }
        }
        assert_eq!(tracer.counter("dla.measure_attempts"), Some(attempts));
        let tagged: u64 = ["timeout", "device-hang", "rpc-dropped", "spurious"]
            .iter()
            .filter_map(|t| tracer.counter(&format!("dla.fault_injected.{t}")))
            .sum();
        assert_eq!(tagged, faults, "every failure is attributed to a tag");
        assert!(faults > 0, "a 0.9 plan must inject something");
        assert!(
            tracer.counter("dla.noisy_injected").unwrap_or(0) > 0,
            "noisy outliers appear at rate 0.9"
        );
    }

    #[test]
    fn validate_only_is_stream_neutral_and_uncounted() {
        use heron_sched::{KernelStage, MemScope, StageRole};
        use heron_tensor::DType;
        let comp = KernelStage {
            name: "C".into(),
            role: StageRole::Compute,
            src_scope: MemScope::FragA,
            dst_scope: MemScope::FragAcc,
            dtype: DType::F16,
            elems: 0,
            execs: 1,
            vector: 1,
            align_pad: 0,
            row_elems: 0,
            intrinsic: Some((16, 16, 16)),
            intrinsic_execs: 1 << 14,
            scalar_ops: 0,
            unroll: 512,
        };
        let mut k = Kernel {
            dla: "v100".into(),
            workload: "t".into(),
            total_flops: 1 << 28,
            grid: 80,
            threads: 8,
            stages: vec![comp],
            buffers: vec![],
            fingerprint: 0,
        };
        let fm = FaultyMeasurer::new(
            Measurer::new(crate::platforms::v100()),
            FaultPlan::uniform(9, 0.6),
        );
        // Reference fault trace with no oracle queries at all.
        let mut reference = Vec::new();
        for fp in 0..200u64 {
            k.fingerprint = fp;
            for a in 0..3u32 {
                reference.push(fm.measure_attempt(&k, a).map(|m| m.latency_s));
            }
        }
        // Same trace with oracle queries interleaved everywhere: the plan
        // is stateless, so validate_only must not shift a single outcome.
        let tracer = Tracer::manual();
        let fm = fm.with_tracer(tracer.clone());
        let mut interleaved = Vec::new();
        for fp in 0..200u64 {
            k.fingerprint = fp;
            for a in 0..3u32 {
                for oracle_fp in 0..4u64 {
                    let mut probe = k.clone();
                    probe.fingerprint = 1000 + oracle_fp;
                    assert!(fm.validate_only(&probe).is_ok());
                }
                interleaved.push(fm.measure_attempt(&k, a).map(|m| m.latency_s));
            }
        }
        assert_eq!(reference, interleaved, "oracle queries shifted outcomes");
        // Oracle queries charge nothing: only the real attempts counted.
        assert_eq!(tracer.counter("dla.measure_attempts"), Some(200 * 3));
        // An invalid kernel fails the oracle with a deterministic error
        // and still leaves every counter untouched.
        let before = tracer.counter("dla.measure_attempts");
        let mut bad = k.clone();
        bad.stages[0].intrinsic = Some((16, 16, 8));
        let err = fm.validate_only(&bad).expect_err("invalid");
        assert!(!err.is_transient());
        assert_eq!(tracer.counter("dla.measure_attempts"), before);
    }

    #[test]
    fn faulty_measurer_matches_plain_measurer_when_reliable() {
        use heron_sched::{KernelStage, MemScope, StageRole};
        use heron_tensor::DType;
        let comp = KernelStage {
            name: "C".into(),
            role: StageRole::Compute,
            src_scope: MemScope::FragA,
            dst_scope: MemScope::FragAcc,
            dtype: DType::F16,
            elems: 0,
            execs: 1,
            vector: 1,
            align_pad: 0,
            row_elems: 0,
            intrinsic: Some((16, 16, 16)),
            intrinsic_execs: 1 << 14,
            scalar_ops: 0,
            unroll: 512,
        };
        let k = Kernel {
            dla: "v100".into(),
            workload: "t".into(),
            total_flops: 1 << 28,
            grid: 80,
            threads: 8,
            stages: vec![comp],
            buffers: vec![],
            fingerprint: 4242,
        };
        let inner = Measurer::new(crate::platforms::v100());
        let fm = FaultyMeasurer::reliable(inner.clone());
        for a in 0..3u32 {
            assert_eq!(
                fm.measure_attempt(&k, a).expect("valid").latency_s,
                inner
                    .measure_once(&k, u64::from(a))
                    .expect("valid")
                    .latency_s
            );
        }
        // Deterministic validation errors pass straight through.
        let mut bad = k.clone();
        bad.stages[0].intrinsic = Some((16, 16, 8));
        assert_eq!(
            fm.measure_attempt(&bad, 0),
            Err(MeasureError::IllegalIntrinsic { m: 16, n: 16, k: 8 })
        );
    }
}
