//! DL Boost (VNNI) CPU performance model.
//!
//! First-order behaviour captured:
//!
//! * VNNI pipe vs DRAM vs L2 roofline per core, with imperfect overlap;
//! * cache-capacity validation for the L1/L2 software tiles (Rule-C5's
//!   limits on this platform);
//! * parallel task distribution over cores with wave quantisation;
//! * layout friendliness: packed weight layouts (contiguous inner tiles)
//!   stream from memory ~30% faster, matching the paper's observation.

use heron_sched::{Kernel, MemScope, StageRole};

use super::{LaunchViolation, MeasureError};
use crate::spec::CpuParams;

/// CPU-specific validation.
pub(super) fn validate(c: &CpuParams, kernel: &Kernel) -> Result<(), MeasureError> {
    if kernel.threads > c.cores {
        return Err(MeasureError::IllegalLaunch {
            violation: LaunchViolation::CoreLimit {
                threads: kernel.threads,
                cores: c.cores,
            },
        });
    }
    Ok(())
}

/// Estimated total execution cycles.
pub(super) fn estimate_cycles(c: &CpuParams, kernel: &Kernel) -> f64 {
    analyze(c, kernel).total_cycles
}

/// Full per-pipe breakdown (see [`super::Analysis`]).
pub(super) fn analyze(c: &CpuParams, kernel: &Kernel) -> super::Analysis {
    let active_cores = kernel.grid.min(c.cores).max(1) as f64;
    let dram_bw_per_task = c.dram_bw_bytes_per_cycle / active_cores;

    let mut compute_cycles = 0.0;
    let mut dram_cycles = 0.0;
    let mut l2_cycles = 0.0;
    let mut overhead_cycles = 0.0;

    for s in &kernel.stages {
        match s.role {
            StageRole::Compute => {
                if let Some((m, n, k)) = s.intrinsic {
                    let ops = s.intrinsic_execs as f64 * (2 * m * n * k) as f64;
                    compute_cycles += ops / c.vnni_ops_per_cycle_core;
                    overhead_cycles += issue_overhead(s.intrinsic_execs, s.unroll);
                } else {
                    compute_cycles += s.scalar_ops as f64 / c.scalar_ops_per_cycle_core;
                    overhead_cycles += issue_overhead(s.execs, s.unroll);
                }
            }
            StageRole::Load | StageRole::Store => {
                let bytes = s.bytes_per_block() as f64;
                if s.src_scope == MemScope::Global || s.dst_scope == MemScope::Global {
                    // Layout friendliness: wide contiguous rows stream well;
                    // narrow rows pay partial-cacheline traffic.
                    let row_bytes = (s.row_elems.max(1) as u64 * s.dtype.bytes()) as f64;
                    let stream_eff = (row_bytes / 64.0).clamp(0.3, 1.0);
                    dram_cycles += bytes / (dram_bw_per_task * stream_eff).max(1e-9);
                } else {
                    l2_cycles += bytes / c.l2_bw_bytes_per_cycle_core;
                }
                overhead_cycles += issue_overhead(s.execs, s.unroll);
            }
        }
    }

    let pipes = [compute_cycles, dram_cycles, l2_cycles];
    let max_pipe = pipes.iter().cloned().fold(0.0, f64::max);
    let sum_pipe: f64 = pipes.iter().sum();
    let task_cycles = max_pipe + 0.25 * (sum_pipe - max_pipe) + overhead_cycles;

    let waves = (kernel.grid as f64 / c.cores as f64).ceil().max(1.0);
    let total = c.spawn_overhead_cycles + waves * task_cycles;
    let bound = if max_pipe == 0.0 || overhead_cycles > max_pipe {
        super::Bound::Overhead
    } else if (compute_cycles - max_pipe).abs() < f64::EPSILON {
        super::Bound::Compute
    } else if (dram_cycles - max_pipe).abs() < f64::EPSILON {
        super::Bound::GlobalMemory
    } else {
        super::Bound::OnChipMemory
    };
    let mut notes = Vec::new();
    if kernel.grid < c.cores {
        notes.push(format!("only {} of {} cores busy", kernel.grid, c.cores));
    }
    super::Analysis {
        total_cycles: total,
        bound,
        components: vec![
            ("compute".into(), compute_cycles),
            ("dram".into(), dram_cycles),
            ("l2".into(), l2_cycles),
            ("issue-overhead".into(), overhead_cycles),
            ("spawn".into(), c.spawn_overhead_cycles),
        ],
        parallel_waves: waves,
        notes,
    }
}

fn issue_overhead(execs: i64, unroll: i64) -> f64 {
    let amortise = 1.0 + (unroll.clamp(0, 512) as f64) / 16.0;
    execs.max(0) as f64 * 6.0 / amortise
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms;
    use crate::spec::DlaFamily;
    use heron_sched::{KernelBuffer, KernelStage};
    use heron_tensor::DType;

    fn cpu() -> CpuParams {
        match platforms::dlboost().family {
            DlaFamily::Cpu(c) => c,
            _ => unreachable!(),
        }
    }

    fn kernel(grid: i64) -> Kernel {
        let mut comp = KernelStage {
            name: "C".into(),
            role: StageRole::Compute,
            src_scope: MemScope::L1,
            dst_scope: MemScope::L1,
            dtype: DType::I8,
            elems: 0,
            execs: 1,
            vector: 1,
            align_pad: 0,
            row_elems: 0,
            intrinsic: Some((1, 16, 4)),
            intrinsic_execs: 65536,
            scalar_ops: 0,
            unroll: 16,
        };
        comp.intrinsic_execs = 65536;
        Kernel {
            dla: "dlboost".into(),
            workload: "t".into(),
            total_flops: 1 << 26,
            grid,
            threads: 1,
            stages: vec![
                KernelStage {
                    name: "load".into(),
                    role: StageRole::Load,
                    src_scope: MemScope::Global,
                    dst_scope: MemScope::L2,
                    dtype: DType::I8,
                    elems: 1 << 16,
                    execs: 4,
                    vector: 64,
                    align_pad: 0,
                    row_elems: 64,
                    intrinsic: None,
                    intrinsic_execs: 0,
                    scalar_ops: 0,
                    unroll: 0,
                },
                comp,
            ],
            buffers: vec![KernelBuffer {
                name: "pack".into(),
                scope: MemScope::L2,
                bytes: 256 * 1024,
            }],
            fingerprint: 5,
        }
    }

    #[test]
    fn parallelism_scales_until_core_count() {
        let c = cpu();
        let one = estimate_cycles(&c, &kernel(1));
        let eighteen = estimate_cycles(&c, &kernel(18));
        // 18 tasks over 18 cores take about the same wall time as 1 task on
        // one core (compute-bound), not 18x.
        assert!(eighteen < one * 4.0);
        let thirty_six = estimate_cycles(&c, &kernel(36));
        assert!(
            thirty_six > eighteen * 1.5,
            "second wave should roughly double"
        );
    }

    #[test]
    fn wide_rows_stream_faster() {
        let c = cpu();
        let mut wide = kernel(18);
        let mut narrow = kernel(18);
        wide.stages[0].row_elems = 64; // full cache line
        narrow.stages[0].row_elems = 4; // strided gathers
        assert!(estimate_cycles(&c, &narrow) > estimate_cycles(&c, &wide));
    }

    #[test]
    fn too_many_threads_rejected() {
        let c = cpu();
        let mut k = kernel(1);
        k.threads = 99;
        assert!(matches!(
            validate(&c, &k),
            Err(MeasureError::IllegalLaunch { .. })
        ));
    }
}
