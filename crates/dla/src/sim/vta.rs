//! VTA performance model (explicit-SRAM accelerator, single GEMM core).
//!
//! First-order behaviour captured:
//!
//! * DMA transfers between DRAM and the three SRAMs vs GEMM-unit compute;
//! * double buffering: when every tile fits in *half* of its SRAM the
//!   load/compute/store engines overlap, otherwise they serialise — this is
//!   the crossover the multi-level tiling search has to find;
//! * the accumulator access-cycle rule (`2 <= access_cycle`): the innermost
//!   reduction extent (carried in the compute stage's `row_elems`) must give
//!   the accumulator write port enough slack;
//! * per-instruction issue overhead favouring coarse tiles.

use heron_sched::{Kernel, MemScope, StageRole};

use super::MeasureError;
use crate::spec::VtaParams;

/// VTA-specific validation.
pub(super) fn validate(v: &VtaParams, kernel: &Kernel) -> Result<(), MeasureError> {
    let comp = kernel
        .stages
        .iter()
        .find(|s| s.role == StageRole::Compute)
        .ok_or(MeasureError::MissingIntrinsic)?;
    if comp.intrinsic.is_none() {
        return Err(MeasureError::MissingIntrinsic);
    }
    // Accumulator access-cycle rule: the innermost accumulation loop extent
    // (stored in row_elems by the generator) must be at least the minimum.
    if comp.row_elems > 0 && comp.row_elems < v.min_access_cycle {
        return Err(MeasureError::AccessCycleViolation {
            observed: comp.row_elems,
            required: v.min_access_cycle,
        });
    }
    Ok(())
}

/// Estimated total execution cycles.
pub(super) fn estimate_cycles(v: &VtaParams, kernel: &Kernel) -> f64 {
    analyze(v, kernel).total_cycles
}

/// Full per-engine breakdown (see [`super::Analysis`]).
pub(super) fn analyze(v: &VtaParams, kernel: &Kernel) -> super::Analysis {
    let mut dma_in_cycles = 0.0;
    let mut dma_out_cycles = 0.0;
    let mut compute_cycles = 0.0;
    let mut issue_cycles = 0.0;

    for s in &kernel.stages {
        match s.role {
            StageRole::Compute => {
                if let Some((m, n, k)) = s.intrinsic {
                    let macs = s.intrinsic_execs as f64 * (m * n * k) as f64;
                    compute_cycles += macs / v.macs_per_cycle;
                } else {
                    compute_cycles += s.scalar_ops as f64;
                }
                issue_cycles += s.intrinsic_execs.max(s.execs) as f64 * v.issue_overhead_cycles
                    / (1.0 + s.unroll.clamp(0, 512) as f64 / 8.0);
            }
            StageRole::Load => {
                dma_in_cycles += s.bytes_per_block() as f64 / v.dma_bytes_per_cycle;
                issue_cycles += s.execs as f64 * v.issue_overhead_cycles;
            }
            StageRole::Store => {
                dma_out_cycles += s.bytes_per_block() as f64 / v.dma_bytes_per_cycle;
                issue_cycles += s.execs as f64 * v.issue_overhead_cycles;
            }
        }
    }

    // Double buffering only when every SRAM tile fits twice.
    let double_buffered = [
        (MemScope::VtaInput, v.input_buf_bytes),
        (MemScope::VtaWeight, v.weight_buf_bytes),
        (MemScope::VtaAcc, v.acc_buf_bytes),
    ]
    .iter()
    .all(|(scope, cap)| kernel.scope_bytes(*scope) * 2 <= *cap);

    let task_cycles = if double_buffered {
        let pipes = [dma_in_cycles, compute_cycles, dma_out_cycles];
        let max_pipe = pipes.iter().cloned().fold(0.0, f64::max);
        let sum_pipe: f64 = pipes.iter().sum();
        max_pipe + 0.1 * (sum_pipe - max_pipe)
    } else {
        dma_in_cycles + compute_cycles + dma_out_cycles
    };

    let total = kernel.grid.max(1) as f64 * (task_cycles + issue_cycles);
    let dma = dma_in_cycles + dma_out_cycles;
    let bound = if issue_cycles > compute_cycles.max(dma) {
        super::Bound::Overhead
    } else if compute_cycles >= dma {
        super::Bound::Compute
    } else {
        super::Bound::GlobalMemory
    };
    let mut notes = Vec::new();
    notes.push(if double_buffered {
        "double buffering active (tiles fit in half of each SRAM)".to_string()
    } else {
        "double buffering DISABLED: tiles exceed half an SRAM, engines serialise".to_string()
    });
    super::Analysis {
        total_cycles: total,
        bound,
        components: vec![
            ("dma-in".into(), dma_in_cycles),
            ("compute".into(), compute_cycles),
            ("dma-out".into(), dma_out_cycles),
            ("issue-overhead".into(), issue_cycles),
        ],
        parallel_waves: kernel.grid.max(1) as f64,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms;
    use crate::spec::DlaFamily;
    use heron_sched::{KernelBuffer, KernelStage};
    use heron_tensor::DType;

    fn params() -> VtaParams {
        match platforms::vta().family {
            DlaFamily::Vta(v) => v,
            _ => unreachable!(),
        }
    }

    fn stage(name: &str, role: StageRole, src: MemScope, dst: MemScope, elems: i64) -> KernelStage {
        KernelStage {
            name: name.into(),
            role,
            src_scope: src,
            dst_scope: dst,
            dtype: DType::I8,
            elems,
            execs: 4,
            vector: 16,
            align_pad: 0,
            row_elems: 16,
            intrinsic: None,
            intrinsic_execs: 0,
            scalar_ops: 0,
            unroll: 8,
        }
    }

    fn kernel(input_tile_bytes: u64) -> Kernel {
        let mut comp = stage(
            "gemm",
            StageRole::Compute,
            MemScope::VtaInput,
            MemScope::VtaAcc,
            0,
        );
        comp.intrinsic = Some((1, 16, 16));
        comp.intrinsic_execs = 4096;
        comp.row_elems = 4; // inner accumulation extent
        Kernel {
            dla: "vta".into(),
            workload: "t".into(),
            total_flops: 1 << 24,
            grid: 8,
            threads: 1,
            stages: vec![
                stage(
                    "ld.in",
                    StageRole::Load,
                    MemScope::Global,
                    MemScope::VtaInput,
                    8192,
                ),
                stage(
                    "ld.w",
                    StageRole::Load,
                    MemScope::Global,
                    MemScope::VtaWeight,
                    8192,
                ),
                comp,
                stage(
                    "st",
                    StageRole::Store,
                    MemScope::VtaAcc,
                    MemScope::Global,
                    4096,
                ),
            ],
            buffers: vec![
                KernelBuffer {
                    name: "in".into(),
                    scope: MemScope::VtaInput,
                    bytes: input_tile_bytes,
                },
                KernelBuffer {
                    name: "w".into(),
                    scope: MemScope::VtaWeight,
                    bytes: 16 * 1024,
                },
                KernelBuffer {
                    name: "acc".into(),
                    scope: MemScope::VtaAcc,
                    bytes: 16 * 1024,
                },
            ],
            fingerprint: 3,
        }
    }

    #[test]
    fn double_buffering_overlaps() {
        let v = params();
        // Half-buffer tiles overlap; full-buffer tiles serialise.
        let overlapped = estimate_cycles(&v, &kernel(8 * 1024));
        let serialised = estimate_cycles(&v, &kernel(31 * 1024));
        assert!(serialised > overlapped);
    }

    #[test]
    fn access_cycle_rule_enforced() {
        let v = params();
        let mut k = kernel(8 * 1024);
        for s in &mut k.stages {
            if s.role == StageRole::Compute {
                s.row_elems = 1;
            }
        }
        assert!(matches!(
            validate(&v, &k),
            Err(MeasureError::AccessCycleViolation {
                observed: 1,
                required: 2
            })
        ));
    }

    #[test]
    fn missing_intrinsic_rejected() {
        let v = params();
        let mut k = kernel(8 * 1024);
        for s in &mut k.stages {
            s.intrinsic = None;
        }
        assert_eq!(validate(&v, &k), Err(MeasureError::MissingIntrinsic));
    }
}
