//! The DLA measurer: validates a lowered kernel against the platform's
//! architectural constraints and estimates its latency analytically.
//!
//! Validation failures model compilation / run-time errors on the real
//! device; the estimate models the device's first-order performance
//! behaviour (roofline compute/memory balance, occupancy, bank conflicts,
//! vector efficiency, wave quantisation) plus a small deterministic
//! configuration-dependent jitter so the space is irregular, as the paper's
//! Figure 11 shows for real hardware.

mod cpu;
pub mod energy;
mod gpu;
mod vta;

use std::fmt;

use heron_sched::{Kernel, MemScope};

use crate::spec::{DlaFamily, DlaSpec};

/// Failure class of a [`MeasureError`]: whether retrying the same
/// configuration can ever succeed.
///
/// Deterministic errors are properties of the *kernel* (it violates an
/// architectural limit and always will); transient errors are properties
/// of the *measurement* (an RPC session dropped, the board hung, the run
/// timed out) and are worth retrying with backoff — exactly the split
/// AutoTVM/Ansor measurement infrastructure makes on real boards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Retrying the identical kernel may succeed (infrastructure fault).
    Transient,
    /// The kernel itself is invalid; retrying is pointless.
    Deterministic,
}

impl fmt::Display for ErrorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ErrorClass::Transient => "transient",
            ErrorClass::Deterministic => "deterministic",
        })
    }
}

/// Machine-readable launch-geometry violation kinds.
///
/// Carried by [`MeasureError::IllegalLaunch`] so callers (audit
/// attribution, `fault_sweep` columns) can branch on the violated limit
/// instead of string-matching a human-readable reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchViolation {
    /// Zero blocks / tasks launched.
    EmptyGrid,
    /// Zero threads (warps / cores) per block.
    NoThreads,
    /// Warps per block exceed the GPU limit.
    WarpLimit {
        /// Warps requested per block.
        warps: i64,
        /// Hardware limit.
        limit: i64,
    },
    /// Accumulator fragments exceed the per-warp register budget.
    RegisterBudget {
        /// Accumulator bytes requested per warp.
        bytes: i64,
        /// Register-file budget in bytes.
        budget: i64,
    },
    /// More software threads than physical cores.
    CoreLimit {
        /// Threads requested.
        threads: i64,
        /// Physical cores available.
        cores: i64,
    },
}

impl LaunchViolation {
    /// Stable short tag (`launch.<kind>` in audit attributions).
    pub fn tag(&self) -> &'static str {
        match self {
            LaunchViolation::EmptyGrid => "empty-grid",
            LaunchViolation::NoThreads => "no-threads",
            LaunchViolation::WarpLimit { .. } => "warp-limit",
            LaunchViolation::RegisterBudget { .. } => "register-budget",
            LaunchViolation::CoreLimit { .. } => "core-limit",
        }
    }
}

impl fmt::Display for LaunchViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchViolation::EmptyGrid => f.write_str("empty grid"),
            LaunchViolation::NoThreads => f.write_str("no threads"),
            LaunchViolation::WarpLimit { warps, limit } => {
                write!(f, "{warps} warps per block exceeds limit {limit}")
            }
            LaunchViolation::RegisterBudget { bytes, budget } => {
                write!(
                    f,
                    "{bytes} accumulator bytes per warp exceeds register budget {budget}"
                )
            }
            LaunchViolation::CoreLimit { threads, cores } => {
                write!(f, "{threads} threads exceed {cores} cores")
            }
        }
    }
}

/// Why a kernel cannot execute on the platform.
#[derive(Debug, Clone, PartialEq)]
pub enum MeasureError {
    /// An on-chip buffer exceeds its scope capacity.
    CapacityExceeded {
        /// Overflowing scope.
        scope: MemScope,
        /// Bytes requested.
        used: u64,
        /// Bytes available.
        limit: u64,
    },
    /// The tensorized shape is not supported by the functional unit.
    IllegalIntrinsic {
        /// Requested intrinsic `m`.
        m: i64,
        /// Requested intrinsic `n`.
        n: i64,
        /// Requested intrinsic `k`.
        k: i64,
    },
    /// A vectorised access width is not supported.
    IllegalVector {
        /// Requested width in elements.
        len: i64,
    },
    /// Thread/block shape outside hardware limits.
    IllegalLaunch {
        /// Which launch limit was violated.
        violation: LaunchViolation,
    },
    /// VTA-style accumulator access-cycle rule violated
    /// (`min <= access_cycle`).
    AccessCycleViolation {
        /// Observed inner accumulation extent.
        observed: i64,
        /// Minimum required.
        required: i64,
    },
    /// The platform requires a tensorized compute stage but none exists.
    MissingIntrinsic,
    /// The run exceeded its measurement budget (transient: the board was
    /// busy, the queue stalled — a retry may finish in time).
    Timeout {
        /// Budget that was exhausted, seconds.
        budget_s: f64,
    },
    /// The device stopped responding and had to be reset (transient).
    DeviceHang,
    /// The RPC session to the measurement server dropped (transient).
    RpcDropped,
    /// The run failed with no diagnosable cause and succeeds on retry
    /// (transient flakiness: ECC hiccups, driver races).
    SpuriousFailure,
}

impl fmt::Display for MeasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeasureError::CapacityExceeded { scope, used, limit } => {
                write!(f, "{scope} capacity exceeded: {used} > {limit} bytes")
            }
            MeasureError::IllegalIntrinsic { m, n, k } => {
                write!(f, "illegal intrinsic shape ({m}, {n}, {k})")
            }
            MeasureError::IllegalVector { len } => {
                write!(f, "illegal vector length {len}")
            }
            MeasureError::IllegalLaunch { violation } => write!(f, "illegal launch: {violation}"),
            MeasureError::AccessCycleViolation { observed, required } => {
                write!(f, "access cycle {observed} below required {required}")
            }
            MeasureError::MissingIntrinsic => {
                write!(f, "platform requires a tensorized compute stage")
            }
            MeasureError::Timeout { budget_s } => {
                write!(f, "measurement timed out after {budget_s} s")
            }
            MeasureError::DeviceHang => write!(f, "device hang (reset required)"),
            MeasureError::RpcDropped => write!(f, "rpc session to measurement server dropped"),
            MeasureError::SpuriousFailure => write!(f, "spurious run failure (retryable)"),
        }
    }
}

impl std::error::Error for MeasureError {}

impl MeasureError {
    /// Whether retrying the same kernel can succeed
    /// ([`ErrorClass::Transient`]) or the kernel itself is invalid
    /// ([`ErrorClass::Deterministic`]).
    pub fn class(&self) -> ErrorClass {
        match self {
            MeasureError::Timeout { .. }
            | MeasureError::DeviceHang
            | MeasureError::RpcDropped
            | MeasureError::SpuriousFailure => ErrorClass::Transient,
            MeasureError::CapacityExceeded { .. }
            | MeasureError::IllegalIntrinsic { .. }
            | MeasureError::IllegalVector { .. }
            | MeasureError::IllegalLaunch { .. }
            | MeasureError::AccessCycleViolation { .. }
            | MeasureError::MissingIntrinsic => ErrorClass::Deterministic,
        }
    }

    /// Shorthand for `self.class() == ErrorClass::Transient`.
    pub fn is_transient(&self) -> bool {
        self.class() == ErrorClass::Transient
    }

    /// Stable short tag for per-error-class accounting
    /// (`TuneResult::error_counts`, checkpoint files, reports).
    pub fn tag(&self) -> &'static str {
        match self {
            MeasureError::CapacityExceeded { .. } => "capacity",
            MeasureError::IllegalIntrinsic { .. } => "intrinsic",
            MeasureError::IllegalVector { .. } => "vector",
            MeasureError::IllegalLaunch { .. } => "launch",
            MeasureError::AccessCycleViolation { .. } => "access-cycle",
            MeasureError::MissingIntrinsic => "missing-intrinsic",
            MeasureError::Timeout { .. } => "timeout",
            MeasureError::DeviceHang => "device-hang",
            MeasureError::RpcDropped => "rpc-dropped",
            MeasureError::SpuriousFailure => "spurious",
        }
    }

    /// Fine-grained machine-readable tag: like [`MeasureError::tag`] but
    /// launch errors carry their violation kind (`launch.warp-limit`,
    /// `launch.core-limit`, …) so reports never parse `Display` text.
    pub fn detail_tag(&self) -> String {
        match self {
            MeasureError::IllegalLaunch { violation } => format!("launch.{}", violation.tag()),
            other => other.tag().to_string(),
        }
    }

    /// The constraint-generation rule (C1–C6, see `SpaceBuilder`) that
    /// should have excluded this kernel from the space, or `None` for
    /// transient infrastructure errors that implicate no rule.
    ///
    /// This is the attribution map the constraint-space auditor uses: a
    /// CSP-satisfying sample that fails validation with, say,
    /// [`MeasureError::CapacityExceeded`] points at a missing or
    /// mis-stated Rule-C5 memory limit.
    pub fn rule(&self) -> Option<&'static str> {
        match self {
            // Rule-C5 AddMemLimit: per-scope byte budgets.
            MeasureError::CapacityExceeded { .. } => Some("C5"),
            // Rule-C3 AddCandidates: intrinsic shapes and vector widths
            // are candidate-set (IN) variables.
            MeasureError::IllegalIntrinsic { .. } | MeasureError::IllegalVector { .. } => {
                Some("C3")
            }
            // Rule-C6 AddDLASpecific: launch limits, the accumulator
            // access-cycle rule, and the platform's tensorization
            // requirement are all DLA-specific constraints.
            MeasureError::IllegalLaunch { .. }
            | MeasureError::AccessCycleViolation { .. }
            | MeasureError::MissingIntrinsic => Some("C6"),
            MeasureError::Timeout { .. }
            | MeasureError::DeviceHang
            | MeasureError::RpcDropped
            | MeasureError::SpuriousFailure => None,
        }
    }
}

/// What limits a kernel's performance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// The arithmetic pipe (tensor cores / VNNI / GEMM unit) dominates.
    Compute,
    /// Off-chip memory (global memory / DRAM / DMA) dominates.
    GlobalMemory,
    /// On-chip memory (shared memory / L2 tiles) dominates.
    OnChipMemory,
    /// Instruction-issue / launch overheads dominate (tiles too fine).
    Overhead,
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Bound::Compute => "compute-bound",
            Bound::GlobalMemory => "off-chip-memory-bound",
            Bound::OnChipMemory => "on-chip-memory-bound",
            Bound::Overhead => "overhead-bound",
        };
        f.write_str(s)
    }
}

/// Per-pipe performance breakdown of one kernel (jitter-free trend).
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Total estimated cycles.
    pub total_cycles: f64,
    /// The dominating resource.
    pub bound: Bound,
    /// Named cycle contributions (per block / task, before wave scaling).
    pub components: Vec<(String, f64)>,
    /// Serial waves of parallel work (queue depth / task count).
    pub parallel_waves: f64,
    /// Human-readable observations (occupancy limits, bank conflicts,
    /// double-buffering state).
    pub notes: Vec<String>,
}

impl fmt::Display for Analysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} — {:.0} cycles total, {:.0} parallel waves",
            self.bound, self.total_cycles, self.parallel_waves
        )?;
        let max: f64 = self
            .components
            .iter()
            .map(|(_, c)| *c)
            .fold(0.0, f64::max)
            .max(1e-9);
        for (name, cycles) in &self.components {
            writeln!(
                f,
                "  {:<16} {:>12.0} cycles {}",
                name,
                cycles,
                "#".repeat(((cycles / max) * 24.0).round() as usize)
            )?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

/// One measured data point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Mean latency over the configured repeats, seconds.
    pub latency_s: f64,
    /// Useful throughput in Gops (`total_flops / latency`).
    pub gflops: f64,
}

/// The DLA measurer: a simulated device plus a measurement protocol.
#[derive(Debug, Clone)]
pub struct Measurer {
    spec: DlaSpec,
    repeats: u32,
    noise: f64,
}

impl Measurer {
    /// Measurer with the paper's defaults: 3 repeated runs averaged, 1%
    /// per-run measurement noise.
    pub fn new(spec: DlaSpec) -> Self {
        Measurer {
            spec,
            repeats: 3,
            noise: 0.01,
        }
    }

    /// Overrides the measurement protocol (repeats, per-run noise level).
    pub fn with_protocol(mut self, repeats: u32, noise: f64) -> Self {
        assert!(repeats >= 1, "at least one repeat");
        self.repeats = repeats;
        self.noise = noise;
        self
    }

    /// The simulated platform.
    pub fn spec(&self) -> &DlaSpec {
        &self.spec
    }

    /// Checks every architectural constraint without estimating latency —
    /// the "does it compile and run" question.
    ///
    /// # Errors
    /// Returns the first violated constraint.
    pub fn validate(&self, kernel: &Kernel) -> Result<(), MeasureError> {
        if kernel.grid < 1 {
            return Err(MeasureError::IllegalLaunch {
                violation: LaunchViolation::EmptyGrid,
            });
        }
        if kernel.threads < 1 {
            return Err(MeasureError::IllegalLaunch {
                violation: LaunchViolation::NoThreads,
            });
        }
        for (scope, limit) in &self.spec.capacities {
            let used = kernel.scope_bytes(*scope);
            if used > *limit {
                return Err(MeasureError::CapacityExceeded {
                    scope: *scope,
                    used,
                    limit: *limit,
                });
            }
        }
        for s in &kernel.stages {
            if let Some((m, n, k)) = s.intrinsic {
                if !self.spec.allows_intrinsic(m, n, k) {
                    return Err(MeasureError::IllegalIntrinsic { m, n, k });
                }
            }
            if s.vector > 1 && !self.spec.allows_vector(s.vector) {
                return Err(MeasureError::IllegalVector { len: s.vector });
            }
        }
        match &self.spec.family {
            DlaFamily::Gpu(g) => gpu::validate(g, kernel)?,
            DlaFamily::Cpu(c) => cpu::validate(c, kernel)?,
            DlaFamily::Vta(v) => vta::validate(v, kernel)?,
        }
        Ok(())
    }

    /// Validates and explains a kernel: which resource bounds it and the
    /// per-pipe cycle breakdown (jitter-free).
    ///
    /// # Errors
    /// Returns [`MeasureError`] for any constraint violation.
    pub fn analyze(&self, kernel: &Kernel) -> Result<Analysis, MeasureError> {
        self.validate(kernel)?;
        Ok(match &self.spec.family {
            DlaFamily::Gpu(g) => gpu::analyze(g, kernel),
            DlaFamily::Cpu(c) => cpu::analyze(c, kernel),
            DlaFamily::Vta(v) => vta::analyze(v, kernel),
        })
    }

    /// Validates, measures, and estimates the energy of a kernel.
    ///
    /// # Errors
    /// Returns [`MeasureError`] for any constraint violation.
    pub fn measure_with_energy(
        &self,
        kernel: &Kernel,
    ) -> Result<(Measurement, energy::EnergyEstimate), MeasureError> {
        let m = self.measure(kernel)?;
        let e = energy::estimate(&self.spec, kernel, m.latency_s);
        Ok((m, e))
    }

    /// Validates and measures a kernel, averaging `repeats` noisy runs.
    ///
    /// # Errors
    /// Returns [`MeasureError`] for any constraint violation — the analogue
    /// of a compile error or CUDA launch failure in the paper's pipeline.
    pub fn measure(&self, kernel: &Kernel) -> Result<Measurement, MeasureError> {
        self.validate(kernel)?;
        // Averaged measurement noise across the protocol's repeats.
        let mut acc = 0.0;
        for r in 0..self.repeats {
            acc += self.run_cycles(kernel, u64::from(r));
        }
        let cycles = acc / f64::from(self.repeats);
        let latency_s = cycles / self.clock_hz();
        Ok(Measurement {
            latency_s,
            gflops: kernel.total_flops as f64 / latency_s / 1e9,
        })
    }

    /// Validates and measures a *single* run of a kernel, keyed by
    /// `run_id` so distinct runs of the same kernel see distinct (but
    /// deterministic) measurement noise.
    ///
    /// `measure()` is exactly the mean of `measure_once` over
    /// `run_id ∈ 0..repeats`; fault-tolerant callers (the tuner's
    /// median-of-repeats protocol, [`crate::fault::FaultyMeasurer`]) use
    /// this entry point to see individual runs and reject outliers.
    ///
    /// # Errors
    /// Returns [`MeasureError`] for any constraint violation.
    pub fn measure_once(&self, kernel: &Kernel, run_id: u64) -> Result<Measurement, MeasureError> {
        self.validate(kernel)?;
        let latency_s = self.run_cycles(kernel, run_id) / self.clock_hz();
        Ok(Measurement {
            latency_s,
            gflops: kernel.total_flops as f64 / latency_s / 1e9,
        })
    }

    /// Simulated clock rate in Hz.
    pub fn clock_hz(&self) -> f64 {
        match &self.spec.family {
            DlaFamily::Gpu(g) => g.clock_ghz * 1e9,
            DlaFamily::Cpu(c) => c.clock_ghz * 1e9,
            DlaFamily::Vta(v) => v.clock_ghz * 1e9,
        }
    }

    /// Cycles of one run: the analytic trend times deterministic
    /// configuration jitter times per-run measurement noise.
    fn run_cycles(&self, kernel: &Kernel, run_id: u64) -> f64 {
        let base_cycles = match &self.spec.family {
            DlaFamily::Gpu(g) => gpu::estimate_cycles(g, kernel),
            DlaFamily::Cpu(c) => cpu::estimate_cycles(c, kernel),
            DlaFamily::Vta(v) => vta::estimate_cycles(v, kernel),
        };
        // Deterministic configuration jitter (fabrication/cache-set effects
        // that make neighbouring configs differ on real silicon).
        let config_jitter = 1.0 + 0.04 * signed_unit(hash2(kernel.fingerprint, 0x9e3779b97f4a7c15));
        let run_noise = 1.0 + self.noise * signed_unit(hash2(kernel.fingerprint, run_id + 1));
        base_cycles * config_jitter * run_noise
    }
}

/// SplitMix64-style hash combination.
pub(crate) fn hash2(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Maps a hash to `[-1, 1]`.
pub(crate) fn signed_unit(h: u64) -> f64 {
    (h % 2_000_001) as f64 / 1_000_000.0 - 1.0
}

/// Greatest common divisor (for the bank-conflict model).
pub(crate) fn gcd(mut a: i64, mut b: i64) -> i64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use heron_sched::{KernelBuffer, KernelStage, StageRole};
    use heron_tensor::DType;

    #[test]
    fn analyze_identifies_compute_bound_kernels() {
        let comp = KernelStage {
            name: "C".into(),
            role: StageRole::Compute,
            src_scope: MemScope::FragA,
            dst_scope: MemScope::FragAcc,
            dtype: DType::F16,
            elems: 0,
            execs: 1,
            vector: 1,
            align_pad: 0,
            row_elems: 0,
            intrinsic: Some((16, 16, 16)),
            intrinsic_execs: 1 << 16,
            scalar_ops: 0,
            unroll: 512,
        };
        let k = Kernel {
            dla: "v100".into(),
            workload: "t".into(),
            total_flops: 1 << 30,
            grid: 80,
            threads: 8,
            stages: vec![comp],
            buffers: vec![KernelBuffer {
                name: "A".into(),
                scope: MemScope::Shared,
                bytes: 8 * 1024,
            }],
            fingerprint: 1,
        };
        let m = Measurer::new(crate::platforms::v100());
        let a = m.analyze(&k).expect("valid kernel");
        assert_eq!(a.bound, Bound::Compute);
        assert!(a.total_cycles > 0.0);
        let text = a.to_string();
        assert!(text.contains("compute-bound"));
        assert!(text.contains("compute"));
        // Analysis matches the jitter-free trend of measure().
        let meas = m.measure(&k).expect("valid");
        let clock = 1.38e9;
        let trend = a.total_cycles / clock;
        assert!((meas.latency_s - trend).abs() / trend < 0.1);
    }

    #[test]
    fn measure_is_the_mean_of_single_runs() {
        let comp = KernelStage {
            name: "C".into(),
            role: StageRole::Compute,
            src_scope: MemScope::FragA,
            dst_scope: MemScope::FragAcc,
            dtype: DType::F16,
            elems: 0,
            execs: 1,
            vector: 1,
            align_pad: 0,
            row_elems: 0,
            intrinsic: Some((16, 16, 16)),
            intrinsic_execs: 1 << 14,
            scalar_ops: 0,
            unroll: 512,
        };
        let k = Kernel {
            dla: "v100".into(),
            workload: "t".into(),
            total_flops: 1 << 28,
            grid: 80,
            threads: 8,
            stages: vec![comp],
            buffers: vec![],
            fingerprint: 99,
        };
        let m = Measurer::new(crate::platforms::v100()).with_protocol(3, 0.02);
        let mean = m.measure(&k).expect("valid").latency_s;
        let runs: Vec<f64> = (0..3)
            .map(|r| m.measure_once(&k, r).expect("valid").latency_s)
            .collect();
        let avg = runs.iter().sum::<f64>() / 3.0;
        assert!((mean - avg).abs() / mean < 1e-12, "{mean} vs {avg}");
        // Distinct run ids see distinct noise.
        assert_ne!(runs[0], runs[1]);
    }

    #[test]
    fn error_classes_split_transient_from_deterministic() {
        assert_eq!(
            MeasureError::Timeout { budget_s: 1.0 }.class(),
            ErrorClass::Transient
        );
        assert!(MeasureError::DeviceHang.is_transient());
        assert!(MeasureError::RpcDropped.is_transient());
        assert!(MeasureError::SpuriousFailure.is_transient());
        assert!(!MeasureError::MissingIntrinsic.is_transient());
        assert_eq!(
            MeasureError::IllegalVector { len: 3 }.class(),
            ErrorClass::Deterministic
        );
        assert_eq!(MeasureError::RpcDropped.tag(), "rpc-dropped");
        assert_eq!(
            MeasureError::CapacityExceeded {
                scope: MemScope::Shared,
                used: 2,
                limit: 1
            }
            .tag(),
            "capacity"
        );
    }

    #[test]
    fn hash_is_deterministic_and_spread() {
        assert_eq!(hash2(1, 2), hash2(1, 2));
        assert_ne!(hash2(1, 2), hash2(2, 1));
        let u = signed_unit(hash2(42, 7));
        assert!((-1.0..=1.0).contains(&u));
    }

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd(36, 32), 4);
        assert_eq!(gcd(33, 32), 1);
        assert_eq!(gcd(0, 5), 5);
    }
}
