//! TensorCore GPU performance model.
//!
//! First-order behaviour captured:
//!
//! * roofline balance between the tensor-core pipe, the global-memory pipe
//!   and the shared-memory pipe, with imperfect overlap;
//! * occupancy-driven latency hiding (resident warps per SM, limited by
//!   shared memory and the warp budget);
//! * vectorisation efficiency of global loads (128-bit transactions);
//! * shared-memory bank conflicts as a function of row stride and the
//!   `storage_align` padding;
//! * wave quantisation (`ceil(grid / SMs)`) and launch overhead;
//! * per-iteration issue overhead reduced by unrolling.

use heron_sched::{Kernel, KernelStage, MemScope, StageRole};

use super::{gcd, LaunchViolation, MeasureError};
use crate::spec::GpuParams;

/// GPU-specific launch validation.
pub(super) fn validate(g: &GpuParams, kernel: &Kernel) -> Result<(), MeasureError> {
    if kernel.threads > g.max_warps_per_block {
        return Err(MeasureError::IllegalLaunch {
            violation: LaunchViolation::WarpLimit {
                warps: kernel.threads,
                limit: g.max_warps_per_block,
            },
        });
    }
    // Accumulator register budget per warp, in bytes of the base 16x16
    // fragment (the FragAcc scope capacity enforces the same limit for
    // spaces that declare the buffer; this guards hand-built kernels too).
    let frag_bytes = kernel.scope_bytes(MemScope::FragAcc) as i64;
    let budget = g.max_acc_frags_per_warp * 16 * 16 * 4;
    if frag_bytes > budget {
        return Err(MeasureError::IllegalLaunch {
            violation: LaunchViolation::RegisterBudget {
                bytes: frag_bytes,
                budget,
            },
        });
    }
    Ok(())
}

/// Bank-conflict multiplier for a shared-memory access stream with the
/// given row length (elements), padding (elements) and element size.
///
/// Shared memory has 32 four-byte banks; a row stride whose word count
/// shares a large power-of-two factor with 32 serialises accesses.
pub(super) fn bank_conflict_factor(row_elems: i64, pad: i64, elem_bytes: u64) -> f64 {
    if row_elems <= 0 {
        return 1.0;
    }
    let stride_bytes = (row_elems + pad) * elem_bytes as i64;
    let stride_words = (stride_bytes + 3) / 4;
    gcd(stride_words, 32).clamp(1, 8) as f64
}

/// Efficiency of global-memory transactions at the given vector width.
fn vector_efficiency(vector: i64, elem_bytes: u64) -> f64 {
    let access_bytes = (vector.max(1) as u64 * elem_bytes) as f64;
    (access_bytes / 16.0).clamp(0.125, 1.0)
}

fn touches(stage: &KernelStage, scope: MemScope) -> bool {
    stage.src_scope == scope || stage.dst_scope == scope
}

/// Estimated total execution cycles for the kernel.
pub(super) fn estimate_cycles(g: &GpuParams, kernel: &Kernel) -> f64 {
    analyze(g, kernel).total_cycles
}

/// Full per-pipe breakdown (see [`super::Analysis`]).
pub(super) fn analyze(g: &GpuParams, kernel: &Kernel) -> super::Analysis {
    let warps = kernel.threads.max(1);
    let smem_block = kernel.scope_bytes(MemScope::Shared).max(256);

    // Residency: how many blocks fit on one SM.
    let by_warps = g.max_warps_per_sm / warps;
    let by_smem = (g.smem_per_sm / smem_block) as i64;
    let blocks_per_sm = by_warps.min(by_smem).clamp(1, 32);
    let resident_warps = (blocks_per_sm * warps) as f64;
    // Latency hiding: ~16 resident warps saturate the pipes.
    let hiding = (resident_warps / 16.0).clamp(0.25, 1.0);

    // Each SM executes its queue of blocks serially; blocks on distinct SMs
    // share the device-wide global-memory bandwidth.
    let concurrent_blocks = kernel.grid.min(g.sms).max(1) as f64;
    let gmem_bw_per_block = g.global_bw_bytes_per_cycle / concurrent_blocks;

    let mut compute_cycles = 0.0;
    let mut gmem_cycles = 0.0;
    let mut smem_cycles = 0.0;
    let mut overhead_cycles = 0.0;

    for s in &kernel.stages {
        match s.role {
            StageRole::Compute => {
                if let Some((m, n, k)) = s.intrinsic {
                    let flops = s.intrinsic_execs as f64 * (2 * m * n * k) as f64;
                    compute_cycles += flops / g.tensor_flops_per_cycle_sm;
                    overhead_cycles += issue_overhead(s.intrinsic_execs, s.unroll, 4.0);
                } else {
                    compute_cycles += s.scalar_ops as f64 / g.cuda_flops_per_cycle_sm;
                    overhead_cycles += issue_overhead(s.execs, s.unroll, 8.0);
                }
            }
            StageRole::Load | StageRole::Store => {
                let bytes = s.bytes_per_block() as f64;
                if touches(s, MemScope::Global) {
                    let eff = vector_efficiency(s.vector, s.dtype.bytes());
                    gmem_cycles += bytes / (gmem_bw_per_block * eff * hiding).max(1e-9);
                }
                if touches(s, MemScope::Shared) {
                    let conflict = bank_conflict_factor(s.row_elems, s.align_pad, s.dtype.bytes());
                    smem_cycles +=
                        bytes * conflict / (g.shared_bw_bytes_per_cycle_sm * hiding).max(1e-9);
                }
                overhead_cycles += issue_overhead(s.execs, s.unroll, 16.0);
            }
        }
    }

    let pipes = [compute_cycles, gmem_cycles, smem_cycles];
    let max_pipe = pipes.iter().cloned().fold(0.0, f64::max);
    let sum_pipe: f64 = pipes.iter().sum();
    // Imperfect overlap of the three pipelines.
    let block_cycles = max_pipe + 0.2 * (sum_pipe - max_pipe) + overhead_cycles;

    let queue_depth = (kernel.grid as f64 / g.sms as f64).ceil().max(1.0);
    let total = g.launch_overhead_cycles + queue_depth * block_cycles;

    let bound = if max_pipe == 0.0 || overhead_cycles > max_pipe {
        super::Bound::Overhead
    } else if (compute_cycles - max_pipe).abs() < f64::EPSILON {
        super::Bound::Compute
    } else if (gmem_cycles - max_pipe).abs() < f64::EPSILON {
        super::Bound::GlobalMemory
    } else {
        super::Bound::OnChipMemory
    };
    let mut notes = Vec::new();
    if hiding < 1.0 {
        notes.push(format!(
            "latency hiding limited: {resident_warps:.0} resident warps ({blocks_per_sm} blocks/SM)"
        ));
    }
    for st in &kernel.stages {
        if st.row_elems > 0 {
            let factor = bank_conflict_factor(st.row_elems, st.align_pad, st.dtype.bytes());
            if factor > 1.0
                && (st.src_scope == MemScope::Shared || st.dst_scope == MemScope::Shared)
            {
                notes.push(format!(
                    "{}-way bank conflicts on {}",
                    factor as i64, st.name
                ));
            }
        }
    }
    super::Analysis {
        total_cycles: total,
        bound,
        components: vec![
            ("compute".into(), compute_cycles),
            ("global-memory".into(), gmem_cycles),
            ("on-chip-memory".into(), smem_cycles),
            ("issue-overhead".into(), overhead_cycles),
            ("launch".into(), g.launch_overhead_cycles),
        ],
        parallel_waves: queue_depth,
        notes,
    }
}

/// Per-execution issue overhead, amortised by unrolling.
fn issue_overhead(execs: i64, unroll: i64, per_exec: f64) -> f64 {
    let amortise = 1.0 + (unroll.clamp(0, 512) as f64) / 16.0;
    execs.max(0) as f64 * per_exec / amortise
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms;
    use crate::spec::DlaFamily;
    use heron_sched::{KernelBuffer, KernelStage};
    use heron_tensor::DType;

    fn gpu() -> GpuParams {
        match platforms::v100().family {
            DlaFamily::Gpu(g) => g,
            _ => unreachable!(),
        }
    }

    fn stage(role: StageRole, src: MemScope, dst: MemScope) -> KernelStage {
        KernelStage {
            name: "s".into(),
            role,
            src_scope: src,
            dst_scope: dst,
            dtype: DType::F16,
            elems: 4096,
            execs: 8,
            vector: 8,
            align_pad: 0,
            row_elems: 64,
            intrinsic: None,
            intrinsic_execs: 0,
            scalar_ops: 0,
            unroll: 0,
        }
    }

    fn kernel(grid: i64, warps: i64) -> Kernel {
        let mut comp = stage(StageRole::Compute, MemScope::FragA, MemScope::FragAcc);
        comp.intrinsic = Some((16, 16, 16));
        comp.intrinsic_execs = 1024;
        Kernel {
            dla: "v100".into(),
            workload: "test".into(),
            total_flops: 1 << 30,
            grid,
            threads: warps,
            stages: vec![
                stage(StageRole::Load, MemScope::Global, MemScope::Shared),
                stage(StageRole::Load, MemScope::Shared, MemScope::FragA),
                comp,
                stage(StageRole::Store, MemScope::FragAcc, MemScope::Global),
            ],
            buffers: vec![KernelBuffer {
                name: "A.shared".into(),
                scope: MemScope::Shared,
                bytes: 16 * 1024,
            }],
            fingerprint: 99,
        }
    }

    #[test]
    fn bank_conflicts_respond_to_padding() {
        // 64 f16 elements per row = 32 words: heavy conflicts.
        let unpadded = bank_conflict_factor(64, 0, 2);
        // Pad by 8 elements: 36 words, gcd(36,32)=4.
        let padded8 = bank_conflict_factor(64, 8, 2);
        // Pad by 2 elements: 33 words, conflict-free.
        let padded2 = bank_conflict_factor(64, 2, 2);
        assert!(unpadded > padded8, "{unpadded} vs {padded8}");
        assert!(padded8 > padded2);
        assert_eq!(padded2, 1.0);
    }

    #[test]
    fn vector_width_speeds_up_loads() {
        let g = gpu();
        let mut wide = kernel(80, 8);
        let mut narrow = kernel(80, 8);
        wide.stages[0].vector = 8;
        narrow.stages[0].vector = 1;
        assert!(estimate_cycles(&g, &narrow) > estimate_cycles(&g, &wide));
    }

    #[test]
    fn more_blocks_amortise_launch() {
        let g = gpu();
        // Same per-block work: more blocks ⇒ more waves ⇒ longer.
        let small = estimate_cycles(&g, &kernel(80, 8));
        let large = estimate_cycles(&g, &kernel(800, 8));
        assert!(large > small);
    }

    #[test]
    fn occupancy_cliff_when_smem_heavy() {
        let g = gpu();
        let mut light = kernel(160, 2);
        let mut heavy = kernel(160, 2);
        light.buffers[0].bytes = 8 * 1024; // 12 blocks/SM by smem
        heavy.buffers[0].bytes = 48 * 1024; // 2 blocks/SM
                                            // Per-block work identical; heavy loses latency hiding.
        let lc = estimate_cycles(&g, &light);
        let hc = estimate_cycles(&g, &heavy);
        assert!(hc > lc, "expected occupancy penalty: {hc} <= {lc}");
    }

    #[test]
    fn warp_limit_enforced() {
        let g = gpu();
        let k = kernel(80, 64);
        assert!(matches!(
            validate(&g, &k),
            Err(MeasureError::IllegalLaunch { .. })
        ));
    }

    #[test]
    fn fragment_budget_enforced() {
        let g = gpu();
        let mut k = kernel(80, 8);
        k.buffers.push(KernelBuffer {
            name: "C.frag".into(),
            scope: MemScope::FragAcc,
            bytes: 64 * 16 * 16 * 4, // 64 fragments
        });
        assert!(matches!(
            validate(&g, &k),
            Err(MeasureError::IllegalLaunch { .. })
        ));
    }

    #[test]
    fn unroll_reduces_overhead() {
        let g = gpu();
        let mut rolled = kernel(80, 8);
        let mut unrolled = kernel(80, 8);
        for s in &mut rolled.stages {
            s.unroll = 0;
        }
        for s in &mut unrolled.stages {
            s.unroll = 64;
        }
        assert!(estimate_cycles(&g, &rolled) > estimate_cycles(&g, &unrolled));
    }
}
