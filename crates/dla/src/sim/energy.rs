//! Energy model: estimates the energy one kernel execution consumes.
//!
//! DLAs exist to improve performance *and energy efficiency* (the paper's
//! opening sentence), so the measurer also reports energy. The model is
//! the standard architecture-textbook decomposition: per-op arithmetic
//! energy, per-byte data-movement energy that grows with distance in the
//! memory hierarchy, plus static (leakage + idle) power integrated over
//! the kernel's runtime.

use heron_sched::{Kernel, MemScope, StageRole};

use crate::spec::{DlaFamily, DlaSpec};

/// Energy cost table, picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Energy per multiply-accumulate through the tensor unit, pJ.
    pub pj_per_mac: f64,
    /// Energy per scalar ALU op, pJ (scalar paths are less efficient).
    pub pj_per_scalar_op: f64,
    /// Energy per byte moved to/from off-chip memory, pJ.
    pub pj_per_offchip_byte: f64,
    /// Energy per byte moved within on-chip SPM/caches, pJ.
    pub pj_per_onchip_byte: f64,
    /// Static power, watts.
    pub static_watts: f64,
}

impl EnergyParams {
    /// Default parameters per platform family (45–16 nm class numbers from
    /// the accelerator literature: DRAM ~100× an on-chip access, on-chip
    /// ~10× a MAC).
    pub fn for_spec(spec: &DlaSpec) -> Self {
        match spec.family {
            DlaFamily::Gpu(_) => EnergyParams {
                pj_per_mac: 0.5,
                pj_per_scalar_op: 2.0,
                pj_per_offchip_byte: 20.0,
                pj_per_onchip_byte: 1.0,
                static_watts: 50.0,
            },
            DlaFamily::Cpu(_) => EnergyParams {
                pj_per_mac: 1.0,
                pj_per_scalar_op: 4.0,
                pj_per_offchip_byte: 25.0,
                pj_per_onchip_byte: 2.0,
                static_watts: 30.0,
            },
            DlaFamily::Vta(_) => EnergyParams {
                pj_per_mac: 0.3,
                pj_per_scalar_op: 3.0,
                pj_per_offchip_byte: 15.0,
                pj_per_onchip_byte: 0.5,
                static_watts: 2.0,
            },
        }
    }
}

/// Energy breakdown of one kernel execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyEstimate {
    /// Arithmetic energy, joules.
    pub compute_j: f64,
    /// Off-chip data-movement energy, joules.
    pub offchip_j: f64,
    /// On-chip data-movement energy, joules.
    pub onchip_j: f64,
    /// Static energy over the runtime, joules.
    pub static_j: f64,
}

impl EnergyEstimate {
    /// Total energy, joules.
    pub fn total_j(&self) -> f64 {
        self.compute_j + self.offchip_j + self.onchip_j + self.static_j
    }

    /// Energy efficiency in Gops/W given the kernel's useful work.
    pub fn gops_per_watt(&self, total_flops: u64, latency_s: f64) -> f64 {
        let watts = self.total_j() / latency_s.max(1e-12);
        total_flops as f64 / 1e9 / latency_s.max(1e-12) / watts.max(1e-12)
    }
}

/// Estimates the energy of one kernel execution.
///
/// `latency_s` is the measured latency (for the static term); the dynamic
/// terms come from the kernel's own operation and traffic counts.
pub fn estimate(spec: &DlaSpec, kernel: &Kernel, latency_s: f64) -> EnergyEstimate {
    let p = EnergyParams::for_spec(spec);
    let grid = kernel.grid.max(1) as f64;

    let mut macs = 0.0;
    let mut scalar_ops = 0.0;
    let mut offchip_bytes = 0.0;
    let mut onchip_bytes = 0.0;
    for s in &kernel.stages {
        match s.role {
            StageRole::Compute => {
                if let Some((m, n, k)) = s.intrinsic {
                    macs += s.intrinsic_execs as f64 * (m * n * k) as f64 * grid;
                } else {
                    scalar_ops += s.scalar_ops as f64 * grid;
                }
            }
            StageRole::Load | StageRole::Store => {
                let bytes = s.bytes_per_block() as f64 * grid;
                if s.src_scope == MemScope::Global || s.dst_scope == MemScope::Global {
                    offchip_bytes += bytes;
                } else {
                    onchip_bytes += bytes;
                }
                // Every off-chip transfer also lands in an on-chip buffer.
                if s.src_scope == MemScope::Global && s.dst_scope.is_spm() {
                    onchip_bytes += bytes;
                }
            }
        }
    }

    EnergyEstimate {
        compute_j: (macs * p.pj_per_mac + scalar_ops * p.pj_per_scalar_op) * 1e-12,
        offchip_j: offchip_bytes * p.pj_per_offchip_byte * 1e-12,
        onchip_j: onchip_bytes * p.pj_per_onchip_byte * 1e-12,
        static_j: p.static_watts * latency_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms::v100;
    use heron_sched::{KernelBuffer, KernelStage};
    use heron_tensor::DType;

    fn kernel(intrin_execs: i64, load_elems: i64) -> Kernel {
        Kernel {
            dla: "v100".into(),
            workload: "e".into(),
            total_flops: (intrin_execs * 8192 * 64).max(1) as u64,
            grid: 64,
            threads: 8,
            stages: vec![
                KernelStage {
                    name: "A.shared".into(),
                    role: StageRole::Load,
                    src_scope: MemScope::Global,
                    dst_scope: MemScope::Shared,
                    dtype: DType::F16,
                    elems: load_elems,
                    execs: 8,
                    vector: 8,
                    align_pad: 0,
                    row_elems: 32,
                    intrinsic: None,
                    intrinsic_execs: 0,
                    scalar_ops: 0,
                    unroll: 0,
                },
                KernelStage {
                    name: "C".into(),
                    role: StageRole::Compute,
                    src_scope: MemScope::FragA,
                    dst_scope: MemScope::FragAcc,
                    dtype: DType::F16,
                    elems: 0,
                    execs: 1,
                    vector: 1,
                    align_pad: 0,
                    row_elems: 0,
                    intrinsic: Some((16, 16, 16)),
                    intrinsic_execs: intrin_execs,
                    scalar_ops: 0,
                    unroll: 0,
                },
            ],
            buffers: vec![KernelBuffer {
                name: "A".into(),
                scope: MemScope::Shared,
                bytes: 4096,
            }],
            fingerprint: 0,
        }
    }

    #[test]
    fn more_work_costs_more_energy() {
        let spec = v100();
        let small = estimate(&spec, &kernel(128, 1024), 1e-4);
        let big = estimate(&spec, &kernel(1024, 1024), 1e-4);
        assert!(big.compute_j > small.compute_j);
        assert_eq!(big.offchip_j, small.offchip_j);
        assert!(big.total_j() > small.total_j());
    }

    #[test]
    fn more_traffic_costs_more_energy() {
        let spec = v100();
        let light = estimate(&spec, &kernel(512, 512), 1e-4);
        let heavy = estimate(&spec, &kernel(512, 8192), 1e-4);
        assert!(heavy.offchip_j > light.offchip_j);
        assert!(
            heavy.onchip_j > light.onchip_j,
            "global loads land in shared too"
        );
    }

    #[test]
    fn static_term_scales_with_runtime() {
        let spec = v100();
        let fast = estimate(&spec, &kernel(512, 1024), 1e-5);
        let slow = estimate(&spec, &kernel(512, 1024), 1e-3);
        assert!((slow.static_j / fast.static_j - 100.0).abs() < 1e-6);
    }

    #[test]
    fn efficiency_is_finite_and_positive() {
        let spec = v100();
        let k = kernel(2048, 4096);
        let e = estimate(&spec, &k, 1e-4);
        let eff = e.gops_per_watt(k.total_flops, 1e-4);
        assert!(eff.is_finite() && eff > 0.0);
    }
}
