//! Concrete platform specifications for the DLAs of the paper's Table 3.
//!
//! Microarchitectural numbers are drawn from public datasheets; absolute
//! precision is unnecessary — the reproduction compares performance *shapes*
//! across tuners on the same simulated device.

use heron_sched::MemScope;
use heron_tensor::DType;

use crate::spec::{CpuParams, DlaFamily, DlaSpec, GpuParams, VtaParams};

/// Legal TensorCore `wmma` shapes: `m*n*k == 4096`, `m,n,k ∈ {8,16,32}`.
fn wmma_shapes() -> Vec<(i64, i64, i64)> {
    let cands = [8_i64, 16, 32];
    let mut shapes = Vec::new();
    for &m in &cands {
        for &n in &cands {
            for &k in &cands {
                if m * n * k == 4096 {
                    shapes.push((m, n, k));
                }
            }
        }
    }
    shapes
}

fn gpu_capacities(smem_per_block: u64) -> Vec<(MemScope, u64)> {
    vec![
        (MemScope::Shared, smem_per_block),
        // Fragment registers: budget for a 64x64 f32 accumulator warp tile
        // (16 fragments of 16x16, i.e. 128 registers per thread) plus the
        // matching operand fragments.
        (MemScope::FragA, 16 * 16 * 16 * 2),
        (MemScope::FragB, 16 * 16 * 16 * 2),
        (MemScope::FragAcc, 16 * 16 * 16 * 4),
    ]
}

/// NVIDIA V100 (Volta): 80 SMs, 640 TensorCores, ~112 Tflops f16.
pub fn v100() -> DlaSpec {
    DlaSpec {
        name: "v100".into(),
        family: DlaFamily::Gpu(GpuParams {
            sms: 80,
            clock_ghz: 1.38,
            tensor_flops_per_cycle_sm: 1024.0,
            cuda_flops_per_cycle_sm: 128.0,
            global_bw_bytes_per_cycle: 650.0, // ~900 GB/s
            shared_bw_bytes_per_cycle_sm: 128.0,
            max_warps_per_block: 32,
            max_warps_per_sm: 64,
            smem_per_sm: 96 * 1024,
            smem_per_block: 48 * 1024,
            max_acc_frags_per_warp: 16,
            launch_overhead_cycles: 4000.0,
        }),
        intrinsic_shapes: wmma_shapes(),
        vector_lengths: vec![1, 2, 4, 8],
        capacities: gpu_capacities(48 * 1024),
        in_dtype: DType::F16,
    }
}

/// NVIDIA T4 (Turing): 40 SMs, ~65 Tflops f16.
pub fn t4() -> DlaSpec {
    DlaSpec {
        name: "t4".into(),
        family: DlaFamily::Gpu(GpuParams {
            sms: 40,
            clock_ghz: 1.59,
            tensor_flops_per_cycle_sm: 1024.0,
            cuda_flops_per_cycle_sm: 64.0,
            global_bw_bytes_per_cycle: 200.0, // ~320 GB/s
            shared_bw_bytes_per_cycle_sm: 128.0,
            max_warps_per_block: 32,
            max_warps_per_sm: 32,
            smem_per_sm: 64 * 1024,
            smem_per_block: 48 * 1024,
            max_acc_frags_per_warp: 16,
            launch_overhead_cycles: 4000.0,
        }),
        intrinsic_shapes: wmma_shapes(),
        vector_lengths: vec![1, 2, 4, 8],
        capacities: gpu_capacities(48 * 1024),
        in_dtype: DType::F16,
    }
}

/// NVIDIA A100 (Ampere): 108 SMs, ~312 Tflops f16.
pub fn a100() -> DlaSpec {
    DlaSpec {
        name: "a100".into(),
        family: DlaFamily::Gpu(GpuParams {
            sms: 108,
            clock_ghz: 1.41,
            tensor_flops_per_cycle_sm: 2048.0,
            cuda_flops_per_cycle_sm: 128.0,
            global_bw_bytes_per_cycle: 1100.0, // ~1555 GB/s
            shared_bw_bytes_per_cycle_sm: 256.0,
            max_warps_per_block: 32,
            max_warps_per_sm: 64,
            smem_per_sm: 164 * 1024,
            smem_per_block: 96 * 1024,
            max_acc_frags_per_warp: 16,
            launch_overhead_cycles: 4000.0,
        }),
        intrinsic_shapes: wmma_shapes(),
        vector_lengths: vec![1, 2, 4, 8],
        capacities: gpu_capacities(96 * 1024),
        in_dtype: DType::F16,
    }
}

/// Intel Xeon Gold 6240 with DL Boost (VNNI): 18 cores, ~23 Tops i8.
pub fn dlboost() -> DlaSpec {
    DlaSpec {
        name: "dlboost".into(),
        family: DlaFamily::Cpu(CpuParams {
            cores: 18,
            clock_ghz: 2.6,
            vnni_ops_per_cycle_core: 512.0, // two 512-bit VNNI FMA ports
            // Non-VNNI fallback: fp32 AVX compute plus per-element
            // de/requantisation of the int8 operands — the reason the
            // paper measures Ansor 12x behind on this platform.
            scalar_ops_per_cycle_core: 16.0,
            l1_bytes: 32 * 1024,
            l2_bytes: 1024 * 1024,
            dram_bw_bytes_per_cycle: 50.0, // ~130 GB/s socket
            l2_bw_bytes_per_cycle_core: 64.0,
            spawn_overhead_cycles: 2000.0,
        }),
        // VNNI consumes fixed (1, 16, 4) i8 tiles (paper Table 3).
        intrinsic_shapes: vec![(1, 16, 4)],
        vector_lengths: vec![1, 2, 4, 8, 16, 32, 64],
        capacities: vec![(MemScope::L1, 32 * 1024), (MemScope::L2, 1024 * 1024)],
        in_dtype: DType::I8,
    }
}

/// TVM VTA on Xilinx PYNQ-Z2: 256 PEs, fixed (1, 16, 16) i8 GEMM unit.
pub fn vta() -> DlaSpec {
    DlaSpec {
        name: "vta".into(),
        family: DlaFamily::Vta(VtaParams {
            clock_ghz: 0.1,
            macs_per_cycle: 256.0,
            dma_bytes_per_cycle: 8.0,
            input_buf_bytes: 32 * 1024,
            weight_buf_bytes: 256 * 1024,
            acc_buf_bytes: 128 * 1024,
            min_access_cycle: 2,
            issue_overhead_cycles: 16.0,
        }),
        intrinsic_shapes: vec![(1, 16, 16)],
        vector_lengths: vec![1, 2, 4, 8, 16],
        capacities: vec![
            (MemScope::VtaInput, 32 * 1024),
            (MemScope::VtaWeight, 256 * 1024),
            (MemScope::VtaAcc, 128 * 1024),
        ],
        in_dtype: DType::I8,
    }
}

/// Google TPU-style spec (Table 3 reference row; not a measured platform in
/// the paper's evaluation, included for the constraint census).
pub fn tpu() -> DlaSpec {
    DlaSpec {
        name: "tpu".into(),
        family: DlaFamily::Vta(VtaParams {
            clock_ghz: 0.7,
            macs_per_cycle: 65536.0,
            dma_bytes_per_cycle: 256.0,
            input_buf_bytes: 4 * 1024 * 1024,
            weight_buf_bytes: 16 * 1024 * 1024,
            acc_buf_bytes: 4 * 1024 * 1024,
            min_access_cycle: 1,
            issue_overhead_cycles: 64.0,
        }),
        intrinsic_shapes: vec![(1, 256, 256)],
        vector_lengths: vec![1, 2, 4, 8, 16, 32],
        capacities: vec![
            (MemScope::VtaInput, 4 * 1024 * 1024),
            (MemScope::VtaWeight, 16 * 1024 * 1024),
            (MemScope::VtaAcc, 4 * 1024 * 1024),
        ],
        in_dtype: DType::I8,
    }
}

/// Cambricon-style spec (Table 3 reference row).
pub fn cambricon() -> DlaSpec {
    DlaSpec {
        name: "cambricon".into(),
        family: DlaFamily::Vta(VtaParams {
            clock_ghz: 1.0,
            macs_per_cycle: 4096.0,
            dma_bytes_per_cycle: 128.0,
            input_buf_bytes: 768 * 1024,
            weight_buf_bytes: 768 * 1024,
            acc_buf_bytes: 64 * 1024,
            min_access_cycle: 1,
            issue_overhead_cycles: 32.0,
        }),
        // Flexible functional units: many legal shapes.
        intrinsic_shapes: vec![
            (1, 32, 32),
            (1, 32, 64),
            (1, 64, 32),
            (1, 64, 64),
            (2, 32, 32),
            (4, 32, 32),
        ],
        vector_lengths: vec![1, 2, 4, 8, 16, 32, 64],
        capacities: vec![
            (MemScope::VtaInput, 768 * 1024),
            (MemScope::VtaWeight, 768 * 1024),
            (MemScope::VtaAcc, 64 * 1024),
        ],
        in_dtype: DType::I8,
    }
}

/// All platform constructors with their names, for the census binaries.
pub fn all() -> Vec<DlaSpec> {
    vec![v100(), t4(), a100(), dlboost(), vta(), tpu(), cambricon()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wmma_shape_count() {
        // Exactly (8,16,32) permutations plus (16,16,16): 3! + 1 = 7.
        assert_eq!(wmma_shapes().len(), 7);
    }

    #[test]
    fn all_platforms_have_distinct_names() {
        let specs = all();
        let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), specs.len());
    }

    #[test]
    fn vta_buffers_match_paper() {
        let s = vta();
        assert_eq!(s.capacity(MemScope::VtaInput), Some(32 * 1024));
        assert_eq!(s.capacity(MemScope::VtaWeight), Some(256 * 1024));
        assert_eq!(s.capacity(MemScope::VtaAcc), Some(128 * 1024));
    }

    #[test]
    fn dlboost_intrinsic_is_1_16_4() {
        assert_eq!(dlboost().intrinsic_shapes, vec![(1, 16, 4)]);
    }

    #[test]
    fn a100_is_faster_than_t4() {
        assert!(a100().peak_ops_per_sec() > 3.0 * t4().peak_ops_per_sec());
    }
}
