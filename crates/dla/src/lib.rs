//! DLA architecture specifications and the analytic DLA measurer.
//!
//! The paper evaluates on real silicon (NVIDIA V100/T4/A100 TensorCore,
//! Intel DL Boost, TVM VTA). This crate substitutes a parameterised
//! performance model: every architectural limit the paper lists in Table 3
//! (intrinsic shapes, scratchpad capacities, vector widths, access-cycle
//! rules) is encoded in a [`spec::DlaSpec`], and [`sim::Measurer`] evaluates
//! a lowered [`heron_sched::Kernel`] against that spec.
//!
//! Two properties matter for reproducing the paper:
//!
//! * **Validity** — a kernel violating any architectural limit fails to
//!   "compile/run" ([`sim::MeasureError`]), exactly like TVM on the real
//!   device. Unconstrained tuners therefore waste most of their trials.
//! * **Irregularity** — latency depends sharply on tile shape: bank
//!   conflicts, occupancy cliffs, vector-width efficiency and wave
//!   quantisation produce the jagged space of the paper's Figure 11.

//! # Example
//!
//! ```
//! use heron_dla::{v100, Measurer};
//!
//! let spec = v100();
//! assert!(spec.allows_intrinsic(16, 16, 16));
//! assert_eq!(spec.capacity(heron_sched::MemScope::Shared), Some(48 * 1024));
//! let measurer = Measurer::new(spec);
//! // `measurer.measure(&kernel)` validates the kernel against every
//! // architectural constraint and returns its simulated latency.
//! # let _ = measurer;
//! ```

pub mod fault;
pub mod platforms;
pub mod sim;
pub mod spec;

pub use fault::{FaultConfig, FaultDraw, FaultKind, FaultPlan, FaultyMeasurer};
pub use platforms::{a100, cambricon, dlboost, t4, tpu, v100, vta};
pub use sim::energy::{EnergyEstimate, EnergyParams};
pub use sim::{Analysis, Bound, ErrorClass, LaunchViolation, MeasureError, Measurement, Measurer};
pub use spec::{CpuParams, DlaFamily, DlaSpec, GpuParams, VtaParams};
