//! Integration tests of the measurer's error taxonomy: every
//! [`MeasureError`] variant is exercised on the platform whose
//! architectural rule raises it, and every variant carries the correct
//! transient/deterministic class and accounting tag.

use heron_dla::{dlboost, v100, vta, ErrorClass, LaunchViolation, MeasureError, Measurer};
use heron_sched::{Kernel, KernelBuffer, KernelStage, MemScope, StageRole};
use heron_tensor::DType;

fn stage(role: StageRole, src: MemScope, dst: MemScope, dtype: DType) -> KernelStage {
    KernelStage {
        name: "s".into(),
        role,
        src_scope: src,
        dst_scope: dst,
        dtype,
        elems: 4096,
        execs: 8,
        vector: 4,
        align_pad: 0,
        row_elems: 64,
        intrinsic: None,
        intrinsic_execs: 0,
        scalar_ops: 0,
        unroll: 0,
    }
}

/// A small, valid TensorCore kernel for V100.
fn gpu_kernel() -> Kernel {
    let mut comp = stage(
        StageRole::Compute,
        MemScope::FragA,
        MemScope::FragAcc,
        DType::F16,
    );
    comp.intrinsic = Some((16, 16, 16));
    comp.intrinsic_execs = 1024;
    Kernel {
        dla: "v100".into(),
        workload: "errors".into(),
        total_flops: 1 << 30,
        grid: 80,
        threads: 8,
        stages: vec![
            stage(
                StageRole::Load,
                MemScope::Global,
                MemScope::Shared,
                DType::F16,
            ),
            comp,
            stage(
                StageRole::Store,
                MemScope::FragAcc,
                MemScope::Global,
                DType::F16,
            ),
        ],
        buffers: vec![KernelBuffer {
            name: "A.shared".into(),
            scope: MemScope::Shared,
            bytes: 16 * 1024,
        }],
        fingerprint: 901,
    }
}

/// A small, valid VNNI kernel for DL Boost.
fn cpu_kernel() -> Kernel {
    let mut comp = stage(StageRole::Compute, MemScope::L1, MemScope::L1, DType::I8);
    comp.intrinsic = Some((1, 16, 4));
    comp.intrinsic_execs = 65536;
    Kernel {
        dla: "dlboost".into(),
        workload: "errors".into(),
        total_flops: 1 << 26,
        grid: 18,
        threads: 1,
        stages: vec![
            stage(StageRole::Load, MemScope::Global, MemScope::L2, DType::I8),
            comp,
        ],
        buffers: vec![KernelBuffer {
            name: "pack".into(),
            scope: MemScope::L2,
            bytes: 256 * 1024,
        }],
        fingerprint: 902,
    }
}

/// A small, valid GEMM-core kernel for VTA.
fn vta_kernel() -> Kernel {
    let mut comp = stage(
        StageRole::Compute,
        MemScope::VtaInput,
        MemScope::VtaAcc,
        DType::I8,
    );
    comp.intrinsic = Some((1, 16, 16));
    comp.intrinsic_execs = 4096;
    comp.row_elems = 16;
    Kernel {
        dla: "vta".into(),
        workload: "errors".into(),
        total_flops: 1 << 24,
        grid: 1,
        threads: 1,
        stages: vec![
            stage(
                StageRole::Load,
                MemScope::Global,
                MemScope::VtaInput,
                DType::I8,
            ),
            comp,
            stage(
                StageRole::Store,
                MemScope::VtaAcc,
                MemScope::Global,
                DType::I8,
            ),
        ],
        buffers: vec![
            KernelBuffer {
                name: "inp".into(),
                scope: MemScope::VtaInput,
                bytes: 8 * 1024,
            },
            KernelBuffer {
                name: "acc".into(),
                scope: MemScope::VtaAcc,
                bytes: 16 * 1024,
            },
        ],
        fingerprint: 903,
    }
}

#[test]
fn base_kernels_are_valid_on_their_platforms() {
    assert!(Measurer::new(v100()).measure(&gpu_kernel()).is_ok());
    assert!(Measurer::new(dlboost()).measure(&cpu_kernel()).is_ok());
    assert!(Measurer::new(vta()).measure(&vta_kernel()).is_ok());
}

#[test]
fn tensorcore_capacity_exceeded() {
    let mut k = gpu_kernel();
    k.buffers[0].bytes = 48 * 1024 + 1; // V100 smem per block is 48 KiB
    let err = Measurer::new(v100())
        .measure(&k)
        .expect_err("over capacity");
    match err {
        MeasureError::CapacityExceeded { scope, used, limit } => {
            assert_eq!(scope, MemScope::Shared);
            assert_eq!(used, 48 * 1024 + 1);
            assert_eq!(limit, 48 * 1024);
        }
        other => panic!("wrong error: {other}"),
    }
    assert_eq!(err.class(), ErrorClass::Deterministic);
    assert_eq!(err.tag(), "capacity");
}

#[test]
fn tensorcore_illegal_intrinsic_shape() {
    let mut k = gpu_kernel();
    // (16, 16, 8) has m*n*k = 2048, not a legal wmma shape.
    for s in &mut k.stages {
        if s.role == StageRole::Compute {
            s.intrinsic = Some((16, 16, 8));
        }
    }
    let err = Measurer::new(v100()).measure(&k).expect_err("bad wmma");
    assert_eq!(err, MeasureError::IllegalIntrinsic { m: 16, n: 16, k: 8 });
    assert_eq!(err.tag(), "intrinsic");
    assert!(!err.is_transient());
}

#[test]
fn tensorcore_illegal_vector_width() {
    let mut k = gpu_kernel();
    k.stages[0].vector = 16; // V100 vectorises 1/2/4/8 only
    let err = Measurer::new(v100()).measure(&k).expect_err("bad vector");
    assert_eq!(err, MeasureError::IllegalVector { len: 16 });
    assert_eq!(err.tag(), "vector");
    assert_eq!(err.class(), ErrorClass::Deterministic);
}

#[test]
fn tensorcore_warp_limit_is_a_launch_error() {
    let mut k = gpu_kernel();
    k.threads = 64; // > max_warps_per_block = 32
    let err = Measurer::new(v100())
        .measure(&k)
        .expect_err("too many warps");
    assert_eq!(
        err,
        MeasureError::IllegalLaunch {
            violation: LaunchViolation::WarpLimit {
                warps: 64,
                limit: 32
            }
        }
    );
    assert_eq!(err.tag(), "launch");
    assert_eq!(err.detail_tag(), "launch.warp-limit");
    assert!(err.to_string().contains("warps"));
}

#[test]
fn empty_grid_is_a_launch_error_everywhere() {
    for (spec, mut kernel) in [
        (v100(), gpu_kernel()),
        (dlboost(), cpu_kernel()),
        (vta(), vta_kernel()),
    ] {
        kernel.grid = 0;
        let err = Measurer::new(spec.clone())
            .measure(&kernel)
            .expect_err("empty grid");
        assert!(
            matches!(err, MeasureError::IllegalLaunch { .. }),
            "{}: {err}",
            spec.name
        );
    }
}

#[test]
fn dlboost_core_oversubscription_is_a_launch_error() {
    let mut k = cpu_kernel();
    k.threads = 32; // > 18 cores
    let err = Measurer::new(dlboost())
        .measure(&k)
        .expect_err("too many threads");
    assert_eq!(
        err,
        MeasureError::IllegalLaunch {
            violation: LaunchViolation::CoreLimit {
                threads: 32,
                cores: 18
            }
        }
    );
    assert_eq!(err.detail_tag(), "launch.core-limit");
    assert!(err.to_string().contains("cores"));
}

#[test]
fn dlboost_rejects_foreign_intrinsics_and_l1_overflow() {
    // VNNI consumes fixed (1, 16, 4) tiles; a wmma shape is illegal.
    let mut k = cpu_kernel();
    for s in &mut k.stages {
        if s.role == StageRole::Compute {
            s.intrinsic = Some((16, 16, 16));
        }
    }
    let err = Measurer::new(dlboost())
        .measure(&k)
        .expect_err("wmma on cpu");
    assert_eq!(
        err,
        MeasureError::IllegalIntrinsic {
            m: 16,
            n: 16,
            k: 16
        }
    );

    let mut k = cpu_kernel();
    k.buffers.push(KernelBuffer {
        name: "tile".into(),
        scope: MemScope::L1,
        bytes: 64 * 1024, // > 32 KiB L1
    });
    let err = Measurer::new(dlboost())
        .measure(&k)
        .expect_err("L1 overflow");
    assert!(matches!(
        err,
        MeasureError::CapacityExceeded {
            scope: MemScope::L1,
            ..
        }
    ));
}

#[test]
fn vta_requires_its_gemm_intrinsic() {
    let mut k = vta_kernel();
    for s in &mut k.stages {
        s.intrinsic = None;
    }
    let err = Measurer::new(vta()).measure(&k).expect_err("no intrinsic");
    assert_eq!(err, MeasureError::MissingIntrinsic);
    assert_eq!(err.tag(), "missing-intrinsic");
    assert_eq!(err.class(), ErrorClass::Deterministic);
}

#[test]
fn vta_access_cycle_rule() {
    let mut k = vta_kernel();
    for s in &mut k.stages {
        if s.role == StageRole::Compute {
            s.row_elems = 1; // < min_access_cycle = 2
        }
    }
    let err = Measurer::new(vta()).measure(&k).expect_err("access cycle");
    assert_eq!(
        err,
        MeasureError::AccessCycleViolation {
            observed: 1,
            required: 2
        }
    );
    assert_eq!(err.tag(), "access-cycle");
}

#[test]
fn vta_sram_capacity() {
    let mut k = vta_kernel();
    k.buffers[0].bytes = 33 * 1024; // > 32 KiB input SRAM
    let err = Measurer::new(vta()).measure(&k).expect_err("SRAM overflow");
    assert!(matches!(
        err,
        MeasureError::CapacityExceeded {
            scope: MemScope::VtaInput,
            ..
        }
    ));
}

#[test]
fn transient_variants_classify_and_display() {
    // The injected (infrastructure) failures are transient; a validator
    // never produces them — they only come from a `FaultPlan`.
    let transients = [
        MeasureError::Timeout { budget_s: 4.0 },
        MeasureError::DeviceHang,
        MeasureError::RpcDropped,
        MeasureError::SpuriousFailure,
    ];
    let mut tags = Vec::new();
    for e in transients {
        assert_eq!(e.class(), ErrorClass::Transient, "{e}");
        assert!(e.is_transient());
        assert!(!e.to_string().is_empty());
        tags.push(e.tag());
    }
    assert_eq!(tags, ["timeout", "device-hang", "rpc-dropped", "spurious"]);
    assert_eq!(ErrorClass::Transient.to_string(), "transient");
    assert_eq!(ErrorClass::Deterministic.to_string(), "deterministic");
}

#[test]
fn deterministic_errors_implicate_a_constraint_rule() {
    // The audit attribution map: every deterministic error names the
    // constraint-generation rule that should have excluded the kernel;
    // transient infrastructure errors implicate nothing.
    let cases = [
        (
            MeasureError::CapacityExceeded {
                scope: MemScope::Shared,
                used: 2,
                limit: 1,
            },
            Some("C5"),
        ),
        (
            MeasureError::IllegalIntrinsic { m: 16, n: 16, k: 8 },
            Some("C3"),
        ),
        (MeasureError::IllegalVector { len: 3 }, Some("C3")),
        (
            MeasureError::IllegalLaunch {
                violation: LaunchViolation::EmptyGrid,
            },
            Some("C6"),
        ),
        (
            MeasureError::AccessCycleViolation {
                observed: 1,
                required: 2,
            },
            Some("C6"),
        ),
        (MeasureError::MissingIntrinsic, Some("C6")),
        (MeasureError::Timeout { budget_s: 1.0 }, None),
        (MeasureError::DeviceHang, None),
        (MeasureError::RpcDropped, None),
        (MeasureError::SpuriousFailure, None),
    ];
    for (err, want) in cases {
        assert_eq!(err.rule(), want, "{err}");
        assert_eq!(err.rule().is_some(), !err.is_transient(), "{err}");
    }
}

#[test]
fn launch_violations_carry_machine_readable_kinds() {
    let kinds = [
        (LaunchViolation::EmptyGrid, "empty-grid"),
        (LaunchViolation::NoThreads, "no-threads"),
        (
            LaunchViolation::WarpLimit {
                warps: 64,
                limit: 32,
            },
            "warp-limit",
        ),
        (
            LaunchViolation::RegisterBudget {
                bytes: 9000,
                budget: 8192,
            },
            "register-budget",
        ),
        (
            LaunchViolation::CoreLimit {
                threads: 32,
                cores: 18,
            },
            "core-limit",
        ),
    ];
    for (v, tag) in kinds {
        assert_eq!(v.tag(), tag);
        let err = MeasureError::IllegalLaunch { violation: v };
        assert_eq!(err.detail_tag(), format!("launch.{tag}"));
        assert!(!v.to_string().is_empty());
    }
    // Non-launch errors pass their coarse tag through unchanged.
    assert_eq!(
        MeasureError::MissingIntrinsic.detail_tag(),
        "missing-intrinsic"
    );
}
