//! Property tests of the DLA measurer: determinism, bounded jitter, and
//! monotone response to work. (heron-testkit harness; see DESIGN.md,
//! "Zero-dependency & determinism policy".)

use heron_dla::{v100, Measurer};
use heron_sched::{Kernel, KernelBuffer, KernelStage, MemScope, StageRole};
use heron_tensor::DType;
use heron_testkit::{property_cases, Gen};

fn kernel(grid: i64, warps: i64, load_elems: i64, intrin_execs: i64, fp: u64) -> Kernel {
    let load = KernelStage {
        name: "A.shared".into(),
        role: StageRole::Load,
        src_scope: MemScope::Global,
        dst_scope: MemScope::Shared,
        dtype: DType::F16,
        elems: load_elems,
        execs: 8,
        vector: 8,
        align_pad: 2,
        row_elems: 32,
        intrinsic: None,
        intrinsic_execs: 0,
        scalar_ops: 0,
        unroll: 16,
    };
    let comp = KernelStage {
        name: "C".into(),
        role: StageRole::Compute,
        src_scope: MemScope::FragA,
        dst_scope: MemScope::FragAcc,
        dtype: DType::F16,
        elems: 0,
        execs: 1,
        vector: 1,
        align_pad: 0,
        row_elems: 0,
        intrinsic: Some((16, 16, 16)),
        intrinsic_execs: intrin_execs,
        scalar_ops: 0,
        unroll: 64,
    };
    Kernel {
        dla: "v100".into(),
        workload: "prop".into(),
        total_flops: (intrin_execs * 8192 * grid).max(1) as u64,
        grid,
        threads: warps,
        stages: vec![load, comp],
        buffers: vec![KernelBuffer {
            name: "A.shared".into(),
            scope: MemScope::Shared,
            bytes: (load_elems as u64 * 2).max(256),
        }],
        fingerprint: fp,
    }
}

/// Uniform `u64` over the full range (the tape stores magnitudes, so
/// shrinking pulls fingerprints toward 0).
fn any_u64(g: &mut Gen) -> u64 {
    (g.int(i64::MIN, i64::MAX) as u64).wrapping_add(i64::MIN as u64)
}

/// Measurement is deterministic for a fixed kernel.
#[test]
fn measurement_is_deterministic() {
    property_cases("measurement_is_deterministic", 128, |g| {
        let grid = g.int(1, 512);
        let warps = g.int(1, 32);
        let elems = g.int(1, 8192);
        let execs = g.int(1, 4096);
        let fp = any_u64(g);
        let m = Measurer::new(v100());
        let k = kernel(grid, warps, elems, execs, fp);
        if let (Ok(a), Ok(b)) = (m.measure(&k), m.measure(&k)) {
            assert_eq!(a.latency_s, b.latency_s);
        }
    });
}

/// Configuration jitter stays within ±6% of the jitter-free trend:
/// two kernels differing only in fingerprint measure within 12%.
#[test]
fn jitter_is_bounded() {
    property_cases("jitter_is_bounded", 128, |g| {
        let fp1 = any_u64(g);
        let fp2 = any_u64(g);
        let m = Measurer::new(v100());
        let a = m.measure(&kernel(64, 8, 2048, 512, fp1)).expect("valid");
        let b = m.measure(&kernel(64, 8, 2048, 512, fp2)).expect("valid");
        let ratio = a.latency_s / b.latency_s;
        assert!((0.85..1.18).contains(&ratio), "jitter too large: {ratio}");
    });
}

/// More intrinsic work never makes the kernel faster.
#[test]
fn compute_is_monotone() {
    property_cases("compute_is_monotone", 128, |g| {
        let execs = g.int(1, 2048);
        let extra = g.int(1, 2048);
        let m = Measurer::new(v100());
        let small = m.measure(&kernel(64, 8, 2048, execs, 1)).expect("valid");
        let large = m
            .measure(&kernel(64, 8, 2048, execs + extra, 1))
            .expect("valid");
        assert!(large.latency_s >= small.latency_s);
    });
}

/// More transferred bytes never make the kernel faster.
#[test]
fn memory_is_monotone() {
    property_cases("memory_is_monotone", 128, |g| {
        let elems = g.int(1, 8192);
        let extra = g.int(1, 8192);
        let m = Measurer::new(v100());
        let small = m.measure(&kernel(64, 8, elems, 64, 1)).expect("valid");
        let large = m
            .measure(&kernel(64, 8, elems + extra, 64, 1))
            .expect("valid");
        assert!(large.latency_s >= small.latency_s);
    });
}

/// Validation agrees exactly with the shared-memory capacity line.
#[test]
fn capacity_boundary_is_exact() {
    property_cases("capacity_boundary_is_exact", 128, |g| {
        let kb = g.int(1, 96) as u64;
        let m = Measurer::new(v100());
        let mut k = kernel(16, 8, 64, 64, 0);
        k.buffers[0].bytes = kb * 1024;
        let ok = m.validate(&k).is_ok();
        assert_eq!(ok, kb * 1024 <= 48 * 1024);
    });
}

/// Throughput = flops / latency by definition.
#[test]
fn gflops_consistent() {
    property_cases("gflops_consistent", 128, |g| {
        let execs = g.int(1, 1024);
        let m = Measurer::new(v100());
        let k = kernel(64, 8, 1024, execs, 3);
        let meas = m.measure(&k).expect("valid");
        let expect = k.total_flops as f64 / meas.latency_s / 1e9;
        assert!((meas.gflops - expect).abs() < 1e-6 * expect.max(1.0));
    });
}
