//! Adversarial CSP corpus — generators for pathological constraint
//! problems (DESIGN.md §6, "Solver-side failure & repair").
//!
//! The hardened solver contract says `rand_sat` must *classify* every
//! failure (`root-infeasible`, `budget-exhausted`, `deadline-exceeded`)
//! instead of silently returning an empty solution set, and the CGA
//! repair loop must keep valid-by-construction sampling alive on
//! over-constrained spaces. Those guarantees only bite on nasty inputs,
//! so this module generates three adversarial families on demand:
//!
//! * [`unsat_csp`] — *provably* root-infeasible problems (a clash of two
//!   disjoint `IN` sets on one variable, buried among benign
//!   constraints). The solver must report `RootInfeasible`; the
//!   diagnoser must name a removal set.
//! * [`single_solution_csp`] — problems squeezed down to exactly one
//!   solution by singleton `IN` pins. The solver must *find* it — a
//!   needle-in-a-haystack check on restart/escalation behaviour.
//! * [`knife_edge_csp`] — barely-satisfiable product constraints
//!   (`f0·…·fk == N` over divisor domains) where almost every random
//!   assignment wipes out. Exercises budget escalation and deadline
//!   classification without ever being UNSAT.
//!
//! All generators draw exclusively from the harness [`Gen`], so corpus
//! problems shrink and replay like any other property input.

use crate::Gen;
use heron_csp::{Csp, Domain, Solution, VarCategory, VarRef};

/// A random benign base problem: `n_vars` multi-value tunables plus a
/// sprinkling of `LE` chains so propagation has real work to do.
///
/// Every domain has at least two values, and the `LE` chain is posted
/// between *adjacent* variables only, so the base problem is always
/// satisfiable (take each domain's minimum… maximum ordering argument:
/// assigning every variable its domain minimum cannot violate
/// `v_i <= v_{i+1}` in general, so we instead order by sorted domain
/// minima — see the constructor body).
pub fn base_csp(g: &mut Gen, n_vars: usize) -> Csp {
    let n_vars = n_vars.max(2);
    let mut csp = Csp::new();
    let mut vars: Vec<VarRef> = Vec::with_capacity(n_vars);
    for i in 0..n_vars {
        // 2..=4 distinct values in 0..=9.
        let lo = g.int(0, 5);
        let width = g.int(1, 3);
        let dom = Domain::range(lo, lo + width);
        vars.push(csp.add_var(format!("t{i}"), dom, VarCategory::Tunable));
    }
    // A few benign LE edges from a lower-min domain to a higher-max
    // domain; such an edge always admits at least one satisfying pair.
    let edges = g.index(0, n_vars);
    for _ in 0..edges {
        let a = vars[g.index(0, n_vars)];
        let b = vars[g.index(0, n_vars)];
        if a == b {
            continue;
        }
        let (lo_side, hi_side) = if csp.var(a).domain.min() <= csp.var(b).domain.min() {
            (a, b)
        } else {
            (b, a)
        };
        if csp.var(lo_side).domain.min() <= csp.var(hi_side).domain.max() {
            csp.post_le(lo_side, hi_side);
        }
    }
    csp
}

/// A provably root-infeasible problem: [`base_csp`] plus two disjoint
/// singleton `IN` constraints on one multi-value tunable.
///
/// Propagation alone wipes out the clashing variable's domain, so the
/// solver must classify the root as `RootInfeasible` (never return a
/// silent empty `Sat`), and `diagnose_root_conflict` must produce a
/// removal set that restores feasibility.
pub fn unsat_csp(g: &mut Gen) -> Csp {
    let n_vars = g.index(2, 6);
    let mut csp = base_csp(g, n_vars);
    let tunables = csp.tunables();
    let victims: Vec<VarRef> = tunables
        .iter()
        .copied()
        .filter(|&v| csp.var(v).domain.size() >= 2)
        .collect();
    let v = victims[g.index(0, victims.len())];
    let values: Vec<i64> = csp.var(v).domain.iter_values().collect();
    let a = g.index(0, values.len());
    let mut b = g.index(0, values.len());
    if b == a {
        b = (a + 1) % values.len();
    }
    csp.post_in(v, [values[a]]);
    csp.post_in(v, [values[b]]);
    csp
}

/// A problem with **exactly one** solution: every tunable of a
/// [`base_csp`] is pinned to a per-variable value drawn from its domain
/// (re-drawn until the pinned assignment satisfies the benign `LE`
/// edges, which is guaranteed to terminate because the base problem is
/// satisfiable and domains are tiny).
///
/// Returns the problem and its unique expected [`Solution`].
pub fn single_solution_csp(g: &mut Gen) -> (Csp, Solution) {
    let n_vars = g.index(2, 6);
    let mut csp = base_csp(g, n_vars);
    let tunables = csp.tunables();
    // Draw assignments until one satisfies every posted LE edge.
    // Domains are <= 4 values and edges are benign, so the loop is
    // short; bound it anyway and fall back to domain minima sorted by
    // construction (assign lo side its min, hi side its max).
    let mut values: Vec<i64> = Vec::new();
    'search: for _attempt in 0..64 {
        let candidate: Vec<i64> = tunables
            .iter()
            .map(|&v| {
                let dom: Vec<i64> = csp.var(v).domain.iter_values().collect();
                dom[g.index(0, dom.len())]
            })
            .collect();
        let env = |r: VarRef| candidate[r.0];
        if csp.constraints().iter().all(|c| c.check(&env)) {
            values = candidate;
            break 'search;
        }
    }
    if values.is_empty() {
        // Deterministic fallback: everything at its domain minimum with
        // LE edges repaired by raising the hi side to its max.
        values = tunables.iter().map(|&v| csp.var(v).domain.min()).collect();
        for c in csp.constraints().to_vec() {
            if let heron_csp::Constraint::Le(a, b) = c {
                values[b.0] = values[b.0].max(values[a.0]).min(csp.var(b).domain.max());
            }
        }
    }
    for (&v, &val) in tunables.iter().zip(values.iter()) {
        csp.post_in(v, [val]);
    }
    (csp, Solution::new(values))
}

/// A barely-satisfiable "knife-edge" problem: `k` tunable factors over
/// divisor domains whose product must equal a fixed composite `N`.
///
/// Always satisfiable (`N · 1 · … · 1` works) but random assignment
/// almost always violates the product, so restart pressure is high —
/// exactly the regime where budget escalation and step deadlines earn
/// their keep.
pub fn knife_edge_csp(g: &mut Gen) -> Csp {
    const COMPOSITES: [i64; 5] = [12, 36, 64, 90, 128];
    let n = COMPOSITES[g.index(0, COMPOSITES.len())];
    let k = g.index(2, 4); // 2..=3 factors
    let mut csp = Csp::new();
    let out = csp.add_const("N", n);
    let factors: Vec<VarRef> = (0..k)
        .map(|i| {
            csp.add_var(
                format!("f{i}"),
                Domain::divisors_of(n),
                VarCategory::Tunable,
            )
        })
        .collect();
    csp.post_prod(out, factors);
    csp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::property_cases;
    use heron_csp::VarRef;

    #[test]
    fn unsat_csp_has_no_solutions_by_brute_force() {
        property_cases("corpus_unsat_brute_force", 32, |g| {
            let csp = unsat_csp(g);
            assert!(!has_any_solution(&csp), "clash must kill every assignment");
        });
    }

    #[test]
    fn single_solution_csp_expected_solution_checks_out() {
        property_cases("corpus_single_solution_valid", 32, |g| {
            let (csp, sol) = single_solution_csp(g);
            let env = |r: VarRef| sol.value(r);
            assert!(
                csp.constraints().iter().all(|c| c.check(&env)),
                "pinned solution must satisfy the pinned problem"
            );
        });
    }

    #[test]
    fn knife_edge_csp_is_satisfiable() {
        property_cases("corpus_knife_edge_sat", 32, |g| {
            let csp = knife_edge_csp(g);
            assert!(has_any_solution(&csp), "knife-edge spaces stay satisfiable");
        });
    }

    /// Exhaustive satisfiability oracle for tiny problems.
    fn has_any_solution(csp: &Csp) -> bool {
        let doms: Vec<Vec<i64>> = (0..csp.num_vars())
            .map(|i| csp.var(VarRef(i)).domain.iter_values().collect())
            .collect();
        let mut current = vec![0i64; doms.len()];
        fn rec(csp: &Csp, doms: &[Vec<i64>], idx: usize, current: &mut Vec<i64>) -> bool {
            if idx == doms.len() {
                let env = |r: VarRef| current[r.0];
                return csp.constraints().iter().all(|c| c.check(&env));
            }
            for &v in &doms[idx] {
                current[idx] = v;
                if rec(csp, doms, idx + 1, current) {
                    return true;
                }
            }
            false
        }
        rec(csp, &doms, 0, &mut current)
    }
}
