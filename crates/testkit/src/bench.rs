//! Micro-benchmark timer replacing `criterion` for the workspace's
//! `harness = false` benches.
//!
//! Deliberately small: wall-clock warmup, N timed iterations, order
//! statistics (min / median / p95 / mean / max), TSV output in the
//! same title-line + header-row shape as the committed `results/*.tsv`
//! artifacts. Configure via `HERON_BENCH_WARMUP`, `HERON_BENCH_ITERS`,
//! and write a TSV copy with `HERON_BENCH_TSV=<path>`.

pub use std::hint::black_box;
use std::io::Write as _;
use std::time::Instant;

/// Warmup / iteration counts for a bench run.
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    pub warmup: u32,
    pub iters: u32,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            warmup: 3,
            iters: 15,
        }
    }
}

impl BenchConfig {
    /// Defaults overridden by `HERON_BENCH_WARMUP` / `HERON_BENCH_ITERS`.
    pub fn from_env() -> Self {
        let mut cfg = BenchConfig::default();
        if let Some(w) = env_u32("HERON_BENCH_WARMUP") {
            cfg.warmup = w;
        }
        if let Some(n) = env_u32("HERON_BENCH_ITERS") {
            cfg.iters = n.max(1);
        }
        cfg
    }
}

fn env_u32(key: &str) -> Option<u32> {
    std::env::var(key).ok()?.trim().parse().ok()
}

/// Timing summary for one benchmark, in nanoseconds.
#[derive(Clone, Debug)]
pub struct Sample {
    pub name: String,
    pub iters: u32,
    pub min_ns: u128,
    pub median_ns: u128,
    pub p95_ns: u128,
    pub mean_ns: u128,
    pub max_ns: u128,
}

impl Sample {
    fn from_times(name: &str, mut times: Vec<u128>) -> Sample {
        times.sort_unstable();
        let n = times.len();
        assert!(n > 0);
        let pct = |p: f64| -> u128 {
            // Nearest-rank percentile on the sorted sample.
            let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
            times[rank - 1]
        };
        Sample {
            name: name.to_string(),
            iters: n as u32,
            min_ns: times[0],
            median_ns: pct(0.50),
            p95_ns: pct(0.95),
            mean_ns: times.iter().sum::<u128>() / n as u128,
            max_ns: times[n - 1],
        }
    }
}

/// A bench suite: times closures, accumulates samples, emits TSV.
pub struct Harness {
    suite: String,
    cfg: BenchConfig,
    samples: Vec<Sample>,
}

impl Harness {
    pub fn new(suite: &str) -> Harness {
        Harness {
            suite: suite.to_string(),
            cfg: BenchConfig::from_env(),
            samples: Vec::new(),
        }
    }

    pub fn with_config(suite: &str, cfg: BenchConfig) -> Harness {
        Harness {
            suite: suite.to_string(),
            cfg,
            samples: Vec::new(),
        }
    }

    /// Run `f` warmup + iters times, recording wall-clock times. The
    /// closure's return value is passed through [`black_box`] so the
    /// optimiser cannot delete the work.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> &Sample {
        for _ in 0..self.cfg.warmup {
            black_box(f());
        }
        let mut times = Vec::with_capacity(self.cfg.iters as usize);
        for _ in 0..self.cfg.iters {
            let t0 = Instant::now();
            black_box(f());
            times.push(t0.elapsed().as_nanos());
        }
        let sample = Sample::from_times(name, times);
        eprintln!(
            "  {:<40} median {:>12}  p95 {:>12}  ({} iters)",
            sample.name,
            fmt_ns(sample.median_ns),
            fmt_ns(sample.p95_ns),
            sample.iters
        );
        self.samples.push(sample);
        self.samples.last().expect("just pushed")
    }

    /// TSV rendering: title line, header row, one row per bench —
    /// the same shape as the committed `results/*.tsv` artifacts.
    pub fn to_tsv(&self) -> String {
        let mut out = format!(
            "Micro-bench: {} (warmup={}, iters={})\n",
            self.suite, self.cfg.warmup, self.cfg.iters
        );
        out.push_str("bench\titers\tmin_ns\tmedian_ns\tp95_ns\tmean_ns\tmax_ns\n");
        for s in &self.samples {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                s.name, s.iters, s.min_ns, s.median_ns, s.p95_ns, s.mean_ns, s.max_ns
            ));
        }
        out
    }

    /// Print the TSV to stdout and, when `HERON_BENCH_TSV` is set,
    /// also write it to that path.
    pub fn finish(self) {
        let tsv = self.to_tsv();
        print!("{tsv}");
        if let Ok(path) = std::env::var("HERON_BENCH_TSV") {
            match std::fs::File::create(&path) {
                Ok(mut f) => {
                    let _ = f.write_all(tsv.as_bytes());
                    eprintln!("[heron-testkit] wrote {path}");
                }
                Err(e) => eprintln!("[heron-testkit] cannot write {path}: {e}"),
            }
        }
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_statistics_are_order_stats() {
        let s = Sample::from_times("t", vec![50, 10, 40, 20, 30]);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.median_ns, 30);
        assert_eq!(s.p95_ns, 50);
        assert_eq!(s.mean_ns, 30);
        assert_eq!(s.max_ns, 50);
        assert_eq!(s.iters, 5);
    }

    #[test]
    fn harness_runs_and_renders_tsv() {
        let mut h = Harness::with_config(
            "unit",
            BenchConfig {
                warmup: 1,
                iters: 4,
            },
        );
        let mut acc = 0u64;
        h.bench("sum", || {
            acc = (0..100u64).sum();
            acc
        });
        let tsv = h.to_tsv();
        let mut lines = tsv.lines();
        assert!(lines.next().unwrap().starts_with("Micro-bench: unit"));
        assert_eq!(
            lines.next().unwrap(),
            "bench\titers\tmin_ns\tmedian_ns\tp95_ns\tmean_ns\tmax_ns"
        );
        let row = lines.next().unwrap();
        assert!(row.starts_with("sum\t4\t"), "row: {row}");
        assert_eq!(row.split('\t').count(), 7);
    }

    #[test]
    fn percentile_single_sample() {
        let s = Sample::from_times("one", vec![42]);
        assert_eq!(s.median_ns, 42);
        assert_eq!(s.p95_ns, 42);
    }
}
