//! Tape shrinking: given a failing decision tape, find a smaller tape
//! that still fails.
//!
//! Two moves, iterated to a fixpoint (bounded by a replay budget):
//!
//! 1. **Truncation** — binary-search the shortest failing prefix
//!    (dropped positions replay as 0, the minimal decision).
//! 2. **Pointwise minimisation** — for each position, binary-search
//!    the smallest replacement magnitude in `[0, current]` that still
//!    fails.
//!
//! Both moves only ever *lower* tape entries or *shorten* the tape, so
//! the procedure terminates; with the clamping semantics of
//! [`crate::Gen::choice`], every candidate tape is a valid input.

/// Outcome of one shrink run.
pub struct Shrunk {
    pub tape: Vec<u64>,
    /// Total number of replays spent shrinking.
    pub replays: usize,
}

/// Shrink `tape` against `fails` (returns `true` while the property
/// still fails). `budget` caps the number of replays.
pub fn shrink(tape: Vec<u64>, mut fails: impl FnMut(&[u64]) -> bool, budget: usize) -> Shrunk {
    let mut best = tape;
    let mut spent = 0usize;
    let mut try_tape = |cand: &[u64], spent: &mut usize| -> bool {
        if *spent >= budget {
            return false;
        }
        *spent += 1;
        fails(cand)
    };

    // Phase 1: shortest failing prefix, by binary search on length.
    // Invariant: prefix of length `hi` fails; test midpoints downward.
    let mut lo = 0usize;
    let mut hi = best.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2; // candidate length < hi
        if try_tape(&best[..mid], &mut spent) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    best.truncate(hi);

    // Phase 2: pointwise binary-search minimisation, repeated until a
    // whole pass makes no progress (or the budget runs out).
    loop {
        let mut progressed = false;
        for i in 0..best.len() {
            if best[i] == 0 {
                continue;
            }
            // Try the floor first — often succeeds and ends the search.
            let mut cand = best.clone();
            cand[i] = 0;
            if try_tape(&cand, &mut spent) {
                best = cand;
                progressed = true;
                continue;
            }
            // Binary search the smallest failing value in (0, best[i]].
            let (mut lo, mut hi) = (1u64, best[i]);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                let mut cand = best.clone();
                cand[i] = mid;
                if try_tape(&cand, &mut spent) {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            if hi < best[i] {
                best[i] = hi;
                progressed = true;
            }
        }
        if !progressed || spent >= budget {
            break;
        }
    }

    // Drop trailing zeros: they replay identically to an absent tail.
    while best.last() == Some(&0) {
        best.pop();
    }
    Shrunk {
        tape: best,
        replays: spent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_single_value_to_boundary() {
        // Fails iff entry 0 >= 17: minimal failing tape is [17].
        let s = shrink(
            vec![9000],
            |t| t.first().copied().unwrap_or(0) >= 17,
            10_000,
        );
        assert_eq!(s.tape, vec![17]);
    }

    #[test]
    fn truncates_irrelevant_tail() {
        // Only the first entry matters.
        let s = shrink(
            vec![40, 1, 2, 3, 4, 5, 6],
            |t| t.first().copied().unwrap_or(0) >= 3,
            10_000,
        );
        assert_eq!(s.tape, vec![3]);
    }

    #[test]
    fn shrinks_pairs_independently() {
        // Fails iff t0 >= 5 && t1 >= 8.
        let s = shrink(
            vec![100, 200],
            |t| t.first().copied().unwrap_or(0) >= 5 && t.get(1).copied().unwrap_or(0) >= 8,
            10_000,
        );
        assert_eq!(s.tape, vec![5, 8]);
    }

    #[test]
    fn always_failing_shrinks_to_empty() {
        let s = shrink(vec![3, 1, 4, 1, 5], |_| true, 10_000);
        assert!(s.tape.is_empty());
    }

    #[test]
    fn budget_bounds_replays() {
        let s = shrink(vec![u64::MAX; 32], |_| true, 7);
        assert!(s.replays <= 7);
    }
}
