//! # heron-testkit — in-repo property testing and micro-benchmarks
//!
//! Replaces `proptest` (7 property suites) and `criterion` (5 benches)
//! so the workspace builds and tests with **zero registry
//! dependencies** (see DESIGN.md, "Zero-dependency & determinism
//! policy").
//!
//! ## Property testing
//!
//! A property is a closure over a [`Gen`]; ordinary `assert!`s express
//! the invariant:
//!
//! ```
//! use heron_testkit::property;
//!
//! property("addition_commutes", |g| {
//!     let a = g.int(-1000, 1000);
//!     let b = g.int(-1000, 1000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```
//!
//! - **Deterministic**: cases derive from a fixed root seed
//!   (override: `HERON_PROPTEST_SEED`), so CI and laptops see the same
//!   cases. Case count defaults to 64 (`HERON_PROPTEST_CASES`, or
//!   [`Config::with_cases`] per test).
//! - **Shrinking**: every decision a property draws is recorded on a
//!   `u64` tape; on failure the tape is binary-search-minimised (see
//!   [`shrink`]) and the property re-panics on the smallest failing
//!   case.
//! - **Replay**: failures print the case seed; run with
//!   `HERON_PROPTEST_REPLAY=<seed>` to re-execute exactly that case
//!   under a debugger, without the harness catching the panic.
//!
//! ## Micro-benchmarks
//!
//! [`bench::Harness`] gives `harness = false` benches a warmup + N
//! timed iterations, median/p95 reporting, and TSV output shaped like
//! the committed `results/*.tsv` files.

pub mod bench;
pub mod csp_corpus;
pub mod csp_reference;
mod gen;
pub mod rule_mutation;
pub mod shrink;

pub use gen::Gen;

use std::panic::{self, AssertUnwindSafe};
use std::sync::Mutex;

/// Root seed used when `HERON_PROPTEST_SEED` is unset. Arbitrary but
/// fixed: property cases are part of the repository's deterministic
/// surface.
pub const DEFAULT_SEED: u64 = 0x4845_524F_4E31; // "HERON1"

/// Default number of cases per property.
pub const DEFAULT_CASES: u32 = 64;

/// Default shrink budget (replays of the property while minimising).
pub const DEFAULT_SHRINK_BUDGET: usize = 2_048;

/// Harness configuration for one property.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    pub cases: u32,
    pub seed: u64,
    pub shrink_budget: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: DEFAULT_CASES,
            seed: DEFAULT_SEED,
            shrink_budget: DEFAULT_SHRINK_BUDGET,
        }
    }
}

impl Config {
    /// Defaults, overridden by `HERON_PROPTEST_CASES` /
    /// `HERON_PROPTEST_SEED` (decimal or `0x…` hex).
    pub fn from_env() -> Self {
        let mut cfg = Config::default();
        if let Ok(v) = std::env::var("HERON_PROPTEST_CASES") {
            if let Ok(n) = v.trim().parse::<u32>() {
                cfg.cases = n.max(1);
            }
        }
        if let Some(s) = env_u64("HERON_PROPTEST_SEED") {
            cfg.seed = s;
        }
        cfg
    }

    /// `from_env`, but with a test-specific base case count (the env
    /// var still wins so CI can globally dial effort up or down).
    pub fn with_cases(cases: u32) -> Self {
        let mut cfg = Config {
            cases,
            ..Config::default()
        };
        if let Ok(v) = std::env::var("HERON_PROPTEST_CASES") {
            if let Ok(n) = v.trim().parse::<u32>() {
                cfg.cases = n.max(1);
            }
        }
        if let Some(s) = env_u64("HERON_PROPTEST_SEED") {
            cfg.seed = s;
        }
        cfg
    }

    /// Run `f` against `cases` generated inputs; shrink and re-panic
    /// on the first failure.
    pub fn run(&self, name: &str, f: impl Fn(&mut Gen)) {
        // Replay mode: run exactly one case, uncaught, for debugging.
        if let Some(replay_seed) = env_u64("HERON_PROPTEST_REPLAY") {
            eprintln!("[heron-testkit] {name}: replaying case seed {replay_seed:#x}");
            let mut g = Gen::new(replay_seed);
            f(&mut g);
            return;
        }

        for case in 0..self.cases {
            // Per-case seed: an independent stream forked from the
            // root seed, so inserting/removing one property does not
            // reshuffle every other property's cases.
            let case_seed = heron_rng::HeronRng::from_seed(self.seed ^ name_hash(name))
                .fork(case as u64)
                .seed();
            let mut g = Gen::new(case_seed);
            if let Some(payload) = run_caught(&f, &mut g) {
                self.fail(name, case, case_seed, g.tape().to_vec(), payload, &f);
                unreachable!("fail() panics");
            }
        }
    }

    /// Shrink the failing tape, then panic with a replayable report.
    fn fail(
        &self,
        name: &str,
        case: u32,
        case_seed: u64,
        tape: Vec<u64>,
        first_payload: String,
        f: &impl Fn(&mut Gen),
    ) {
        let shrunk = shrink::shrink(
            tape,
            |cand| {
                let mut g = Gen::replay(case_seed, cand.to_vec());
                run_caught(f, &mut g).is_some()
            },
            self.shrink_budget,
        );
        // Re-run the minimal case to harvest its panic message.
        let mut g = Gen::replay(case_seed, shrunk.tape.clone());
        let payload = run_caught(f, &mut g).unwrap_or(first_payload);
        panic!(
            "[heron-testkit] property '{name}' failed at case {case}/{cases} \
             (case seed {case_seed:#x}).\n\
             minimal failing tape after {replays} shrink replays: {tape:?}\n\
             assertion: {payload}\n\
             replay exactly this case with:\n    \
             HERON_PROPTEST_REPLAY={case_seed:#x} cargo test {name}",
            cases = self.cases,
            replays = shrunk.replays,
            tape = shrunk.tape,
        );
    }
}

/// Run one property with defaults (64 cases or `HERON_PROPTEST_CASES`).
pub fn property(name: &str, f: impl Fn(&mut Gen)) {
    Config::from_env().run(name, f);
}

/// Run one property with an explicit base case count.
pub fn property_cases(name: &str, cases: u32, f: impl Fn(&mut Gen)) {
    Config::with_cases(cases).run(name, f);
}

/// Execute the property once, catching panics. Returns the panic
/// message on failure. The default panic hook is silenced for the
/// duration so generation and shrink replays don't spam stderr; a
/// process-wide mutex keeps concurrent properties from fighting over
/// the hook.
fn run_caught(f: &impl Fn(&mut Gen), g: &mut Gen) -> Option<String> {
    static HOOK_GUARD: Mutex<()> = Mutex::new(());
    let _lock = HOOK_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    let prev = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let result = panic::catch_unwind(AssertUnwindSafe(|| f(g)));
    panic::set_hook(prev);
    match result {
        Ok(()) => None,
        Err(payload) => Some(payload_to_string(&*payload)),
    }
}

fn payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn env_u64(key: &str) -> Option<u64> {
    let v = std::env::var(key).ok()?;
    let v = v.trim();
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

/// FNV-1a over the property name: decorrelates case streams of
/// different properties sharing one root seed.
fn name_hash(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn passing_property_runs_all_cases() {
        let count = AtomicU32::new(0);
        Config {
            cases: 10,
            ..Config::default()
        }
        .run("always_passes", |g| {
            let _ = g.int(0, 100);
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn failing_property_panics_with_replay_line() {
        let result = std::panic::catch_unwind(|| {
            Config {
                cases: 50,
                ..Config::default()
            }
            .run("finds_big_ints", |g| {
                let v = g.int(0, 1000);
                assert!(v < 500, "got {v}");
            });
        });
        let msg = match result {
            Err(p) => payload_to_string(&*p),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(msg.contains("finds_big_ints"), "{msg}");
        assert!(msg.contains("HERON_PROPTEST_REPLAY="), "{msg}");
        // Shrinking must reach the boundary: minimal tape is [500].
        assert!(msg.contains("[500]"), "shrink did not minimise: {msg}");
        assert!(
            msg.contains("got 500"),
            "minimal case message missing: {msg}"
        );
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let collect = || {
            let mut seen = Vec::new();
            Config {
                cases: 5,
                ..Config::default()
            }
            .run("det", |g| {
                // Interior mutability not needed: capture via raw ptr
                // is overkill — use the tape instead.
                let _ = g.int(0, 1_000_000);
            });
            // Re-derive the case seeds directly.
            for case in 0..5u64 {
                seen.push(
                    heron_rng::HeronRng::from_seed(DEFAULT_SEED ^ super::name_hash("det"))
                        .fork(case)
                        .seed(),
                );
            }
            seen
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn vec_shrinking_reaches_minimal_witness() {
        // Property: no vector of 1..=20 elements sums to >= 30.
        // Minimal witness: a single element of exactly 30... but
        // elements are capped at 20, so minimal is [20, 10].
        let result = std::panic::catch_unwind(|| {
            Config {
                cases: 200,
                ..Config::default()
            }
            .run("sum_bound", |g| {
                let v = g.vec(0, 8, |g| g.int(1, 21));
                let sum: i64 = v.iter().sum();
                assert!(sum < 30, "sum {sum} of {v:?}");
            });
        });
        let msg = match result {
            Err(p) => payload_to_string(&*p),
            Ok(()) => panic!("property should have failed"),
        };
        // The shrunk witness sums to exactly 30 with the fewest
        // elements: two (20 + 10).
        assert!(msg.contains("sum 30"), "not minimal: {msg}");
    }
}
