//! Seeded single-rule mutation of a real constraint space — the
//! negative-test corpus behind the constraint-space auditor
//! (DESIGN.md §11).
//!
//! A *mutation* damages exactly one posted rule of a `CSP_initial`:
//!
//! * [`MutationKind::Drop`] — the rule disappears (the classic
//!   under-constraint bug: someone forgot `AddMemLimit`);
//! * [`MutationKind::Tighten`] — the rule admits strictly less (a
//!   candidate value removed from an `IN`, a capacity halved): the
//!   over-constraint bug that silently caps the performance ceiling;
//! * [`MutationKind::Widen`] — the rule admits strictly more (an extra
//!   candidate value, a doubled capacity): under-constraint again, but
//!   with the rule still present — the off-by-a-factor spec typo.
//!
//! Only *restrictive* constraints (`IN`, `LE`) are mutated: `PROD` /
//! `SUM` / `EQ` / `SELECT` define the space's functional structure, and
//! damaging them yields assignments that no longer describe a schedule
//! at all rather than a mis-bounded schedule space.
//!
//! Generation is deterministic: `mutations(csp, seed)` enumerates every
//! applicable mutation in constraint-posting order, with any value
//! choice (which `IN` member to remove) drawn from a stream forked per
//! constraint index — inserting a rule does not reshuffle the choices
//! made for the others. The harness makes **no validity claim**: which
//! mutations are actually *detectable* (change the set of admitted
//! valid schedules) is certified downstream by `heron-audit` against
//! the simulator oracle.

use heron_csp::{Constraint, Csp, VarRef};
use heron_rng::HeronRng;

/// How a single rule was damaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// The rule was removed entirely.
    Drop,
    /// The rule admits strictly fewer assignments.
    Tighten,
    /// The rule admits strictly more assignments.
    Widen,
}

impl MutationKind {
    /// Stable short tag (`drop` / `tighten` / `widen`).
    pub fn tag(&self) -> &'static str {
        match self {
            MutationKind::Drop => "drop",
            MutationKind::Tighten => "tighten",
            MutationKind::Widen => "widen",
        }
    }

    /// Which audit probe is expected to catch this mutation class:
    /// under-constraint probes catch `drop`/`widen`, the over-constraint
    /// probe catches `tighten`.
    pub fn expected_probe(&self) -> &'static str {
        match self {
            MutationKind::Drop | MutationKind::Widen => "under",
            MutationKind::Tighten => "over",
        }
    }
}

impl std::fmt::Display for MutationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// One single-rule mutation of a base problem.
#[derive(Debug, Clone)]
pub struct RuleMutation {
    /// How the rule was damaged.
    pub kind: MutationKind,
    /// Index of the mutated constraint in the *base* problem's posting
    /// order (the diagnoser and audit attribution report this index).
    pub index: usize,
    /// Deterministic human-readable description, e.g.
    /// `tighten IN(tile.C.i1): removed 8`.
    pub detail: String,
    /// The mutated problem.
    pub csp: Csp,
}

/// Enumerates every applicable single-rule mutation of `csp`,
/// deterministically derived from `seed`.
///
/// For each `IN` constraint: one drop, one tighten (if it has ≥ 2
/// values; removes a seeded choice of member), one widen (adds a value
/// outside the set and widens the variable's domain along its `EQ`
/// closure so the new value is actually reachable). For each `LE`: one
/// drop, one tighten (halved bound), one widen (doubled bound).
pub fn mutations(csp: &Csp, seed: u64) -> Vec<RuleMutation> {
    let root = HeronRng::from_seed(seed);
    let mut out = Vec::new();
    for (i, c) in csp.constraints().iter().enumerate() {
        let mut rng = root.fork(i as u64);
        match c {
            Constraint::In { var, values } => {
                let name = csp.var(*var).name.clone();
                out.push(drop_rule(csp, i, &format!("drop IN({name})")));
                if values.len() >= 2 {
                    let removed = values[(rng.next_u64() % values.len() as u64) as usize];
                    let kept: Vec<i64> = values.iter().copied().filter(|&v| v != removed).collect();
                    let mut m = csp.clone();
                    m.replace_constraint(
                        i,
                        Constraint::In {
                            var: *var,
                            values: kept,
                        },
                    );
                    out.push(RuleMutation {
                        kind: MutationKind::Tighten,
                        index: i,
                        detail: format!("tighten IN({name}): removed {removed}"),
                        csp: m,
                    });
                }
                let extra = values.last().copied().unwrap_or(1).saturating_mul(2).max(2);
                if !values.contains(&extra) {
                    let mut m = csp.clone();
                    let mut widened = values.clone();
                    widened.push(extra);
                    m.replace_constraint(
                        i,
                        Constraint::In {
                            var: *var,
                            values: widened,
                        },
                    );
                    for v in eq_closure(csp, *var) {
                        m.widen_domain(v, [extra]);
                    }
                    out.push(RuleMutation {
                        kind: MutationKind::Widen,
                        index: i,
                        detail: format!("widen IN({name}): added {extra}"),
                        csp: m,
                    });
                }
            }
            Constraint::Le(a, b) => {
                let (an, bound) = (csp.var(*a).name.clone(), csp.var(*b).domain.max());
                out.push(drop_rule(csp, i, &format!("drop LE({an})")));
                if bound >= 2 {
                    out.push(rebound_le(
                        csp,
                        i,
                        *a,
                        &an,
                        bound / 2,
                        MutationKind::Tighten,
                    ));
                }
                if bound >= 1 {
                    out.push(rebound_le(
                        csp,
                        i,
                        *a,
                        &an,
                        bound.saturating_mul(2),
                        MutationKind::Widen,
                    ));
                }
            }
            // Functional structure: never mutated (see module docs).
            Constraint::Prod { .. }
            | Constraint::Sum { .. }
            | Constraint::Eq(..)
            | Constraint::Select { .. } => {}
        }
    }
    out
}

fn drop_rule(csp: &Csp, index: usize, detail: &str) -> RuleMutation {
    let keep: Vec<usize> = (0..csp.num_constraints()).filter(|&j| j != index).collect();
    RuleMutation {
        kind: MutationKind::Drop,
        index,
        detail: detail.to_string(),
        csp: csp.with_constraint_subset(&keep),
    }
}

/// Replaces `LE(a, _)` at `index` with `LE(a, const new_bound)`,
/// declaring a fresh constant so shared cap constants used by other
/// rules stay untouched.
fn rebound_le(
    csp: &Csp,
    index: usize,
    a: VarRef,
    a_name: &str,
    new_bound: i64,
    kind: MutationKind,
) -> RuleMutation {
    let mut m = csp.clone();
    let cap = m.add_const(format!("mut.cap.{index}"), new_bound);
    m.replace_constraint(index, Constraint::Le(a, cap));
    RuleMutation {
        kind,
        index,
        detail: format!("{} LE({a_name}): bound -> {new_bound}", kind.tag()),
        csp: m,
    }
}

/// The `EQ`-connected component of `start`: widening a candidate set is
/// only reachable when every equality twin (loop var ↔ `tile.*`
/// tunable) is widened along with it, otherwise domain intersection
/// removes the new value again during propagation.
fn eq_closure(csp: &Csp, start: VarRef) -> Vec<VarRef> {
    let mut seen = vec![start];
    loop {
        let mut grew = false;
        for c in csp.constraints() {
            if let Constraint::Eq(a, b) = c {
                for (x, y) in [(*a, *b), (*b, *a)] {
                    if seen.contains(&x) && !seen.contains(&y) {
                        seen.push(y);
                        grew = true;
                    }
                }
            }
        }
        if !grew {
            return seen;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heron_csp::{Domain, VarCategory};
    use heron_rng::HeronRng;

    /// tile-split-shaped toy: extent 16 over two parts with a twin, a
    /// candidate tunable, and a capacity rule.
    fn toy() -> Csp {
        let mut csp = Csp::new();
        let total = csp.add_const("extent", 16);
        let p0 = csp.add_var("p0", Domain::divisors_of(16), VarCategory::LoopLength);
        let t0 = csp.add_var("tile.p0", Domain::divisors_of(16), VarCategory::Tunable);
        let p1 = csp.add_var("p1", Domain::divisors_of(16), VarCategory::LoopLength);
        csp.post_eq(t0, p0);
        csp.post_prod(total, vec![p0, p1]);
        let vec = csp.add_var("vec", Domain::values([1, 2, 4]), VarCategory::Tunable);
        csp.post_in(vec, [1, 2, 4]);
        let cap = csp.add_const("cap", 8);
        csp.post_le(p1, cap);
        csp
    }

    #[test]
    fn enumeration_is_deterministic_and_seed_sensitive() {
        let csp = toy();
        let a = mutations(&csp, 7);
        let b = mutations(&csp, 7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.detail, y.detail);
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.index, y.index);
        }
        assert!(!a.is_empty());
    }

    #[test]
    fn only_restrictive_rules_are_mutated() {
        let csp = toy();
        for m in mutations(&csp, 1) {
            let tag = csp.constraints()[m.index].type_tag();
            assert!(tag == "IN" || tag == "LE", "mutated {tag}");
        }
    }

    #[test]
    fn drop_removes_exactly_one_constraint() {
        let csp = toy();
        for m in mutations(&csp, 1)
            .into_iter()
            .filter(|m| m.kind == MutationKind::Drop)
        {
            assert_eq!(m.csp.num_constraints(), csp.num_constraints() - 1);
        }
    }

    #[test]
    fn tighten_in_shrinks_and_widen_in_is_reachable() {
        let csp = toy();
        let ms = mutations(&csp, 3);
        let tighten = ms
            .iter()
            .find(|m| m.kind == MutationKind::Tighten && m.detail.contains("IN(vec)"))
            .expect("tighten IN exists");
        match &tighten.csp.constraints()[tighten.index] {
            Constraint::In { values, .. } => assert_eq!(values.len(), 2),
            other => panic!("not IN: {other}"),
        }
        let widen = ms
            .iter()
            .find(|m| m.kind == MutationKind::Widen && m.detail.contains("IN(vec)"))
            .expect("widen IN exists");
        // The added value (8) is in the IN *and* in the widened domain,
        // so the mutated space actually admits it.
        let var = widen.csp.var_by_name("vec").unwrap();
        assert!(widen.csp.var(var).domain.contains(8));
        let mut rng = HeronRng::from_seed(0);
        let sols = heron_csp::rand_sat(&widen.csp, &mut rng, 64).expect_sat("widened toy");
        assert!(
            sols.iter().any(|s| s.value(var) == 8),
            "widened value never sampled"
        );
    }

    #[test]
    fn widen_le_doubles_and_tighten_le_halves_the_bound() {
        let csp = toy();
        let ms = mutations(&csp, 3);
        for (kind, want) in [(MutationKind::Tighten, 4), (MutationKind::Widen, 16)] {
            let m = ms
                .iter()
                .find(|m| m.kind == kind && m.detail.contains("LE(p1)"))
                .expect("LE mutation exists");
            match &m.csp.constraints()[m.index] {
                Constraint::Le(_, b) => {
                    assert_eq!(m.csp.var(*b).domain.max(), want);
                    assert!(m.csp.var(*b).name.starts_with("mut.cap."));
                }
                other => panic!("not LE: {other}"),
            }
        }
        // The shared original cap constant is untouched.
        let cap = csp.var_by_name("cap").unwrap();
        for m in &ms {
            assert_eq!(m.csp.var(cap).domain.max(), 8);
        }
    }

    #[test]
    fn expected_probe_maps_kinds() {
        assert_eq!(MutationKind::Drop.expected_probe(), "under");
        assert_eq!(MutationKind::Widen.expected_probe(), "under");
        assert_eq!(MutationKind::Tighten.expected_probe(), "over");
        assert_eq!(MutationKind::Tighten.to_string(), "tighten");
    }
}
