//! Historical clone-based `RandSAT` reference engine.
//!
//! This is the pre-trail solver preserved verbatim as an executable
//! specification: a fresh `Vec<Domain>` clone per search node, array-based
//! filtering, and a per-call watcher table. The equivalence property suite
//! (`crates/csp/tests/prop_equiv.rs`) checks that the production trail +
//! bitset engine draws *identical solution sequences* on the adversarial
//! corpus, and the `solver_speedup` bench measures the production engine's
//! propagations/sec against this one.
//!
//! Two deliberate differences from the historical code, both required for
//! stream comparability with the fixed engine:
//!
//! * the `Range` candidate list applies the duplicate-random fix (the old
//!   adjacent-only `dedup` re-tried `random == lo`);
//! * watcher lists are fully deduplicated (domain-neutral either way).
//!
//! Everything else — clone-per-node search state, propagation order,
//! filtering math, attempt/escalation schedule — matches the historical
//! engine, propagation counts included.

use std::collections::VecDeque;

use heron_csp::{Constraint, Csp, Domain, Solution, SolvePolicy, SolveStatus, VarRef};
use heron_rng::{Rng, SliceRandom};

/// Counters reported by [`rand_sat_reference`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefStats {
    /// Dives started.
    pub attempts: u64,
    /// Single-constraint filtering passes executed (root included).
    pub propagations: u64,
    /// Distinct solutions returned.
    pub solutions: u64,
}

/// Result of one reference sampling call.
#[derive(Debug, Clone)]
pub struct RefOutcome {
    /// Classification, matching the production solver's statuses.
    pub status: SolveStatus,
    /// Distinct solutions in discovery order.
    pub solutions: Vec<Solution>,
    /// Reference counters.
    pub stats: RefStats,
}

struct RefPropagator<'a> {
    csp: &'a Csp,
    watching: Vec<Vec<u32>>,
    propagations: u64,
}

impl<'a> RefPropagator<'a> {
    fn new(csp: &'a Csp) -> Self {
        let mut watching = vec![Vec::new(); csp.num_vars()];
        for (ci, c) in csp.constraints().iter().enumerate() {
            let mut vars = c.vars();
            vars.sort_unstable();
            vars.dedup();
            for v in vars {
                watching[v.0].push(ci as u32);
            }
        }
        RefPropagator {
            csp,
            watching,
            propagations: 0,
        }
    }

    fn initial_domains(&self) -> Vec<Domain> {
        self.csp.vars().map(|(_, d)| d.domain.clone()).collect()
    }

    fn run_all(&mut self, domains: &mut [Domain]) -> Result<(), ()> {
        let all: Vec<u32> = (0..self.csp.num_constraints() as u32).collect();
        self.run(domains, all)
    }

    fn run_from(&mut self, domains: &mut [Domain], changed_var: VarRef) -> Result<(), ()> {
        self.run(domains, self.watching[changed_var.0].clone())
    }

    fn run(&mut self, domains: &mut [Domain], seed: Vec<u32>) -> Result<(), ()> {
        let ncons = self.csp.num_constraints();
        let mut queued = vec![false; ncons];
        let mut queue: VecDeque<u32> = VecDeque::with_capacity(seed.len());
        for ci in seed {
            if !queued[ci as usize] {
                queued[ci as usize] = true;
                queue.push_back(ci);
            }
        }
        let mut changed_vars: Vec<VarRef> = Vec::new();
        while let Some(ci) = queue.pop_front() {
            queued[ci as usize] = false;
            changed_vars.clear();
            self.propagations += 1;
            filter(
                &self.csp.constraints()[ci as usize],
                domains,
                &mut changed_vars,
            )?;
            for v in &changed_vars {
                for &wi in &self.watching[v.0] {
                    // The triggering constraint re-enqueues itself too, as
                    // the historical engine did for every constraint type.
                    if !queued[wi as usize] {
                        queued[wi as usize] = true;
                        queue.push_back(wi);
                    }
                }
            }
        }
        Ok(())
    }
}

fn filter(c: &Constraint, domains: &mut [Domain], changed: &mut Vec<VarRef>) -> Result<(), ()> {
    match c {
        Constraint::Prod { out, factors } => filter_prod(*out, factors, domains, changed),
        Constraint::Sum { out, terms } => filter_sum(*out, terms, domains, changed),
        Constraint::Eq(a, b) => {
            let db = domains[b.0].clone();
            if domains[a.0].intersect(&db)? {
                changed.push(*a);
            }
            let da = domains[a.0].clone();
            if domains[b.0].intersect(&da)? {
                changed.push(*b);
            }
            Ok(())
        }
        Constraint::Le(a, b) => {
            let bhi = domains[b.0].max();
            if domains[a.0].restrict_max(bhi)? {
                changed.push(*a);
            }
            let alo = domains[a.0].min();
            if domains[b.0].restrict_min(alo)? {
                changed.push(*b);
            }
            Ok(())
        }
        Constraint::In { var, values } => {
            if domains[var.0].restrict_to(values)? {
                changed.push(*var);
            }
            Ok(())
        }
        Constraint::Select {
            out,
            index,
            choices,
        } => filter_select(*out, *index, choices, domains, changed),
    }
}

fn sat_prod(vals: impl Iterator<Item = i64>) -> i64 {
    let mut p: i64 = 1;
    for v in vals {
        p = p.saturating_mul(v);
        if p == i64::MAX {
            return i64::MAX;
        }
    }
    p
}

fn filter_prod(
    out: VarRef,
    factors: &[VarRef],
    domains: &mut [Domain],
    changed: &mut Vec<VarRef>,
) -> Result<(), ()> {
    let lo = sat_prod(factors.iter().map(|f| domains[f.0].min()));
    let hi = sat_prod(factors.iter().map(|f| domains[f.0].max()));
    if domains[out.0].restrict_min(lo)? {
        changed.push(out);
    }
    if hi < i64::MAX && domains[out.0].restrict_max(hi)? {
        changed.push(out);
    }
    let out_lo = domains[out.0].min();
    let out_hi = domains[out.0].max();
    let out_fixed = domains[out.0].fixed_value();

    for (i, f) in factors.iter().enumerate() {
        let others_lo = sat_prod(
            factors
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, g)| domains[g.0].min()),
        );
        let others_hi = sat_prod(
            factors
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, g)| domains[g.0].max()),
        );
        if others_hi > 0 && others_hi < i64::MAX {
            let min_f = out_lo.div_euclid(others_hi) + i64::from(out_lo.rem_euclid(others_hi) != 0);
            if domains[f.0].restrict_min(min_f)? {
                changed.push(*f);
            }
        }
        if others_lo > 0 {
            let max_f = out_hi / others_lo;
            if domains[f.0].restrict_max(max_f)? {
                changed.push(*f);
            }
        }
        if let Some(p) = out_fixed {
            if p > 0 {
                if let Domain::Values(vals) = &domains[f.0] {
                    if vals.iter().any(|&v| v == 0 || p % v != 0) {
                        let kept: Vec<i64> = vals
                            .iter()
                            .copied()
                            .filter(|&v| v != 0 && p % v == 0)
                            .collect();
                        if kept.is_empty() {
                            return Err(());
                        }
                        domains[f.0] = Domain::Values(kept);
                        changed.push(*f);
                    }
                }
            }
        }
    }
    Ok(())
}

fn filter_sum(
    out: VarRef,
    terms: &[VarRef],
    domains: &mut [Domain],
    changed: &mut Vec<VarRef>,
) -> Result<(), ()> {
    let lo: i64 = terms.iter().map(|t| domains[t.0].min()).sum();
    let hi: i64 = terms.iter().map(|t| domains[t.0].max()).sum();
    if domains[out.0].restrict_min(lo)? {
        changed.push(out);
    }
    if domains[out.0].restrict_max(hi)? {
        changed.push(out);
    }
    let out_lo = domains[out.0].min();
    let out_hi = domains[out.0].max();
    for (i, t) in terms.iter().enumerate() {
        let others_lo: i64 = terms
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, g)| domains[g.0].min())
            .sum();
        let others_hi: i64 = terms
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, g)| domains[g.0].max())
            .sum();
        if domains[t.0].restrict_min(out_lo - others_hi)? {
            changed.push(*t);
        }
        if domains[t.0].restrict_max(out_hi - others_lo)? {
            changed.push(*t);
        }
    }
    Ok(())
}

fn filter_select(
    out: VarRef,
    index: VarRef,
    choices: &[VarRef],
    domains: &mut [Domain],
    changed: &mut Vec<VarRef>,
) -> Result<(), ()> {
    let n = choices.len() as i64;
    if domains[index.0].restrict_min(0)? {
        changed.push(index);
    }
    if domains[index.0].restrict_max(n - 1)? {
        changed.push(index);
    }
    let out_lo = domains[out.0].min();
    let out_hi = domains[out.0].max();
    let feasible: Vec<i64> = domains[index.0]
        .iter_values()
        .filter(|&i| {
            let d = &domains[choices[i as usize].0];
            d.max() >= out_lo && d.min() <= out_hi
        })
        .collect();
    if feasible.is_empty() {
        return Err(());
    }
    if feasible.len() as u64 != domains[index.0].size() {
        domains[index.0] = Domain::Values(feasible.clone());
        changed.push(index);
    }
    let lo = feasible
        .iter()
        .map(|&i| domains[choices[i as usize].0].min())
        .min()
        .expect("nonempty");
    let hi = feasible
        .iter()
        .map(|&i| domains[choices[i as usize].0].max())
        .max()
        .expect("nonempty");
    if domains[out.0].restrict_min(lo)? {
        changed.push(out);
    }
    if domains[out.0].restrict_max(hi)? {
        changed.push(out);
    }
    if let Some(i) = domains[index.0].fixed_value() {
        let ch = choices[i as usize];
        let dch = domains[ch.0].clone();
        if domains[out.0].intersect(&dch)? {
            changed.push(out);
        }
        let dout = domains[out.0].clone();
        if domains[ch.0].intersect(&dout)? {
            changed.push(ch);
        }
    }
    Ok(())
}

struct Deadline {
    remaining: u64,
    enabled: bool,
    hit: bool,
}

impl Deadline {
    fn new(steps: u64) -> Self {
        Deadline {
            remaining: steps,
            enabled: steps > 0,
            hit: false,
        }
    }

    fn tick(&mut self) -> bool {
        if !self.enabled {
            return true;
        }
        if self.remaining == 0 {
            self.hit = true;
            return false;
        }
        self.remaining -= 1;
        true
    }
}

/// Clone-based sampling under `policy` — the historical `rand_sat`.
pub fn rand_sat_reference<R: Rng>(
    csp: &Csp,
    rng: &mut R,
    n: usize,
    policy: &SolvePolicy,
) -> RefOutcome {
    let mut stats = RefStats::default();
    let mut prop = RefPropagator::new(csp);
    let mut root = prop.initial_domains();
    let root_ok = prop.run_all(&mut root).is_ok();
    let mut out = Vec::with_capacity(n);
    let mut deadline = Deadline::new(policy.deadline_steps);
    if root_ok && n > 0 {
        let mut seen = std::collections::HashSet::new();
        let mut budget = policy.budget;
        let mut escalation = 0u32;
        loop {
            let mut attempts = n * 3;
            while out.len() < n && attempts > 0 && !deadline.hit {
                attempts -= 1;
                stats.attempts += 1;
                let mut fails = budget;
                if let Some(sol) = search_one(csp, &mut prop, &root, rng, &mut fails, &mut deadline)
                {
                    if seen.insert(sol.fingerprint()) {
                        out.push(sol);
                    }
                }
            }
            if !out.is_empty()
                || deadline.hit
                || escalation >= policy.max_escalations
                || budget >= policy.budget_cap
            {
                break;
            }
            escalation += 1;
            budget = budget
                .max(1)
                .saturating_mul(policy.escalation_factor.max(1))
                .min(policy.budget_cap.max(1));
        }
    }
    stats.propagations = prop.propagations;
    stats.solutions = out.len() as u64;
    let status = if !root_ok {
        SolveStatus::RootInfeasible
    } else if deadline.hit {
        SolveStatus::DeadlineExceeded
    } else if out.is_empty() && n > 0 {
        SolveStatus::BudgetExhausted
    } else {
        SolveStatus::Sat
    };
    RefOutcome {
        status,
        solutions: out,
        stats,
    }
}

fn search_one<R: Rng>(
    csp: &Csp,
    prop: &mut RefPropagator<'_>,
    root: &[Domain],
    rng: &mut R,
    fails: &mut u32,
    deadline: &mut Deadline,
) -> Option<Solution> {
    let mut order = csp.tunables();
    order.shuffle(rng);
    for (r, _) in csp.vars() {
        if !order.contains(&r) {
            order.push(r);
        }
    }
    let mut domains = root.to_vec();
    dive(csp, prop, &mut domains, &order, 0, rng, fails, deadline)
}

#[allow(clippy::too_many_arguments)]
fn dive<R: Rng>(
    csp: &Csp,
    prop: &mut RefPropagator<'_>,
    domains: &mut [Domain],
    order: &[VarRef],
    depth: usize,
    rng: &mut R,
    fails: &mut u32,
    deadline: &mut Deadline,
) -> Option<Solution> {
    let mut d = depth;
    while d < order.len() && domains[order[d].0].is_fixed() {
        d += 1;
    }
    if d == order.len() {
        let values: Vec<i64> = domains.iter().map(|dom| dom.min()).collect();
        let sol = Solution::new(values);
        if heron_csp::validate(csp, &sol) {
            return Some(sol);
        }
        *fails = fails.saturating_sub(1);
        return None;
    }
    let var = order[d];
    let is_tunable = csp.tunables().contains(&var);
    let candidates: Vec<i64> = match &domains[var.0] {
        Domain::Values(v) => {
            let mut v = v.clone();
            v.shuffle(rng);
            v
        }
        Domain::Range { lo, hi } => {
            // Candidate rule with the duplicate-random fix applied (see
            // the module docs): the draw always happens when `hi > lo`,
            // and joins the list only when it is a new value.
            let (lo, hi) = (*lo, *hi);
            if hi > lo {
                let mut v = vec![lo, hi];
                let r = rng.random_range(lo..=hi);
                if r != lo && r != hi {
                    v.push(r);
                }
                v
            } else {
                vec![lo]
            }
        }
    };
    let try_limit = if is_tunable {
        candidates.len()
    } else {
        candidates.len().min(4)
    };
    for &val in candidates.iter().take(try_limit) {
        if *fails == 0 {
            return None;
        }
        if !deadline.tick() {
            return None;
        }
        let mut trial = domains.to_vec();
        if trial[var.0].fix(val).is_ok() && prop.run_from(&mut trial, var).is_ok() {
            if let Some(sol) = dive(csp, prop, &mut trial, order, d + 1, rng, fails, deadline) {
                return Some(sol);
            }
        }
        *fails = fails.saturating_sub(1);
    }
    None
}
