//! The case generator handed to property bodies.
//!
//! Every random decision a property makes flows through
//! [`Gen::choice`], which records the decision on a *tape* of `u64`
//! magnitudes. Shrinking (see [`crate::shrink`]) never needs to know
//! anything about the generated types: it replays the property with
//! numerically smaller tapes, and the clamping in `choice` keeps every
//! replayed decision in range. This is the "internal reduction"
//! approach (à la Hypothesis) — one shrinker for every input shape.

use heron_rng::{HeronRng, Rng};

/// Seeded, tape-recording generator for property-test cases.
pub struct Gen {
    rng: HeronRng,
    /// Decisions made so far this case (generate mode: recorded;
    /// replay mode: prefix comes from `replay`).
    tape: Vec<u64>,
    /// When `Some`, decisions are read from this tape (clamped into
    /// range) instead of drawn; positions past its end read as 0.
    replay: Option<Vec<u64>>,
    pos: usize,
    seed: u64,
}

impl Gen {
    /// Fresh generate-mode generator for one case.
    pub fn new(case_seed: u64) -> Gen {
        Gen {
            rng: HeronRng::from_seed(case_seed),
            tape: Vec::with_capacity(64),
            replay: None,
            pos: 0,
            seed: case_seed,
        }
    }

    /// Replay-mode generator: decisions come from `tape` (clamped);
    /// positions past the tape end are 0 ("smallest choice").
    pub fn replay(case_seed: u64, tape: Vec<u64>) -> Gen {
        Gen {
            rng: HeronRng::from_seed(case_seed),
            tape: Vec::with_capacity(tape.len()),
            replay: Some(tape),
            pos: 0,
            seed: case_seed,
        }
    }

    /// The seed this case was generated from (printed on failure).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The recorded decision tape (for the shrinker).
    pub fn tape(&self) -> &[u64] {
        &self.tape
    }

    /// The primitive decision: a value in `[0, n)`. `n == 0` is a
    /// caller bug and panics.
    ///
    /// Generate mode draws uniformly and records the magnitude; replay
    /// mode reads the tape and clamps to `n - 1` so a tape shrunk for
    /// one control path stays valid on another. The *effective* value
    /// is re-recorded so `tape()` is always consistent with what the
    /// property observed.
    pub fn choice(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Gen::choice requires a non-empty range");
        let v = match &self.replay {
            Some(t) => t.get(self.pos).copied().unwrap_or(0).min(n - 1),
            None => {
                if n == u64::MAX {
                    self.rng.next_u64() % n
                } else {
                    self.rng.random_range(0..n)
                }
            }
        };
        self.tape.push(v);
        self.pos += 1;
        v
    }

    // ---- typed draws -------------------------------------------------

    /// Integer in `[lo, hi)`. Shrinks toward `lo`. Handles spans up to
    /// the full `i64` range via two's-complement arithmetic.
    pub fn int(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "Gen::int: empty range {lo}..{hi}");
        let span = (hi as u64).wrapping_sub(lo as u64);
        lo.wrapping_add(self.choice(span) as i64)
    }

    /// Integer in `[lo, hi]` (inclusive). Shrinks toward `lo`.
    pub fn int_inclusive(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "Gen::int_inclusive: empty range {lo}..={hi}");
        let span = (hi as u64).wrapping_sub(lo as u64);
        if span == u64::MAX {
            // Full-range draw: every u64 magnitude is valid.
            let v = self.choice(u64::MAX); // covers all but u64::MAX itself…
            return lo.wrapping_add(v as i64);
        }
        lo.wrapping_add(self.choice(span + 1) as i64)
    }

    /// `usize` in `[lo, hi)`. Shrinks toward `lo`.
    pub fn index(&mut self, lo: usize, hi: usize) -> usize {
        self.int(lo as i64, hi as i64) as usize
    }

    /// Uniform `f64` in `[0, 1)` with 53-bit resolution. Shrinks
    /// toward 0.0.
    pub fn f64_unit(&mut self) -> f64 {
        self.choice(1u64 << 53) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`. Shrinks toward `lo`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "Gen::f64_in: empty range {lo}..{hi}");
        lo + self.f64_unit() * (hi - lo)
    }

    /// `true` with probability `p`. Shrinks toward `false`.
    pub fn bool(&mut self, p: f64) -> bool {
        // Invert so the all-zero (fully shrunk) tape yields `false`.
        self.f64_unit() >= 1.0 - p
    }

    /// A uniformly chosen element of `xs`. Shrinks toward `xs[0]`.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "Gen::pick on empty slice");
        &xs[self.choice(xs.len() as u64) as usize]
    }

    /// A vector with a length drawn from `[min_len, max_len]` whose
    /// elements come from `f`. Shrinks toward shorter vectors of
    /// smaller elements.
    pub fn vec<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.int_inclusive(min_len as i64, max_len as i64) as usize;
        (0..len).map(|_| f(self)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_and_replay_agree_on_recorded_tape() {
        let mut g = Gen::new(99);
        let a = g.int(3, 40);
        let b = g.f64_unit();
        let c = g.bool(0.5);
        let tape = g.tape().to_vec();

        let mut r = Gen::replay(99, tape);
        assert_eq!(r.int(3, 40), a);
        assert_eq!(r.f64_unit(), b);
        assert_eq!(r.bool(0.5), c);
    }

    #[test]
    fn replay_clamps_out_of_range_entries() {
        let mut r = Gen::replay(0, vec![u64::MAX, 5]);
        assert_eq!(r.int(0, 10), 9); // clamped to n-1
        assert_eq!(r.int(0, 100), 5);
        assert_eq!(r.int(0, 7), 0); // past tape end → 0
    }

    #[test]
    fn zero_tape_is_minimal_everything() {
        let mut r = Gen::replay(1, vec![]);
        assert_eq!(r.int(-4, 9), -4);
        assert_eq!(r.f64_unit(), 0.0);
        assert!(!r.bool(0.99));
        assert_eq!(*r.pick(&[7, 8, 9]), 7);
        assert!(r.vec(0, 5, |g| g.int(0, 3)).is_empty());
    }

    #[test]
    fn draws_stay_in_bounds() {
        let mut g = Gen::new(5);
        for _ in 0..2_000 {
            let v = g.int(-7, 13);
            assert!((-7..13).contains(&v));
            let f = g.f64_in(2.0, 3.0);
            assert!((2.0..3.0).contains(&f));
            let x = g.index(2, 9);
            assert!((2..9).contains(&x));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut g = Gen::new(6);
        for _ in 0..100 {
            assert!(!g.bool(0.0));
            assert!(g.bool(1.0));
        }
    }
}
