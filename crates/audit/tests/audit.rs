//! Integration tests for the differential constraint-space auditor:
//! clean committed specs audit clean, same-seed runs (including
//! killed-and-resumed ones) are byte-identical, witnesses replay, and
//! the seeded mutation gate detects every certified drop/tighten.

use heron_audit::{
    audit_space, audit_with_state, certified_corpus, corpus, detects, mutated_space,
    validate_audit, AuditConfig, Oracle, UnderState,
};
use heron_core::generate::{GeneratedSpace, SpaceGenerator, SpaceOptions};
use heron_dla::DlaSpec;
use heron_testkit::rule_mutation::MutationKind;
use heron_trace::Tracer;
use heron_workloads::{OpKind, Workload};

fn platform(name: &str) -> DlaSpec {
    heron_dla::platforms::all()
        .into_iter()
        .find(|s| s.name == name)
        .expect("platform exists")
}

fn space(dla: &str, kind: OpKind, label: &str) -> GeneratedSpace {
    let spec = platform(dla);
    let workload = Workload::new(label.to_string(), kind);
    let dag = workload.build(spec.in_dtype);
    SpaceGenerator::new(spec)
        .generate_named(&dag, &SpaceOptions::heron(), &workload.name)
        .expect("generates")
}

fn gemm(dla: &str, n: i64) -> GeneratedSpace {
    space(dla, OpKind::Gemm { m: n, n, k: n }, &format!("gemm-{n}"))
}

#[test]
fn clean_specs_audit_clean_on_all_platforms() {
    for dla in ["v100", "dlboost", "vta"] {
        let s = gemm(dla, 128);
        let report = audit_space(&s, &AuditConfig::new(2023), &Tracer::disabled());
        assert!(
            report.clean(),
            "{dla}: clean spec produced witnesses:\n{}",
            report.render_text()
        );
        assert!(!report.infeasible);
        assert!(report.distinct > 0, "{dla}: under-probe sampled nothing");
        assert!(report.anchors_used > 0, "{dla}: over-probe had no anchors");
        assert!(report.perturbations > 0, "{dla}: over-probe tried nothing");
    }
}

#[test]
fn same_seed_audit_json_is_byte_identical() {
    let s = gemm("v100", 128);
    let cfg = AuditConfig::new(7);
    let a = audit_space(&s, &cfg, &Tracer::disabled()).to_json();
    let b = audit_space(&s, &cfg, &Tracer::manual()).to_json();
    assert!(validate_audit(&a).is_ok(), "{:?}", validate_audit(&a));
    assert_eq!(a.render_pretty(), b.render_pretty());
    // A different seed samples differently (the summary block records it).
    let c = audit_space(&s, &AuditConfig::new(8), &Tracer::disabled()).to_json();
    assert_ne!(a.render_pretty(), c.render_pretty());
}

#[test]
fn killed_and_resumed_audit_is_byte_identical() {
    let s = gemm("v100", 128);
    let cfg = AuditConfig::new(2023);
    let tracer = Tracer::disabled();
    let uninterrupted = audit_space(&s, &cfg, &tracer);

    // Pause after every chunk, round-tripping the checkpoint text each
    // time — the worst-case kill/resume schedule.
    let mut state = UnderState::new();
    let report = loop {
        match audit_with_state(&s, &cfg, &tracer, &mut state, Some(1)) {
            Some(r) => break r,
            None => {
                let text = state.to_text(cfg.seed, cfg.samples);
                let (restored, seed, samples) = UnderState::from_text(&text).expect("round-trips");
                assert_eq!((seed, samples), (cfg.seed, cfg.samples));
                state = restored;
            }
        }
    };
    assert_eq!(
        uninterrupted.to_json().render_pretty(),
        report.to_json().render_pretty()
    );
}

#[test]
fn checkpoint_rejects_damage() {
    let state = UnderState::new();
    let text = state.to_text(3, 16);
    assert!(UnderState::from_text(&text).is_ok());
    assert!(UnderState::from_text("not a checkpoint").is_err());
    let truncated = text.replace("end\n", "");
    assert!(UnderState::from_text(&truncated).is_err());
    let mangled = text.replace("next_chunk", "next_chunkk");
    assert!(UnderState::from_text(&mangled).is_err());
}

#[test]
fn mutation_gate_detects_every_certified_drop_and_tighten() {
    let s = gemm("v100", 128);
    let seed = 2023;
    let certified = certified_corpus(&s, seed);
    assert!(
        certified
            .iter()
            .any(|c| c.mutation.kind == MutationKind::Drop),
        "no certified drop mutation — the gate proves nothing"
    );
    assert!(
        certified
            .iter()
            .any(|c| c.mutation.kind == MutationKind::Tighten),
        "no certified tighten mutation — the gate proves nothing"
    );
    let mut missed = Vec::new();
    for c in &certified {
        if c.mutation.kind == MutationKind::Widen {
            continue; // widen detection is best-effort (see DESIGN.md §11)
        }
        if !detects(&s, &c.mutation, seed) {
            missed.push(format!("{} ({})", c.mutation.detail, c.reason));
        }
    }
    assert!(
        missed.is_empty(),
        "gate missed {}/{} certified mutations:\n{}",
        missed.len(),
        certified.len(),
        missed.join("\n")
    );
}

#[test]
fn under_witnesses_replay_against_csp_and_oracle() {
    let s = gemm("v100", 128);
    let seed = 2023;
    // Drop the warp-limit rule: the classic under-constraint bug.
    let m = corpus(&s, seed)
        .into_iter()
        .find(|m| m.kind == MutationKind::Drop && m.detail.contains("LE(warps)"))
        .expect("drop LE(warps) exists");
    let ms = mutated_space(&s, &m);
    let report = audit_space(&ms, &AuditConfig::new(seed), &Tracer::disabled());
    assert!(
        !report.under.is_empty(),
        "dropping the warp limit must surface under-witnesses:\n{}",
        report.render_text()
    );
    let oracle = Oracle::new(&ms, Tracer::disabled());
    for w in &report.under {
        // CSP-SAT…
        assert!(
            heron_csp::validate(&ms.csp, &w.solution),
            "witness is not a CSP solution"
        );
        // …but sim-invalid, with a reproducible attribution.
        let verdict = oracle.check(&w.solution);
        assert!(!verdict.is_valid(), "witness replays as valid");
        assert_eq!(verdict.tag(), w.tag);
        assert_eq!(verdict.rule(), w.rule);
        assert_eq!(w.rule, "C6", "warp-limit violations are Rule C6");
        assert!(!w.diff.is_empty(), "minimizer lost the implicated diff");
    }
}

#[test]
fn over_witnesses_replay_against_csp_and_oracle() {
    let s = gemm("v100", 128);
    let seed = 2023;
    // Find a certified tighten whose over-probe witness is reproducible.
    let tighten = certified_corpus(&s, seed)
        .into_iter()
        .find(|c| c.mutation.kind == MutationKind::Tighten && c.reason.starts_with("over-probe"))
        .expect("a certified, feasible tighten mutation exists");
    let ms = mutated_space(&s, &tighten.mutation);
    let report = audit_space(&ms, &AuditConfig::new(seed), &Tracer::disabled());
    assert!(
        !report.over.is_empty(),
        "tightened space must surface over-witnesses ({}):\n{}",
        tighten.mutation.detail,
        report.render_text()
    );
    let oracle = Oracle::new(&ms, Tracer::disabled());
    for w in &report.over {
        // Sim-valid…
        assert!(
            oracle.check(&w.solution).is_valid(),
            "over-witness replays as sim-invalid"
        );
        // …but the CSP rejects it.
        assert!(
            !heron_csp::validate(&ms.csp, &w.solution),
            "over-witness is admitted by the CSP after all"
        );
        assert!(!w.blocking.is_empty(), "no blocking set attributed");
    }
}

#[test]
fn infeasible_space_is_reported_with_a_removal_set() {
    let s = gemm("v100", 128);
    // Tighten every capacity to 1: guaranteed root-infeasible.
    let mut csp = s.csp.clone();
    let one = csp.add_const("mut.one", 1);
    for t in csp.tunables() {
        csp.post_le(t, one);
    }
    let ms = GeneratedSpace {
        csp,
        template: s.template.clone(),
        dla: s.dla.clone(),
        workload: "gemm-128 [crushed]".into(),
    };
    if heron_csp::root_feasible(&ms.csp) {
        return; // space degenerated to all-ones and stayed feasible
    }
    let report = audit_space(&ms, &AuditConfig::new(1), &Tracer::disabled());
    assert!(report.infeasible);
    assert!(!report.clean());
    assert!(report.confirmed() >= 1);
    assert!(
        !report.infeasible_removal.is_empty(),
        "diagnosis must name a removal set"
    );
    assert!(validate_audit(&report.to_json()).is_ok());
}

#[test]
fn audit_counters_are_registered_names() {
    let s = gemm("v100", 128);
    let tracer = Tracer::manual();
    audit_space(&s, &AuditConfig::new(2023), &tracer);
    for name in [
        "audit.samples",
        "audit.oracle_checks",
        "audit.perturbations",
    ] {
        assert!(
            tracer.counter(name).unwrap_or(0) > 0,
            "counter `{name}` never incremented"
        );
    }
}
