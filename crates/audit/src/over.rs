//! The over-constraint probe: find oracle-valid schedules the CSP
//! rejects.
//!
//! Known-valid starting points (*anchors*) are oracle-valid points of
//! the space itself: the two deterministic greedy-extreme corners
//! (which lean against every capacity frontier, so a tightened bound is
//! one knob away on any seed) followed by seeded random samples. Each
//! anchor is perturbed one tunable at a time
//! across that tunable's declared domain; the perturbed assignment is
//! re-completed through the space's *functional* constraints only
//! (`PROD`/`SUM`/`EQ`/`SELECT` — the structure that makes an assignment
//! a schedule at all), and the completion is checked against the
//! simulator oracle. A completion that the simulator accepts but the
//! full CSP proves infeasible (pinned incremental solve returns
//! `RootInfeasible`) is a confirmed over-constraint witness: a real
//! schedule the space cannot express.
//!
//! Attribution is two-level: the *blocking set* names every restrictive
//! (`IN`/`LE`) constraint the completion violates directly, and — for
//! the first few witnesses — the greedy-deletion conflict diagnoser
//! (`heron_csp::diagnose_root_conflict`) confirms a removal set that
//! provably restores feasibility under the witness's pins.

use heron_core::generate::GeneratedSpace;
use heron_csp::{
    diagnose_root_conflict, Constraint, Csp, Solution, SolveSession, SolveStatus, VarRef,
};
use heron_rng::HeronRng;
use heron_trace::Tracer;

use crate::oracle::Oracle;
use crate::under::extreme_solution;
use crate::{AuditConfig, STREAM_ANCHOR, STREAM_COMPLETE, STREAM_EXTREME, STREAM_FULLCHECK};

/// One directly-violated restrictive constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockingEntry {
    /// Constraint index in the audited problem's posting order.
    pub index: usize,
    /// Human-readable rendering.
    pub constraint: String,
    /// Heuristic rule classification (`C3`/`C5`/`C6`, `-` when unclear).
    pub rule: &'static str,
}

/// A confirmed over-constraint witness.
#[derive(Debug, Clone)]
pub struct OverWitness {
    /// The oracle-valid completion the CSP rejects.
    pub solution: Solution,
    /// The perturbed tunable.
    pub var: String,
    /// Its perturbed value.
    pub value: i64,
    /// Fingerprint of the anchor the perturbation started from.
    pub anchor: u64,
    /// Restrictive constraints the completion violates directly.
    pub blocking: Vec<BlockingEntry>,
    /// Greedy-deletion removal set (base-constraint indices) when the
    /// diagnoser ran for this witness; empty otherwise.
    pub removal: Vec<(usize, String)>,
    /// Whether the diagnoser confirmed the removal set.
    pub diagnosed: bool,
}

/// Classifies a restrictive constraint to the paper rule it most likely
/// materialises: `IN` candidate sets are Rule C3, `LE` capacity sums
/// (`*.bytes`/`*.total` footprints) are Rule C5, other `LE` bounds
/// (launch limits, alignment quotients) are Rule C6.
pub fn classify_rule(csp: &Csp, c: &Constraint) -> &'static str {
    match c {
        Constraint::In { .. } => "C3",
        Constraint::Le(a, _) => {
            let name = &csp.var(*a).name;
            if name.contains("bytes") || name.contains("total") || name.contains("mem") {
                "C5"
            } else {
                "C6"
            }
        }
        _ => "-",
    }
}

/// Result of one [`run_over`] call.
#[derive(Debug, Clone, Default)]
pub struct OverOutcome {
    /// Confirmed witnesses (capped at `cfg.max_witnesses`).
    pub witnesses: Vec<OverWitness>,
    /// Single-knob perturbations evaluated.
    pub perturbations: u64,
    /// Oracle-valid anchors actually used.
    pub anchors_used: usize,
}

/// Runs the over-constraint probe on `space` using the (already-built)
/// full-space `session`.
pub fn run_over(
    space: &GeneratedSpace,
    session: &mut SolveSession,
    oracle: &Oracle,
    cfg: &AuditConfig,
    tracer: &Tracer,
) -> OverOutcome {
    let csp = &space.csp;
    let tunables = csp.tunables();
    let mut out = OverOutcome::default();

    // Deterministic extreme anchors first: an over-tightened bound is
    // crossed by a single knob precisely when the anchor already leans
    // against it, and randomly sampled anchors usually do not. The
    // greedy full-pressure corners (the boundary probe's pass-2 shape)
    // are found on every seed, which keeps the mutation gate sharp for
    // tighten mutations.
    let mut anchors: Vec<Solution> = Vec::new();
    let extreme_root = HeronRng::from_seed(cfg.seed).fork(STREAM_EXTREME);
    let mut extreme_counter = 0u64;
    for descending in [true, false] {
        let sol = extreme_solution(
            session,
            descending,
            cfg,
            &extreme_root,
            &mut extreme_counter,
            tracer,
        );
        if let Some(sol) = sol {
            if !anchors.iter().any(|a| a.fingerprint() == sol.fingerprint())
                && oracle.check(&sol).is_valid()
            {
                anchors.push(sol);
            }
        }
    }
    let extremes = anchors.len();

    // Then `cfg.anchors` oracle-valid samples of the space itself,
    // deduplicated.
    let mut rng = HeronRng::from_seed(cfg.seed).fork(STREAM_ANCHOR);
    let sampled = session.solve(&mut rng, cfg.anchors * 4, &cfg.policy(), tracer);
    for sol in &sampled.solutions {
        if anchors.len() >= extremes + cfg.anchors {
            break;
        }
        if anchors.iter().any(|a| a.fingerprint() == sol.fingerprint()) {
            continue;
        }
        if oracle.check(sol).is_valid() {
            anchors.push(sol.clone());
        }
    }
    out.anchors_used = anchors.len();

    // The functional-only subproblem used to complete perturbations.
    let functional: Vec<usize> = csp
        .constraints()
        .iter()
        .enumerate()
        .filter(|(_, c)| {
            matches!(
                c,
                Constraint::Prod { .. }
                    | Constraint::Sum { .. }
                    | Constraint::Eq(..)
                    | Constraint::Select { .. }
            )
        })
        .map(|(i, _)| i)
        .collect();
    let restrictive: Vec<usize> = (0..csp.num_constraints())
        .filter(|i| !functional.contains(i))
        .collect();
    let mut fun_session = SolveSession::new(&csp.with_constraint_subset(&functional));

    let complete_root = HeronRng::from_seed(cfg.seed).fork(STREAM_COMPLETE);
    let full_root = HeronRng::from_seed(cfg.seed).fork(STREAM_FULLCHECK);
    let mut counter = 0u64;
    // Perturbations already confirmed as witnesses: (tunable, value).
    let mut seen: Vec<(usize, i64)> = Vec::new();

    for anchor in &anchors {
        for &t in &tunables {
            let values: Vec<i64> = csp
                .var(t)
                .domain
                .iter_values()
                .take(cfg.max_domain)
                .collect();
            for v in values {
                if v == anchor.value(t) || seen.contains(&(t.0, v)) {
                    continue;
                }
                counter += 1;
                tracer.counter_add("audit.perturbations", 1);
                out.perturbations += 1;
                let pins: Vec<(VarRef, Vec<i64>)> = tunables
                    .iter()
                    .map(|&u| (u, vec![if u == t { v } else { anchor.value(u) }]))
                    .collect();
                // 1. Complete through the functional structure only.
                let mut crng = complete_root.fork(counter);
                let completed =
                    fun_session.solve_pinned(&pins, &mut crng, 1, &cfg.policy(), tracer);
                let Some(s) = completed.solutions.first() else {
                    continue; // no schedule exists with this knob value
                };
                // 2. The simulator must accept it...
                if !oracle.check(s).is_valid() {
                    continue;
                }
                // 3. ...and the full CSP must admit *some* completion of
                // the same tunable assignment. A direct check short-cuts
                // the common clean case; RootInfeasible on the pinned
                // incremental solve is the proof of rejection.
                if heron_csp::validate(csp, s) {
                    continue;
                }
                let mut frng = full_root.fork(counter);
                let full = session.solve_pinned(&pins, &mut frng, 1, &cfg.policy(), tracer);
                if full.status != SolveStatus::RootInfeasible {
                    continue; // admitted (or unproven) — not a witness
                }
                let blocking: Vec<BlockingEntry> = restrictive
                    .iter()
                    .filter(|&&i| !csp.constraints()[i].check(&|r| s.value(r)))
                    .map(|&i| BlockingEntry {
                        index: i,
                        constraint: csp.constraints()[i].to_string(),
                        rule: classify_rule(csp, &csp.constraints()[i]),
                    })
                    .collect();
                let (removal, diagnosed) = if out.witnesses.len() < cfg.max_diagnoses {
                    diagnose_pinned(csp, &pins)
                } else {
                    (Vec::new(), false)
                };
                seen.push((t.0, v));
                tracer.counter_add("audit.witnesses.over", 1);
                out.witnesses.push(OverWitness {
                    solution: s.clone(),
                    var: csp.var(t).name.clone(),
                    value: v,
                    anchor: anchor.fingerprint(),
                    blocking,
                    removal,
                    diagnosed,
                });
                if out.witnesses.len() >= cfg.max_witnesses || cfg.stop_at_first {
                    return out;
                }
            }
        }
    }
    out
}

/// Greedy-deletion diagnosis of a pinned-infeasible space: the pins are
/// posted *first* so the greedy pass keeps them (they are feasible on
/// their own) and the removal set names the blocking base rules, mapped
/// back to base posting indices.
fn diagnose_pinned(csp: &Csp, pins: &[(VarRef, Vec<i64>)]) -> (Vec<(usize, String)>, bool) {
    let mut d = csp.with_constraint_subset(&[]);
    for (u, values) in pins {
        d.post_in(*u, values.iter().copied());
    }
    let npins = d.num_constraints();
    for c in csp.constraints() {
        d.post(c.clone());
    }
    match diagnose_root_conflict(&d) {
        Some(report) => (
            report
                .removal
                .iter()
                .filter(|e| e.index >= npins)
                .map(|e| (e.index - npins, e.constraint.clone()))
                .collect(),
            true,
        ),
        None => (Vec::new(), false),
    }
}
