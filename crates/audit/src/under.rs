//! The under-constraint probe: find CSP-SAT points the simulator
//! rejects.
//!
//! Sampling is *chunked and per-chunk seeded*: chunk `k` draws from
//! `HeronRng::from_seed(seed).fork(STREAM_UNDER).fork(k)`, so every
//! chunk's samples are a pure function of `(csp, seed, k)` — a run
//! killed between chunks and resumed from an [`UnderState`] checkpoint
//! reproduces the uninterrupted run byte-for-byte (the same discipline
//! the tuner's checkpoint uses; see DESIGN.md §11).
//!
//! Each witness is minimized by greedy assignment-perturbation delta
//! debugging against the first oracle-valid sample: walk the tunables
//! in posting order, try reverting each differing tunable to its
//! reference value (re-completing the assignment through
//! `SolveSession::solve_pinned`), and keep the revert whenever the
//! completed point is still oracle-invalid. The surviving differences
//! are the witness's implicated core.

use heron_csp::{Solution, SolveSession, VarRef};
use heron_rng::HeronRng;
use heron_trace::Tracer;

use crate::oracle::{Oracle, OracleVerdict};
use crate::{AuditConfig, STREAM_BOUNDARY, STREAM_MINIMIZE, STREAM_UNDER};

/// One tunable the minimizer could not revert to the reference value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffEntry {
    /// Tunable name.
    pub var: String,
    /// Its value in the minimized witness.
    pub value: i64,
    /// Its value in the oracle-valid reference sample.
    pub reference: i64,
}

/// A confirmed, minimized under-constraint witness: a full CSP solution
/// the simulator rejects.
#[derive(Debug, Clone)]
pub struct UnderWitness {
    /// The (minimized) witness assignment.
    pub solution: Solution,
    /// Machine-readable error tag (`launch.warp-limit`, …).
    pub tag: String,
    /// The implicated constraint rule (`C1`…`C6`, or `-`).
    pub rule: &'static str,
    /// Human-readable oracle error.
    pub message: String,
    /// Tunables still differing from the valid reference after
    /// minimization (empty when no valid reference was found).
    pub diff: Vec<DiffEntry>,
}

/// Resumable under-probe progress — everything the next chunk needs.
#[derive(Debug, Clone, Default)]
pub struct UnderState {
    /// Next chunk index to sample.
    pub next_chunk: usize,
    /// Consecutive chunks that contributed no new distinct sample.
    pub dry: usize,
    /// Fingerprints of every distinct sample, in discovery order.
    pub seen: Vec<u64>,
    /// Total oracle-invalid samples (witnesses beyond the storage cap
    /// are counted here but not stored).
    pub invalid_total: u64,
    /// Stored raw (pre-minimization) witnesses.
    pub raw_witnesses: Vec<Solution>,
    /// First oracle-valid sample — the minimizer's reference point.
    pub reference: Option<Solution>,
    /// Whether the probe has finished sampling.
    pub done: bool,
    /// Oracle-invalid *boundary* points (see [`boundary_probe`]). Not
    /// checkpointed: the boundary probe runs after sampling completes,
    /// so a paused state always carries zero.
    pub boundary_invalid: u64,
}

const CKPT_HEADER: &str = "heron-audit-ckpt-v1";

impl UnderState {
    /// A fresh probe.
    pub fn new() -> Self {
        UnderState::default()
    }

    /// Serializes the state (plus the `seed`/`samples` it is only valid
    /// for) as a line-oriented text checkpoint.
    pub fn to_text(&self, seed: u64, samples: usize) -> String {
        let mut out = String::new();
        out.push_str(CKPT_HEADER);
        out.push('\n');
        out.push_str(&format!("seed {seed} samples {samples}\n"));
        out.push_str(&format!(
            "next_chunk {} dry {} invalid_total {} done {}\n",
            self.next_chunk,
            self.dry,
            self.invalid_total,
            u8::from(self.done)
        ));
        out.push_str("seen");
        for fp in &self.seen {
            out.push_str(&format!(" {fp:016x}"));
        }
        out.push('\n');
        if let Some(r) = &self.reference {
            out.push_str("ref");
            for v in r.values() {
                out.push_str(&format!(" {v}"));
            }
            out.push('\n');
        }
        for w in &self.raw_witnesses {
            out.push_str("wit");
            for v in w.values() {
                out.push_str(&format!(" {v}"));
            }
            out.push('\n');
        }
        out.push_str("end\n");
        out
    }

    /// Parses a checkpoint written by [`UnderState::to_text`], returning
    /// the state and the `(seed, samples)` pair it belongs to.
    ///
    /// # Errors
    /// A message naming the first malformed line.
    pub fn from_text(text: &str) -> Result<(UnderState, u64, usize), String> {
        let mut lines = text.lines();
        if lines.next() != Some(CKPT_HEADER) {
            return Err(format!("not a `{CKPT_HEADER}` checkpoint"));
        }
        let kv = |line: &str, want: &[&str]| -> Result<Vec<u64>, String> {
            let toks: Vec<&str> = line.split_whitespace().collect();
            if toks.len() != want.len() * 2 {
                return Err(format!("malformed line `{line}`"));
            }
            want.iter()
                .enumerate()
                .map(|(i, key)| {
                    if toks[2 * i] != *key {
                        return Err(format!("expected `{key}` in `{line}`"));
                    }
                    toks[2 * i + 1]
                        .parse::<u64>()
                        .map_err(|_| format!("bad number in `{line}`"))
                })
                .collect()
        };
        let head = kv(lines.next().unwrap_or(""), &["seed", "samples"])?;
        let (seed, samples) = (head[0], head[1] as usize);
        let prog = kv(
            lines.next().unwrap_or(""),
            &["next_chunk", "dry", "invalid_total", "done"],
        )?;
        let mut state = UnderState {
            next_chunk: prog[0] as usize,
            dry: prog[1] as usize,
            invalid_total: prog[2],
            done: prog[3] != 0,
            ..UnderState::default()
        };
        let mut saw_end = false;
        for line in lines {
            let mut toks = line.split_whitespace();
            match toks.next() {
                Some("seen") => {
                    for t in toks {
                        state.seen.push(
                            u64::from_str_radix(t, 16)
                                .map_err(|_| format!("bad fingerprint `{t}`"))?,
                        );
                    }
                }
                Some("ref") | Some("wit") => {
                    let values: Result<Vec<i64>, String> = line
                        .split_whitespace()
                        .skip(1)
                        .map(|t| t.parse::<i64>().map_err(|_| format!("bad value `{t}`")))
                        .collect();
                    let sol = Solution::new(values?);
                    if line.starts_with("ref") {
                        state.reference = Some(sol);
                    } else {
                        state.raw_witnesses.push(sol);
                    }
                }
                Some("end") => {
                    saw_end = true;
                    break;
                }
                other => return Err(format!("unexpected line `{:?}`", other.unwrap_or(""))),
            }
        }
        if !saw_end {
            return Err("truncated checkpoint (missing `end`)".into());
        }
        Ok((state, seed, samples))
    }
}

/// Advances the under-probe by at most `pause_after` chunks (`None` =
/// run to completion). Progress accumulates in `state`; sampling is
/// finished when `state.done` turns true.
pub fn run_under(
    session: &mut SolveSession,
    oracle: &Oracle,
    cfg: &AuditConfig,
    state: &mut UnderState,
    tracer: &Tracer,
    pause_after: Option<usize>,
) {
    let root = HeronRng::from_seed(cfg.seed).fork(STREAM_UNDER);
    // Tiny spaces never reach `samples` distinct points; bound the chunk
    // count and stop after two consecutive dry chunks.
    let max_chunks = cfg.samples.div_ceil(cfg.chunk.max(1)) * 4;
    let mut chunks_this_call = 0usize;
    loop {
        if state.seen.len() >= cfg.samples
            || state.dry >= 2
            || state.next_chunk >= max_chunks
            || (cfg.stop_at_first && !state.raw_witnesses.is_empty())
        {
            state.done = true;
            return;
        }
        if let Some(p) = pause_after {
            if chunks_this_call >= p {
                return;
            }
        }
        let mut rng = root.fork(state.next_chunk as u64);
        let out = session.solve(&mut rng, cfg.chunk, &cfg.policy(), tracer);
        let mut new_any = false;
        for sol in &out.solutions {
            if state.seen.len() >= cfg.samples {
                break;
            }
            let fp = sol.fingerprint();
            if state.seen.contains(&fp) {
                continue;
            }
            state.seen.push(fp);
            new_any = true;
            tracer.counter_add("audit.samples", 1);
            match oracle.check(sol) {
                OracleVerdict::Valid => {
                    if state.reference.is_none() {
                        state.reference = Some(sol.clone());
                    }
                }
                _ => {
                    state.invalid_total += 1;
                    tracer.counter_add("audit.witnesses.under", 1);
                    if state.raw_witnesses.len() < cfg.max_witnesses {
                        state.raw_witnesses.push(sol.clone());
                    }
                }
            }
        }
        state.dry = if new_any { 0 } else { state.dry + 1 };
        state.next_chunk += 1;
        chunks_this_call += 1;
    }
}

/// The deterministic boundary probe: uniform sampling almost never
/// lands in a thin newly-legal region (a dropped capacity rule opens up
/// maybe 1% of the space), but under-constraint bugs live at the
/// extremes by construction. Two directed passes, both deterministic —
/// a mutated space's boundary witness is found on *every* seed, which
/// is what makes the mutation gate sharp:
///
/// 1. **Per-variable extremes**: for every non-constant variable —
///    tunables *and* derived pressure variables like `warps` or
///    `smem.total` — pin it alone to the most extreme value the space
///    still satisfies (descending, then ascending) and replay the
///    completion. A dropped capacity rule makes the implicated pressure
///    variable's maximum jump straight past the hardware limit.
/// 2. **Greedy full-pressure sweep**: pin every tunable in posting
///    order to the most extreme value that keeps the pinned space
///    satisfiable, accumulating pins — the combined max-pressure /
///    min-pressure corner a correct space must still keep legal.
pub fn boundary_probe(
    session: &mut SolveSession,
    oracle: &Oracle,
    cfg: &AuditConfig,
    state: &mut UnderState,
    tracer: &Tracer,
) {
    let csp = session.csp().clone();
    let root = HeronRng::from_seed(cfg.seed).fork(STREAM_BOUNDARY);
    let mut counter = 0u64;

    let replay = |sol: &Solution, state: &mut UnderState| {
        let fp = sol.fingerprint();
        if state.seen.contains(&fp) {
            return;
        }
        state.seen.push(fp);
        tracer.counter_add("audit.boundary_points", 1);
        match oracle.check(sol) {
            OracleVerdict::Valid => {
                if state.reference.is_none() {
                    state.reference = Some(sol.clone());
                }
            }
            _ => {
                state.invalid_total += 1;
                state.boundary_invalid += 1;
                tracer.counter_add("audit.witnesses.under", 1);
                if state.raw_witnesses.len() < cfg.max_witnesses {
                    state.raw_witnesses.push(sol.clone());
                }
            }
        }
    };

    // Pass 1: per-variable extremes. A candidate that is not an exact
    // product of the tunable domains is unsatisfiable but not always
    // propagation-refuted, so the walk uses a deliberately small search
    // budget: real extremes (products of power-of-two-ish factors)
    // complete almost immediately, dead candidates fail fast.
    let probe_policy = heron_csp::SolvePolicy::fixed(cfg.budget.min(300));
    for i in 0..csp.num_vars() {
        let v = VarRef(i);
        if csp.var(v).domain.size() <= 1 {
            continue; // constants have no extreme to push
        }
        for descending in [true, false] {
            let values = extreme_candidates(&csp.var(v).domain, descending);
            for val in values {
                counter += 1;
                let mut rng = root.fork(counter);
                let pins = [(v, vec![val])];
                let out = session.solve_pinned(&pins, &mut rng, 1, &probe_policy, tracer);
                if let Some(sol) = out.solutions.first() {
                    replay(sol, state);
                    break; // most extreme feasible value found
                }
            }
        }
    }

    // Pass 2: greedy full-pressure sweeps.
    for descending in [true, false] {
        if let Some(sol) = extreme_solution(session, descending, cfg, &root, &mut counter, tracer) {
            replay(&sol, state);
        }
    }
}

/// The greedy full-pressure corner of the space: every tunable pinned,
/// in posting order, to the most extreme value that keeps the
/// accumulated pins satisfiable. Deterministic up to the solver's draws
/// from `root.fork(counter)` — the same `(space, cfg, root)` always
/// reaches the same corner. Shared by the boundary probe (pass 2) and
/// the over-probe's deterministic anchors.
pub(crate) fn extreme_solution(
    session: &mut SolveSession,
    descending: bool,
    cfg: &AuditConfig,
    root: &HeronRng,
    counter: &mut u64,
    tracer: &Tracer,
) -> Option<Solution> {
    let csp = session.csp().clone();
    let mut pins: Vec<(VarRef, Vec<i64>)> = Vec::new();
    for t in csp.tunables() {
        let mut values: Vec<i64> = csp.var(t).domain.iter_values().collect();
        if descending {
            values.reverse();
        }
        for v in values {
            *counter += 1;
            pins.push((t, vec![v]));
            let mut rng = root.fork(*counter);
            let out = session.solve_pinned(&pins, &mut rng, 1, &cfg.policy(), tracer);
            if out.solutions.is_empty() {
                pins.pop(); // this extreme is infeasible; try the next
            } else {
                break;
            }
        }
    }
    *counter += 1;
    let mut rng = root.fork(*counter);
    session
        .solve_pinned(&pins, &mut rng, 1, &cfg.policy(), tracer)
        .solutions
        .into_iter()
        .next()
}

/// Candidate pin values for one per-variable extreme search, most
/// extreme first. Small (decision-sized) domains are enumerated
/// outright; wide `Range` domains — derived pressure variables like
/// byte footprints — get a geometric ladder from the far end toward the
/// near end, so the search reaches the feasible frontier in O(log)
/// steps without enumerating millions of values.
fn extreme_candidates(domain: &heron_csp::Domain, descending: bool) -> Vec<i64> {
    const ENUMERABLE: u64 = 64;
    if domain.size() <= ENUMERABLE {
        let mut values: Vec<i64> = domain.iter_values().collect();
        if descending {
            values.reverse();
        }
        return values;
    }
    let (lo, hi) = (domain.min(), domain.max());
    let mut out = Vec::new();
    if descending {
        let mut v = hi;
        while v > lo {
            out.push(v);
            v = lo + (v - lo) / 2;
        }
        out.push(lo);
    } else {
        let mut v = lo;
        while v < hi {
            out.push(v);
            v = hi - (hi - v) / 2;
        }
        out.push(hi);
    }
    out.dedup();
    out
}

/// Minimizes every stored raw witness against the valid reference (see
/// the module docs) and attaches the oracle's attribution.
pub fn minimize(
    session: &mut SolveSession,
    oracle: &Oracle,
    cfg: &AuditConfig,
    state: &UnderState,
    tracer: &Tracer,
) -> Vec<UnderWitness> {
    let csp = session.csp().clone();
    let tunables = csp.tunables();
    let mut rng = HeronRng::from_seed(cfg.seed).fork(STREAM_MINIMIZE);
    let mut out = Vec::with_capacity(state.raw_witnesses.len());
    for raw in &state.raw_witnesses {
        let mut current = raw.clone();
        if let Some(reference) = &state.reference {
            for &t in &tunables {
                if current.value(t) == reference.value(t) {
                    continue;
                }
                let pins: Vec<(VarRef, Vec<i64>)> = tunables
                    .iter()
                    .map(|&u| {
                        let v = if u == t {
                            reference.value(u)
                        } else {
                            current.value(u)
                        };
                        (u, vec![v])
                    })
                    .collect();
                tracer.counter_add("audit.minimize_steps", 1);
                let step = session.solve_pinned(&pins, &mut rng, 1, &cfg.policy(), tracer);
                if let Some(s) = step.solutions.first() {
                    // Keep the revert only while the point stays invalid:
                    // the final diff is a 1-minimal implicated core.
                    if !oracle.check(s).is_valid() {
                        current = s.clone();
                    }
                }
            }
        }
        let verdict = oracle.check(&current);
        debug_assert!(!verdict.is_valid(), "minimizer accepted a valid point");
        let diff = state
            .reference
            .as_ref()
            .map(|r| {
                tunables
                    .iter()
                    .filter(|&&t| current.value(t) != r.value(t))
                    .map(|&t| DiffEntry {
                        var: csp.var(t).name.clone(),
                        value: current.value(t),
                        reference: r.value(t),
                    })
                    .collect()
            })
            .unwrap_or_default();
        out.push(UnderWitness {
            tag: verdict.tag(),
            rule: verdict.rule(),
            message: verdict.message(),
            solution: current,
            diff,
        });
    }
    out
}
