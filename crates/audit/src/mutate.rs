//! The seeded rule-mutation gate: proof that the auditor is *sharp*.
//!
//! `heron_testkit::rule_mutation` enumerates every single-rule
//! drop/tighten/widen of a space's `CSP_initial`, but makes no claim
//! about which mutations actually change the admitted schedule set — a
//! dropped rule that is entailed by the others, or a widened candidate
//! set whose new value never survives propagation, is *non-effectual*
//! and undetectable in principle. This module closes that gap:
//!
//! * [`certify`] checks a mutation's effectuality against the simulator
//!   oracle using an *independent* seed (`seed ^ CERT_SALT`):
//!   drop/widen mutations must make a meaningful fraction of the
//!   mutated space's samples sim-invalid; tighten mutations must either
//!   collapse the space to root-infeasibility or yield a confirmed
//!   over-constraint witness.
//! * [`detects`] runs the cheap gate-mode audit (with the *original*
//!   seed) on the mutated space and reports whether it noticed.
//!
//! The acceptance property (pinned in `crates/audit/tests/`): the gate
//! detects **every** certified drop and tighten mutation.

use heron_core::generate::GeneratedSpace;
use heron_testkit::rule_mutation::{mutations, MutationKind, RuleMutation};
use heron_trace::Tracer;

use crate::{audit_space, AuditConfig};

/// Decorrelates certification draws from the gate's detection draws, so
/// "certified effectual" is established with a seed the detector never
/// sees.
pub const CERT_SALT: u64 = 0xa0d1_7c3e_7f1a_9b2d;

/// Distinct mutated-space samples drawn while certifying a drop/widen.
const CERT_SAMPLES: usize = 48;
/// Minimum sim-invalid samples (and ≥ 1/8 of the distinct draw) for a
/// drop/widen to count as effectual.
const CERT_MIN_INVALID: usize = 3;

/// A mutation whose effect on the valid-schedule set is oracle-proven.
#[derive(Debug, Clone)]
pub struct CertifiedMutation {
    /// The certified mutation.
    pub mutation: RuleMutation,
    /// Why it is effectual (human-readable, deterministic).
    pub reason: String,
}

/// Every single-rule mutation of `space`'s problem, seeded by `seed`.
pub fn corpus(space: &GeneratedSpace, seed: u64) -> Vec<RuleMutation> {
    mutations(&space.csp, seed)
}

/// The mutated space: `m`'s damaged problem under the original kernel
/// template and platform (the oracle's ground truth is unchanged — only
/// the CSP's claim moved).
pub fn mutated_space(space: &GeneratedSpace, m: &RuleMutation) -> GeneratedSpace {
    GeneratedSpace {
        csp: m.csp.clone(),
        template: space.template.clone(),
        dla: space.dla.clone(),
        workload: format!("{} [{}]", space.workload, m.detail),
    }
}

/// Certifies that `m` is effectual (see the module docs). Returns the
/// deterministic reason, or `None` for a non-effectual mutation.
pub fn certify(space: &GeneratedSpace, m: &RuleMutation, seed: u64) -> Option<String> {
    let cert_seed = seed ^ CERT_SALT;
    let mspace = mutated_space(space, m);
    let tracer = Tracer::disabled();
    match m.kind {
        MutationKind::Drop | MutationKind::Widen => {
            if !heron_csp::root_feasible(&mspace.csp) {
                return None; // loosening cannot be blamed for emptiness
            }
            let mut cfg = AuditConfig::new(cert_seed);
            cfg.samples = CERT_SAMPLES;
            cfg.anchors = 0; // the over-probe is irrelevant to loosening
            let report = audit_space(&mspace, &cfg, &tracer);
            if report.boundary_invalid >= 1 {
                // Deterministic, seed-independent evidence: the gate
                // audit's own boundary probe will reproduce it.
                Some(format!(
                    "{} boundary point(s) sim-invalid",
                    report.boundary_invalid
                ))
            } else if report.invalid_total >= CERT_MIN_INVALID as u64 {
                // A loose-space invalid *rate* high enough that an
                // independent-seed sample pass finds it too.
                Some(format!(
                    "{}/{} mutated samples sim-invalid",
                    report.invalid_total, report.distinct
                ))
            } else {
                None
            }
        }
        MutationKind::Tighten => {
            if !heron_csp::root_feasible(&mspace.csp) {
                return Some("mutated space is root-infeasible".into());
            }
            let report = audit_space(&mspace, &AuditConfig::gate(cert_seed), &tracer);
            if !report.over.is_empty() {
                Some(format!(
                    "over-probe witness: {} -> {}",
                    report.over[0].var, report.over[0].value
                ))
            } else {
                None
            }
        }
    }
}

/// The oracle-certified subset of [`corpus`] — the gate's must-detect
/// negative-test set.
pub fn certified_corpus(space: &GeneratedSpace, seed: u64) -> Vec<CertifiedMutation> {
    corpus(space, seed)
        .into_iter()
        .filter_map(|m| {
            certify(space, &m, seed).map(|reason| CertifiedMutation {
                mutation: m,
                reason,
            })
        })
        .collect()
}

/// Runs the gate-mode audit on the mutated space: `true` iff the audit
/// confirms at least one witness (or proves the space infeasible).
pub fn detects(space: &GeneratedSpace, m: &RuleMutation, seed: u64) -> bool {
    let report = audit_space(
        &mutated_space(space, m),
        &AuditConfig::gate(seed),
        &Tracer::disabled(),
    );
    !report.clean()
}
