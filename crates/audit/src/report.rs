//! The `heron-audit-v1` artifact: a schema-versioned, byte-deterministic
//! `audit.json` (the pulse/insight pattern), plus its structural
//! validator and the human-readable summary `heron_audit` prints.
//!
//! Determinism contract: the document is a pure function of
//! `(space, AuditConfig)` — no wall-clock, no live trace counters —
//! rendered with [`heron_trace::Json::render_pretty`] in fixed member
//! order, so same-seed runs (including killed-and-resumed ones) are
//! byte-identical.

use heron_trace::Json;

use crate::over::OverWitness;
use crate::under::UnderWitness;

/// The artifact schema identifier.
pub const AUDIT_SCHEMA: &str = "heron-audit-v1";

/// The rule rows the per-rule attribution table always carries.
pub const RULE_IDS: [&str; 7] = ["C1", "C2", "C3", "C4", "C5", "C6", "-"];

/// The assembled audit result.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Workload label.
    pub workload: String,
    /// Platform name.
    pub dla: String,
    /// Audit seed.
    pub seed: u64,
    /// Configured under-probe sample target.
    pub samples_cfg: usize,
    /// Configured over-probe anchor count.
    pub anchors_cfg: usize,
    /// Configured per-tunable perturbation cap.
    pub max_domain_cfg: usize,
    /// Distinct CSP samples drawn by the under-probe.
    pub distinct: usize,
    /// Oracle-invalid samples (including ones beyond the storage cap).
    pub invalid_total: u64,
    /// Of those, deterministic boundary-probe points.
    pub boundary_invalid: u64,
    /// Single-knob perturbations the over-probe evaluated.
    pub perturbations: u64,
    /// Oracle-valid anchors the over-probe used.
    pub anchors_used: usize,
    /// The space is root-infeasible (the extreme over-constraint bug).
    pub infeasible: bool,
    /// Greedy-deletion removal set for an infeasible space.
    pub infeasible_removal: Vec<(usize, String)>,
    /// Minimized under-constraint witnesses.
    pub under: Vec<UnderWitness>,
    /// Confirmed over-constraint witnesses.
    pub over: Vec<OverWitness>,
}

impl AuditReport {
    /// Total confirmed findings (`--check` fails when non-zero).
    pub fn confirmed(&self) -> usize {
        self.under.len() + self.over.len() + usize::from(self.infeasible)
    }

    /// `true` iff the audit found nothing.
    pub fn clean(&self) -> bool {
        self.confirmed() == 0 && self.invalid_total == 0
    }

    /// Per-rule attribution counts in [`RULE_IDS`] order:
    /// `(rule, under, over)`.
    pub fn rule_counts(&self) -> Vec<(&'static str, u64, u64)> {
        RULE_IDS
            .iter()
            .map(|&rule| {
                let u = self.under.iter().filter(|w| w.rule == rule).count() as u64;
                let o = self
                    .over
                    .iter()
                    .filter(|w| w.blocking.first().map(|b| b.rule) == Some(rule))
                    .count() as u64;
                (rule, u, o)
            })
            .collect()
    }

    /// Builds the `heron-audit-v1` document (see the module docs for the
    /// determinism contract).
    pub fn to_json(&self) -> Json {
        let num = |v: i64| {
            debug_assert!(v.unsigned_abs() <= 1 << 53, "value {v} loses f64 precision");
            Json::Num(v as f64)
        };
        let unum = |v: u64| Json::Num(v as f64);
        let hex = |v: u64| Json::Str(format!("{v:#018x}"));
        let removal_arr = |entries: &[(usize, String)]| {
            Json::Arr(
                entries
                    .iter()
                    .map(|(i, c)| {
                        Json::Obj(vec![
                            ("index".into(), unum(*i as u64)),
                            ("constraint".into(), Json::Str(c.clone())),
                        ])
                    })
                    .collect(),
            )
        };
        let rules = Json::Arr(
            self.rule_counts()
                .into_iter()
                .map(|(rule, u, o)| {
                    Json::Obj(vec![
                        ("rule".into(), Json::Str(rule.into())),
                        ("under".into(), unum(u)),
                        ("over".into(), unum(o)),
                    ])
                })
                .collect(),
        );
        let under = Json::Arr(
            self.under
                .iter()
                .map(|w| {
                    Json::Obj(vec![
                        ("fingerprint".into(), hex(w.solution.fingerprint())),
                        ("tag".into(), Json::Str(w.tag.clone())),
                        ("rule".into(), Json::Str(w.rule.into())),
                        ("message".into(), Json::Str(w.message.clone())),
                        (
                            "diff".into(),
                            Json::Arr(
                                w.diff
                                    .iter()
                                    .map(|d| {
                                        Json::Obj(vec![
                                            ("var".into(), Json::Str(d.var.clone())),
                                            ("value".into(), num(d.value)),
                                            ("reference".into(), num(d.reference)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                        (
                            "values".into(),
                            Json::Arr(w.solution.values().iter().map(|&v| num(v)).collect()),
                        ),
                    ])
                })
                .collect(),
        );
        let over = Json::Arr(
            self.over
                .iter()
                .map(|w| {
                    Json::Obj(vec![
                        ("var".into(), Json::Str(w.var.clone())),
                        ("value".into(), num(w.value)),
                        ("anchor".into(), hex(w.anchor)),
                        (
                            "blocking".into(),
                            Json::Arr(
                                w.blocking
                                    .iter()
                                    .map(|b| {
                                        Json::Obj(vec![
                                            ("index".into(), unum(b.index as u64)),
                                            ("constraint".into(), Json::Str(b.constraint.clone())),
                                            ("rule".into(), Json::Str(b.rule.into())),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                        ("diagnosed".into(), Json::Bool(w.diagnosed)),
                        ("removal".into(), removal_arr(&w.removal)),
                        (
                            "values".into(),
                            Json::Arr(w.solution.values().iter().map(|&v| num(v)).collect()),
                        ),
                    ])
                })
                .collect(),
        );
        Json::Obj(vec![
            ("schema".into(), Json::Str(AUDIT_SCHEMA.into())),
            ("workload".into(), Json::Str(self.workload.clone())),
            ("dla".into(), Json::Str(self.dla.clone())),
            ("seed".into(), unum(self.seed)),
            (
                "config".into(),
                Json::Obj(vec![
                    ("samples".into(), unum(self.samples_cfg as u64)),
                    ("anchors".into(), unum(self.anchors_cfg as u64)),
                    ("max_domain".into(), unum(self.max_domain_cfg as u64)),
                ]),
            ),
            (
                "summary".into(),
                Json::Obj(vec![
                    ("distinct_samples".into(), unum(self.distinct as u64)),
                    ("invalid_samples".into(), unum(self.invalid_total)),
                    ("boundary_invalid".into(), unum(self.boundary_invalid)),
                    ("under_witnesses".into(), unum(self.under.len() as u64)),
                    ("over_witnesses".into(), unum(self.over.len() as u64)),
                    ("perturbations".into(), unum(self.perturbations)),
                    ("anchors".into(), unum(self.anchors_used as u64)),
                    ("infeasible".into(), Json::Bool(self.infeasible)),
                    ("confirmed".into(), unum(self.confirmed() as u64)),
                    ("clean".into(), Json::Bool(self.clean())),
                ]),
            ),
            ("rules".into(), rules),
            ("under".into(), under),
            ("over".into(), over),
            (
                "infeasible_removal".into(),
                removal_arr(&self.infeasible_removal),
            ),
        ])
    }

    /// Human-readable summary (the `heron_audit` console output).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "audit: `{}` on {} (seed {})\n",
            self.workload, self.dla, self.seed
        ));
        if self.infeasible {
            out.push_str("  SPACE IS ROOT-INFEASIBLE (over-constrained to emptiness)\n");
            for (i, c) in &self.infeasible_removal {
                out.push_str(&format!("    remove #{i}: {c}\n"));
            }
            return out;
        }
        out.push_str(&format!(
            "  under-probe: {} distinct samples, {} sim-invalid ({} at the boundary, {} witnesses kept)\n",
            self.distinct,
            self.invalid_total,
            self.boundary_invalid,
            self.under.len()
        ));
        out.push_str(&format!(
            "  over-probe: {} perturbations from {} anchors, {} rejected-but-valid\n",
            self.perturbations,
            self.anchors_used,
            self.over.len()
        ));
        for (rule, u, o) in self.rule_counts() {
            if u + o > 0 {
                out.push_str(&format!("  rule {rule}: under {u}, over {o}\n"));
            }
        }
        for w in &self.under {
            out.push_str(&format!("  under[{}]: {}\n", w.tag, w.message));
            for d in &w.diff {
                out.push_str(&format!(
                    "    {} = {} (valid reference: {})\n",
                    d.var, d.value, d.reference
                ));
            }
        }
        for w in &self.over {
            out.push_str(&format!(
                "  over[{} -> {}]: valid schedule rejected; blocked by {} rule(s)\n",
                w.var,
                w.value,
                w.blocking.len()
            ));
            for b in &w.blocking {
                out.push_str(&format!("    #{} {} [{}]\n", b.index, b.constraint, b.rule));
            }
        }
        out.push_str(if self.clean() {
            "  verdict: CLEAN\n"
        } else {
            "  verdict: WITNESSES FOUND\n"
        });
        out
    }
}

fn want<'a>(doc: &'a Json, path: &str, key: &str) -> Result<&'a Json, String> {
    doc.get(key)
        .ok_or_else(|| format!("{path}: missing member `{key}`"))
}

fn want_num(doc: &Json, path: &str, key: &str) -> Result<f64, String> {
    want(doc, path, key)?
        .as_f64()
        .ok_or_else(|| format!("{path}.{key}: expected a number"))
}

fn want_str<'a>(doc: &'a Json, path: &str, key: &str) -> Result<&'a str, String> {
    want(doc, path, key)?
        .as_str()
        .ok_or_else(|| format!("{path}.{key}: expected a string"))
}

fn want_arr<'a>(doc: &'a Json, path: &str, key: &str) -> Result<&'a [Json], String> {
    want(doc, path, key)?
        .as_arr()
        .ok_or_else(|| format!("{path}.{key}: expected an array"))
}

fn want_bool(doc: &Json, path: &str, key: &str) -> Result<bool, String> {
    match want(doc, path, key)? {
        Json::Bool(b) => Ok(*b),
        _ => Err(format!("{path}.{key}: expected a boolean")),
    }
}

fn want_removal(doc: &Json, path: &str, key: &str) -> Result<(), String> {
    for (i, e) in want_arr(doc, path, key)?.iter().enumerate() {
        let p = format!("{path}.{key}[{i}]");
        want_num(e, &p, "index")?;
        want_str(e, &p, "constraint")?;
    }
    Ok(())
}

/// Validates the structure of an `audit.json` document.
///
/// # Errors
/// A message naming the offending JSON path.
pub fn validate_audit(doc: &Json) -> Result<(), String> {
    let schema = want_str(doc, "$", "schema")?;
    if schema != AUDIT_SCHEMA {
        return Err(format!(
            "$.schema: expected `{AUDIT_SCHEMA}`, found `{schema}`"
        ));
    }
    want_str(doc, "$", "workload")?;
    want_str(doc, "$", "dla")?;
    want_num(doc, "$", "seed")?;
    let config = want(doc, "$", "config")?;
    for key in ["samples", "anchors", "max_domain"] {
        want_num(config, "$.config", key)?;
    }
    let summary = want(doc, "$", "summary")?;
    for key in [
        "distinct_samples",
        "invalid_samples",
        "boundary_invalid",
        "under_witnesses",
        "over_witnesses",
        "perturbations",
        "anchors",
        "confirmed",
    ] {
        want_num(summary, "$.summary", key)?;
    }
    want_bool(summary, "$.summary", "infeasible")?;
    want_bool(summary, "$.summary", "clean")?;
    let rules = want_arr(doc, "$", "rules")?;
    if rules.len() != RULE_IDS.len() {
        return Err(format!(
            "$.rules: expected {} rows, found {}",
            RULE_IDS.len(),
            rules.len()
        ));
    }
    for (i, row) in rules.iter().enumerate() {
        let p = format!("$.rules[{i}]");
        let rule = want_str(row, &p, "rule")?;
        if rule != RULE_IDS[i] {
            return Err(format!(
                "{p}.rule: expected `{}`, found `{rule}`",
                RULE_IDS[i]
            ));
        }
        want_num(row, &p, "under")?;
        want_num(row, &p, "over")?;
    }
    for (i, w) in want_arr(doc, "$", "under")?.iter().enumerate() {
        let p = format!("$.under[{i}]");
        want_str(w, &p, "fingerprint")?;
        want_str(w, &p, "tag")?;
        want_str(w, &p, "rule")?;
        want_str(w, &p, "message")?;
        for (j, d) in want_arr(w, &p, "diff")?.iter().enumerate() {
            let dp = format!("{p}.diff[{j}]");
            want_str(d, &dp, "var")?;
            want_num(d, &dp, "value")?;
            want_num(d, &dp, "reference")?;
        }
        if want_arr(w, &p, "values")?
            .iter()
            .any(|v| v.as_f64().is_none())
        {
            return Err(format!("{p}.values: expected numbers"));
        }
    }
    for (i, w) in want_arr(doc, "$", "over")?.iter().enumerate() {
        let p = format!("$.over[{i}]");
        want_str(w, &p, "var")?;
        want_num(w, &p, "value")?;
        want_str(w, &p, "anchor")?;
        want_bool(w, &p, "diagnosed")?;
        for (j, b) in want_arr(w, &p, "blocking")?.iter().enumerate() {
            let bp = format!("{p}.blocking[{j}]");
            want_num(b, &bp, "index")?;
            want_str(b, &bp, "constraint")?;
            want_str(b, &bp, "rule")?;
        }
        want_removal(w, &p, "removal")?;
        if want_arr(w, &p, "values")?
            .iter()
            .any(|v| v.as_f64().is_none())
        {
            return Err(format!("{p}.values: expected numbers"));
        }
    }
    want_removal(doc, "$", "infeasible_removal")?;
    Ok(())
}
