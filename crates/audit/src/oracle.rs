//! The fault-free validity oracle: "would this CSP solution lower and
//! run on the simulated platform at all?"
//!
//! The oracle is the ground truth of the differential audit: the CSP
//! claims a set of valid schedules, the simulator knows the real one,
//! and every disagreement is a constraint-space bug. Queries go through
//! [`heron_dla::FaultyMeasurer::validate_only`], which is deliberately
//! outside the fault pipeline — an audit interleaved with a tuning
//! session never shifts the session's fault draws, retry time, or
//! quarantine statistics.

use heron_core::generate::GeneratedSpace;
use heron_csp::Solution;
use heron_dla::{FaultPlan, FaultyMeasurer, MeasureError, Measurer};
use heron_sched::Kernel;
use heron_trace::Tracer;

/// The oracle's answer for one CSP solution.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleVerdict {
    /// The solution lowers to a kernel the platform accepts.
    Valid,
    /// The solution lowers, but the kernel violates an architectural
    /// constraint (always a deterministic [`MeasureError`]).
    Invalid {
        /// The violated constraint, with its machine-readable taxonomy.
        error: MeasureError,
    },
    /// The solution does not even lower (a referenced template variable
    /// is missing from the assignment) — a space bug of its own kind.
    Unlowerable {
        /// The lowering error message.
        message: String,
    },
}

impl OracleVerdict {
    /// `true` iff the solution describes a runnable kernel.
    pub fn is_valid(&self) -> bool {
        matches!(self, OracleVerdict::Valid)
    }

    /// Machine-readable error tag (`launch.warp-limit`, `lower-error`,
    /// …); empty for valid solutions.
    pub fn tag(&self) -> String {
        match self {
            OracleVerdict::Valid => String::new(),
            OracleVerdict::Invalid { error } => error.detail_tag(),
            OracleVerdict::Unlowerable { .. } => "lower-error".into(),
        }
    }

    /// The implicated constraint rule (`C1`…`C6`) when the taxonomy
    /// knows one, `-` otherwise.
    pub fn rule(&self) -> &'static str {
        match self {
            OracleVerdict::Invalid { error } => error.rule().unwrap_or("-"),
            _ => "-",
        }
    }

    /// Human-readable description; empty for valid solutions.
    pub fn message(&self) -> String {
        match self {
            OracleVerdict::Valid => String::new(),
            OracleVerdict::Invalid { error } => error.to_string(),
            OracleVerdict::Unlowerable { message } => message.clone(),
        }
    }
}

/// Lower-and-validate oracle over one generated space.
#[derive(Debug, Clone)]
pub struct Oracle {
    space: GeneratedSpace,
    measurer: FaultyMeasurer,
    tracer: Tracer,
}

impl Oracle {
    /// Builds the oracle for `space`. The wrapped measurer carries the
    /// no-fault plan; only the fault-free `validate_only` path is used.
    pub fn new(space: &GeneratedSpace, tracer: Tracer) -> Self {
        Oracle {
            measurer: FaultyMeasurer::new(Measurer::new(space.dla.clone()), FaultPlan::none(0)),
            space: space.clone(),
            tracer,
        }
    }

    /// The audited space.
    pub fn space(&self) -> &GeneratedSpace {
        &self.space
    }

    /// Lowers `sol` through the space's kernel template, if possible.
    pub fn lower(&self, sol: &Solution) -> Result<Kernel, String> {
        let csp = &self.space.csp;
        heron_sched::lower(&self.space.template, sol.fingerprint(), &|name| {
            sol.value_by_name(csp, name)
        })
        .map_err(|e| e.to_string())
    }

    /// The oracle query: lower `sol` and run the platform's fault-free
    /// validity check. Counts one `audit.oracle_checks`.
    pub fn check(&self, sol: &Solution) -> OracleVerdict {
        self.tracer.counter_add("audit.oracle_checks", 1);
        let kernel = match self.lower(sol) {
            Ok(k) => k,
            Err(message) => return OracleVerdict::Unlowerable { message },
        };
        match self.measurer.validate_only(&kernel) {
            Ok(()) => OracleVerdict::Valid,
            Err(error) => {
                debug_assert!(!error.is_transient(), "oracle returned a transient error");
                OracleVerdict::Invalid { error }
            }
        }
    }
}
