//! `heron-audit` — differential constraint-space auditor (DESIGN.md
//! §11).
//!
//! Heron's premise is that the generated `CSP_initial` *is* the set of
//! valid schedules. This crate tests that premise in both directions
//! against the simulator's ground truth:
//!
//! * **Under-constraint probe** ([`under`]): sample diverse CSP-SAT
//!   assignments and replay each through the fault-free validity oracle
//!   ([`Oracle`]). Any CSP-SAT-but-sim-invalid point is a witness,
//!   minimized by greedy assignment-perturbation delta debugging and
//!   attributed to the implicated rule (`C1`…`C6`) via the simulator's
//!   machine-readable error taxonomy.
//! * **Over-constraint probe** ([`over`]): perturb known-valid
//!   schedules one knob at a time, re-complete them through the space's
//!   functional structure, and pin any completion the oracle still
//!   accepts back into the full CSP. A proven `RootInfeasible` is a
//!   witness — a real schedule the space cannot express — and the
//!   greedy-deletion diagnoser names the blocking constraint set.
//!
//! Results fold into a schema-versioned, byte-deterministic
//! `audit.json` ([`report::AUDIT_SCHEMA`]). The auditor's sharpness is
//! certified by the seeded single-rule mutation gate ([`mutate`]):
//! drop/tighten/widen one posted rule, and the audit must notice.

pub mod mutate;
pub mod oracle;
pub mod over;
pub mod report;
pub mod under;

pub use mutate::{certified_corpus, corpus, detects, mutated_space, CertifiedMutation};
pub use oracle::{Oracle, OracleVerdict};
pub use over::{run_over, BlockingEntry, OverOutcome, OverWitness};
pub use report::{validate_audit, AuditReport, AUDIT_SCHEMA};
pub use under::{boundary_probe, minimize, run_under, DiffEntry, UnderState, UnderWitness};

use heron_core::generate::GeneratedSpace;
use heron_csp::{diagnose_root_conflict, SolvePolicy, SolveSession};
use heron_trace::Tracer;

/// RNG stream ids (forked off the audit seed). Each phase owns a
/// stream, and resumable phases fork a per-chunk sub-stream, so partial
/// progress never shifts another phase's draws.
pub(crate) const STREAM_UNDER: u64 = 1;
pub(crate) const STREAM_MINIMIZE: u64 = 2;
pub(crate) const STREAM_ANCHOR: u64 = 3;
pub(crate) const STREAM_COMPLETE: u64 = 4;
pub(crate) const STREAM_FULLCHECK: u64 = 5;
pub(crate) const STREAM_BOUNDARY: u64 = 6;
pub(crate) const STREAM_EXTREME: u64 = 7;

/// Audit parameters. Every field participates in the determinism
/// contract: the produced report is a pure function of
/// `(space, AuditConfig)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditConfig {
    /// Master seed; every phase forks its own stream from it.
    pub seed: u64,
    /// Distinct-sample target for the under-probe.
    pub samples: usize,
    /// Samples requested per under-probe chunk (the checkpoint
    /// granularity).
    pub chunk: usize,
    /// Known-valid anchors for the over-probe.
    pub anchors: usize,
    /// Per-tunable domain values tried by the over-probe.
    pub max_domain: usize,
    /// Stored witnesses per probe (further ones are counted, not kept).
    pub max_witnesses: usize,
    /// Over-probe witnesses that get the greedy-deletion diagnosis.
    pub max_diagnoses: usize,
    /// Per-sample backtracking budget for every solve.
    pub budget: u32,
    /// Stop each probe at its first witness (the mutation gate's mode).
    pub stop_at_first: bool,
}

impl AuditConfig {
    /// The full-audit configuration `heron_audit` runs by default.
    pub fn new(seed: u64) -> Self {
        AuditConfig {
            seed,
            samples: 64,
            chunk: 16,
            anchors: 3,
            max_domain: 12,
            max_witnesses: 8,
            max_diagnoses: 4,
            budget: 4000,
            stop_at_first: false,
        }
    }

    /// The cheap detect-only configuration the mutation gate uses: stop
    /// at the first witness and skip the expensive diagnosis, but keep
    /// the full audit's probe breadth (anchors / domain coverage) so a
    /// witness the certifier can reach is reachable here too.
    pub fn gate(seed: u64) -> Self {
        AuditConfig {
            samples: 48,
            chunk: 16,
            max_witnesses: 1,
            max_diagnoses: 0,
            stop_at_first: true,
            ..AuditConfig::new(seed)
        }
    }

    /// The solve policy every audit solve uses (fixed budget — no
    /// escalation, so solve behaviour is a pure function of the seed).
    pub fn policy(&self) -> SolvePolicy {
        SolvePolicy::fixed(self.budget)
    }
}

/// Runs the full audit on `space` and assembles the report.
pub fn audit_space(space: &GeneratedSpace, cfg: &AuditConfig, tracer: &Tracer) -> AuditReport {
    let mut state = UnderState::new();
    audit_with_state(space, cfg, tracer, &mut state, None)
        .expect("un-paused audit always completes")
}

/// Resumable audit driver: advances the under-probe by at most
/// `pause_after` chunks per call (`None` = run everything). Returns
/// `None` while paused mid-sampling — persist `state` (see
/// [`UnderState::to_text`]) and call again to continue. The completed
/// report is byte-identical to an uninterrupted run's.
pub fn audit_with_state(
    space: &GeneratedSpace,
    cfg: &AuditConfig,
    tracer: &Tracer,
    state: &mut UnderState,
    pause_after: Option<usize>,
) -> Option<AuditReport> {
    let span = tracer.span_with("audit.run", || {
        [
            ("workload", space.workload.clone()),
            ("dla", space.dla.name.clone()),
            ("seed", cfg.seed.to_string()),
        ]
    });
    let mut session = SolveSession::new(&space.csp);
    let mut report = AuditReport {
        workload: space.workload.clone(),
        dla: space.dla.name.clone(),
        seed: cfg.seed,
        samples_cfg: cfg.samples,
        anchors_cfg: cfg.anchors,
        max_domain_cfg: cfg.max_domain,
        distinct: 0,
        invalid_total: 0,
        boundary_invalid: 0,
        perturbations: 0,
        anchors_used: 0,
        infeasible: false,
        infeasible_removal: Vec::new(),
        under: Vec::new(),
        over: Vec::new(),
    };
    if !session.root_feasible() {
        // The extreme over-constraint bug: the space admits nothing.
        report.infeasible = true;
        if let Some(conflict) = diagnose_root_conflict(&space.csp) {
            report.infeasible_removal = conflict
                .removal
                .iter()
                .map(|e| (e.index, e.constraint.clone()))
                .collect();
        }
        drop(span);
        return Some(report);
    }
    let oracle = Oracle::new(space, tracer.clone());
    run_under(&mut session, &oracle, cfg, state, tracer, pause_after);
    if !state.done {
        return None; // paused mid-sampling; resume with the same state
    }
    // In gate mode a sampled witness already decides the audit.
    if !cfg.stop_at_first || state.raw_witnesses.is_empty() {
        boundary_probe(&mut session, &oracle, cfg, state, tracer);
    }
    report.distinct = state.seen.len();
    report.invalid_total = state.invalid_total;
    report.boundary_invalid = state.boundary_invalid;
    report.under = minimize(&mut session, &oracle, cfg, state, tracer);
    // In gate mode an under-witness already decides the audit; skip the
    // (comparatively expensive) over-probe.
    if !cfg.stop_at_first || report.under.is_empty() {
        let over = run_over(space, &mut session, &oracle, cfg, tracer);
        report.perturbations = over.perturbations;
        report.anchors_used = over.anchors_used;
        report.over = over.witnesses;
    }
    drop(span);
    Some(report)
}
