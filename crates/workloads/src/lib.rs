//! Benchmark workloads: the operator shape suites and network layer
//! inventories the paper evaluates (Section 6.2, Table 9).
//!
//! Shape configurations follow the Ansor/AMOS benchmark suites the paper
//! reuses; network inventories list each distinct layer with its occurrence
//! count so a network's latency is the count-weighted sum of its tuned
//! layers (the paper's Figure 10 protocol with batch size 16).

use heron_tensor::ops::{self, Conv2dConfig};
use heron_tensor::{DType, Dag};

/// One operator instance (kind + shape parameters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKind {
    /// Matrix multiply `(m, n, k)`.
    Gemm {
        /// Rows of the output.
        m: i64,
        /// Columns of the output.
        n: i64,
        /// Reduction length.
        k: i64,
    },
    /// Batched matrix multiply `(batch, m, n, k)`.
    Bmm {
        /// Batch count.
        b: i64,
        /// Rows.
        m: i64,
        /// Columns.
        n: i64,
        /// Reduction length.
        k: i64,
    },
    /// Matrix-vector product `(m, k)` with `b` stacked vectors.
    Gemv {
        /// Rows.
        m: i64,
        /// Reduction length.
        k: i64,
        /// Stacked vectors.
        b: i64,
    },
    /// 1-D convolution.
    C1d {
        /// Batch.
        n: i64,
        /// Input length.
        l: i64,
        /// Input channels.
        ci: i64,
        /// Output channels.
        co: i64,
        /// Kernel size.
        k: i64,
        /// Stride.
        s: i64,
        /// Padding.
        p: i64,
    },
    /// 2-D convolution.
    C2d(Conv2dConfig),
    /// Depthwise 2-D convolution (extension beyond the paper's nine ops).
    Dw(Conv2dConfig),
    /// 3-D convolution (cubic volume and kernel).
    C3d {
        /// Batch.
        n: i64,
        /// Depth (frames).
        d: i64,
        /// Height/width.
        hw: i64,
        /// Input channels.
        ci: i64,
        /// Output channels.
        co: i64,
        /// Kernel size.
        k: i64,
        /// Stride.
        s: i64,
        /// Padding.
        p: i64,
    },
    /// Transposed 2-D convolution.
    T2d(Conv2dConfig),
    /// Dilated 2-D convolution.
    Dil(Conv2dConfig, i64),
    /// Prefix scan.
    Scan {
        /// Batch.
        b: i64,
        /// Sequence length.
        l: i64,
    },
}

/// A named workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// Short identifier (`G1`, `C2D-2`, `resnet.conv3`, …).
    pub name: String,
    /// Operator kind and shape.
    pub kind: OpKind,
}

impl Workload {
    /// Creates a named workload.
    pub fn new(name: impl Into<String>, kind: OpKind) -> Self {
        Workload {
            name: name.into(),
            kind,
        }
    }

    /// Builds the compute DAG with the given input element type.
    pub fn build(&self, dtype: DType) -> Dag {
        match &self.kind {
            OpKind::Gemm { m, n, k } => ops::gemm_dtyped(*m, *n, *k, dtype),
            OpKind::Bmm { b, m, n, k } => ops::bmm_dtyped(*b, *m, *n, *k, dtype),
            OpKind::Gemv { m, k, b } => ops::gemv(*m, *k, *b),
            OpKind::C1d {
                n,
                l,
                ci,
                co,
                k,
                s,
                p,
            } => ops::conv1d(*n, *l, *ci, *co, *k, *p, *s),
            OpKind::C2d(cfg) => ops::conv2d(cfg.with_dtype(dtype)),
            OpKind::Dw(cfg) => ops::depthwise_conv2d(cfg.with_dtype(dtype)),
            OpKind::C3d {
                n,
                d,
                hw,
                ci,
                co,
                k,
                s,
                p,
            } => ops::conv3d(*n, *d, *hw, *hw, *ci, *co, *k, *p, *s),
            OpKind::T2d(cfg) => ops::t2d(cfg.with_dtype(dtype)),
            OpKind::Dil(cfg, dil) => ops::dil(cfg.with_dtype(dtype), *dil),
            OpKind::Scan { b, l } => ops::scan(*b, *l),
        }
    }
}

/// Table 9's GEMM configurations G1–G5.
pub fn table9_gemm() -> Vec<Workload> {
    [
        ("G1", 1024, 1024, 1024),
        ("G2", 4096, 4096, 4096),
        ("G3", 32, 1000, 2048),
        ("G4", 32, 4096, 4096),
        ("G5", 32, 1000, 4096),
    ]
    .into_iter()
    .map(|(n, m, nn, k)| Workload::new(n, OpKind::Gemm { m, n: nn, k }))
    .collect()
}

/// Table 9's C2D configurations C1–C5.
pub fn table9_c2d() -> Vec<Workload> {
    [
        ("C1", 1, 56, 56, 64, 64, 1, 0, 1),
        ("C2", 8, 28, 28, 512, 128, 1, 1, 1),
        ("C3", 16, 14, 14, 1024, 512, 1, 0, 2),
        ("C4", 32, 7, 7, 512, 512, 3, 0, 1),
        ("C5", 32, 14, 14, 256, 256, 3, 1, 1),
    ]
    .into_iter()
    .map(|(name, n, h, w, ci, co, kk, p, s)| {
        Workload::new(
            name,
            OpKind::C2d(Conv2dConfig::new(n, h, w, ci, co, kk, kk, p, s)),
        )
    })
    .collect()
}

/// Shape suite for one of the nine evaluated operators.
///
/// # Panics
/// Panics on an unknown operator name.
pub fn operator_suite(op: &str) -> Vec<Workload> {
    let c2 = |name: &str, n, h, w, ci, co, k, p, s| {
        Workload::new(
            name,
            OpKind::C2d(Conv2dConfig::new(n, h, w, ci, co, k, k, p, s)),
        )
    };
    match op {
        "GEMM" => {
            let mut v = table9_gemm();
            v.push(Workload::new(
                "G6",
                OpKind::Gemm {
                    m: 512,
                    n: 512,
                    k: 512,
                },
            ));
            v.push(Workload::new(
                "G7",
                OpKind::Gemm {
                    m: 16,
                    n: 512,
                    k: 128,
                },
            ));
            v
        }
        "BMM" => vec![
            Workload::new(
                "B1",
                OpKind::Bmm {
                    b: 16,
                    m: 512,
                    n: 512,
                    k: 64,
                },
            ),
            Workload::new(
                "B2",
                OpKind::Bmm {
                    b: 16,
                    m: 512,
                    n: 64,
                    k: 512,
                },
            ),
            Workload::new(
                "B3",
                OpKind::Bmm {
                    b: 192,
                    m: 128,
                    n: 128,
                    k: 64,
                },
            ),
            Workload::new(
                "B4",
                OpKind::Bmm {
                    b: 192,
                    m: 128,
                    n: 64,
                    k: 128,
                },
            ),
            Workload::new(
                "B5",
                OpKind::Bmm {
                    b: 8,
                    m: 1024,
                    n: 1024,
                    k: 64,
                },
            ),
            Workload::new(
                "B6",
                OpKind::Bmm {
                    b: 16,
                    m: 128,
                    n: 128,
                    k: 128,
                },
            ),
        ],
        "GEMV" => vec![
            Workload::new(
                "V1",
                OpKind::Gemv {
                    m: 1024,
                    k: 1024,
                    b: 1,
                },
            ),
            Workload::new(
                "V2",
                OpKind::Gemv {
                    m: 4096,
                    k: 4096,
                    b: 1,
                },
            ),
            Workload::new(
                "V3",
                OpKind::Gemv {
                    m: 1000,
                    k: 2048,
                    b: 1,
                },
            ),
            Workload::new(
                "V4",
                OpKind::Gemv {
                    m: 2048,
                    k: 512,
                    b: 8,
                },
            ),
            Workload::new(
                "V5",
                OpKind::Gemv {
                    m: 512,
                    k: 2048,
                    b: 8,
                },
            ),
            Workload::new(
                "V6",
                OpKind::Gemv {
                    m: 1024,
                    k: 4096,
                    b: 4,
                },
            ),
        ],
        "C1D" => vec![
            Workload::new(
                "D1",
                OpKind::C1d {
                    n: 1,
                    l: 256,
                    ci: 64,
                    co: 128,
                    k: 3,
                    s: 2,
                    p: 1,
                },
            ),
            Workload::new(
                "D2",
                OpKind::C1d {
                    n: 1,
                    l: 256,
                    ci: 64,
                    co: 128,
                    k: 1,
                    s: 1,
                    p: 0,
                },
            ),
            Workload::new(
                "D3",
                OpKind::C1d {
                    n: 8,
                    l: 128,
                    ci: 128,
                    co: 256,
                    k: 3,
                    s: 1,
                    p: 1,
                },
            ),
            Workload::new(
                "D4",
                OpKind::C1d {
                    n: 16,
                    l: 64,
                    ci: 256,
                    co: 256,
                    k: 5,
                    s: 1,
                    p: 2,
                },
            ),
            Workload::new(
                "D5",
                OpKind::C1d {
                    n: 16,
                    l: 512,
                    ci: 32,
                    co: 64,
                    k: 3,
                    s: 1,
                    p: 1,
                },
            ),
            Workload::new(
                "D6",
                OpKind::C1d {
                    n: 4,
                    l: 1024,
                    ci: 64,
                    co: 64,
                    k: 7,
                    s: 2,
                    p: 3,
                },
            ),
        ],
        "C2D" => {
            let mut v = table9_c2d();
            v.push(c2("C6", 16, 56, 56, 64, 64, 3, 1, 1));
            v.push(c2("C7", 16, 28, 28, 128, 128, 3, 1, 2));
            v
        }
        "C3D" => vec![
            Workload::new(
                "E1",
                OpKind::C3d {
                    n: 1,
                    d: 16,
                    hw: 28,
                    ci: 64,
                    co: 64,
                    k: 3,
                    s: 1,
                    p: 1,
                },
            ),
            Workload::new(
                "E2",
                OpKind::C3d {
                    n: 1,
                    d: 16,
                    hw: 14,
                    ci: 128,
                    co: 256,
                    k: 3,
                    s: 1,
                    p: 1,
                },
            ),
            Workload::new(
                "E3",
                OpKind::C3d {
                    n: 8,
                    d: 8,
                    hw: 28,
                    ci: 64,
                    co: 64,
                    k: 3,
                    s: 2,
                    p: 1,
                },
            ),
            Workload::new(
                "E4",
                OpKind::C3d {
                    n: 1,
                    d: 32,
                    hw: 56,
                    ci: 16,
                    co: 32,
                    k: 3,
                    s: 1,
                    p: 1,
                },
            ),
            Workload::new(
                "E5",
                OpKind::C3d {
                    n: 4,
                    d: 16,
                    hw: 14,
                    ci: 256,
                    co: 256,
                    k: 1,
                    s: 1,
                    p: 0,
                },
            ),
            Workload::new(
                "E6",
                OpKind::C3d {
                    n: 2,
                    d: 8,
                    hw: 28,
                    ci: 128,
                    co: 128,
                    k: 3,
                    s: 1,
                    p: 1,
                },
            ),
        ],
        "T2D" => vec![
            Workload::new(
                "T1",
                OpKind::T2d(Conv2dConfig::new(1, 4, 4, 512, 256, 4, 4, 1, 2)),
            ),
            Workload::new(
                "T2",
                OpKind::T2d(Conv2dConfig::new(1, 8, 8, 256, 128, 4, 4, 1, 2)),
            ),
            Workload::new(
                "T3",
                OpKind::T2d(Conv2dConfig::new(1, 16, 16, 128, 64, 4, 4, 1, 2)),
            ),
            Workload::new(
                "T4",
                OpKind::T2d(Conv2dConfig::new(8, 32, 32, 64, 3, 4, 4, 1, 2)),
            ),
            Workload::new(
                "T5",
                OpKind::T2d(Conv2dConfig::new(16, 8, 8, 128, 128, 4, 4, 1, 2)),
            ),
            Workload::new(
                "T6",
                OpKind::T2d(Conv2dConfig::new(4, 16, 16, 64, 64, 4, 4, 1, 2)),
            ),
        ],
        "DIL" => vec![
            Workload::new(
                "L1",
                OpKind::Dil(Conv2dConfig::new(1, 56, 56, 64, 64, 3, 3, 2, 1), 2),
            ),
            Workload::new(
                "L2",
                OpKind::Dil(Conv2dConfig::new(8, 28, 28, 128, 128, 3, 3, 2, 1), 2),
            ),
            Workload::new(
                "L3",
                OpKind::Dil(Conv2dConfig::new(16, 14, 14, 256, 256, 3, 3, 2, 1), 2),
            ),
            Workload::new(
                "L4",
                OpKind::Dil(Conv2dConfig::new(1, 28, 28, 256, 256, 3, 3, 4, 1), 4),
            ),
            Workload::new(
                "L5",
                OpKind::Dil(Conv2dConfig::new(4, 56, 56, 32, 64, 3, 3, 2, 1), 2),
            ),
            Workload::new(
                "L6",
                OpKind::Dil(Conv2dConfig::new(2, 14, 14, 512, 512, 3, 3, 2, 1), 2),
            ),
        ],
        "SCAN" => vec![
            Workload::new("S1", OpKind::Scan { b: 16, l: 512 }),
            Workload::new("S2", OpKind::Scan { b: 16, l: 1024 }),
            Workload::new("S3", OpKind::Scan { b: 64, l: 256 }),
            Workload::new("S4", OpKind::Scan { b: 128, l: 128 }),
            Workload::new("S5", OpKind::Scan { b: 4, l: 2048 }),
            Workload::new("S6", OpKind::Scan { b: 32, l: 512 }),
        ],
        other => panic!("unknown operator suite `{other}`"),
    }
}

/// The nine operator names of the evaluation, in the paper's order.
pub fn operator_names() -> [&'static str; 9] {
    [
        "GEMM", "C1D", "C2D", "C3D", "T2D", "DIL", "BMM", "GEMV", "SCAN",
    ]
}

/// Network layer inventory: each distinct layer with its occurrence count.
///
/// # Panics
/// Panics on an unknown network name.
pub fn network(name: &str) -> Vec<(Workload, usize)> {
    let bs = 16; // the paper's batch size
    let c2 = |tag: &str, h, w, ci, co, k, p, s| {
        Workload::new(
            tag,
            OpKind::C2d(Conv2dConfig::new(bs, h, w, ci, co, k, k, p, s)),
        )
    };
    match name {
        "resnet-50" => vec![
            (c2("r.stem", 224, 224, 3, 64, 7, 3, 2), 1),
            (c2("r.c2a", 56, 56, 64, 64, 1, 0, 1), 9),
            (c2("r.c2b", 56, 56, 64, 64, 3, 1, 1), 3),
            (c2("r.c2c", 56, 56, 64, 256, 1, 0, 1), 3),
            (c2("r.c3a", 28, 28, 256, 128, 1, 0, 1), 4),
            (c2("r.c3b", 28, 28, 128, 128, 3, 1, 1), 4),
            (c2("r.c3c", 28, 28, 128, 512, 1, 0, 1), 4),
            (c2("r.c4a", 14, 14, 512, 256, 1, 0, 1), 6),
            (c2("r.c4b", 14, 14, 256, 256, 3, 1, 1), 6),
            (c2("r.c4c", 14, 14, 256, 1024, 1, 0, 1), 6),
            (c2("r.c5a", 7, 7, 1024, 512, 1, 0, 1), 3),
            (c2("r.c5b", 7, 7, 512, 512, 3, 1, 1), 3),
            (c2("r.c5c", 7, 7, 512, 2048, 1, 0, 1), 3),
            (
                Workload::new(
                    "r.fc",
                    OpKind::Gemm {
                        m: bs,
                        n: 1000,
                        k: 2048,
                    },
                ),
                1,
            ),
        ],
        "inception-v3" => vec![
            (c2("i.stem1", 149, 149, 3, 32, 3, 0, 2), 1),
            (c2("i.stem2", 147, 147, 32, 64, 3, 1, 1), 1),
            (c2("i.a1x1", 35, 35, 192, 64, 1, 0, 1), 3),
            (c2("i.a5x5", 35, 35, 48, 64, 5, 2, 1), 3),
            (c2("i.a3x3", 35, 35, 64, 96, 3, 1, 1), 6),
            (c2("i.b1x1", 17, 17, 768, 192, 1, 0, 1), 8),
            (c2("i.b7x1", 17, 17, 128, 128, 7, 3, 1), 8),
            (c2("i.c1x1", 8, 8, 1280, 320, 1, 0, 1), 2),
            (c2("i.c3x3", 8, 8, 384, 384, 3, 1, 1), 4),
            (
                Workload::new(
                    "i.fc",
                    OpKind::Gemm {
                        m: bs,
                        n: 1000,
                        k: 2048,
                    },
                ),
                1,
            ),
        ],
        "vgg-16" => vec![
            (c2("v.c1", 224, 224, 3, 64, 3, 1, 1), 1),
            (c2("v.c2", 224, 224, 64, 64, 3, 1, 1), 1),
            (c2("v.c3", 112, 112, 64, 128, 3, 1, 1), 1),
            (c2("v.c4", 112, 112, 128, 128, 3, 1, 1), 1),
            (c2("v.c5", 56, 56, 128, 256, 3, 1, 1), 1),
            (c2("v.c6", 56, 56, 256, 256, 3, 1, 1), 2),
            (c2("v.c7", 28, 28, 256, 512, 3, 1, 1), 1),
            (c2("v.c8", 28, 28, 512, 512, 3, 1, 1), 2),
            (c2("v.c9", 14, 14, 512, 512, 3, 1, 1), 3),
            (
                Workload::new(
                    "v.fc1",
                    OpKind::Gemm {
                        m: bs,
                        n: 4096,
                        k: 25088,
                    },
                ),
                1,
            ),
            (
                Workload::new(
                    "v.fc2",
                    OpKind::Gemm {
                        m: bs,
                        n: 4096,
                        k: 4096,
                    },
                ),
                1,
            ),
            (
                Workload::new(
                    "v.fc3",
                    OpKind::Gemm {
                        m: bs,
                        n: 1000,
                        k: 4096,
                    },
                ),
                1,
            ),
        ],
        "bert" => {
            let seq = 128;
            let hidden = 768;
            let heads = 12;
            vec![
                (
                    Workload::new(
                        "b.qkv",
                        OpKind::Gemm {
                            m: bs * seq,
                            n: 3 * hidden,
                            k: hidden,
                        },
                    ),
                    24,
                ),
                (
                    Workload::new(
                        "b.attn_qk",
                        OpKind::Bmm {
                            b: bs * heads,
                            m: seq,
                            n: seq,
                            k: hidden / heads,
                        },
                    ),
                    24,
                ),
                (
                    Workload::new(
                        "b.attn_v",
                        OpKind::Bmm {
                            b: bs * heads,
                            m: seq,
                            n: hidden / heads,
                            k: seq,
                        },
                    ),
                    24,
                ),
                (
                    Workload::new(
                        "b.proj",
                        OpKind::Gemm {
                            m: bs * seq,
                            n: hidden,
                            k: hidden,
                        },
                    ),
                    24,
                ),
                (
                    Workload::new(
                        "b.ffn1",
                        OpKind::Gemm {
                            m: bs * seq,
                            n: 4 * hidden,
                            k: hidden,
                        },
                    ),
                    24,
                ),
                (
                    Workload::new(
                        "b.ffn2",
                        OpKind::Gemm {
                            m: bs * seq,
                            n: hidden,
                            k: 4 * hidden,
                        },
                    ),
                    24,
                ),
            ]
        }
        other => panic!("unknown network `{other}`"),
    }
}

/// The four evaluated networks.
pub fn network_names() -> [&'static str; 4] {
    ["resnet-50", "inception-v3", "vgg-16", "bert"]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_operator_suites_build() {
        for op in operator_names() {
            let suite = operator_suite(op);
            assert!(suite.len() >= 5, "{op} suite too small");
            for w in &suite {
                let dag = w.build(DType::F16);
                assert!(dag.total_flops() > 0, "{} has no work", w.name);
            }
        }
    }

    #[test]
    fn table9_matches_paper() {
        let g = table9_gemm();
        assert_eq!(g.len(), 5);
        assert_eq!(
            g[2].kind,
            OpKind::Gemm {
                m: 32,
                n: 1000,
                k: 2048
            }
        );
        let c = table9_c2d();
        assert_eq!(c.len(), 5);
        match &c[3].kind {
            OpKind::C2d(cfg) => {
                assert_eq!((cfg.batch, cfg.kh, cfg.stride), (32, 3, 1));
            }
            other => panic!("C4 is a conv: {other:?}"),
        }
    }

    #[test]
    fn networks_build_and_have_counts() {
        for name in network_names() {
            let layers = network(name);
            assert!(layers.len() >= 6, "{name} too small");
            let total: usize = layers.iter().map(|(_, c)| c).sum();
            assert!(total >= 10, "{name} layer count {total}");
            for (w, _) in &layers {
                let dag = w.build(DType::F16);
                assert!(dag.total_flops() > 0);
            }
        }
    }

    #[test]
    fn workload_names_unique_within_suite() {
        for op in operator_names() {
            let suite = operator_suite(op);
            let mut names: Vec<&str> = suite.iter().map(|w| w.name.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), suite.len());
        }
    }
}
