//! Property tests of the cost model: single trees interpolate within the
//! target envelope; boosting reduces training error; importances are a
//! probability vector.

use heron_cost::tree::TreeParams;
use heron_cost::{Gbdt, GbdtParams, RegressionTree};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0, -5.0f64..5.0), 8..64).prop_map(
        |rows| {
            let x: Vec<Vec<f64>> = rows.iter().map(|(a, b, _)| vec![*a, *b]).collect();
            let y: Vec<f64> = rows.iter().map(|(a, b, n)| a * 2.0 - b + n).collect();
            (x, y)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A single tree's predictions stay inside [min(y), max(y)] (leaves
    /// are means of subsets).
    #[test]
    fn tree_predicts_within_envelope((x, y) in dataset(), qa in 0.0f64..10.0, qb in 0.0f64..10.0) {
        let rows: Vec<usize> = (0..x.len()).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let t = RegressionTree::fit(&x, &y, &rows, &TreeParams::default(), &mut rng);
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let p = t.predict(&[qa, qb]);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
    }

    /// Boosting does not increase training MSE relative to the constant
    /// (mean) predictor.
    #[test]
    fn boosting_beats_constant_predictor((x, y) in dataset()) {
        let mut rng = StdRng::seed_from_u64(1);
        let params = GbdtParams {
            n_trees: 16,
            learning_rate: 0.3,
            subsample: 1.0,
            tree: TreeParams { max_depth: 3, min_split: 2, feature_sample: 0 },
        };
        let m = Gbdt::fit(&x, &y, &params, &mut rng);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let base_mse: f64 =
            y.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / y.len() as f64;
        let mse: f64 = x
            .iter()
            .zip(&y)
            .map(|(r, t)| {
                let p = m.predict(r);
                (p - t) * (p - t)
            })
            .sum::<f64>()
            / y.len() as f64;
        prop_assert!(mse <= base_mse + 1e-9, "boosted {mse} > baseline {base_mse}");
    }

    /// Feature importances are non-negative and sum to one (or all-zero
    /// when no split was made).
    #[test]
    fn importances_form_distribution((x, y) in dataset()) {
        let mut rng = StdRng::seed_from_u64(2);
        let m = Gbdt::fit(&x, &y, &GbdtParams::default(), &mut rng);
        let imp = m.feature_importance();
        prop_assert_eq!(imp.len(), 2);
        prop_assert!(imp.iter().all(|&v| v >= 0.0));
        let total: f64 = imp.iter().sum();
        prop_assert!(total.abs() < 1e-9 || (total - 1.0).abs() < 1e-9);
        // top_features is consistent with the importances.
        let top = m.top_features(2);
        prop_assert_eq!(top.len(), 2);
        prop_assert!(imp[top[0]] >= imp[top[1]]);
    }
}
