//! Property tests of the cost model: single trees interpolate within the
//! target envelope; boosting reduces training error; importances are a
//! probability vector. (heron-testkit harness; see DESIGN.md,
//! "Zero-dependency & determinism policy".)

use heron_cost::tree::TreeParams;
use heron_cost::{Gbdt, GbdtParams, RegressionTree};
use heron_rng::HeronRng;
use heron_testkit::{property_cases, Gen};

/// A linear-plus-noise dataset: y = 2a − b + n, 8–63 rows.
fn dataset(g: &mut Gen) -> (Vec<Vec<f64>>, Vec<f64>) {
    let rows = g.vec(8, 63, |g| {
        (
            g.f64_in(0.0, 10.0),
            g.f64_in(0.0, 10.0),
            g.f64_in(-5.0, 5.0),
        )
    });
    let x: Vec<Vec<f64>> = rows.iter().map(|(a, b, _)| vec![*a, *b]).collect();
    let y: Vec<f64> = rows.iter().map(|(a, b, n)| a * 2.0 - b + n).collect();
    (x, y)
}

/// A single tree's predictions stay inside [min(y), max(y)] (leaves
/// are means of subsets).
#[test]
fn tree_predicts_within_envelope() {
    property_cases("tree_predicts_within_envelope", 64, |g| {
        let (x, y) = dataset(g);
        let qa = g.f64_in(0.0, 10.0);
        let qb = g.f64_in(0.0, 10.0);
        let rows: Vec<usize> = (0..x.len()).collect();
        let mut rng = HeronRng::from_seed(0);
        let t = RegressionTree::fit(&x, &y, &rows, &TreeParams::default(), &mut rng);
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let p = t.predict(&[qa, qb]);
        assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
    });
}

/// Boosting does not increase training MSE relative to the constant
/// (mean) predictor.
#[test]
fn boosting_beats_constant_predictor() {
    property_cases("boosting_beats_constant_predictor", 64, |g| {
        let (x, y) = dataset(g);
        let mut rng = HeronRng::from_seed(1);
        let params = GbdtParams {
            n_trees: 16,
            learning_rate: 0.3,
            subsample: 1.0,
            tree: TreeParams {
                max_depth: 3,
                min_split: 2,
                feature_sample: 0,
            },
        };
        let m = Gbdt::fit(&x, &y, &params, &mut rng);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let base_mse: f64 = y.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / y.len() as f64;
        let mse: f64 = x
            .iter()
            .zip(&y)
            .map(|(r, t)| {
                let p = m.predict(r);
                (p - t) * (p - t)
            })
            .sum::<f64>()
            / y.len() as f64;
        assert!(
            mse <= base_mse + 1e-9,
            "boosted {mse} > baseline {base_mse}"
        );
    });
}

/// Feature importances are non-negative and sum to one (or all-zero
/// when no split was made).
#[test]
fn importances_form_distribution() {
    property_cases("importances_form_distribution", 64, |g| {
        let (x, y) = dataset(g);
        let mut rng = HeronRng::from_seed(2);
        let m = Gbdt::fit(&x, &y, &GbdtParams::default(), &mut rng);
        let imp = m.feature_importance();
        assert_eq!(imp.len(), 2);
        assert!(imp.iter().all(|&v| v >= 0.0));
        let total: f64 = imp.iter().sum();
        assert!(total.abs() < 1e-9 || (total - 1.0).abs() < 1e-9);
        // top_features is consistent with the importances.
        let top = m.top_features(2);
        assert_eq!(top.len(), 2);
        assert!(imp[top[0]] >= imp[top[1]]);
    });
}
