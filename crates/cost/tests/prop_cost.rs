//! Property tests of the cost model: single trees interpolate within the
//! target envelope; boosting reduces training error; importances are a
//! probability vector. (heron-testkit harness; see DESIGN.md,
//! "Zero-dependency & determinism policy".)

use heron_cost::tree::TreeParams;
use heron_cost::{Gbdt, GbdtParams, RegressionTree};
use heron_rng::HeronRng;
use heron_testkit::{property_cases, Gen};

/// A linear-plus-noise dataset: y = 2a − b + n, 8–63 rows.
fn dataset(g: &mut Gen) -> (Vec<Vec<f64>>, Vec<f64>) {
    let rows = g.vec(8, 63, |g| {
        (
            g.f64_in(0.0, 10.0),
            g.f64_in(0.0, 10.0),
            g.f64_in(-5.0, 5.0),
        )
    });
    let x: Vec<Vec<f64>> = rows.iter().map(|(a, b, _)| vec![*a, *b]).collect();
    let y: Vec<f64> = rows.iter().map(|(a, b, n)| a * 2.0 - b + n).collect();
    (x, y)
}

/// A single tree's predictions stay inside [min(y), max(y)] (leaves
/// are means of subsets).
#[test]
fn tree_predicts_within_envelope() {
    property_cases("tree_predicts_within_envelope", 64, |g| {
        let (x, y) = dataset(g);
        let qa = g.f64_in(0.0, 10.0);
        let qb = g.f64_in(0.0, 10.0);
        let rows: Vec<usize> = (0..x.len()).collect();
        let mut rng = HeronRng::from_seed(0);
        let t = RegressionTree::fit(&x, &y, &rows, &TreeParams::default(), &mut rng);
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let p = t.predict(&[qa, qb]);
        assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
    });
}

/// Boosting does not increase training MSE relative to the constant
/// (mean) predictor.
#[test]
fn boosting_beats_constant_predictor() {
    property_cases("boosting_beats_constant_predictor", 64, |g| {
        let (x, y) = dataset(g);
        let mut rng = HeronRng::from_seed(1);
        let params = GbdtParams {
            n_trees: 16,
            learning_rate: 0.3,
            subsample: 1.0,
            tree: TreeParams {
                max_depth: 3,
                min_split: 2,
                feature_sample: 0,
            },
        };
        let m = Gbdt::fit(&x, &y, &params, &mut rng);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let base_mse: f64 = y.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / y.len() as f64;
        let mse: f64 = x
            .iter()
            .zip(&y)
            .map(|(r, t)| {
                let p = m.predict(r);
                (p - t) * (p - t)
            })
            .sum::<f64>()
            / y.len() as f64;
        assert!(
            mse <= base_mse + 1e-9,
            "boosted {mse} > baseline {base_mse}"
        );
    });
}

/// Feature importances are non-negative and sum to one (or all-zero
/// when no split was made).
#[test]
fn importances_form_distribution() {
    property_cases("importances_form_distribution", 64, |g| {
        let (x, y) = dataset(g);
        let mut rng = HeronRng::from_seed(2);
        let m = Gbdt::fit(&x, &y, &GbdtParams::default(), &mut rng);
        let imp = m.feature_importance();
        assert_eq!(imp.len(), 2);
        assert!(imp.iter().all(|&v| v >= 0.0));
        let total: f64 = imp.iter().sum();
        assert!(total.abs() < 1e-9 || (total - 1.0).abs() < 1e-9);
        // top_features is consistent with the importances.
        let top = m.top_features(2);
        assert_eq!(top.len(), 2);
        assert!(imp[top[0]] >= imp[top[1]]);
    });
}

/// A vector of scores where some entries may be NaN/±∞ and ties are
/// common (small integer grid).
fn noisy_scores(g: &mut Gen, n: usize) -> Vec<f64> {
    (0..n)
        .map(|_| match g.choice(10) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            _ => g.int_inclusive(0, 5) as f64,
        })
        .collect()
}

/// `pairwise_rank_accuracy` is bounded, NaN-proof, symmetric under
/// jointly reversing both inputs, and scores a perfect copy of a
/// tie-free truth at exactly 1.
#[test]
fn rank_accuracy_contract() {
    use heron_cost::pairwise_rank_accuracy;
    property_cases("rank_accuracy_contract", 128, |g| {
        let n = g.index(0, 17);
        let truth = noisy_scores(g, n);
        let pred = noisy_scores(g, n);
        let acc = pairwise_rank_accuracy(&pred, &truth);
        assert!((0.0..=1.0).contains(&acc), "acc {acc} out of range");
        assert!(acc.is_finite());
        // Reversing both sequences preserves every pairwise relation.
        let rt: Vec<f64> = truth.iter().rev().copied().collect();
        let rp: Vec<f64> = pred.iter().rev().copied().collect();
        assert_eq!(acc, pairwise_rank_accuracy(&rp, &rt));
        // Perfect predictor on a strict (finite, tie-free) truth.
        let strict: Vec<f64> = (0..n).map(|i| i as f64).collect();
        assert_eq!(
            pairwise_rank_accuracy(&strict, &strict),
            if n < 2 { 0.5 } else { 1.0 }
        );
    });
}

/// `spearman_rho` is bounded, finite on arbitrary (NaN-laced) input,
/// +1 on any strictly increasing finite pairing and −1 on its reverse.
#[test]
fn spearman_contract() {
    use heron_cost::spearman_rho;
    property_cases("spearman_contract", 128, |g| {
        let n = g.index(0, 17);
        let truth = noisy_scores(g, n);
        let pred = noisy_scores(g, n);
        let rho = spearman_rho(&pred, &truth);
        assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&rho), "rho {rho}");
        assert!(rho.is_finite());
        // Monotone transforms of a strict sequence give rho = ±1.
        if n >= 2 {
            let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let up: Vec<f64> = xs.iter().map(|x| x * x + 3.0).collect();
            let down: Vec<f64> = xs.iter().map(|x| -x).collect();
            assert!((spearman_rho(&up, &xs) - 1.0).abs() < 1e-12);
            assert!((spearman_rho(&down, &xs) + 1.0).abs() < 1e-12);
        }
    });
}
