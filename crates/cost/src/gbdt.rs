//! Gradient boosting over regression trees (squared loss).

use heron_rng::Rng;
use heron_trace::Tracer;

use crate::tree::{RegressionTree, TreeParams};

/// Boosting hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct GbdtParams {
    /// Number of boosting rounds.
    pub n_trees: usize,
    /// Shrinkage (learning rate).
    pub learning_rate: f64,
    /// Row subsample fraction per round.
    pub subsample: f64,
    /// Per-tree structural parameters.
    pub tree: TreeParams,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams {
            n_trees: 24,
            learning_rate: 0.3,
            subsample: 0.9,
            tree: TreeParams {
                max_depth: 4,
                min_split: 4,
                feature_sample: 48,
            },
        }
    }
}

/// A fitted gradient-boosted model.
#[derive(Debug, Clone)]
pub struct Gbdt {
    base: f64,
    learning_rate: f64,
    trees: Vec<RegressionTree>,
    num_features: usize,
}

impl Gbdt {
    /// Fits the model to `(x, y)` with squared loss.
    ///
    /// # Panics
    /// Panics if `x` is empty, ragged, or `x.len() != y.len()`.
    pub fn fit<R: Rng>(x: &[Vec<f64>], y: &[f64], params: &GbdtParams, rng: &mut R) -> Self {
        Gbdt::fit_traced(x, y, params, rng, &Tracer::disabled())
    }

    /// [`Gbdt::fit`] under a `cost.fit` span, recording the counter
    /// `cost.fits` and the wall-time histogram `cost.fit_ms` on `tracer`.
    /// The tracer never draws from `rng`, so traced and untraced fits
    /// produce identical models.
    ///
    /// # Panics
    /// Same conditions as [`Gbdt::fit`].
    pub fn fit_traced<R: Rng>(
        x: &[Vec<f64>],
        y: &[f64],
        params: &GbdtParams,
        rng: &mut R,
        tracer: &Tracer,
    ) -> Self {
        let span = tracer.span_with("cost.fit", || {
            [
                ("rows", x.len().to_string()),
                ("trees", params.n_trees.to_string()),
            ]
        });
        let wall = std::time::Instant::now();
        let model = Gbdt::fit_inner(x, y, params, rng);
        tracer.counter_add("cost.fits", 1);
        tracer.hist_record("cost.fit_ms", wall.elapsed().as_secs_f64() * 1e3);
        drop(span);
        model
    }

    fn fit_inner<R: Rng>(x: &[Vec<f64>], y: &[f64], params: &GbdtParams, rng: &mut R) -> Self {
        assert!(!x.is_empty(), "cannot fit to zero samples");
        assert_eq!(x.len(), y.len(), "feature/target length mismatch");
        let num_features = x[0].len();
        assert!(
            x.iter().all(|r| r.len() == num_features),
            "ragged feature matrix"
        );

        let base = y.iter().sum::<f64>() / y.len() as f64;
        let mut preds = vec![base; y.len()];
        let mut trees = Vec::with_capacity(params.n_trees);
        for _ in 0..params.n_trees {
            let residuals: Vec<f64> = y.iter().zip(&preds).map(|(t, p)| t - p).collect();
            let rows: Vec<usize> = (0..x.len())
                .filter(|_| rng.random::<f64>() < params.subsample)
                .collect();
            let rows = if rows.is_empty() {
                (0..x.len()).collect()
            } else {
                rows
            };
            let tree = RegressionTree::fit(x, &residuals, &rows, &params.tree, rng);
            for (i, row) in x.iter().enumerate() {
                preds[i] += params.learning_rate * tree.predict(row);
            }
            trees.push(tree);
        }
        Gbdt {
            base,
            learning_rate: params.learning_rate,
            trees,
            num_features,
        }
    }

    /// Predicted target for one feature vector.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let boost: f64 = self.trees.iter().map(|t| t.predict(row)).sum();
        self.base + self.learning_rate * boost
    }

    /// Predictions for a batch.
    pub fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict(r)).collect()
    }

    /// Gain-based feature importance, normalised to sum to 1 (all zeros if
    /// no split was ever made).
    pub fn feature_importance(&self) -> Vec<f64> {
        let mut acc = vec![0.0; self.num_features];
        for t in &self.trees {
            t.accumulate_importance(&mut acc);
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for a in &mut acc {
                *a /= total;
            }
        }
        acc
    }

    /// Indices of the `k` most important features, descending.
    pub fn top_features(&self, k: usize) -> Vec<usize> {
        let imp = self.feature_importance();
        let mut idx: Vec<usize> = (0..imp.len()).collect();
        idx.sort_by(|&a, &b| imp[b].total_cmp(&imp[a]));
        idx.truncate(k);
        idx
    }

    /// Number of fitted trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heron_rng::HeronRng;

    fn toy() -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 2*x0 - x1, x2 noise-like but deterministic.
        let x: Vec<Vec<f64>> = (0..128)
            .map(|i| {
                vec![
                    (i % 8) as f64,
                    ((i / 8) % 4) as f64,
                    ((i * 37) % 11) as f64 / 11.0,
                ]
            })
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0] - r[1]).collect();
        (x, y)
    }

    #[test]
    fn fits_linear_signal() {
        let (x, y) = toy();
        let mut rng = HeronRng::from_seed(7);
        let params = GbdtParams {
            n_trees: 40,
            learning_rate: 0.3,
            subsample: 1.0,
            tree: TreeParams {
                max_depth: 4,
                min_split: 2,
                feature_sample: 0,
            },
        };
        let m = Gbdt::fit(&x, &y, &params, &mut rng);
        let preds = m.predict_batch(&x);
        let mse: f64 = preds
            .iter()
            .zip(&y)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / y.len() as f64;
        let var: f64 = {
            let mean = y.iter().sum::<f64>() / y.len() as f64;
            y.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / y.len() as f64
        };
        assert!(mse < 0.05 * var, "mse {mse} vs var {var}");
    }

    #[test]
    fn importance_ranks_informative_features() {
        let (x, y) = toy();
        let mut rng = HeronRng::from_seed(7);
        let m = Gbdt::fit(&x, &y, &GbdtParams::default(), &mut rng);
        let imp = m.feature_importance();
        assert!(imp[0] > imp[2], "x0 must beat noise: {imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(m.top_features(1), vec![0]);
    }

    #[test]
    fn constant_target_predicts_constant() {
        let x: Vec<Vec<f64>> = (0..16).map(|i| vec![i as f64]).collect();
        let y = vec![3.5; 16];
        let mut rng = HeronRng::from_seed(0);
        let m = Gbdt::fit(&x, &y, &GbdtParams::default(), &mut rng);
        assert!((m.predict(&[100.0]) - 3.5).abs() < 1e-9);
    }

    #[test]
    fn traced_fit_matches_untraced_and_records_metrics() {
        let (x, y) = toy();
        let tracer = Tracer::manual();
        let mut rng_a = HeronRng::from_seed(7);
        let mut rng_b = HeronRng::from_seed(7);
        let traced = Gbdt::fit_traced(&x, &y, &GbdtParams::default(), &mut rng_a, &tracer);
        let plain = Gbdt::fit(&x, &y, &GbdtParams::default(), &mut rng_b);
        let probe = vec![3.0, 1.0, 0.4];
        assert_eq!(
            traced.predict(&probe),
            plain.predict(&probe),
            "tracing must not perturb fitting"
        );
        assert_eq!(tracer.counter("cost.fits"), Some(1));
        let summary = heron_trace::check_trace(&tracer.to_jsonl()).expect("balanced");
        assert_eq!(summary.spans.len(), 1);
        assert_eq!(summary.spans[0].name, "cost.fit");
        assert!(summary.spans[0]
            .fields
            .iter()
            .any(|(k, v)| k == "rows" && v == "128"));
        assert!(tracer.metrics_tsv().contains("cost.fit_ms\thistogram"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut rng = HeronRng::from_seed(0);
        Gbdt::fit(&[vec![1.0]], &[1.0, 2.0], &GbdtParams::default(), &mut rng);
    }
}
