//! Gradient-boosted regression trees: the cost model of Heron's explorer.
//!
//! Replaces the paper's XGBoost dependency with a from-scratch
//! implementation offering the same API surface the pipeline needs:
//! `fit(features, targets)`, `predict(features)`, and gain-based
//! **feature importance** — the signal CGA uses to pick key variables for
//! constraint-based crossover (Algorithm 3, Step 1).
//!
//! Features are the values of the CSP variables themselves (log-scaled),
//! which the paper highlights as cheap to obtain: no compilation is needed
//! to featurise a candidate.
//!
//! # Example
//!
//! ```
//! use heron_cost::{Gbdt, GbdtParams};
//!
//! // y = 3*x0 + noise-free constant; x1 is irrelevant.
//! let x: Vec<Vec<f64>> = (0..64).map(|i| vec![(i % 8) as f64, (i / 8) as f64]).collect();
//! let y: Vec<f64> = x.iter().map(|r| 3.0 * r[0]).collect();
//! let mut rng = heron_rng::HeronRng::from_seed(0);
//! let model = Gbdt::fit(&x, &y, &GbdtParams::default(), &mut rng);
//! let imp = model.feature_importance();
//! assert!(imp[0] > imp[1]);
//! ```

pub mod gbdt;
pub mod metrics;
pub mod tree;

pub use gbdt::{Gbdt, GbdtParams};
pub use metrics::{pairwise_rank_accuracy, r_squared, spearman_rho};
pub use tree::RegressionTree;
