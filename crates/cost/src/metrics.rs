//! Quality metrics for the cost model.
//!
//! The explorer only consumes *rankings* (roulette-wheel selection,
//! ε-greedy measurement picks), so pairwise rank accuracy is the metric
//! that matters; R² is reported alongside for calibration debugging.

/// Fraction of pairs `(i, j)` whose predicted ordering matches the true
/// ordering (ties in the truth are skipped). Returns 0.5 for fewer than
/// two usable pairs — the chance level.
pub fn pairwise_rank_accuracy(predicted: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    let n = truth.len();
    let mut correct = 0u64;
    let mut total = 0u64;
    for i in 0..n {
        for j in (i + 1)..n {
            if truth[i] == truth[j] {
                continue;
            }
            total += 1;
            let truth_gt = truth[i] > truth[j];
            let pred_gt = predicted[i] > predicted[j];
            if truth_gt == pred_gt {
                correct += 1;
            }
        }
    }
    if total == 0 {
        0.5
    } else {
        correct as f64 / total as f64
    }
}

/// Coefficient of determination R² (1 = perfect, 0 = mean predictor,
/// negative = worse than the mean).
pub fn r_squared(predicted: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = predicted
        .iter()
        .zip(truth)
        .map(|(p, t)| (p - t) * (p - t))
        .sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_scores_one() {
        let truth = [1.0, 2.0, 3.0, 4.0];
        let pred = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(pairwise_rank_accuracy(&pred, &truth), 1.0);
    }

    #[test]
    fn inverted_ranking_scores_zero() {
        let truth = [1.0, 2.0, 3.0];
        let pred = [3.0, 2.0, 1.0];
        assert_eq!(pairwise_rank_accuracy(&pred, &truth), 0.0);
    }

    #[test]
    fn ties_in_truth_are_skipped() {
        let truth = [1.0, 1.0, 2.0];
        let pred = [9.0, 0.0, 5.0];
        // Usable pairs: (0,2) wrong, (1,2) right.
        assert_eq!(pairwise_rank_accuracy(&pred, &truth), 0.5);
    }

    #[test]
    fn all_ties_return_chance() {
        assert_eq!(pairwise_rank_accuracy(&[1.0, 2.0], &[5.0, 5.0]), 0.5);
        assert_eq!(pairwise_rank_accuracy(&[], &[]), 0.5);
    }

    #[test]
    fn r2_of_exact_predictions_is_one() {
        let y = [1.0, 5.0, 3.0];
        assert!((r_squared(&y, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn r2_of_mean_predictor_is_zero() {
        let y = [2.0, 4.0, 6.0];
        let mean = [4.0, 4.0, 4.0];
        assert!(r_squared(&mean, &y).abs() < 1e-12);
    }

    #[test]
    fn r2_can_be_negative() {
        let y = [1.0, 2.0, 3.0];
        let bad = [30.0, -10.0, 99.0];
        assert!(r_squared(&bad, &y) < 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        pairwise_rank_accuracy(&[1.0], &[1.0, 2.0]);
    }
}
