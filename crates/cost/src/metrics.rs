//! Quality metrics for the cost model.
//!
//! The explorer only consumes *rankings* (roulette-wheel selection,
//! ε-greedy measurement picks), so pairwise rank accuracy is the metric
//! that matters; R² is reported alongside for calibration debugging.

/// Fraction of pairs `(i, j)` whose predicted ordering matches the true
/// ordering. Returns 0.5 for fewer than two usable pairs — the chance
/// level.
///
/// Edge-case contract (pinned by unit + property tests):
///
/// * A pair is **skipped** when any of its four values is NaN — NaN is
///   unordered, so the pair carries no ranking information.
/// * Pairs tied **in the truth** are skipped: there is no ordering to
///   recover.
/// * Pairs tied **in the prediction** (truth differing) count as
///   **half-correct**: a constant predictor scores exactly 0.5, not 0.
/// * Infinities are ordered normally (`-∞ < x < ∞`).
pub fn pairwise_rank_accuracy(predicted: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    let n = truth.len();
    let mut correct = 0.0f64;
    let mut total = 0u64;
    for i in 0..n {
        for j in (i + 1)..n {
            if predicted[i].is_nan()
                || predicted[j].is_nan()
                || truth[i].is_nan()
                || truth[j].is_nan()
            {
                continue;
            }
            if truth[i] == truth[j] {
                continue;
            }
            total += 1;
            if predicted[i] == predicted[j] {
                correct += 0.5;
                continue;
            }
            let truth_gt = truth[i] > truth[j];
            let pred_gt = predicted[i] > predicted[j];
            if truth_gt == pred_gt {
                correct += 1.0;
            }
        }
    }
    if total == 0 {
        0.5
    } else {
        correct / total as f64
    }
}

/// Spearman rank correlation ρ between `predicted` and `truth`.
///
/// Pairs with a non-finite value on either side are dropped before
/// ranking (NaN and ±∞ have no meaningful rank distance). Ties receive
/// average (fractional) ranks. Returns 0.0 — no evidence of monotone
/// association — when fewer than two finite pairs remain or either
/// side's ranks have zero variance.
pub fn spearman_rho(predicted: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    let pairs: Vec<(f64, f64)> = predicted
        .iter()
        .zip(truth)
        .filter(|(p, t)| p.is_finite() && t.is_finite())
        .map(|(&p, &t)| (p, t))
        .collect();
    if pairs.len() < 2 {
        return 0.0;
    }
    let rp = average_ranks(pairs.iter().map(|(p, _)| *p));
    let rt = average_ranks(pairs.iter().map(|(_, t)| *t));
    let n = rp.len() as f64;
    let mp = rp.iter().sum::<f64>() / n;
    let mt = rt.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vp = 0.0;
    let mut vt = 0.0;
    for (a, b) in rp.iter().zip(&rt) {
        cov += (a - mp) * (b - mt);
        vp += (a - mp) * (a - mp);
        vt += (b - mt) * (b - mt);
    }
    if vp == 0.0 || vt == 0.0 {
        0.0
    } else {
        cov / (vp.sqrt() * vt.sqrt())
    }
}

/// Average (fractional) ranks of finite values, 1-based: ties share the
/// mean of the ranks they occupy.
fn average_ranks(values: impl Iterator<Item = f64>) -> Vec<f64> {
    let values: Vec<f64> = values.collect();
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut ranks = vec![0.0; values.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Positions i..=j (0-based) share the mean 1-based rank.
        let mean_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = mean_rank;
        }
        i = j + 1;
    }
    ranks
}

/// Coefficient of determination R² (1 = perfect, 0 = mean predictor,
/// negative = worse than the mean).
pub fn r_squared(predicted: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = predicted
        .iter()
        .zip(truth)
        .map(|(p, t)| (p - t) * (p - t))
        .sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_scores_one() {
        let truth = [1.0, 2.0, 3.0, 4.0];
        let pred = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(pairwise_rank_accuracy(&pred, &truth), 1.0);
    }

    #[test]
    fn inverted_ranking_scores_zero() {
        let truth = [1.0, 2.0, 3.0];
        let pred = [3.0, 2.0, 1.0];
        assert_eq!(pairwise_rank_accuracy(&pred, &truth), 0.0);
    }

    #[test]
    fn ties_in_truth_are_skipped() {
        let truth = [1.0, 1.0, 2.0];
        let pred = [9.0, 0.0, 5.0];
        // Usable pairs: (0,2) wrong, (1,2) right.
        assert_eq!(pairwise_rank_accuracy(&pred, &truth), 0.5);
    }

    #[test]
    fn all_ties_return_chance() {
        assert_eq!(pairwise_rank_accuracy(&[1.0, 2.0], &[5.0, 5.0]), 0.5);
        assert_eq!(pairwise_rank_accuracy(&[], &[]), 0.5);
    }

    #[test]
    fn r2_of_exact_predictions_is_one() {
        let y = [1.0, 5.0, 3.0];
        assert!((r_squared(&y, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn r2_of_mean_predictor_is_zero() {
        let y = [2.0, 4.0, 6.0];
        let mean = [4.0, 4.0, 4.0];
        assert!(r_squared(&mean, &y).abs() < 1e-12);
    }

    #[test]
    fn r2_can_be_negative() {
        let y = [1.0, 2.0, 3.0];
        let bad = [30.0, -10.0, 99.0];
        assert!(r_squared(&bad, &y) < 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        pairwise_rank_accuracy(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn nan_pairs_are_skipped() {
        // Index 1 is NaN in the prediction: pairs (0,1) and (1,2) drop,
        // leaving only (0,2), which is correct.
        let truth = [1.0, 2.0, 3.0];
        let pred = [1.0, f64::NAN, 3.0];
        assert_eq!(pairwise_rank_accuracy(&pred, &truth), 1.0);
        // NaN in the truth behaves the same.
        let truth = [1.0, f64::NAN, 3.0];
        let pred = [3.0, 2.0, 1.0];
        assert_eq!(pairwise_rank_accuracy(&pred, &truth), 0.0);
        // All pairs poisoned => chance level.
        assert_eq!(
            pairwise_rank_accuracy(&[f64::NAN, f64::NAN], &[1.0, 2.0]),
            0.5
        );
    }

    #[test]
    fn predicted_ties_count_half() {
        // Constant predictor: every usable pair is a predicted tie.
        let truth = [1.0, 2.0, 3.0];
        let pred = [7.0, 7.0, 7.0];
        assert_eq!(pairwise_rank_accuracy(&pred, &truth), 0.5);
        // One tied pair among two usable pairs: (0,1) tie = 0.5,
        // (0,2)/(1,2) correct => (0.5 + 2) / 3.
        let truth = [1.0, 2.0, 3.0];
        let pred = [5.0, 5.0, 9.0];
        let acc = pairwise_rank_accuracy(&pred, &truth);
        assert!((acc - 2.5 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn infinities_are_ordered() {
        let truth = [1.0, 2.0];
        let pred = [f64::NEG_INFINITY, f64::INFINITY];
        assert_eq!(pairwise_rank_accuracy(&pred, &truth), 1.0);
    }

    #[test]
    fn spearman_perfect_and_inverted() {
        let t = [1.0, 2.0, 3.0, 4.0];
        let up = [10.0, 20.0, 80.0, 90.0]; // monotone, non-linear
        assert!((spearman_rho(&up, &t) - 1.0).abs() < 1e-12);
        let down = [9.0, 8.0, 7.0, 6.0];
        assert!((spearman_rho(&down, &t) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_ties_use_average_ranks() {
        // Textbook tie case: ranks of [1, 2, 2, 4] are [1, 2.5, 2.5, 4].
        let t = [1.0, 2.0, 3.0, 4.0];
        let p = [1.0, 2.0, 2.0, 4.0];
        let rho = spearman_rho(&p, &t);
        // cov/sqrt product computed by hand: ≈ 0.9486832980505138.
        assert!((rho - 0.948_683_298_050_513_8).abs() < 1e-12, "rho = {rho}");
    }

    #[test]
    fn spearman_degenerate_inputs_are_zero() {
        assert_eq!(spearman_rho(&[], &[]), 0.0);
        assert_eq!(spearman_rho(&[1.0], &[2.0]), 0.0);
        assert_eq!(spearman_rho(&[3.0, 3.0, 3.0], &[1.0, 2.0, 3.0]), 0.0);
        // Non-finite entries are filtered, leaving one pair => 0.
        assert_eq!(
            spearman_rho(&[1.0, f64::NAN, f64::INFINITY], &[1.0, 2.0, 3.0]),
            0.0
        );
        // Filtering keeps the rest usable.
        let rho = spearman_rho(&[1.0, f64::NAN, 3.0, 4.0], &[1.0, 5.0, 3.0, 4.0]);
        assert!((rho - 1.0).abs() < 1e-12);
    }
}
