//! Variance-reduction regression trees (the weak learner of the GBDT).

use heron_rng::Rng;
use heron_rng::SliceRandom;

/// One node of a regression tree, index-linked in a flat arena.
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Variance reduction achieved (importance contribution).
        gain: f64,
        left: usize,
        right: usize,
    },
}

/// Hyper-parameters for a single tree.
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Maximum depth (root = 0).
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_split: usize,
    /// Number of candidate features examined per node (feature
    /// subsampling); 0 means all.
    pub feature_sample: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 4,
            min_split: 4,
            feature_sample: 0,
        }
    }
}

/// A fitted regression tree.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    num_features: usize,
}

impl RegressionTree {
    /// Fits a tree to `(x, y)` on the given sample indices.
    ///
    /// # Panics
    /// Panics if `rows` is empty or feature vectors are ragged.
    pub fn fit<R: Rng>(
        x: &[Vec<f64>],
        y: &[f64],
        rows: &[usize],
        params: &TreeParams,
        rng: &mut R,
    ) -> Self {
        assert!(!rows.is_empty(), "cannot fit a tree to zero samples");
        let num_features = x[0].len();
        let mut tree = RegressionTree {
            nodes: Vec::new(),
            num_features,
        };
        tree.build(x, y, rows, 0, params, rng);
        tree
    }

    fn build<R: Rng>(
        &mut self,
        x: &[Vec<f64>],
        y: &[f64],
        rows: &[usize],
        depth: usize,
        params: &TreeParams,
        rng: &mut R,
    ) -> usize {
        let mean = rows.iter().map(|&r| y[r]).sum::<f64>() / rows.len() as f64;
        if depth >= params.max_depth || rows.len() < params.min_split {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        }
        match self.best_split(x, y, rows, params, rng) {
            None => {
                self.nodes.push(Node::Leaf { value: mean });
                self.nodes.len() - 1
            }
            Some((feature, threshold, gain)) => {
                let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
                    rows.iter().partition(|&&r| x[r][feature] <= threshold);
                // Reserve the split slot, then build children.
                let id = self.nodes.len();
                self.nodes.push(Node::Leaf { value: mean }); // placeholder
                let left = self.build(x, y, &left_rows, depth + 1, params, rng);
                let right = self.build(x, y, &right_rows, depth + 1, params, rng);
                self.nodes[id] = Node::Split {
                    feature,
                    threshold,
                    gain,
                    left,
                    right,
                };
                id
            }
        }
    }

    /// Finds the `(feature, threshold, gain)` minimising child variance.
    fn best_split<R: Rng>(
        &self,
        x: &[Vec<f64>],
        y: &[f64],
        rows: &[usize],
        params: &TreeParams,
        rng: &mut R,
    ) -> Option<(usize, f64, f64)> {
        let n = rows.len() as f64;
        let total_sum: f64 = rows.iter().map(|&r| y[r]).sum();
        let total_sq: f64 = rows.iter().map(|&r| y[r] * y[r]).sum();
        let parent_sse = total_sq - total_sum * total_sum / n;

        let mut features: Vec<usize> = (0..self.num_features).collect();
        if params.feature_sample > 0 && params.feature_sample < self.num_features {
            features.shuffle(rng);
            features.truncate(params.feature_sample);
        }

        let mut best: Option<(usize, f64, f64)> = None;
        let mut sorted = rows.to_vec();
        for &f in &features {
            sorted.sort_by(|&a, &b| x[a][f].total_cmp(&x[b][f]));
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            for i in 0..sorted.len() - 1 {
                let v = y[sorted[i]];
                left_sum += v;
                left_sq += v * v;
                let xv = x[sorted[i]][f];
                let xn = x[sorted[i + 1]][f];
                if xv == xn {
                    continue; // cannot split between equal values
                }
                let nl = (i + 1) as f64;
                let nr = n - nl;
                let right_sum = total_sum - left_sum;
                let right_sq = total_sq - left_sq;
                let sse =
                    (left_sq - left_sum * left_sum / nl) + (right_sq - right_sum * right_sum / nr);
                let gain = parent_sse - sse;
                if gain > best.map_or(1e-12, |(_, _, g)| g) {
                    best = Some((f, (xv + xn) / 2.0, gain));
                }
            }
        }
        best
    }

    /// Predicted value for one feature vector.
    ///
    /// # Panics
    /// Panics if `row` has the wrong arity.
    pub fn predict(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.num_features, "feature arity mismatch");
        let mut id = 0;
        loop {
            match &self.nodes[id] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    id = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Accumulates per-feature split gains into `acc`.
    pub fn accumulate_importance(&self, acc: &mut [f64]) {
        for node in &self.nodes {
            if let Node::Split { feature, gain, .. } = node {
                acc[*feature] += gain.max(0.0);
            }
        }
    }

    /// Number of nodes (diagnostics).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is a single leaf.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heron_rng::HeronRng;

    #[test]
    fn splits_on_informative_feature() {
        // y = step(x0): perfectly separable on feature 0.
        let x: Vec<Vec<f64>> = (0..32)
            .map(|i| vec![i as f64, ((i * 7) % 5) as f64])
            .collect();
        let y: Vec<f64> = (0..32).map(|i| if i < 16 { 0.0 } else { 10.0 }).collect();
        let rows: Vec<usize> = (0..32).collect();
        let mut rng = HeronRng::from_seed(0);
        let t = RegressionTree::fit(&x, &y, &rows, &TreeParams::default(), &mut rng);
        assert!((t.predict(&[3.0, 0.0]) - 0.0).abs() < 1e-9);
        assert!((t.predict(&[30.0, 0.0]) - 10.0).abs() < 1e-9);
        let mut imp = vec![0.0; 2];
        t.accumulate_importance(&mut imp);
        assert!(imp[0] > imp[1]);
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let x: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64]).collect();
        let y = vec![5.0; 8];
        let rows: Vec<usize> = (0..8).collect();
        let mut rng = HeronRng::from_seed(0);
        let t = RegressionTree::fit(&x, &y, &rows, &TreeParams::default(), &mut rng);
        assert!(t.is_empty());
        assert!((t.predict(&[99.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn respects_max_depth() {
        let x: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let rows: Vec<usize> = (0..64).collect();
        let mut rng = HeronRng::from_seed(0);
        let p = TreeParams {
            max_depth: 2,
            min_split: 2,
            feature_sample: 0,
        };
        let t = RegressionTree::fit(&x, &y, &rows, &p, &mut rng);
        // Depth-2 tree has at most 4 leaves + 3 splits.
        assert!(t.len() <= 7);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn predict_checks_arity() {
        let x = vec![vec![1.0, 2.0]];
        let y = vec![1.0];
        let mut rng = HeronRng::from_seed(0);
        let t = RegressionTree::fit(&x, &y, &[0], &TreeParams::default(), &mut rng);
        t.predict(&[1.0]);
    }
}
