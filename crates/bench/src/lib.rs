//! Shared harness code for the figure/table regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper; see `DESIGN.md` for the experiment index. Binaries print
//! tab-separated tables to stdout so their output can be diffed, plotted,
//! or pasted into EXPERIMENTS.md.
//!
//! Two environment knobs keep runtimes manageable:
//!
//! * `HERON_TRIALS` — measured trials per tuning run (default 300; the
//!   paper uses 2,000). Rankings are stable well below the paper budget
//!   because the simulated measurement is noise-controlled.
//! * `HERON_SEED` — RNG seed (default 2023).

use heron_baselines::{tune, vendor_outcome, Approach, Outcome};
use heron_dla::DlaSpec;
use heron_tensor::DType;
use heron_workloads::Workload;

/// Measured trials per tuning run (`HERON_TRIALS`, default 300).
pub fn trials() -> usize {
    std::env::var("HERON_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
}

/// Base RNG seed (`HERON_SEED`, default 2023).
pub fn seed() -> u64 {
    std::env::var("HERON_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2023)
}

/// Geometric mean of positive values (ignores non-positive entries).
pub fn geomean(values: &[f64]) -> f64 {
    let logs: Vec<f64> = values
        .iter()
        .filter(|&&v| v > 0.0)
        .map(|v| v.ln())
        .collect();
    if logs.is_empty() {
        return 0.0;
    }
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

/// The input element type a platform's intrinsics consume.
pub fn platform_dtype(spec: &DlaSpec) -> DType {
    spec.in_dtype
}

/// Runs one approach on one workload, returning `None` when the operator
/// cannot target the platform (reported as `n/a` in tables).
pub fn run_approach(
    approach: Approach,
    spec: &DlaSpec,
    workload: &Workload,
    trials: usize,
    seed: u64,
) -> Option<Outcome> {
    let dag = workload.build(platform_dtype(spec));
    tune(approach, spec, &dag, &workload.name, trials, seed).ok()
}

/// Vendor-library data point for a workload.
pub fn run_vendor(spec: &DlaSpec, workload: &Workload, seed: u64) -> Option<(f64, f64)> {
    let dag = workload.build(platform_dtype(spec));
    vendor_outcome(spec, &dag, &workload.name, seed).map(|v| (v.gflops, v.latency_s))
}

/// Formats a ratio column: `x.xx` or `-` when undefined.
pub fn ratio(heron: f64, other: f64) -> String {
    if other > 0.0 && heron > 0.0 {
        format!("{:.2}", heron / other)
    } else {
        "-".into()
    }
}

/// Prints a TSV row.
pub fn row(cells: &[String]) {
    println!("{}", cells.join("\t"));
}

/// Downsamples a curve to at most `n` evenly spaced points (always keeps
/// the last).
pub fn downsample(curve: &[f64], n: usize) -> Vec<(usize, f64)> {
    if curve.is_empty() {
        return Vec::new();
    }
    let step = (curve.len() as f64 / n as f64).max(1.0);
    let mut out = Vec::new();
    let mut i = 0.0;
    while (i as usize) < curve.len() {
        let idx = i as usize;
        out.push((idx + 1, curve[idx]));
        i += step;
    }
    if out.last().map(|(i, _)| *i) != Some(curve.len()) {
        out.push((curve.len(), *curve.last().expect("non-empty")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
        assert!(
            (geomean(&[3.0, 0.0, 3.0]) - 3.0).abs() < 1e-9,
            "zeros ignored"
        );
    }

    #[test]
    fn downsample_keeps_last() {
        let curve: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let pts = downsample(&curve, 10);
        assert!(pts.len() <= 12);
        assert_eq!(pts.last(), Some(&(100, 100.0)));
    }

    #[test]
    fn ratio_formats() {
        assert_eq!(ratio(4.0, 2.0), "2.00");
        assert_eq!(ratio(4.0, 0.0), "-");
    }
}
