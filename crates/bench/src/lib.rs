//! Shared harness code for the figure/table regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper; see `DESIGN.md` for the experiment index. Binaries print
//! tab-separated tables to stdout so their output can be diffed, plotted,
//! or pasted into EXPERIMENTS.md.
//!
//! Two environment knobs keep runtimes manageable:
//!
//! * `HERON_TRIALS` — measured trials per tuning run (default 300; the
//!   paper uses 2,000). Rankings are stable well below the paper budget
//!   because the simulated measurement is noise-controlled.
//! * `HERON_SEED` — RNG seed (default 2023).

use heron_baselines::{tune, vendor_outcome, Approach, Outcome};
use heron_dla::DlaSpec;
use heron_tensor::DType;
use heron_trace::Tracer;
use heron_workloads::Workload;

/// Measured trials per tuning run (`HERON_TRIALS`, default 300).
pub fn trials() -> usize {
    std::env::var("HERON_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
}

/// Base RNG seed (`HERON_SEED`, default 2023).
pub fn seed() -> u64 {
    std::env::var("HERON_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2023)
}

/// Geometric mean of positive values (ignores non-positive entries).
pub fn geomean(values: &[f64]) -> f64 {
    let logs: Vec<f64> = values
        .iter()
        .filter(|&&v| v > 0.0)
        .map(|v| v.ln())
        .collect();
    if logs.is_empty() {
        return 0.0;
    }
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

/// The input element type a platform's intrinsics consume.
pub fn platform_dtype(spec: &DlaSpec) -> DType {
    spec.in_dtype
}

/// Runs one approach on one workload, returning `None` when the operator
/// cannot target the platform (reported as `n/a` in tables).
pub fn run_approach(
    approach: Approach,
    spec: &DlaSpec,
    workload: &Workload,
    trials: usize,
    seed: u64,
) -> Option<Outcome> {
    let dag = workload.build(platform_dtype(spec));
    tune(approach, spec, &dag, &workload.name, trials, seed).ok()
}

/// Vendor-library data point for a workload.
pub fn run_vendor(spec: &DlaSpec, workload: &Workload, seed: u64) -> Option<(f64, f64)> {
    let dag = workload.build(platform_dtype(spec));
    vendor_outcome(spec, &dag, &workload.name, seed).map(|v| (v.gflops, v.latency_s))
}

/// Formats a ratio column: `x.xx` or `-` when undefined.
pub fn ratio(heron: f64, other: f64) -> String {
    if other > 0.0 && heron > 0.0 {
        format!("{:.2}", heron / other)
    } else {
        "-".into()
    }
}

/// Prints a TSV row.
pub fn row(cells: &[String]) {
    println!("{}", cells.join("\t"));
}

/// Value of a `--name VALUE` flag, shared by every binary's argument
/// parsing.
pub fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Whether a bare `--name` flag is present.
pub fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Streaming TSV table writer shared by the figure/table binaries.
///
/// Replaces the per-binary header/row `println!` boilerplate: rows go to
/// stdout exactly as before (diffable output is the bench contract), and
/// every numeric cell is mirrored into a [`heron_trace`] metrics registry
/// as a histogram `bench.<table>.<column>` plus a row counter
/// `bench.<table>.rows`, so any binary can also dump a machine-readable
/// snapshot via [`TsvTable::write_metrics`].
#[derive(Debug)]
pub struct TsvTable {
    name: String,
    columns: Vec<String>,
    tracer: Tracer,
    rows: usize,
}

impl TsvTable {
    /// Creates a table, printing the header row immediately. `name` keys
    /// the mirrored metrics (`bench.<name>.…`) and should be short and
    /// dot-free.
    pub fn new(name: &str, columns: &[&str]) -> Self {
        Self::with_tracer(name, columns, Tracer::manual())
    }

    /// Like [`TsvTable::new`] but mirrors metrics into an existing
    /// tracer (e.g. one shared with a tuning session).
    pub fn with_tracer(name: &str, columns: &[&str], tracer: Tracer) -> Self {
        row(&columns.iter().map(|c| c.to_string()).collect::<Vec<_>>());
        TsvTable {
            name: name.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            tracer,
            rows: 0,
        }
    }

    /// Prints one row and mirrors its numeric cells into the metrics
    /// registry. Cells that do not parse as `f64` (labels, `-`, `n/a`)
    /// are printed but not mirrored.
    ///
    /// # Panics
    /// Panics in debug builds when the cell count does not match the
    /// header.
    pub fn emit(&mut self, cells: &[String]) {
        debug_assert_eq!(
            cells.len(),
            self.columns.len(),
            "table `{}`: row width {} vs header width {}",
            self.name,
            cells.len(),
            self.columns.len()
        );
        row(cells);
        self.rows += 1;
        self.tracer
            .counter_add(&format!("bench.{}.rows", self.name), 1);
        for (col, cell) in self.columns.iter().zip(cells) {
            if let Ok(v) = cell.parse::<f64>() {
                self.tracer
                    .hist_record(&format!("bench.{}.{col}", self.name), v);
            }
        }
    }

    /// Number of data rows emitted so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The tracer holding the mirrored metrics.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Writes the metrics snapshot to `path`
    /// (see [`Tracer::write_metrics_tsv`]).
    pub fn write_metrics(&self, path: &str) -> std::io::Result<()> {
        self.tracer.write_metrics_tsv(path)
    }
}

/// Handles the shared `--metrics-out PATH` flag: writes the tracer's
/// metrics snapshot and confirms on stderr (stdout stays pure TSV).
/// Exits non-zero when the file cannot be written.
pub fn write_metrics_flag(args: &[String], tracer: &Tracer) {
    if let Some(path) = flag(args, "--metrics-out") {
        if let Err(e) = tracer.write_metrics_tsv(&path) {
            eprintln!("cannot write metrics to `{path}`: {e}");
            std::process::exit(1);
        }
        eprintln!("metrics written to `{path}`");
    }
}

/// The deterministic schedule projection for `heron_scope`: submission
/// order and per-attempt outcomes from the supervisor, sliced session
/// traces (profile source) from the pulse projection. Shared by the
/// `heron_serve` binary (`--scope-out`) and the forensics integration
/// tests so both reconstruct the schedule from the same facts.
pub fn scope_input(sup: &heron_serve::Supervisor) -> heron_scope::ScopeInput {
    let pulse = sup.pulse_input();
    let traces: std::collections::BTreeMap<String, String> = pulse
        .jobs
        .into_iter()
        .map(|j| (j.id, j.trace_jsonl))
        .collect();
    heron_scope::ScopeInput {
        workers: pulse.config.workers,
        backoff_base_s: pulse.config.backoff_base_s,
        jobs: sup
            .schedule_rows()
            .into_iter()
            .map(|row| heron_scope::ScopeJob {
                trace_jsonl: traces.get(&row.id).cloned().unwrap_or_default(),
                id: row.id,
                state: row.state.to_string(),
                attempts: row
                    .attempts
                    .into_iter()
                    .map(|a| heron_scope::ScopeAttempt {
                        outcome: a.outcome,
                        sim_ns: a.sim_ns,
                        rounds: a.rounds,
                    })
                    .collect(),
            })
            .collect(),
    }
}

/// Downsamples a curve to at most `n` evenly spaced points (always keeps
/// the last).
pub fn downsample(curve: &[f64], n: usize) -> Vec<(usize, f64)> {
    if curve.is_empty() {
        return Vec::new();
    }
    let step = (curve.len() as f64 / n as f64).max(1.0);
    let mut out = Vec::new();
    let mut i = 0.0;
    while (i as usize) < curve.len() {
        let idx = i as usize;
        out.push((idx + 1, curve[idx]));
        i += step;
    }
    if out.last().map(|(i, _)| *i) != Some(curve.len()) {
        out.push((curve.len(), *curve.last().expect("non-empty")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
        assert!(
            (geomean(&[3.0, 0.0, 3.0]) - 3.0).abs() < 1e-9,
            "zeros ignored"
        );
    }

    #[test]
    fn downsample_keeps_last() {
        let curve: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let pts = downsample(&curve, 10);
        assert!(pts.len() <= 12);
        assert_eq!(pts.last(), Some(&(100, 100.0)));
    }

    #[test]
    fn ratio_formats() {
        assert_eq!(ratio(4.0, 2.0), "2.00");
        assert_eq!(ratio(4.0, 0.0), "-");
    }

    #[test]
    fn flag_helpers_parse_args() {
        let args: Vec<String> = ["--seed", "7", "--smoke"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag(&args, "--seed"), Some("7".into()));
        assert_eq!(flag(&args, "--trials"), None);
        assert_eq!(flag(&args, "--smoke"), None, "bare flag has no value");
        assert!(has_flag(&args, "--smoke"));
        assert!(!has_flag(&args, "--resume"));
    }

    #[test]
    fn tsv_table_mirrors_numeric_cells_as_metrics() {
        let mut t = TsvTable::new("demo", &["case", "gops", "ratio"]);
        t.emit(&["a".into(), "10.5".into(), "1.00".into()]);
        t.emit(&["b".into(), "21.0".into(), "-".into()]);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.tracer().counter("bench.demo.rows"), Some(2));
        let tsv = t.tracer().metrics_tsv();
        assert!(tsv.contains("bench.demo.gops\thistogram\t31.5\t2"));
        assert!(
            tsv.contains("bench.demo.ratio\thistogram\t1\t1"),
            "non-numeric `-` cell must be skipped: {tsv}"
        );
        assert!(!tsv.contains("bench.demo.case"), "labels are not mirrored");
    }
}
