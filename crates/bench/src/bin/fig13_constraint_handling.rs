//! Regenerates **Figure 13**: CGA vs other constraint-handling techniques
//! for genetic algorithms, on GEMM (N, N, N) for growing N. Reported as
//! performance relative to CGA (higher is better; CGA = 1.0).
//!
//! * CGA-1 — CGA with random key variables,
//! * GA-1 — stochastic ranking,
//! * GA-2 — SAT-decoder,
//! * GA-3 — infeasibility-driven multi-objective.

use heron_bench::{seed, trials};
use heron_core::explore::cga::{CgaConfig, CgaExplorer};
use heron_core::explore::variants::{InfeasibilityDrivenGa, SatDecoderGa, StochasticRankingGa};
use heron_core::explore::Explorer;
use heron_core::generate::{SpaceGenerator, SpaceOptions};
use heron_core::tuner::evaluate;
use heron_dla::{v100, Measurer};
use heron_rng::HeronRng;
use heron_tensor::ops;

fn main() {
    let spec = v100();
    let steps = trials();
    let sizes = [256_i64, 512, 1024, 2048];
    println!("Figure 13: constraint-handling techniques, perf relative to CGA (steps={steps})");
    println!("N\tCGA\tCGA-1\tGA-1\tGA-2\tGA-3");
    for n in sizes {
        let dag = ops::gemm(n, n, n);
        let space = SpaceGenerator::new(spec.clone())
            .generate_named(&dag, &SpaceOptions::heron(), &format!("gemm-{n}"))
            .expect("generates");
        let measurer = Measurer::new(spec.clone());
        let mut finals = Vec::new();
        let mut explorers: Vec<Box<dyn Explorer>> = vec![
            Box::new(CgaExplorer::new(CgaConfig::default())),
            Box::new(CgaExplorer::cga1(CgaConfig::default())),
            Box::new(StochasticRankingGa::default()),
            Box::new(SatDecoderGa::default()),
            Box::new(InfeasibilityDrivenGa::default()),
        ];
        for explorer in &mut explorers {
            let mut rng = HeronRng::from_seed(seed());
            let mut measure = |sol: &heron_csp::Solution| {
                evaluate(&space, &measurer, sol).ok().map(|(_, m)| m.gflops)
            };
            let curve = explorer.explore(&space, &mut measure, steps, &mut rng);
            finals.push(curve.last().copied().unwrap_or(0.0));
        }
        let cga = finals[0].max(1e-9);
        println!(
            "{n}\t1.00\t{:.2}\t{:.2}\t{:.2}\t{:.2}",
            finals[1] / cga,
            finals[2] / cga,
            finals[3] / cga,
            finals[4] / cga
        );
    }
    println!();
    println!("(paper: CGA >= all variants; GA-2 competitive on small N, degrades with size)");
}
