//! `heron_status` — the deterministic ops dashboard for `heron-serve`.
//!
//! Reads a `pulse.json` document (written by `heron_serve --pulse-out`),
//! validates it against the `heron-pulse-v1` schema, and renders the
//! service dashboard: one row per job with its SLI columns and breach
//! flags, service totals, the hottest spans per job, recorded
//! `pulse.warn.*` anomalies, and any SLO breaches.
//!
//! ```text
//! heron_status pulse.json                 # render the dashboard
//! heron_status pulse.json --top 5         # …with 5 hottest spans per job
//! heron_status pulse.json --slo SPEC      # re-judge under a different SLO spec
//! heron_status pulse.json --check         # exit 1 if any SLO rule is breached
//! ```
//!
//! The dashboard is a pure function of `pulse.json` (itself
//! byte-identical across reruns of the same service script), so its
//! output is byte-stable too — `--check` is the CI gate that fails the
//! build when a committed SLO spec is breached.

use heron_bench::{flag, has_flag};
use heron_pulse::{attach_slo, breach_count, render_dashboard, validate_pulse, SloSpec};
use heron_trace::json;

fn usage() -> ! {
    eprintln!("usage: heron_status <pulse.json> [--check] [--top N] [--slo SPEC]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if has_flag(&args, "--help") {
        usage();
    }
    let Some(path) = args
        .iter()
        .enumerate()
        .find(|(i, a)| {
            !a.starts_with("--") && (*i == 0 || (args[i - 1] != "--top" && args[i - 1] != "--slo"))
        })
        .map(|(_, a)| a)
    else {
        usage();
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read `{path}`: {e}");
            std::process::exit(1);
        }
    };
    let mut doc = match json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("`{path}` is not JSON: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = validate_pulse(&doc) {
        eprintln!("`{path}` is not a valid heron-pulse-v1 document: {e}");
        std::process::exit(1);
    }
    if let Some(spec_path) = flag(&args, "--slo") {
        let spec_text = match std::fs::read_to_string(&spec_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read SLO spec `{spec_path}`: {e}");
                std::process::exit(1);
            }
        };
        let spec = match SloSpec::parse(&spec_text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("bad SLO spec `{spec_path}`: {e}");
                std::process::exit(1);
            }
        };
        doc = attach_slo(doc, &spec);
    }
    let top = match flag(&args, "--top") {
        Some(t) => match t.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("--top expects a positive integer, got `{t}`");
                std::process::exit(2);
            }
        },
        None => 3,
    };
    print!("{}", render_dashboard(&doc, top));
    if has_flag(&args, "--check") {
        let breaches = breach_count(&doc);
        if breaches > 0 {
            eprintln!("SLO check FAILED: {breaches} rule(s) breached");
            std::process::exit(1);
        }
        println!("SLO check: PASS");
    }
}
