//! Regenerates **Table 10 and Figure 14**: compilation (tuning) time of
//! Heron vs AutoTVM and AMOS on five operators, and the breakdown of
//! Heron's time into CGA search, hardware measurement, and cost-model
//! training.
//!
//! "Hardware measurement" time is the simulated deployment cost: a fixed
//! per-trial overhead (compile + transfer) plus the measured program's own
//! latency × repeats, which is how the real systems spend the bulk of
//! their wall clock (paper: 61–79% measurement, ~23% CGA, <1% model).

use heron_baselines::Approach;
use heron_bench::{run_approach, seed, trials};
use heron_core::generate::{SpaceGenerator, SpaceOptions};
use heron_core::tuner::Tuner;
use heron_dla::{v100, Measurer};
use heron_workloads::{operator_suite, Workload};

fn first(op: &str) -> Workload {
    operator_suite(op)
        .into_iter()
        .next()
        .expect("non-empty suite")
}

fn main() {
    let spec = v100();
    let trials = trials();
    let ops = ["GEMM", "BMM", "C1D", "C2D", "C3D"];

    println!("Table 10: simulated compilation time, minutes (trials={trials})");
    println!("op\tAutoTVM\tAMOS\tHeron");
    for op in ops {
        let w = first(op);
        let mins = |o: Option<heron_baselines::Outcome>| {
            o.map_or("-".into(), |o| {
                format!("{:.1}", (o.hw_measure_s + o.search_s) / 60.0)
            })
        };
        let autotvm = run_approach(Approach::AutoTvm, &spec, &w, trials, seed());
        let amos = run_approach(Approach::Amos, &spec, &w, trials, seed());
        let heron = run_approach(Approach::Heron, &spec, &w, trials, seed());
        println!("{op}\t{}\t{}\t{}", mins(autotvm), mins(amos), mins(heron));
    }

    println!();
    println!("Figure 14: breakdown of Heron's compilation time");
    println!("op\tcase\tCGA%\tmeasure%\tmodel%");
    for op in ops {
        for (idx, w) in operator_suite(op).into_iter().take(3).enumerate() {
            let dag = w.build(spec.in_dtype);
            let Ok(space) = SpaceGenerator::new(spec.clone()).generate_named(
                &dag,
                &SpaceOptions::heron(),
                &w.name,
            ) else {
                continue;
            };
            let mut tuner = Tuner::new(
                space,
                Measurer::new(spec.clone()),
                heron_baselines::tune::heron_config(trials),
                seed(),
            );
            let r = tuner.run();
            let total = r.timing.total_s().max(1e-9);
            println!(
                "{op}\tcase{}\t{:.0}\t{:.0}\t{:.1}",
                idx + 1,
                r.timing.cga_s / total * 100.0,
                r.timing.hw_measure_s / total * 100.0,
                r.timing.model_s / total * 100.0
            );
        }
    }
    println!();
    println!("(paper: measurement 61-79% of total, CGA ~23%, model <1%)");
}
