//! `heron_scope` — validate and render `scope.json` schedule documents.
//!
//! Reads a `heron-scope-v1` document written by
//! `heron_serve --scope-out` and either validates it or draws the
//! per-worker occupancy timeline it describes.
//!
//! ```text
//! heron_scope scope.json              # summary + text timeline
//! heron_scope scope.json --width 120  # wider timeline
//! heron_scope scope.json --check      # validate only; exit 1 if invalid
//! ```
//!
//! Validation enforces the document invariants — schema, per-segment
//! structure, lane accounting — and the central one: the critical path
//! is a contiguous chain from 0 to the makespan whose durations sum
//! *exactly* to `makespan_ns`. The summary line printed on success
//! states that equality, so the CI stage can grep for it.

use heron_bench::{flag, has_flag};
use heron_scope::{render_timeline, validate_scope};
use heron_trace::Json;

fn usage() -> ! {
    eprintln!("usage: heron_scope <scope.json> [--check] [--width N]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args
        .iter()
        .enumerate()
        .find(|(i, a)| !a.starts_with("--") && (*i == 0 || args[i - 1] != "--width"))
        .map(|(_, a)| a)
    else {
        usage();
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read `{path}`: {e}");
            std::process::exit(1);
        }
    };
    let doc = match heron_trace::json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("`{path}` is not JSON: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = validate_scope(&doc) {
        eprintln!("invalid scope document `{path}`: {e}");
        std::process::exit(1);
    }
    let jobs = doc
        .get("jobs")
        .and_then(Json::as_arr)
        .map_or(0, <[Json]>::len);
    let workers = doc.get("workers").and_then(Json::as_u64).unwrap_or(0);
    let makespan_ns = doc.get("makespan_ns").and_then(Json::as_u64).unwrap_or(0);
    let makespan_s = doc.get("makespan_s").and_then(Json::as_f64).unwrap_or(0.0);
    let critical = doc
        .get("critical_path")
        .and_then(Json::as_arr)
        .map_or(0, <[Json]>::len);
    println!("ok: {jobs} job(s), {workers} worker(s), makespan {makespan_s:.3}s");
    println!("critical-path sum == makespan ({makespan_ns} ns, {critical} segment(s))");
    if has_flag(&args, "--check") {
        return;
    }
    let width = flag(&args, "--width")
        .and_then(|w| w.parse::<usize>().ok())
        .unwrap_or(72);
    print!("{}", render_timeline(&doc, width));
}
