//! Regenerates **Table 3**: constraint examples of the supported DLAs, as
//! derived from the machine-readable platform specifications.

fn main() {
    println!("Table 3: architectural constraints per platform");
    println!("{}", "-".repeat(72));
    for spec in heron_dla::platforms::all() {
        println!("{}:", spec.name);
        for rowtext in spec.constraint_summary() {
            println!("  {rowtext}");
        }
        println!(
            "  peak: {:.1} Tops ({})",
            spec.peak_ops_per_sec() / 1e12,
            spec.in_dtype
        );
    }
}
