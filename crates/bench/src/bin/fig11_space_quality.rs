//! Regenerates **Figure 11**: quality of Heron's automatically constrained
//! search space vs AutoTVM's manually constrained one, on GEMM G1.
//!
//! Following the paper, configurations are projected onto two key
//! parameters — the shared-memory footprints of the two operand tiles —
//! and each sub-space bucket reports the best sampled performance. Two
//! properties should reproduce: (1) Heron's space has higher average and
//! maximum performance; (2) neighbouring buckets differ sharply (the
//! space is irregular).

use heron_bench::seed;
use heron_core::generate::{SpaceGenerator, SpaceOptions};
use heron_core::tuner::evaluate;
use heron_dla::{v100, Measurer};
use heron_rng::HeronRng;
use heron_tensor::ops;
use std::collections::BTreeMap;

fn bucket(bytes: i64) -> u32 {
    // log2 buckets of the footprint in KiB.
    ((bytes.max(1) as f64 / 1024.0).log2().round() as i64).clamp(0, 8) as u32
}

fn main() {
    let spec = v100();
    let dag = ops::gemm(1024, 1024, 1024);
    let measurer = Measurer::new(spec.clone());
    let samples: usize = std::env::var("HERON_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1500);

    println!("Figure 11: search-space quality on GEMM G1 ({samples} samples per space)");
    for (label, opts) in [
        ("Heron", SpaceOptions::heron()),
        ("AutoTVM", SpaceOptions::autotvm()),
    ] {
        let space = SpaceGenerator::new(spec.clone())
            .generate_named(&dag, &opts, "G1")
            .expect("generates");
        let mut rng = HeronRng::from_seed(seed());
        let sols = heron_csp::rand_sat_with_budget(&space.csp, &mut rng, samples, 400).solutions;
        let mut cells: BTreeMap<(u32, u32), f64> = BTreeMap::new();
        let mut valid = 0usize;
        let mut total_perf = 0.0;
        let mut max_perf: f64 = 0.0;
        let a_var = space.csp.var_by_name("bytes.A.shared");
        let b_var = space.csp.var_by_name("bytes.B.shared");
        for sol in &sols {
            let perf = match evaluate(&space, &measurer, sol) {
                Ok((_, m)) => m.gflops,
                Err(_) => continue,
            };
            valid += 1;
            total_perf += perf;
            max_perf = max_perf.max(perf);
            if let (Some(a), Some(bv)) = (a_var, b_var) {
                let key = (bucket(sol.value(a)), bucket(sol.value(bv)));
                let best = cells.entry(key).or_insert(0.0);
                *best = best.max(perf);
            }
        }
        println!();
        println!(
            "{label}: sampled {} | valid {} ({:.0}%) | mean {:.0} Gops | max {:.0} Gops",
            sols.len(),
            valid,
            valid as f64 / sols.len().max(1) as f64 * 100.0,
            total_perf / valid.max(1) as f64,
            max_perf
        );
        println!("smemA(2^k KiB)\tsmemB(2^k KiB)\tbest_gflops");
        for ((a, b), best) in &cells {
            println!("{a}\t{b}\t{best:.0}");
        }
        // Irregularity metric: mean absolute difference between adjacent
        // buckets, relative to the mean bucket value.
        let mut diffs = Vec::new();
        for ((a, b), v) in &cells {
            if let Some(n) = cells.get(&(*a + 1, *b)) {
                diffs.push((v - n).abs());
            }
            if let Some(n) = cells.get(&(*a, *b + 1)) {
                diffs.push((v - n).abs());
            }
        }
        let mean_cell = cells.values().sum::<f64>() / cells.len().max(1) as f64;
        let irregularity =
            diffs.iter().sum::<f64>() / diffs.len().max(1) as f64 / mean_cell.max(1.0);
        println!("irregularity (mean neighbour delta / mean): {irregularity:.2}");
    }
}
