//! Regenerates **Figure 7 (+ Table 9)**: GEMM (G1–G5) and C2D (C1–C5) on
//! the simulated NVIDIA T4 and A100, with absolute performance so hardware
//! utilisation is visible, comparing Heron to AutoTVM / Ansor / AMOS and
//! the vendor libraries (cuDNN/cuBLAS model).

use heron_baselines::{akg_outcome, Approach};
use heron_bench::{run_approach, run_vendor, seed, trials, TsvTable};
use heron_workloads::{table9_c2d, table9_gemm};

fn main() {
    let trials = trials();
    println!("Figure 7 / Table 9: absolute Gops on T4 and A100 (trials={trials})");
    let mut table = TsvTable::new(
        "fig07",
        &[
            "platform", "workload", "Heron", "AutoTVM", "Ansor", "AMOS", "AKG", "Vendor", "peak%",
        ],
    );
    for spec in [heron_dla::t4(), heron_dla::a100()] {
        let peak = spec.peak_ops_per_sec() / 1e9;
        for w in table9_gemm().into_iter().chain(table9_c2d()) {
            let heron = run_approach(Approach::Heron, &spec, &w, trials, seed());
            let autotvm = run_approach(Approach::AutoTvm, &spec, &w, trials, seed());
            let ansor = run_approach(Approach::Ansor, &spec, &w, trials, seed());
            let amos = run_approach(Approach::Amos, &spec, &w, trials, seed());
            let vendor = run_vendor(&spec, &w, seed());
            let akg = akg_outcome(&spec, &w.build(spec.in_dtype), &w.name, seed());
            let hg = heron.as_ref().map_or(0.0, |o| o.best_gflops);
            let fmt = |o: &Option<heron_baselines::Outcome>| {
                o.as_ref()
                    .map_or("-".into(), |o| format!("{:.0}", o.best_gflops))
            };
            table.emit(&[
                spec.name.to_string(),
                w.name.clone(),
                format!("{hg:.0}"),
                fmt(&autotvm),
                fmt(&ansor),
                fmt(&amos),
                akg.map_or("-".into(), |o| format!("{:.0}", o.gflops)),
                vendor.map_or("-".into(), |(g, _)| format!("{g:.0}")),
                format!("{:.1}", hg / peak * 100.0),
            ]);
        }
    }
}
