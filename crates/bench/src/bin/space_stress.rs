//! `space_stress` — robustness characterisation of constrained exploration.
//!
//! Stresses the hardened exploration stack (DESIGN.md §6, "Solver-side
//! failure & repair") on progressively over-constrained GEMM spaces:
//!
//! * **open** — the unmodified Heron space;
//! * **pin-half** — half the tunables pinned to one reference solution
//!   via injected `IN` constraints (a heavily squeezed but satisfiable
//!   space);
//! * **pin-all** — every tunable pinned: a single-configuration space
//!   that must end in `space-exhausted`, not a hang;
//! * **clash** — two contradictory `IN` constraints on one tunable: a
//!   *proven* root-infeasible space, which the solver must classify as
//!   `root-infeasible` (never a silent empty result) and the diagnoser
//!   must explain.
//!
//! Per level the TSV reports trials completed, termination, offspring
//! repairs, relaxed constraints, deadline hits, fallback samples and
//! solver escalations. Rows go to stdout *and* to
//! `results/space_stress.tsv`.
//!
//! ```text
//! space_stress [--trials N] [--seed S] [--deadline STEPS] [--metrics-out M.tsv]
//! space_stress --smoke    # CI gate: over-constrained + UNSAT behaviour
//! ```

use heron_bench::{flag, has_flag, write_metrics_flag, TsvTable};
use heron_core::generate::{GeneratedSpace, SpaceGenerator, SpaceOptions};
use heron_core::tuner::{Termination, TuneConfig, TuneResult, Tuner};
use heron_csp::{diagnose_root_conflict, SolveStatus};
use heron_dla::{v100, Measurer};
use heron_rng::HeronRng;
use heron_tensor::ops;
use heron_trace::Tracer;

fn base_space(name: &str) -> GeneratedSpace {
    let dag = ops::gemm(256, 256, 256);
    SpaceGenerator::new(v100())
        .generate_named(&dag, &SpaceOptions::heron(), name)
        .expect("generates")
}

/// Pins the first `count` tunables of `space` to the values of one
/// reference solution (deterministic in `seed`).
fn pin_tunables(space: &mut GeneratedSpace, count: usize, seed: u64) {
    let mut rng = HeronRng::from_seed(seed);
    let sol = heron_csp::rand_sat_with_budget(&space.csp, &mut rng, 1, 4_000)
        .one()
        .expect("base space is satisfiable");
    let tunables = space.csp.tunables();
    for &v in tunables.iter().take(count) {
        let value = sol.value(v);
        space.csp.post_in(v, [value]);
    }
}

/// Makes `space` provably root-infeasible: two disjoint `IN` sets on one
/// tunable with a multi-value domain.
fn add_clash(space: &mut GeneratedSpace) {
    let v = *space
        .csp
        .tunables()
        .iter()
        .find(|&&v| space.csp.var(v).domain.size() >= 2)
        .expect("a multi-value tunable exists");
    let values: Vec<i64> = space.csp.var(v).domain.iter_values().collect();
    space.csp.post_in(v, [values[0]]);
    space.csp.post_in(v, [values[1]]);
}

fn run_level(
    space: GeneratedSpace,
    trials: usize,
    seed: u64,
    deadline: u64,
) -> (TuneResult, Tracer) {
    let mut config = TuneConfig::quick(trials);
    config.cga.solve_deadline = deadline;
    config.max_stall_rounds = 4;
    let tracer = Tracer::manual();
    let mut tuner = Tuner::new(space, Measurer::new(v100()), config, seed);
    tuner.set_tracer(tracer.clone());
    (tuner.run(), tracer)
}

fn smoke(seed: u64) -> i32 {
    let mut failures = 0;
    let mut check = |ok: bool, what: &str| {
        if ok {
            println!("space stress: OK — {what}");
        } else {
            eprintln!("space stress: FAILED — {what}");
            failures += 1;
        }
    };

    // 1. Over-constrained but satisfiable: every tunable pinned. The
    //    session must finish (repair/fallback keep the loop alive), find
    //    the one valid program, and report space-exhausted — not hang,
    //    not misreport infeasible.
    let mut pinned = base_space("stress-pin-all");
    let n = pinned.csp.tunables().len();
    pin_tunables(&mut pinned, n, seed);
    let (r, _) = run_level(pinned, 64, seed, 20_000);
    check(
        r.best_gflops > 0.0 && !r.curve.is_empty(),
        "pinned space still yields a valid program",
    );
    check(
        matches!(
            r.termination,
            Termination::SpaceExhausted | Termination::TrialsExhausted
        ),
        "pinned space terminates cleanly (no false `infeasible`)",
    );

    // 2. Proven-UNSAT space: the solver must *classify* it, and the
    //    diagnoser must name a removal set that restores feasibility.
    let mut unsat = base_space("stress-clash");
    add_clash(&mut unsat);
    let mut rng = HeronRng::from_seed(seed);
    let outcome = heron_csp::rand_sat(&unsat.csp, &mut rng, 4);
    check(
        outcome.status == SolveStatus::RootInfeasible && outcome.solutions.is_empty(),
        "contradictory space is classified root-infeasible",
    );
    match diagnose_root_conflict(&unsat.csp) {
        Some(report) => {
            print!("{report}");
            check(
                report.removal_restores_feasibility(&unsat.csp),
                "diagnosed removal set restores feasibility",
            );
        }
        None => check(false, "diagnoser must report on an infeasible root"),
    }
    let (r, _) = run_level(
        {
            let mut s = base_space("stress-clash");
            add_clash(&mut s);
            s
        },
        16,
        seed,
        0,
    );
    check(
        r.termination == Termination::Infeasible && r.curve.is_empty(),
        "tuning an UNSAT space terminates `infeasible` immediately",
    );

    // 3. Deadline determinism: two same-seed deadline-bounded solves are
    //    byte-identical (status and solutions).
    let open = base_space("stress-deadline");
    let solve = |seed: u64| {
        let mut rng = HeronRng::from_seed(seed);
        let policy = heron_csp::SolvePolicy::fixed(4_000).with_deadline(64);
        heron_csp::rand_sat_policy(&open.csp, &mut rng, 8, &policy)
    };
    let (a, b) = (solve(seed), solve(seed));
    check(
        a.status == b.status && a.solutions == b.solutions && a.stats == b.stats,
        "deadline-bounded solves are deterministic",
    );

    if failures == 0 {
        println!("space stress smoke: all checks passed");
        0
    } else {
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed: u64 = flag(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2023);
    if has_flag(&args, "--smoke") {
        std::process::exit(smoke(seed));
    }
    let trials: usize = flag(&args, "--trials")
        .and_then(|t| t.parse().ok())
        .unwrap_or(48);
    let deadline: u64 = flag(&args, "--deadline")
        .and_then(|d| d.parse().ok())
        .unwrap_or(20_000);

    println!("# space stress: gemm-256 on v100, {trials} trials, seed {seed}, deadline {deadline}");
    let columns = [
        "level",
        "trials_done",
        "best_gops",
        "termination",
        "repaired",
        "relaxed",
        "deadline_hits",
        "fallbacks",
        "escalations",
        "root_infeasible",
    ];
    let mut table = TsvTable::new("space_stress", &columns);
    let mut file_rows: Vec<Vec<String>> = vec![columns.iter().map(|c| c.to_string()).collect()];

    let total_tunables = base_space("stress-probe").csp.tunables().len();
    let levels: Vec<(&str, GeneratedSpace)> = vec![
        ("open", base_space("stress-open")),
        ("pin-half", {
            let mut s = base_space("stress-pin-half");
            pin_tunables(&mut s, total_tunables / 2, seed);
            s
        }),
        ("pin-all", {
            let mut s = base_space("stress-pin-all");
            pin_tunables(&mut s, total_tunables, seed);
            s
        }),
        ("clash", {
            let mut s = base_space("stress-clash");
            add_clash(&mut s);
            s
        }),
    ];
    for (level, space) in levels {
        let (r, tracer) = run_level(space, trials, seed, deadline);
        let cells = vec![
            level.to_string(),
            r.curve.len().to_string(),
            format!("{:.1}", r.best_gflops),
            r.termination.to_string(),
            r.repaired_offspring.to_string(),
            r.relaxed_constraints.to_string(),
            r.solver_deadline_hits.to_string(),
            r.fallback_samples.to_string(),
            tracer.counter("csp.escalations").unwrap_or(0).to_string(),
            tracer
                .counter("csp.root_infeasible")
                .unwrap_or(0)
                .to_string(),
        ];
        table.emit(&cells);
        file_rows.push(cells);
    }

    // Mirror the table into results/space_stress.tsv (the committed-
    // artifact convention of the fig*/table* binaries).
    let text: String = file_rows.iter().map(|r| r.join("\t") + "\n").collect();
    let path = flag(&args, "--out").unwrap_or_else(|| "results/space_stress.tsv".into());
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&path, text) {
        eprintln!("cannot write `{path}`: {e}");
        std::process::exit(1);
    }
    eprintln!("table written to `{path}`");
    write_metrics_flag(&args, table.tracer());
}
