//! Ablation study (beyond the paper's figures, motivated by its Section 7
//! analysis): how much each ingredient of Heron's space and search
//! contributes, measured on two TensorCore workloads.
//!
//! Space ablations disable one expressive feature at a time; search
//! ablations replace CGA's key-variable selection (CGA-1) or CGA entirely
//! (solver-backed random search).

use heron_bench::{seed, trials};
use heron_core::explore::cga::{CgaConfig, CgaExplorer};
use heron_core::explore::classic::RandomExplorer;
use heron_core::explore::Explorer;
use heron_core::generate::{SpaceGenerator, SpaceOptions};
use heron_core::tuner::evaluate;
use heron_dla::{v100, Measurer};
use heron_rng::HeronRng;
use heron_tensor::ops;

fn run_space(opts: SpaceOptions, dag: &heron_tensor::Dag, steps: usize) -> f64 {
    let spec = v100();
    let Ok(space) = SpaceGenerator::new(spec.clone()).generate_named(dag, &opts, "abl") else {
        return 0.0;
    };
    let measurer = Measurer::new(spec);
    let mut rng = HeronRng::from_seed(seed());
    let mut explorer = CgaExplorer::new(CgaConfig::default());
    let mut measure =
        |sol: &heron_csp::Solution| evaluate(&space, &measurer, sol).ok().map(|(_, m)| m.gflops);
    explorer
        .explore(&space, &mut measure, steps, &mut rng)
        .last()
        .copied()
        .unwrap_or(0.0)
}

fn run_search(explorer: &mut dyn Explorer, dag: &heron_tensor::Dag, steps: usize) -> f64 {
    let spec = v100();
    let space = SpaceGenerator::new(spec.clone())
        .generate_named(dag, &SpaceOptions::heron(), "abl")
        .expect("generates");
    let measurer = Measurer::new(spec);
    let mut rng = HeronRng::from_seed(seed());
    let mut measure =
        |sol: &heron_csp::Solution| evaluate(&space, &measurer, sol).ok().map(|(_, m)| m.gflops);
    explorer
        .explore(&space, &mut measure, steps, &mut rng)
        .last()
        .copied()
        .unwrap_or(0.0)
}

fn main() {
    let steps = trials();
    let cases = [
        ("GEMM-1024", ops::gemm(1024, 1024, 1024)),
        (
            "C2D-C5",
            ops::conv2d(ops::Conv2dConfig::new(32, 14, 14, 256, 256, 3, 3, 1, 1)),
        ),
    ];
    println!("Ablations on V100 TensorCore (steps={steps}), best Gops relative to full Heron");
    println!("config\t{}\t{}", cases[0].0, cases[1].0);

    let full: Vec<f64> = cases
        .iter()
        .map(|(_, dag)| run_space(SpaceOptions::heron(), dag, steps))
        .collect();
    println!("full-heron\t{:.0} Gops\t{:.0} Gops", full[0], full[1]);

    type Ablation = (&'static str, Box<dyn Fn() -> SpaceOptions>);
    let space_ablations: Vec<Ablation> = vec![
        (
            "no-storage-align",
            Box::new(|| SpaceOptions {
                storage_align: false,
                ..SpaceOptions::heron()
            }),
        ),
        (
            "no-locations",
            Box::new(|| SpaceOptions {
                tunable_locations: false,
                ..SpaceOptions::heron()
            }),
        ),
        (
            "fixed-intrinsic",
            Box::new(|| SpaceOptions {
                fixed_intrinsic: true,
                ..SpaceOptions::heron()
            }),
        ),
        (
            "fixed-serial",
            Box::new(|| SpaceOptions {
                fixed_serial_level: true,
                ..SpaceOptions::heron()
            }),
        ),
    ];
    for (name, make) in &space_ablations {
        let rel: Vec<f64> = cases
            .iter()
            .zip(&full)
            .map(|((_, dag), f)| run_space(make(), dag, steps) / f.max(1e-9))
            .collect();
        println!("{name}\t{:.2}\t{:.2}", rel[0], rel[1]);
    }

    // Search ablations on the full space.
    let rel: Vec<f64> = cases
        .iter()
        .zip(&full)
        .map(|((_, dag), f)| {
            run_search(&mut CgaExplorer::cga1(CgaConfig::default()), dag, steps) / f.max(1e-9)
        })
        .collect();
    println!("cga1-random-keys\t{:.2}\t{:.2}", rel[0], rel[1]);
    let rel: Vec<f64> = cases
        .iter()
        .zip(&full)
        .map(|((_, dag), f)| run_search(&mut RandomExplorer, dag, steps) / f.max(1e-9))
        .collect();
    println!("rand-instead-of-cga\t{:.2}\t{:.2}", rel[0], rel[1]);
}
