//! Regenerates **Figure 9**: GEMM, C2D and BMM on the simulated TVM VTA,
//! Heron vs AutoTVM (the only baseline supporting VTA; paper average:
//! 2.32× with comparable C2D and large GEMM/BMM gains).

use heron_baselines::Approach;
use heron_bench::{geomean, run_approach, seed, trials};
use heron_workloads::operator_suite;

fn main() {
    let spec = heron_dla::vta();
    let trials = trials();
    println!("Figure 9: VTA operator performance (trials={trials})");
    println!("op\tshape\tHeron(Gops)\tAutoTVM(Gops)\tspeedup");
    let mut per_op_speedups: Vec<(&str, Vec<f64>)> = Vec::new();
    for op in ["GEMM", "C2D", "BMM"] {
        let mut speedups = Vec::new();
        for w in operator_suite(op) {
            let heron = run_approach(Approach::Heron, &spec, &w, trials, seed());
            let autotvm = run_approach(Approach::AutoTvm, &spec, &w, trials, seed());
            let (Some(h), Some(a)) = (heron, autotvm) else {
                continue;
            };
            if h.best_gflops > 0.0 && a.best_gflops > 0.0 {
                speedups.push(h.best_gflops / a.best_gflops);
            }
            println!(
                "{op}\t{}\t{:.1}\t{:.1}\t{:.2}",
                w.name,
                h.best_gflops,
                a.best_gflops,
                if a.best_gflops > 0.0 {
                    h.best_gflops / a.best_gflops
                } else {
                    0.0
                }
            );
        }
        per_op_speedups.push((op, speedups));
    }
    for (op, s) in &per_op_speedups {
        println!("geomean[{op}]\t-\t-\t-\t{:.2}", geomean(s));
    }
    println!();
    println!("(paper: 2.32x average; C2D comparable, GEMM/BMM up to 2.95x)");
}
