//! Regenerates **Figure 10**: end-to-end network performance on the
//! simulated V100 TensorCore. Each distinct layer is tuned once; network
//! latency is the occurrence-weighted sum (paper averages: Heron 1.69×
//! AutoTVM, 1.46× AMOS, 1.44× PyTorch-cuDNN; batch size 16).

use heron_baselines::Approach;
use heron_bench::{run_approach, run_vendor, seed, trials};
use heron_workloads::{network, network_names};

fn main() {
    let spec = heron_dla::v100();
    let trials = trials();
    println!("Figure 10: network latency on V100 TensorCore, batch 16 (trials={trials})");
    println!("network\tHeron(ms)\tAutoTVM(ms)\tAMOS(ms)\tVendor(ms)\tvsAutoTVM\tvsAMOS\tvsVendor");
    for name in network_names() {
        let mut lat = [0.0f64; 4]; // heron, autotvm, amos, vendor
        for (w, count) in network(name) {
            let c = count as f64;
            let approaches = [Approach::Heron, Approach::AutoTvm, Approach::Amos];
            for (i, a) in approaches.iter().enumerate() {
                if let Some(o) = run_approach(*a, &spec, &w, trials, seed()) {
                    if o.best_latency_s.is_finite() {
                        lat[i] += o.best_latency_s * c;
                    }
                }
            }
            if let Some((_, l)) = run_vendor(&spec, &w, seed()) {
                lat[3] += l * c;
            }
        }
        let s = |i: usize| {
            if lat[i] > 0.0 && lat[0] > 0.0 {
                format!("{:.2}", lat[i] / lat[0])
            } else {
                "-".into()
            }
        };
        println!(
            "{name}\t{:.2}\t{:.2}\t{:.2}\t{:.2}\t{}\t{}\t{}",
            lat[0] * 1e3,
            lat[1] * 1e3,
            lat[2] * 1e3,
            lat[3] * 1e3,
            s(1),
            s(2),
            s(3)
        );
    }
    println!();
    println!("(paper: 1.69x AutoTVM, 1.46x AMOS, 1.44x PyTorch-cuDNN on average)");
}
