//! `heron-cli` — command-line front end for the library.
//!
//! ```text
//! heron-cli platforms
//! heron-cli tune    --dla v100 --op gemm --shape 1024x1024x1024 [--trials N] [--seed S] [--code]  (--code also prints the bottleneck analysis)
//! heron-cli tune    ... [--fault-rate R] [--pause-at N --checkpoint F] [--resume F]
//! heron-cli tune    ... [--trace-out T.jsonl] [--metrics-out M.tsv] [--profile]
//! heron-cli tune    ... [--solve-deadline STEPS] [--diagnose]
//! heron-cli compare --dla v100 --op c2d  --shape 16x56x56x64x64x3x1x1 [--trials N]
//! heron-cli census  --dla v100 --op gemm --shape 512x512x512
//! heron-cli export  --dla v100 --op gemm --shape 512x512x512   # CSP_initial as text
//! ```
//!
//! Fault tolerance: `--fault-rate 0.2` injects deterministic transient
//! faults (timeouts, device hangs, RPC drops, noisy latencies) seeded by
//! `--seed`; `--pause-at N` stops after ~N trials and writes a checkpoint;
//! `--resume F` continues a checkpointed session and reproduces the
//! uninterrupted run exactly.
//!
//! Observability: `--trace-out` writes the session's span trace as JSONL
//! (validate or re-render it with the `trace_report` binary),
//! `--metrics-out` snapshots every counter/gauge/histogram as TSV, and
//! `--profile` prints the hierarchical time breakdown. Traces use the
//! simulated manual clock, so the same seed yields byte-identical files.
//!
//! Search-health analytics: `--insight-out I.json` writes the analyzer's
//! deterministic `insight.json` (per-round regret, diversity/entropy,
//! ε-greedy split, per-refit model quality and importance drift,
//! constraint pressure, per-variable coverage); `--insight-report` prints
//! the human-readable search-health report. Both survive `--pause-at` /
//! `--resume`: a resumed session emits the identical insight stream.
//!
//! Robustness: `--solve-deadline STEPS` bounds every RandSAT call to a
//! deterministic number of candidate-value trials; `--diagnose` explains
//! an infeasible space by printing the minimal constraint removal that
//! restores feasibility (greedy conflict diagnosis). Corrupt or truncated
//! checkpoints are rejected by `--resume` with the byte offset of the
//! damage.
//!
//! Shapes: `gemm MxNxK`, `bmm BxMxNxK`, `gemv MxKxB`, `scan BxL`,
//! `c2d NxHxWxCIxCOxKxPxS`, `c1d NxLxCIxCOxKxPxS`, `c3d NxDxHWxCIxCOxKxPxS`.

use heron_baselines::{tune, vendor_outcome, Approach};
use heron_bench::{flag, has_flag};
use heron_core::generate::{SpaceGenerator, SpaceOptions};
use heron_csp::SpaceCensus;
use heron_dla::DlaSpec;
use heron_sched::kernel_pseudo_code;
use heron_tensor::ops::Conv2dConfig;
use heron_trace::Tracer;
use heron_workloads::{OpKind, Workload};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        return;
    };
    match cmd.as_str() {
        "platforms" => platforms(),
        "tune" => tune_cmd(&args[1..]),
        "compare" => compare_cmd(&args[1..]),
        "census" => census_cmd(&args[1..]),
        "export" => export_cmd(&args[1..]),
        other => {
            eprintln!("unknown command `{other}`");
            usage();
            std::process::exit(2);
        }
    }
}

fn usage() {
    eprintln!("usage: heron-cli <platforms|tune|compare|census|export> [--dla NAME] [--op OP] [--shape SHAPE] [--trials N] [--seed S] [--code] [--fault-rate R] [--pause-at N] [--checkpoint FILE] [--resume FILE] [--trace-out FILE.jsonl] [--metrics-out FILE.tsv] [--profile] [--insight-out FILE.json] [--insight-report] [--solve-deadline STEPS] [--deadline-rounds N] [--diagnose]");
}

fn platform(name: &str) -> DlaSpec {
    heron_dla::platforms::all()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| {
            eprintln!("unknown platform `{name}`; run `heron-cli platforms`");
            std::process::exit(2);
        })
}

fn platforms() {
    println!(
        "{:<10} {:>12} {:>8}  constraints",
        "name", "peak(Tops)", "dtype"
    );
    for s in heron_dla::platforms::all() {
        println!(
            "{:<10} {:>12.1} {:>8}  {}",
            s.name,
            s.peak_ops_per_sec() / 1e12,
            s.in_dtype.to_string(),
            s.constraint_summary().join("; ")
        );
    }
}

fn dims(shape: &str) -> Vec<i64> {
    shape
        .split('x')
        .map(|d| {
            d.parse().unwrap_or_else(|_| {
                eprintln!("bad shape component `{d}` in `{shape}`");
                std::process::exit(2);
            })
        })
        .collect()
}

fn parse_workload(op: &str, shape: &str) -> Workload {
    let d = dims(shape);
    let expect = |n: usize| {
        if d.len() != n {
            eprintln!("op `{op}` expects {n} shape components, got {}", d.len());
            std::process::exit(2);
        }
    };
    let kind = match op {
        "gemm" => {
            expect(3);
            OpKind::Gemm {
                m: d[0],
                n: d[1],
                k: d[2],
            }
        }
        "bmm" => {
            expect(4);
            OpKind::Bmm {
                b: d[0],
                m: d[1],
                n: d[2],
                k: d[3],
            }
        }
        "gemv" => {
            expect(3);
            OpKind::Gemv {
                m: d[0],
                k: d[1],
                b: d[2],
            }
        }
        "scan" => {
            expect(2);
            OpKind::Scan { b: d[0], l: d[1] }
        }
        "c1d" => {
            expect(7);
            OpKind::C1d {
                n: d[0],
                l: d[1],
                ci: d[2],
                co: d[3],
                k: d[4],
                p: d[5],
                s: d[6],
            }
        }
        "c2d" => {
            expect(8);
            OpKind::C2d(Conv2dConfig::new(
                d[0], d[1], d[2], d[3], d[4], d[5], d[5], d[6], d[7],
            ))
        }
        "c3d" => {
            expect(8);
            OpKind::C3d {
                n: d[0],
                d: d[1],
                hw: d[2],
                ci: d[3],
                co: d[4],
                k: d[5],
                s: d[7],
                p: d[6],
            }
        }
        other => {
            eprintln!("unknown op `{other}`");
            std::process::exit(2);
        }
    };
    Workload::new(format!("{op}-{shape}"), kind)
}

struct Common {
    spec: DlaSpec,
    workload: Workload,
    trials: usize,
    seed: u64,
}

fn common(args: &[String]) -> Common {
    let spec = platform(&flag(args, "--dla").unwrap_or_else(|| "v100".into()));
    let op = flag(args, "--op").unwrap_or_else(|| "gemm".into());
    let shape = flag(args, "--shape").unwrap_or_else(|| "1024x1024x1024".into());
    Common {
        workload: parse_workload(&op, &shape),
        spec,
        trials: flag(args, "--trials")
            .and_then(|t| t.parse().ok())
            .unwrap_or(300),
        seed: flag(args, "--seed")
            .and_then(|s| s.parse().ok())
            .unwrap_or(2023),
    }
}

/// Writes `--trace-out` / `--metrics-out` files and prints the
/// `--profile` tree; shared by every way a traced session can end
/// (finish, pause, resume).
fn emit_observability(args: &[String], tracer: &Tracer, result: &heron_core::tuner::TuneResult) {
    if let Some(path) = flag(args, "--trace-out") {
        if let Err(e) = tracer.write_jsonl(&path) {
            eprintln!("cannot write trace to `{path}`: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "trace written to `{path}` ({} events)",
            tracer.event_count()
        );
    }
    heron_bench::write_metrics_flag(args, tracer);
    if has_flag(args, "--profile") {
        print!("{}", result.profile());
    }
}

/// Handles `--insight-out` / `--insight-report`: runs the search-health
/// analyzer over the session's [`heron_insight::SearchLog`] and writes
/// the deterministic `insight.json` and/or prints the text report.
fn emit_insight(args: &[String], tuner: &heron_core::tuner::Tuner) {
    let Some(log) = tuner.insight() else { return };
    let report = heron_insight::analyze(log);
    if let Some(path) = flag(args, "--insight-out") {
        let doc = report.to_json(log);
        debug_assert!(heron_insight::validate_insight(&doc).is_ok());
        if let Err(e) = std::fs::write(&path, doc.render_pretty()) {
            eprintln!("cannot write insight to `{path}`: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "insight written to `{path}` ({} rounds, {} refits)",
            log.rounds.len(),
            log.refits.len()
        );
    }
    if has_flag(args, "--insight-report") {
        print!("{}", report.render_text(log));
    }
}

/// Direct-`Tuner` path for the resilience and observability features:
/// fault injection, pause-at-N checkpointing, resume, and tracing. (The
/// plain path goes through the `heron_baselines::tune` facade, which has
/// no session handle to pause or instrument.)
fn tune_resilient(args: &[String], c: &Common) {
    use heron_core::checkpoint::TuneCheckpoint;
    use heron_core::tuner::Tuner;
    use heron_dla::{FaultPlan, Measurer};

    let traced = has_flag(args, "--trace-out")
        || has_flag(args, "--metrics-out")
        || has_flag(args, "--profile");
    // Manual clock: timestamps advance by simulated measurement time, so
    // traced runs are reproducible byte-for-byte from the seed.
    let tracer = if traced {
        Tracer::manual()
    } else {
        Tracer::disabled()
    };

    let dag = c.workload.build(c.spec.in_dtype);
    let fault_rate: f64 = flag(args, "--fault-rate")
        .and_then(|r| r.parse().ok())
        .unwrap_or(0.0);
    let plan = if fault_rate > 0.0 {
        FaultPlan::uniform(c.seed, fault_rate)
    } else {
        FaultPlan::none(c.seed)
    };
    let mut config = heron_baselines::tune::heron_config(c.trials);
    if let Some(deadline) = flag(args, "--solve-deadline").and_then(|d| d.parse::<u64>().ok()) {
        config.cga.solve_deadline = deadline;
    }
    let space = match SpaceGenerator::new(c.spec.clone()).generate_named(
        &dag,
        &SpaceOptions::heron(),
        &c.workload.name,
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot generate: {e}");
            std::process::exit(1);
        }
    };

    let mut tuner = if let Some(path) = flag(args, "--resume") {
        let ckpt = match TuneCheckpoint::load(&path) {
            Ok(ck) => ck,
            Err(e) => {
                eprintln!("cannot load checkpoint `{path}`: {e}");
                std::process::exit(1);
            }
        };
        println!(
            "resuming `{}` on {} from `{path}` ({} trials done)…",
            ckpt.workload,
            ckpt.dla,
            ckpt.curve.len()
        );
        match Tuner::resume(space, Measurer::new(c.spec.clone()), config, plan, &ckpt) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot resume: {e}");
                std::process::exit(1);
            }
        }
    } else {
        println!(
            "tuning `{}` on {} for {} trials (fault rate {:.0}%)…",
            c.workload.name,
            c.spec.name,
            c.trials,
            fault_rate * 100.0
        );
        Tuner::new(space, Measurer::new(c.spec.clone()), config, c.seed).with_faults(plan)
    };
    tuner.set_tracer(tracer.clone());
    // Search-health analytics: enable the log unless resume already
    // restored one from the checkpoint (resetting it would lose the
    // pre-pause rounds and break insight-exact resumption).
    let want_insight = has_flag(args, "--insight-out") || has_flag(args, "--insight-report");
    if want_insight && tuner.insight().is_none() {
        tuner.enable_insight(8);
    }
    // Global job deadline: the session preempts itself at the round
    // boundary once its *lifetime* round counter (which survives
    // checkpoint/resume) reaches the bound — the same cooperative path
    // heron-serve uses, so the checkpoint is bit-exact resumable.
    if let Some(deadline) = flag(args, "--deadline-rounds").and_then(|d| d.parse::<u64>().ok()) {
        tuner.control().set_deadline_rounds(deadline);
    }

    if let Some(pause_at) = flag(args, "--pause-at").and_then(|n| n.parse::<usize>().ok()) {
        let finished = tuner.run_until(pause_at);
        if !finished {
            let path =
                flag(args, "--checkpoint").unwrap_or_else(|| format!("{}.ckpt", c.workload.name));
            if let Err(e) = tuner.checkpoint().save(&path) {
                eprintln!("cannot write checkpoint `{path}`: {e}");
                std::process::exit(1);
            }
            println!(
                "paused after {} trials; checkpoint written to `{path}` (resume with --resume {path})",
                tuner.trials_done()
            );
            emit_observability(args, &tracer, &tuner.result());
            emit_insight(args, &tuner);
            return;
        }
        println!("session finished before trial {pause_at}; nothing to pause");
    } else {
        tuner.run();
    }
    if tuner.result().termination == heron_core::tuner::Termination::Preempted {
        let path =
            flag(args, "--checkpoint").unwrap_or_else(|| format!("{}.ckpt", c.workload.name));
        if let Err(e) = tuner.checkpoint().save(&path) {
            eprintln!("cannot write checkpoint `{path}`: {e}");
            std::process::exit(1);
        }
        println!(
            "deadline reached after {} rounds; checkpoint written to `{path}` \
             (resume with --resume {path})",
            tuner.rounds_total()
        );
    }
    print!("{}", tuner.result().report());
    if has_flag(args, "--diagnose")
        && tuner.result().termination == heron_core::tuner::Termination::Infeasible
    {
        match heron_csp::diagnose_root_conflict(&tuner.space().csp) {
            Some(report) => print!("{report}"),
            None => println!(
                "diagnosis: the root is propagation-feasible; \
                 infeasibility was proven deeper in the search"
            ),
        }
    }
    emit_observability(args, &tracer, &tuner.result());
    emit_insight(args, &tuner);
}

fn tune_cmd(args: &[String]) {
    let c = common(args);
    let needs_session = [
        "--fault-rate",
        "--pause-at",
        "--resume",
        "--trace-out",
        "--metrics-out",
        "--profile",
        "--insight-out",
        "--insight-report",
        "--solve-deadline",
        "--deadline-rounds",
        "--diagnose",
    ]
    .iter()
    .any(|f| has_flag(args, f));
    if needs_session {
        tune_resilient(args, &c);
        return;
    }
    let dag = c.workload.build(c.spec.in_dtype);
    println!(
        "tuning `{}` on {} for {} trials…",
        c.workload.name, c.spec.name, c.trials
    );
    match tune(
        Approach::Heron,
        &c.spec,
        &dag,
        &c.workload.name,
        c.trials,
        c.seed,
    ) {
        Ok(o) => {
            println!(
                "best: {:.1} Gops ({:.1}% of peak), latency {:.1} us, invalid trials {}",
                o.best_gflops,
                o.best_gflops * 1e9 / c.spec.peak_ops_per_sec() * 100.0,
                o.best_latency_s * 1e6,
                o.invalid_trials
            );
            if has_flag(args, "--code") {
                // Re-derive the best kernel for printing.
                let space = SpaceGenerator::new(c.spec.clone())
                    .generate_named(&dag, &SpaceOptions::heron(), &c.workload.name)
                    .expect("generates");
                let mut tuner = heron_core::tuner::Tuner::new(
                    space,
                    heron_dla::Measurer::new(c.spec.clone()),
                    heron_baselines::tune::heron_config(c.trials),
                    c.seed,
                );
                if let Some(k) = tuner.run().best_kernel {
                    println!("\n{}", kernel_pseudo_code(&k));
                    let measurer = heron_dla::Measurer::new(c.spec.clone());
                    if let Ok(a) = measurer.analyze(&k) {
                        println!("{a}");
                    }
                    if let Ok((m, e)) = measurer.measure_with_energy(&k) {
                        println!(
                            "energy: {:.1} uJ/run ({:.1} compute, {:.1} off-chip, {:.1} on-chip, {:.1} static) -> {:.1} Gops/W",
                            e.total_j() * 1e6,
                            e.compute_j * 1e6,
                            e.offchip_j * 1e6,
                            e.onchip_j * 1e6,
                            e.static_j * 1e6,
                            e.gops_per_watt(k.total_flops, m.latency_s)
                        );
                    }
                }
            }
        }
        Err(e) => {
            eprintln!("cannot tune: {e}");
            std::process::exit(1);
        }
    }
}

fn compare_cmd(args: &[String]) {
    let c = common(args);
    let dag = c.workload.build(c.spec.in_dtype);
    println!(
        "comparing approaches on `{}` / {} ({} trials each)",
        c.workload.name, c.spec.name, c.trials
    );
    println!(
        "{:<10} {:>12} {:>12} {:>8} {:>8}",
        "approach", "Gops", "latency", "valid", "invalid"
    );
    for a in Approach::all() {
        match tune(a, &c.spec, &dag, &c.workload.name, c.trials, c.seed) {
            Ok(o) => println!(
                "{:<10} {:>12.1} {:>10.1}us {:>8} {:>8}",
                o.name,
                o.best_gflops,
                o.best_latency_s * 1e6,
                o.valid_trials,
                o.invalid_trials
            ),
            Err(_) => println!("{:<10} {:>12}", a.name(), "n/a"),
        }
    }
    if let Some(v) = vendor_outcome(&c.spec, &dag, &c.workload.name, c.seed) {
        println!(
            "{:<10} {:>12.1} {:>10.1}us {:>8} {:>8}",
            "vendor",
            v.gflops,
            v.latency_s * 1e6,
            "-",
            "-"
        );
    }
}

fn census_cmd(args: &[String]) {
    let c = common(args);
    let dag = c.workload.build(c.spec.in_dtype);
    match SpaceGenerator::new(c.spec.clone()).generate_named(
        &dag,
        &SpaceOptions::heron(),
        &c.workload.name,
    ) {
        Ok(space) => {
            let census = SpaceCensus::of(&space.csp);
            println!("space for `{}` on {}:", c.workload.name, c.spec.name);
            println!(
                "  variables: {} (arch {}, loop {}, tunable {}, other {})",
                census.total_vars(),
                census.arch_vars,
                census.loop_length_vars,
                census.tunable_vars,
                census.other_vars
            );
            println!("  constraints: {}", census.total_constraints());
            for (tag, n) in &census.constraints_by_type {
                println!("    {tag}: {n}");
            }
            println!(
                "  tunable cross-product: 10^{:.1}",
                space.csp.tunable_space_log10()
            );
            println!("  schedule template:");
            for p in &space.template.primitives {
                println!("    {p}");
            }
        }
        Err(e) => {
            eprintln!("cannot generate: {e}");
            std::process::exit(1);
        }
    }
}

fn export_cmd(args: &[String]) {
    let c = common(args);
    let dag = c.workload.build(c.spec.in_dtype);
    match SpaceGenerator::new(c.spec.clone()).generate_named(
        &dag,
        &SpaceOptions::heron(),
        &c.workload.name,
    ) {
        Ok(space) => print!("{}", heron_csp::to_text(&space.csp)),
        Err(e) => {
            eprintln!("cannot generate: {e}");
            std::process::exit(1);
        }
    }
}
