//! `heron_audit` — differential constraint-space auditor CLI
//! (DESIGN.md §11).
//!
//! ```text
//! heron_audit --dla v100 --op gemm --shape 512x512x512 [--seed S]
//!             [--samples N] [--anchors N] [--out audit.json] [--check]
//! heron_audit ... --list-mutations
//! heron_audit ... --mutate <INDEX|drop-le|drop-in|tighten-le|tighten-in|widen-le|widen-in>
//! heron_audit ... --pause-at K --checkpoint F      # pause mid-sampling
//! heron_audit ... --resume F                        # byte-identical continuation
//! ```
//!
//! The audit samples the generated space's CSP and replays every point
//! through the fault-free simulator oracle (under-constraint probe),
//! then perturbs known-valid schedules one knob at a time and pins any
//! oracle-valid completion back into the CSP (over-constraint probe).
//! `--check` exits non-zero when any witness is confirmed — the CI gate.
//! `--mutate` damages one posted rule first (the seeded negative test:
//! a mutated space **must** fail `--check`).

use heron_audit::{audit_with_state, validate_audit, AuditConfig, UnderState};
use heron_bench::{flag, has_flag};
use heron_core::generate::{SpaceGenerator, SpaceOptions};
use heron_dla::DlaSpec;
use heron_tensor::ops::Conv2dConfig;
use heron_testkit::rule_mutation::RuleMutation;
use heron_trace::Tracer;
use heron_workloads::{OpKind, Workload};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if has_flag(&args, "--help") {
        usage();
        return;
    }
    let spec = platform(&flag(&args, "--dla").unwrap_or_else(|| "v100".into()));
    let op = flag(&args, "--op").unwrap_or_else(|| "gemm".into());
    let shape = flag(&args, "--shape").unwrap_or_else(|| "512x512x512".into());
    let workload = parse_workload(&op, &shape);
    let seed = flag(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2023);

    let dag = workload.build(spec.in_dtype);
    let mut space = match SpaceGenerator::new(spec.clone()).generate_named(
        &dag,
        &SpaceOptions::heron(),
        &workload.name,
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot generate: {e}");
            std::process::exit(1);
        }
    };

    if has_flag(&args, "--list-mutations") {
        println!("{:<5} {:<8} {:<6} detail", "index", "kind", "probe");
        for (i, m) in heron_audit::corpus(&space, seed).iter().enumerate() {
            println!(
                "{:<5} {:<8} {:<6} {}",
                i,
                m.kind.tag(),
                m.kind.expected_probe(),
                m.detail
            );
        }
        return;
    }
    if let Some(which) = flag(&args, "--mutate") {
        let m = select_mutation(&space, seed, &which);
        println!("mutating rule #{}: {}", m.index, m.detail);
        space = heron_audit::mutated_space(&space, &m);
    }

    let mut cfg = AuditConfig::new(seed);
    if let Some(n) = flag(&args, "--samples").and_then(|n| n.parse().ok()) {
        cfg.samples = n;
    }
    if let Some(n) = flag(&args, "--anchors").and_then(|n| n.parse().ok()) {
        cfg.anchors = n;
    }

    let tracer = Tracer::manual();
    let mut state = UnderState::new();
    if let Some(path) = flag(&args, "--resume") {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read checkpoint `{path}`: {e}");
            std::process::exit(1);
        });
        let (restored, ck_seed, ck_samples) = UnderState::from_text(&text).unwrap_or_else(|e| {
            eprintln!("cannot resume from `{path}`: {e}");
            std::process::exit(1);
        });
        if ck_seed != cfg.seed || ck_samples != cfg.samples {
            eprintln!(
                "checkpoint `{path}` is for seed {ck_seed} / {ck_samples} samples, \
                 not seed {} / {} samples",
                cfg.seed, cfg.samples
            );
            std::process::exit(1);
        }
        println!(
            "resuming audit from `{path}` ({} samples done)…",
            restored.seen.len()
        );
        state = restored;
    }

    let pause_after = flag(&args, "--pause-at").and_then(|n| n.parse::<usize>().ok());
    let report = match audit_with_state(&space, &cfg, &tracer, &mut state, pause_after) {
        Some(r) => r,
        None => {
            let path = flag(&args, "--checkpoint")
                .unwrap_or_else(|| format!("{}.audit.ckpt", workload.name));
            if let Err(e) = std::fs::write(&path, state.to_text(cfg.seed, cfg.samples)) {
                eprintln!("cannot write checkpoint `{path}`: {e}");
                std::process::exit(1);
            }
            println!(
                "paused after {} samples; checkpoint written to `{path}` \
                 (resume with --resume {path})",
                state.seen.len()
            );
            return;
        }
    };

    print!("{}", report.render_text());
    if let Some(path) = flag(&args, "--out") {
        let doc = report.to_json();
        debug_assert!(validate_audit(&doc).is_ok());
        if let Err(e) = std::fs::write(&path, doc.render_pretty()) {
            eprintln!("cannot write audit to `{path}`: {e}");
            std::process::exit(1);
        }
        eprintln!("audit written to `{path}`");
    }
    heron_bench::write_metrics_flag(&args, &tracer);
    if has_flag(&args, "--check") && !report.clean() {
        eprintln!(
            "audit check FAILED: {} confirmed witness(es), {} invalid sample(s)",
            report.confirmed(),
            report.invalid_total
        );
        std::process::exit(1);
    }
}

fn usage() {
    eprintln!(
        "usage: heron_audit [--dla NAME] [--op OP] [--shape SHAPE] [--seed S] \
         [--samples N] [--anchors N] [--out FILE.json] [--metrics-out FILE.tsv] [--check] \
         [--list-mutations] [--mutate INDEX|drop-le|drop-in|tighten-le|tighten-in|widen-le|widen-in] \
         [--pause-at K --checkpoint FILE] [--resume FILE]"
    );
}

/// Resolves `--mutate`: a corpus index, or a `kind-target` shorthand
/// (`drop-le` = first dropped `LE` rule, `tighten-in` = first tightened
/// `IN` rule, …).
fn select_mutation(
    space: &heron_core::generate::GeneratedSpace,
    seed: u64,
    which: &str,
) -> RuleMutation {
    let corpus = heron_audit::corpus(space, seed);
    if let Ok(i) = which.parse::<usize>() {
        if i < corpus.len() {
            return corpus[i].clone();
        }
        eprintln!(
            "mutation index {i} out of range (corpus has {})",
            corpus.len()
        );
        std::process::exit(2);
    }
    let Some((kind, target)) = which.split_once('-') else {
        eprintln!("bad --mutate `{which}` (want INDEX or e.g. drop-le)");
        std::process::exit(2);
    };
    let target = target.to_uppercase();
    corpus
        .into_iter()
        .find(|m| m.kind.tag() == kind && m.detail.contains(&format!("{kind} {target}(")))
        .unwrap_or_else(|| {
            eprintln!("no `{which}` mutation applies to this space");
            std::process::exit(2);
        })
}

fn platform(name: &str) -> DlaSpec {
    heron_dla::platforms::all()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| {
            eprintln!("unknown platform `{name}`");
            std::process::exit(2);
        })
}

fn dims(shape: &str) -> Vec<i64> {
    shape
        .split('x')
        .map(|d| {
            d.parse().unwrap_or_else(|_| {
                eprintln!("bad shape component `{d}` in `{shape}`");
                std::process::exit(2);
            })
        })
        .collect()
}

fn parse_workload(op: &str, shape: &str) -> Workload {
    let d = dims(shape);
    let expect = |n: usize| {
        if d.len() != n {
            eprintln!("op `{op}` expects {n} shape components, got {}", d.len());
            std::process::exit(2);
        }
    };
    let kind = match op {
        "gemm" => {
            expect(3);
            OpKind::Gemm {
                m: d[0],
                n: d[1],
                k: d[2],
            }
        }
        "gemv" => {
            expect(3);
            OpKind::Gemv {
                m: d[0],
                k: d[1],
                b: d[2],
            }
        }
        "c2d" => {
            expect(8);
            OpKind::C2d(Conv2dConfig::new(
                d[0], d[1], d[2], d[3], d[4], d[5], d[5], d[6], d[7],
            ))
        }
        other => {
            eprintln!("unknown op `{other}` (heron_audit supports gemm, gemv, c2d)");
            std::process::exit(2);
        }
    };
    Workload::new(format!("{op}-{shape}"), kind)
}
