//! Regenerates **Figure 12**: CGA vs SA, GA and RAND exploration
//! efficiency on (a) a C2D and (b) a GEMM operator. The paper's claim: CGA
//! reaches in ~500 steps what the baselines need 1000+ steps for, because
//! every offspring is valid and good genes are retained.

use heron_bench::{downsample, seed, trials, TsvTable};
use heron_core::explore::cga::{CgaConfig, CgaExplorer};
use heron_core::explore::classic::{GaExplorer, RandomExplorer, SaExplorer};
use heron_core::explore::Explorer;
use heron_core::generate::{SpaceGenerator, SpaceOptions};
use heron_core::tuner::evaluate;
use heron_dla::{v100, Measurer};
use heron_rng::HeronRng;
use heron_tensor::ops;

fn main() {
    let spec = v100();
    let steps = trials();
    let cases = [
        (
            "C2D",
            ops::conv2d(ops::Conv2dConfig::new(16, 14, 14, 256, 256, 3, 3, 1, 1)),
        ),
        ("GEMM", ops::gemm(1024, 1024, 1024)),
    ];
    println!("Figure 12: exploration efficiency (steps={steps})");
    let mut table = TsvTable::new("fig12", &["case", "algorithm", "step", "best_gflops"]);
    for (case, dag) in cases {
        let space = SpaceGenerator::new(spec.clone())
            .generate_named(&dag, &SpaceOptions::heron(), case)
            .expect("generates");
        let measurer = Measurer::new(spec.clone());
        let mut explorers: Vec<Box<dyn Explorer>> = vec![
            Box::new(CgaExplorer::new(CgaConfig::default())),
            Box::new(SaExplorer::default()),
            Box::new(GaExplorer::default()),
            Box::new(RandomExplorer),
        ];
        for explorer in &mut explorers {
            let mut rng = HeronRng::from_seed(seed());
            let mut measure = |sol: &heron_csp::Solution| {
                evaluate(&space, &measurer, sol).ok().map(|(_, m)| m.gflops)
            };
            let curve = explorer.explore(&space, &mut measure, steps, &mut rng);
            for (step, best) in downsample(&curve, 16) {
                table.emit(&[
                    case.to_string(),
                    explorer.name().to_string(),
                    step.to_string(),
                    format!("{best:.1}"),
                ]);
            }
        }
    }
}
