//! Regenerates **Tables 4 and 5**: how many variables (by category) and
//! constraints describe each operator's automatically generated search
//! space on TensorCore.
//!
//! Paper reference values — Table 4 (GEMM): 10 arch / 82 loop-length /
//! 30 tunable / 51 other; Table 5: GEMM 173 vars & 372 constraints, BMM
//! 236 & 529, C1D 236 & 547, C2D 304 & 702, C3D 363 & 861.

use heron_core::generate::{SpaceGenerator, SpaceOptions};
use heron_csp::SpaceCensus;
use heron_tensor::ops;

fn main() {
    let spec = heron_dla::v100();
    let generator = SpaceGenerator::new(spec);
    let cases = [
        ("GEMM", ops::gemm(512, 512, 512)),
        ("BMM", ops::bmm(16, 512, 512, 64)),
        ("C1D", ops::conv1d(8, 128, 128, 256, 3, 1, 1)),
        (
            "C2D",
            ops::conv2d(ops::Conv2dConfig::new(8, 28, 28, 128, 128, 3, 3, 1, 1)),
        ),
        ("C3D", ops::conv3d(1, 16, 28, 28, 64, 64, 3, 1, 1)),
    ];

    println!("Table 4: variable breakdown of the GEMM space (paper: 10/82/30/51)");
    println!("op\tarch\tloop_len\ttunable\tother\ttotal");
    let mut table5 = Vec::new();
    for (name, dag) in cases {
        let space = generator
            .generate_named(&dag, &SpaceOptions::heron(), name)
            .expect("tensorizable");
        let c = SpaceCensus::of(&space.csp);
        if name == "GEMM" {
            println!(
                "{name}\t{}\t{}\t{}\t{}\t{}",
                c.arch_vars,
                c.loop_length_vars,
                c.tunable_vars,
                c.other_vars,
                c.total_vars()
            );
        }
        table5.push((name, c));
    }

    println!();
    println!("Table 5: variables and constraints per operator (paper: 173/372 … 363/861)");
    println!("op\tvariables\tconstraints\tby-type");
    for (name, c) in &table5 {
        let types: Vec<String> = c
            .constraints_by_type
            .iter()
            .map(|(t, n)| format!("{t}:{n}"))
            .collect();
        println!(
            "{name}\t{}\t{}\t{}",
            c.total_vars(),
            c.total_constraints(),
            types.join(" ")
        );
    }
}
