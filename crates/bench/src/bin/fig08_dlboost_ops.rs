//! Regenerates **Figure 8**: operator performance on the simulated Intel
//! DL Boost CPU relative to Heron (paper averages: 2.93× AutoTVM, 12.0×
//! Ansor, 2.71× AMOS, 1.49× oneDNN).

use heron_baselines::Approach;
use heron_bench::{geomean, run_approach, run_vendor, seed, trials};
use heron_workloads::{operator_names, operator_suite};

fn main() {
    let spec = heron_dla::dlboost();
    let trials = trials();
    println!("Figure 8: DL Boost operator performance (trials={trials})");
    println!("op\tHeron(Gops)\tvsAutoTVM\tvsAnsor\tvsAMOS\tvsOneDNN");

    let mut all: [Vec<f64>; 4] = Default::default();
    for op in operator_names() {
        let mut speedups: [Vec<f64>; 4] = Default::default();
        let mut heron_scores = Vec::new();
        for w in operator_suite(op) {
            let Some(heron) = run_approach(Approach::Heron, &spec, &w, trials, seed()) else {
                continue;
            };
            heron_scores.push(heron.best_gflops);
            let others = [
                run_approach(Approach::AutoTvm, &spec, &w, trials, seed()).map(|o| o.best_gflops),
                run_approach(Approach::Ansor, &spec, &w, trials, seed()).map(|o| o.best_gflops),
                run_approach(Approach::Amos, &spec, &w, trials, seed()).map(|o| o.best_gflops),
                run_vendor(&spec, &w, seed()).map(|(g, _)| g),
            ];
            for (i, other) in others.iter().enumerate() {
                if let Some(g) = other {
                    if *g > 0.0 && heron.best_gflops > 0.0 {
                        speedups[i].push(heron.best_gflops / g);
                    }
                }
            }
        }
        println!(
            "{op}\t{:.0}\t{:.2}\t{:.2}\t{:.2}\t{:.2}",
            geomean(&heron_scores),
            geomean(&speedups[0]),
            geomean(&speedups[1]),
            geomean(&speedups[2]),
            geomean(&speedups[3])
        );
        for i in 0..4 {
            all[i].extend(speedups[i].iter());
        }
    }
    println!(
        "geomean\t-\t{:.2}\t{:.2}\t{:.2}\t{:.2}",
        geomean(&all[0]),
        geomean(&all[1]),
        geomean(&all[2]),
        geomean(&all[3])
    );
    println!();
    println!("(paper: AutoTVM 2.93x, Ansor 12.0x, AMOS 2.71x, oneDNN 1.49x)");
}
