//! heron_serve: in-process driver for the supervised tuning service.
//!
//! No network, no daemon management: the service reads a deterministic
//! **job script** (or the built-in `--smoke` scenario), drives the
//! supervisor to completion on this process's thread pool, prints the
//! results manifest, and optionally writes per-job artifacts and the
//! service trace. The `--smoke` mode is the chaos harness the CI
//! service-robustness stage runs: it submits six jobs, kill-injects
//! three workers (two crashes, one hang), drives one job past its
//! restart budget into quarantine, overflows the admission queue, and
//! then *proves* the robustness contract — every recovered job's
//! deterministic record is byte-identical to an uninterrupted run, no
//! job was lost or double-run, and a second service run reproduces the
//! manifest byte for byte.

use heron_bench::{flag, has_flag, scope_input};
use heron_pulse::{build_pulse, render_dashboard, render_slo_report, SloSpec};
use heron_serve::{chaos, parse_script, JobScript, JobState, Supervisor};
use heron_trace::Json;

/// The built-in chaos scenario for `--smoke` (and a worked example of
/// the job-script language).
const SMOKE_SCRIPT: &str = "\
# heron-serve chaos smoke: 6 jobs, 3 worker kills, 1 poisoned job,
# 1 admission rejection.
workers = 3
queue_capacity = 5
restart_budget = 2
checkpoint_every = 2
hang_grace_polls = 150
poll_interval_ms = 10

job g1 op=gemm shape=96x96x96 trials=40 seed=11
job g2 op=gemm shape=64x128x64 trials=40 seed=12 fault_rate=0.15
job g3 op=gemm shape=128x64x128 trials=32 seed=13
job g4 op=gemm shape=64x64x64 trials=32 seed=14
job g5 op=gemm shape=48x48x48 trials=24 seed=15
job g6 op=gemm shape=32x32x32 trials=16 seed=16

# g1: crash after round 3 (recovers from its round-2 checkpoint).
kill g1 attempt=0 round=3 kind=crash
# g2: hang at round 2 (watchdog fences the epoch and recovers).
kill g2 attempt=0 round=2 kind=hang
# g5: poisoned — every attempt dies, exhausting the restart budget.
kill g5 attempt=0 round=1 kind=crash
kill g5 attempt=1 round=2 kind=crash
kill g5 attempt=2 round=1 kind=crash
";

/// The permissive default SLO spec used when `--slo` is not given:
/// the service must settle without excessive rejection or recovery
/// latency. All thresholds are in simulated time.
const DEFAULT_SLO: &str = "\
reject_rate <= 0.5
recovery_max_s <= 600
queue_wait_s <= 1800
";

fn usage() {
    eprintln!(
        "usage: heron_serve (--jobs FILE | --smoke) [--workers N] [--manifest FILE] \
         [--trace-out FILE.jsonl] [--artifact-dir DIR] [--verify-recovery] \
         [--pulse-out FILE.json] [--slo SPEC] [--slo-report FILE] [--baseline BENCH.json] \
         [--scope-out FILE.json] [--postmortem-dir DIR]"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if has_flag(&args, "--help") {
        usage();
        return;
    }
    let smoke = has_flag(&args, "--smoke");
    let script_text = if smoke {
        SMOKE_SCRIPT.to_string()
    } else if let Some(path) = flag(&args, "--jobs") {
        match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read job script `{path}`: {e}");
                std::process::exit(1);
            }
        }
    } else {
        usage();
        std::process::exit(2);
    };
    let mut script = match parse_script(&script_text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bad job script: {e}");
            std::process::exit(1);
        }
    };
    if let Some(w) = flag(&args, "--workers").and_then(|w| w.parse().ok()) {
        script.config.workers = w;
    }
    let baseline = match flag(&args, "--baseline") {
        Some(path) => load_baseline(&path),
        None => Vec::new(),
    };
    let slo_spec = match flag(&args, "--slo") {
        Some(path) => {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read SLO spec `{path}`: {e}");
                    std::process::exit(1);
                }
            };
            match SloSpec::parse(&text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("bad SLO spec `{path}`: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => SloSpec::parse(DEFAULT_SLO).expect("builtin SLO spec parses"),
    };

    let specs = script.jobs.clone();
    let postmortem_dir = flag(&args, "--postmortem-dir");
    let sup = run_service(
        script.clone(),
        &baseline,
        &slo_spec,
        postmortem_dir.as_deref(),
    );
    let manifest = sup.manifest();
    print!("{manifest}");
    if let Some(dir) = &postmortem_dir {
        eprintln!(
            "{} postmortem bundle(s) written to `{dir}`",
            sup.postmortems().len()
        );
    }

    let scope_doc = heron_scope::build_scope(&scope_input(&sup));
    if let Some(path) = flag(&args, "--scope-out") {
        if let Err(e) = std::fs::write(&path, scope_doc.render_pretty()) {
            eprintln!("cannot write scope document `{path}`: {e}");
            std::process::exit(1);
        }
        eprintln!("scope document written to `{path}`");
    }

    let pulse_doc = build_pulse(&sup.pulse_input(), &slo_spec);
    if let Some(path) = flag(&args, "--pulse-out") {
        if let Err(e) = std::fs::write(&path, pulse_doc.render_pretty()) {
            eprintln!("cannot write pulse document `{path}`: {e}");
            std::process::exit(1);
        }
        eprintln!("pulse document written to `{path}`");
    }
    if let Some(path) = flag(&args, "--slo-report") {
        if let Err(e) = std::fs::write(&path, render_slo_report(&pulse_doc)) {
            eprintln!("cannot write SLO report `{path}`: {e}");
            std::process::exit(1);
        }
        eprintln!("SLO report written to `{path}`");
    }

    if let Some(path) = flag(&args, "--manifest") {
        if let Err(e) = std::fs::write(&path, &manifest) {
            eprintln!("cannot write manifest `{path}`: {e}");
            std::process::exit(1);
        }
        eprintln!("manifest written to `{path}`");
    }
    if let Some(path) = flag(&args, "--trace-out") {
        // The merged trace: supervisor events plus every completed
        // job's tagged session trace — `trace_report --job` slices it.
        let merged = sup.merged_trace_jsonl();
        if let Err(e) = std::fs::write(&path, &merged) {
            eprintln!("cannot write trace `{path}`: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "merged service trace written to `{path}` ({} events)",
            merged.lines().count()
        );
    }
    if let Some(dir) = flag(&args, "--artifact-dir") {
        write_artifacts(&sup, &dir);
    }

    if smoke || has_flag(&args, "--verify-recovery") {
        match chaos::verify_run(&sup, &specs) {
            Ok(verified) => println!(
                "chaos verification: {} job(s) byte-identical to uninterrupted runs",
                verified.len()
            ),
            Err(problems) => {
                eprintln!("chaos verification FAILED:\n{problems}");
                std::process::exit(1);
            }
        }
    }
    if smoke {
        smoke_assertions(
            &sup, script, &manifest, &baseline, &slo_spec, &pulse_doc, &scope_doc,
        );
        println!("service-robustness smoke: PASS");
    }
}

fn run_service(
    script: JobScript,
    baseline: &[(String, f64)],
    slo: &SloSpec,
    postmortem_dir: Option<&str>,
) -> Supervisor {
    let mut sup = Supervisor::from_script(script)
        .with_baseline(baseline.to_vec())
        .with_slo(slo.clone());
    if let Some(dir) = postmortem_dir {
        sup = sup.with_postmortem_dir(dir);
    }
    sup.run();
    sup
}

/// Loads the per-workload `sol_per_kprop` baseline from a committed
/// `BENCH_heron.json` snapshot.
fn load_baseline(path: &str) -> Vec<(String, f64)> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline `{path}`: {e}");
            std::process::exit(1);
        }
    };
    let doc = match heron_trace::json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("baseline `{path}` is not JSON: {e}");
            std::process::exit(1);
        }
    };
    match heron_insight::BenchReport::from_json(&doc) {
        Ok(report) => report
            .workloads
            .into_iter()
            .map(|w| (w.name, w.sol_per_kprop))
            .collect(),
        Err(e) => {
            eprintln!("baseline `{path}` is not a bench snapshot: {e}");
            std::process::exit(1);
        }
    }
}

/// Per-job artifacts: the deterministic record, the search-health
/// `insight.json`, and the final attempt's session trace.
fn write_artifacts(sup: &Supervisor, dir: &str) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create artifact dir `{dir}`: {e}");
        std::process::exit(1);
    }
    let base = std::path::Path::new(dir);
    for row in sup.rows() {
        let Some(report) = sup.report(&row.id) else {
            continue;
        };
        let write = |name: String, data: &str| {
            if let Err(e) = std::fs::write(base.join(&name), data) {
                eprintln!("cannot write artifact `{name}`: {e}");
                std::process::exit(1);
            }
        };
        write(format!("{}.record.txt", row.id), &report.record);
        if !report.insight_json.is_empty() {
            write(format!("{}.insight.json", row.id), &report.insight_json);
        }
        if !report.trace_jsonl.is_empty() {
            write(format!("{}.trace.jsonl", row.id), &report.trace_jsonl);
        }
    }
    // Flight-recorder deposits: every job's last ring snapshot, whether
    // or not the job completed (crashed jobs are the whole point).
    for (job, entry) in sup.recorder().entries() {
        if !entry.ring_jsonl.is_empty() {
            if let Err(e) =
                std::fs::write(base.join(format!("{job}.ring.jsonl")), &entry.ring_jsonl)
            {
                eprintln!("cannot write artifact `{job}.ring.jsonl`: {e}");
                std::process::exit(1);
            }
        }
    }
    eprintln!("artifacts written to `{dir}`");
}

/// The assertions behind the CI smoke stage. Process exit 1 with a
/// pointed message on any violation.
#[allow(clippy::too_many_arguments)]
fn smoke_assertions(
    first: &Supervisor,
    script: JobScript,
    first_manifest: &str,
    baseline: &[(String, f64)],
    slo_spec: &SloSpec,
    first_pulse: &Json,
    first_scope: &Json,
) {
    let fail = |msg: String| {
        eprintln!("smoke FAILED: {msg}");
        std::process::exit(1);
    };
    let state_count =
        |sup: &Supervisor, s: JobState| sup.rows().iter().filter(|r| r.state == s).count();
    if state_count(first, JobState::Completed) != 4 {
        fail(format!(
            "expected 4 completed jobs, got {}",
            state_count(first, JobState::Completed)
        ));
    }
    if state_count(first, JobState::Quarantined) != 1 {
        fail(format!(
            "expected 1 quarantined (poisoned) job, got {}",
            state_count(first, JobState::Quarantined)
        ));
    }
    if first.rejected().len() != 1 {
        fail(format!(
            "expected 1 admission rejection, got {}",
            first.rejected().len()
        ));
    }
    let counter = |name: &str| first.tracer().counter(name).unwrap_or(0);
    if counter("serve.crashes_detected") < 2 {
        fail(format!(
            "expected >= 2 crash detections, got {}",
            counter("serve.crashes_detected")
        ));
    }
    if counter("serve.hangs_detected") < 1 {
        fail(format!(
            "expected >= 1 hang detection, got {}",
            counter("serve.hangs_detected")
        ));
    }
    if counter("serve.jobs_recovered") < 2 {
        fail(format!(
            "expected >= 2 recoveries, got {}",
            counter("serve.jobs_recovered")
        ));
    }
    // Anomaly hooks: the injected hang (g2) must surface a heartbeat
    // stall *precursor* before the watchdog declares it hung, and the
    // warning must be listed in the manifest.
    if counter("pulse.warn.heartbeat_stall") < 1 {
        fail("expected >= 1 pulse.warn.heartbeat_stall precursor for the injected hang".into());
    }
    if !first_manifest.contains("warn g2 pulse.warn.heartbeat_stall") {
        fail("manifest does not list g2's heartbeat-stall warning".to_string());
    }
    // Forensics plane: every injected death leaves exactly one
    // postmortem bundle — g1's crash, g2's confirmed hang (exactly one,
    // not one per watchdog poll), g5's three crashes plus its final
    // budget-exhaustion quarantine — and every bundle validates.
    let postmortems = first.postmortems();
    let files: Vec<&str> = postmortems.iter().map(|p| p.file.as_str()).collect();
    let expected_files = [
        "g1.attempt0.crash.jsonl",
        "g2.attempt0.hang.jsonl",
        "g5.attempt0.crash.jsonl",
        "g5.attempt1.crash.jsonl",
        "g5.attempt2.crash.jsonl",
        "g5.attempt2.quarantine.jsonl",
    ];
    if files != expected_files {
        fail(format!(
            "expected postmortem bundles {expected_files:?}, got {files:?}"
        ));
    }
    for pm in postmortems {
        if let Err(e) = heron_serve::check_postmortem(&pm.bundle) {
            fail(format!("postmortem `{}` does not validate: {e}", pm.file));
        }
    }
    if first.tracer().counter("serve.postmortems") != Some(expected_files.len() as u64) {
        fail(format!(
            "serve.postmortems counter disagrees with the bundle list: {:?}",
            first.tracer().counter("serve.postmortems")
        ));
    }
    if !first_manifest.contains("postmortems = 6")
        || !first_manifest
            .contains("postmortem g2 attempt=0 reason=hang file=g2.attempt0.hang.jsonl")
    {
        fail("manifest does not list the postmortem bundles".to_string());
    }
    // Schedule forensics: the scope document validates and its critical
    // path telescopes exactly to the makespan.
    if let Err(e) = heron_scope::validate_scope(first_scope) {
        fail(format!("scope document does not validate: {e}"));
    }
    let scope_u64 = |key: &str| first_scope.get(key).and_then(Json::as_u64).unwrap_or(0);
    if scope_u64("critical_sum_ns") != scope_u64("makespan_ns") || scope_u64("makespan_ns") == 0 {
        fail(format!(
            "critical-path sum {} != makespan {}",
            scope_u64("critical_sum_ns"),
            scope_u64("makespan_ns")
        ));
    }
    // Determinism: a second full service run reproduces the manifest
    // byte for byte — states, attempts, rounds, fingerprints and all —
    // the whole pulse plane (pulse.json, SLO report, dashboard), the
    // scope document, every postmortem bundle, and every ring snapshot.
    let second = run_service(script, baseline, slo_spec, None);
    let second_manifest = second.manifest();
    if second_manifest != first_manifest {
        eprintln!("--- first run ---\n{first_manifest}");
        eprintln!("--- second run ---\n{second_manifest}");
        fail("service manifest is not deterministic across runs".to_string());
    }
    let second_pulse = build_pulse(&second.pulse_input(), slo_spec);
    if second_pulse.render_pretty() != first_pulse.render_pretty() {
        fail("pulse.json is not deterministic across runs".to_string());
    }
    if render_slo_report(&second_pulse) != render_slo_report(first_pulse) {
        fail("SLO report is not deterministic across runs".to_string());
    }
    if render_dashboard(&second_pulse, 3) != render_dashboard(first_pulse, 3) {
        fail("status dashboard is not deterministic across runs".to_string());
    }
    let second_scope = heron_scope::build_scope(&scope_input(&second));
    if second_scope.render_pretty() != first_scope.render_pretty() {
        fail("scope.json is not deterministic across runs".to_string());
    }
    if second.postmortems() != first.postmortems() {
        fail("postmortem bundles are not byte-identical across runs".to_string());
    }
    if second.recorder().entries() != first.recorder().entries() {
        fail("flight-recorder ring snapshots are not byte-identical across runs".to_string());
    }
    println!(
        "manifest, pulse.json, SLO report, dashboard, scope.json, {} \
         postmortem bundle(s) and {} ring snapshot(s) deterministic \
         across two service runs ({} jobs)",
        first.postmortems().len(),
        first.recorder().entries().len(),
        first.rows().len()
    );
}
