//! `trace_report` — validate and render session traces.
//!
//! Reads a JSONL trace written by `heron-cli tune --trace-out` (or any
//! `heron_trace::Tracer::write_jsonl` output) and either validates it or
//! renders the hierarchical profile tree it implies.
//!
//! ```text
//! trace_report trace.jsonl            # profile tree + span/point totals
//! trace_report trace.jsonl --top 5    # …plus the 5 hottest spans, flat
//! trace_report trace.jsonl --job g2   # one job's slice of a service trace
//! trace_report trace.jsonl --check    # validate only; exit 1 if invalid
//! ```
//!
//! Validation enforces the trace invariants (one JSON object per line,
//! contiguous `seq`, monotone timestamps, LIFO span closes, no unclosed
//! spans — all per correlation context), so `--check` doubles as the CI
//! gate for the tracing pipeline. A file whose *final* line was cut off
//! mid-write (crashed producer) fails with a dedicated "truncated"
//! message naming the recovery. On a merged service trace, `--top`
//! aggregates by (job, span name) so one job's hot loop is not blurred
//! into another's, and `--job ID` restricts the whole report to that
//! job's slice.

use std::io::BufRead as _;

use heron_bench::{flag, has_flag};
use heron_trace::{
    check_trace, check_trace_lines, profile_from_summary, slice_by_job, TraceSummary,
};

fn usage() -> ! {
    eprintln!("usage: trace_report <trace.jsonl> [--check] [--top N] [--job ID]");
    std::process::exit(2);
}

fn check(text: &str, path: &str) -> TraceSummary {
    match check_trace(text) {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("invalid trace `{path}`: {e}");
            std::process::exit(1);
        }
    }
}

/// Validates `path` without buffering it: lines stream from disk
/// straight into [`check_trace_lines`], so `--check` holds one line in
/// memory at a time no matter how large the trace is.
fn check_streaming(path: &str) -> TraceSummary {
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot read `{path}`: {e}");
            std::process::exit(1);
        }
    };
    match check_trace_lines(std::io::BufReader::new(file).lines()) {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("invalid trace `{path}`: {e}");
            std::process::exit(1);
        }
    }
}

/// Renders the `n` hottest spans as a flat table: call count, total and
/// mean duration, and share of the top-level wall time. Aggregation is
/// by (job, span name) — service-level spans aggregate under job `-` —
/// and ties break (job, name)-ascending so the table is deterministic.
fn hottest_spans(summary: &TraceSummary, n: usize) -> String {
    // ((job, name), count, total_ns)
    let mut by_key: Vec<((String, String), u64, u64)> = Vec::new();
    for s in &summary.spans {
        let job = s
            .ctx
            .as_ref()
            .map_or_else(|| "-".to_string(), |c| c.job.clone());
        let key = (job, s.name.clone());
        match by_key.iter_mut().find(|(k, _, _)| *k == key) {
            Some((_, count, total)) => {
                *count += 1;
                *total += s.dur_ns();
            }
            None => by_key.push((key, 1, s.dur_ns())),
        }
    }
    by_key.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
    let shown = n.min(by_key.len());
    let wall_ns: u64 = summary
        .spans
        .iter()
        .filter(|s| s.parent == 0)
        .map(|s| s.dur_ns())
        .sum();
    let mut out = format!(
        "hottest spans (top {shown} of {} by total time)\n",
        by_key.len()
    );
    out.push_str(&format!(
        "  {:<8} {:<24} {:>7} {:>12} {:>10} {:>7}\n",
        "job", "span", "count", "total_ms", "mean_ms", "%wall"
    ));
    for ((job, name), count, total_ns) in by_key.iter().take(n) {
        let total_ms = *total_ns as f64 / 1e6;
        let mean_ms = total_ms / *count as f64;
        let pct = if wall_ns == 0 {
            0.0
        } else {
            *total_ns as f64 * 100.0 / wall_ns as f64
        };
        out.push_str(&format!(
            "  {job:<8} {name:<24} {count:>7} {total_ms:>12.3} {mean_ms:>10.3} {pct:>6.1}%\n"
        ));
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args
        .iter()
        .enumerate()
        .find(|(i, a)| {
            !a.starts_with("--") && (*i == 0 || (args[i - 1] != "--top" && args[i - 1] != "--job"))
        })
        .map(|(_, a)| a)
    else {
        usage();
    };
    // Plain `--check` never needs the whole file in memory: stream it.
    // (`--job` slicing and profile rendering still buffer the text.)
    if has_flag(&args, "--check") && flag(&args, "--job").is_none() {
        let summary = check_streaming(path);
        println!(
            "ok: {} events ({} spans, {} points), all spans balanced",
            summary.events,
            summary.spans.len(),
            summary.points
        );
        return;
    }
    let mut text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read `{path}`: {e}");
            std::process::exit(1);
        }
    };
    if let Some(job) = flag(&args, "--job") {
        match slice_by_job(&text).remove(&job) {
            Some(slice) => text = slice,
            None => {
                eprintln!("no events tagged with job `{job}` in `{path}`");
                std::process::exit(1);
            }
        }
    }
    let summary = check(&text, path);
    if has_flag(&args, "--check") {
        println!(
            "ok: {} events ({} spans, {} points), all spans balanced",
            summary.events,
            summary.spans.len(),
            summary.points
        );
        return;
    }
    print!("{}", profile_from_summary(&summary).render());
    if let Some(top) = flag(&args, "--top") {
        let Ok(n) = top.parse::<usize>() else {
            eprintln!("--top expects a positive integer, got `{top}`");
            std::process::exit(2);
        };
        print!("{}", hottest_spans(&summary, n));
    }
    println!(
        "{} events, {} spans ({} distinct names), {} points",
        summary.events,
        summary.spans.len(),
        summary.span_names().len(),
        summary.points
    );
}
