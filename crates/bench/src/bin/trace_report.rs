//! `trace_report` — validate and render session traces.
//!
//! Reads a JSONL trace written by `heron-cli tune --trace-out` (or any
//! `heron_trace::Tracer::write_jsonl` output) and either validates it or
//! renders the hierarchical profile tree it implies.
//!
//! ```text
//! trace_report trace.jsonl            # profile tree + span/point totals
//! trace_report trace.jsonl --check    # validate only; exit 1 if invalid
//! ```
//!
//! Validation enforces the trace invariants (one JSON object per line,
//! contiguous `seq`, monotone timestamps, LIFO span closes, no unclosed
//! spans), so `--check` doubles as the CI gate for the tracing pipeline.

use heron_bench::has_flag;
use heron_trace::{check_trace, profile_from_summary, TraceSummary};

fn usage() -> ! {
    eprintln!("usage: trace_report <trace.jsonl> [--check]");
    std::process::exit(2);
}

fn load(path: &str) -> TraceSummary {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read `{path}`: {e}");
            std::process::exit(1);
        }
    };
    match check_trace(&text) {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("invalid trace `{path}`: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        usage();
    };
    let summary = load(path);
    if has_flag(&args, "--check") {
        println!(
            "ok: {} events ({} spans, {} points), all spans balanced",
            summary.events,
            summary.spans.len(),
            summary.points
        );
        return;
    }
    print!("{}", profile_from_summary(&summary).render());
    println!(
        "{} events, {} spans ({} distinct names), {} points",
        summary.events,
        summary.spans.len(),
        summary.span_names().len(),
        summary.points
    );
}
