//! `fault_sweep` — resilience characterisation of the tuning loop.
//!
//! Sweeps the injected transient-fault rate on a fixed GEMM/V100 session
//! and reports, per rate: best throughput, degradation vs the fault-free
//! run, retry/quarantine counts, per-tag fault-injection counts (read
//! from the session's `heron_trace` metrics) and the simulated
//! measurement-time overhead the faults cost. Demonstrates that the
//! fault-tolerant measurement pipeline degrades gracefully instead of
//! collapsing.
//!
//! ```text
//! fault_sweep [--trials N] [--seed S] [--metrics-out M.tsv]   # full TSV sweep
//! fault_sweep --smoke                                         # quick 10%-fault sanity check
//! ```
//!
//! `--smoke` exits non-zero if a quick tune at a 10% fault rate fails to
//! find any valid program — the CI gate for the resilience pipeline.
//! `--metrics-out` snapshots the sweep's aggregate metrics registry
//! (per-column `bench.fault_sweep.*` histograms) to a TSV file.

use heron_bench::{flag, write_metrics_flag, TsvTable};
use heron_core::generate::{SpaceGenerator, SpaceOptions};
use heron_core::tuner::{TuneConfig, TuneResult, Tuner};
use heron_dla::{v100, FaultPlan, Measurer};
use heron_tensor::ops;
use heron_trace::Tracer;

/// Runs one traced session; the returned tracer holds the per-iteration
/// metrics snapshot (fault injections by tag, retries, timings).
fn run_at(rate: f64, trials: usize, seed: u64) -> (TuneResult, Tracer) {
    let dag = ops::gemm(512, 512, 512);
    let space = SpaceGenerator::new(v100())
        .generate_named(&dag, &SpaceOptions::heron(), "gemm-512")
        .expect("generates");
    let plan = if rate > 0.0 {
        FaultPlan::uniform(seed, rate)
    } else {
        FaultPlan::none(seed)
    };
    let tracer = Tracer::manual();
    let mut tuner = Tuner::new(
        space,
        Measurer::new(v100()),
        TuneConfig::quick(trials),
        seed,
    )
    .with_faults(plan);
    tuner.set_tracer(tracer.clone());
    (tuner.run(), tracer)
}

fn smoke() -> i32 {
    let (result, tracer) = run_at(0.10, 32, 2023);
    println!("{}", result.report());
    if result.best_gflops > 0.0 && result.curve.len() == 32 {
        println!(
            "fault smoke: OK ({:.1} Gops at 10% fault rate, {} fault injections traced)",
            result.best_gflops,
            tracer.counter("dla.measure_attempts").unwrap_or(0)
        );
        0
    } else {
        eprintln!("fault smoke: FAILED — no valid program found under faults");
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        std::process::exit(smoke());
    }
    let trials: usize = flag(&args, "--trials")
        .and_then(|t| t.parse().ok())
        .unwrap_or(96);
    let seed: u64 = flag(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2023);

    println!("# fault-rate sweep: gemm-512 on v100, {trials} trials, seed {seed}");
    let mut table = TsvTable::new(
        "fault_sweep",
        &[
            "rate",
            "best_gops",
            "vs_clean",
            "retried",
            "retries",
            "quarantined",
            "timeouts",
            "inj_timeout",
            "inj_hang",
            "inj_rpc",
            "inj_spurious",
            "inj_noisy",
            "hw_measure_s",
        ],
    );
    let mut clean_best = 0.0_f64;
    for rate in [0.0, 0.05, 0.10, 0.20, 0.30, 0.50] {
        let (r, tracer) = run_at(rate, trials, seed);
        if rate == 0.0 {
            clean_best = r.best_gflops;
        }
        let vs_clean = if clean_best > 0.0 {
            r.best_gflops / clean_best
        } else {
            0.0
        };
        let inj = |tag: &str| {
            tracer
                .counter(&format!("dla.fault_injected.{tag}"))
                .unwrap_or(0)
        };
        table.emit(&[
            format!("{rate:.2}"),
            format!("{:.1}", r.best_gflops),
            format!("{vs_clean:.3}"),
            r.retried_trials.to_string(),
            r.total_retries.to_string(),
            r.quarantined.to_string(),
            r.timeout_trials.to_string(),
            inj("timeout").to_string(),
            inj("device-hang").to_string(),
            inj("rpc-dropped").to_string(),
            inj("spurious").to_string(),
            tracer
                .counter("dla.noisy_injected")
                .unwrap_or(0)
                .to_string(),
            format!("{:.1}", r.timing.hw_measure_s),
        ]);
    }
    write_metrics_flag(&args, table.tracer());
}
