//! `fault_sweep` — resilience characterisation of the tuning loop.
//!
//! Sweeps the injected transient-fault rate on a fixed GEMM/V100 session
//! and reports, per rate: best throughput, degradation vs the fault-free
//! run, retry/quarantine counts and the simulated measurement-time
//! overhead the faults cost. Demonstrates that the fault-tolerant
//! measurement pipeline degrades gracefully instead of collapsing.
//!
//! ```text
//! fault_sweep [--trials N] [--seed S]   # full TSV sweep
//! fault_sweep --smoke                   # quick 10%-fault sanity check
//! ```
//!
//! `--smoke` exits non-zero if a quick tune at a 10% fault rate fails to
//! find any valid program — the CI gate for the resilience pipeline.

use heron_core::generate::{SpaceGenerator, SpaceOptions};
use heron_core::tuner::{TuneConfig, TuneResult, Tuner};
use heron_dla::{v100, FaultPlan, Measurer};
use heron_tensor::ops;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn run_at(rate: f64, trials: usize, seed: u64) -> TuneResult {
    let dag = ops::gemm(512, 512, 512);
    let space = SpaceGenerator::new(v100())
        .generate_named(&dag, &SpaceOptions::heron(), "gemm-512")
        .expect("generates");
    let plan = if rate > 0.0 {
        FaultPlan::uniform(seed, rate)
    } else {
        FaultPlan::none(seed)
    };
    let mut tuner = Tuner::new(
        space,
        Measurer::new(v100()),
        TuneConfig::quick(trials),
        seed,
    )
    .with_faults(plan);
    tuner.run()
}

fn smoke() -> i32 {
    let result = run_at(0.10, 32, 2023);
    println!("{}", result.report());
    if result.best_gflops > 0.0 && result.curve.len() == 32 {
        println!(
            "fault smoke: OK ({:.1} Gops at 10% fault rate)",
            result.best_gflops
        );
        0
    } else {
        eprintln!("fault smoke: FAILED — no valid program found under faults");
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        std::process::exit(smoke());
    }
    let trials: usize = flag(&args, "--trials")
        .and_then(|t| t.parse().ok())
        .unwrap_or(96);
    let seed: u64 = flag(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2023);

    println!("# fault-rate sweep: gemm-512 on v100, {trials} trials, seed {seed}");
    println!("rate\tbest_gops\tvs_clean\tretried\tretries\tquarantined\ttimeouts\thw_measure_s");
    let mut clean_best = 0.0_f64;
    for rate in [0.0, 0.05, 0.10, 0.20, 0.30, 0.50] {
        let r = run_at(rate, trials, seed);
        if rate == 0.0 {
            clean_best = r.best_gflops;
        }
        let vs_clean = if clean_best > 0.0 {
            r.best_gflops / clean_best
        } else {
            0.0
        };
        println!(
            "{:.2}\t{:.1}\t{:.3}\t{}\t{}\t{}\t{}\t{:.1}",
            rate,
            r.best_gflops,
            vs_clean,
            r.retried_trials,
            r.total_retries,
            r.quarantined,
            r.timeout_trials,
            r.timing.hw_measure_s
        );
    }
}
