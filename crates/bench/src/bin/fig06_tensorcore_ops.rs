//! Regenerates **Figure 6**: operator performance on the (simulated)
//! NVIDIA V100 TensorCore relative to Heron. For each of the nine
//! operators the harness tunes every shape in the suite with each
//! approach and reports the geometric-mean speedup of Heron over the
//! baseline (paper averages: 1.55× AutoTVM, 2.85× Ansor, 1.52× AMOS,
//! 2.69× PyTorch/cuDNN).

use heron_baselines::Approach;
use heron_bench::{geomean, ratio, run_approach, run_vendor, seed, trials};
use heron_workloads::{operator_names, operator_suite};

fn main() {
    let spec = heron_dla::v100();
    let trials = trials();
    println!("Figure 6: V100 TensorCore operator performance (trials={trials})");
    println!("op\tHeron(Gops)\tvsAutoTVM\tvsAnsor\tvsAMOS\tvsVendor");

    let mut all: [Vec<f64>; 4] = Default::default();
    for op in operator_names() {
        let mut speedups: [Vec<f64>; 4] = Default::default();
        let mut heron_scores = Vec::new();
        for w in operator_suite(op) {
            let Some(heron) = run_approach(Approach::Heron, &spec, &w, trials, seed()) else {
                continue;
            };
            heron_scores.push(heron.best_gflops);
            let others = [
                run_approach(Approach::AutoTvm, &spec, &w, trials, seed()).map(|o| o.best_gflops),
                run_approach(Approach::Ansor, &spec, &w, trials, seed()).map(|o| o.best_gflops),
                run_approach(Approach::Amos, &spec, &w, trials, seed()).map(|o| o.best_gflops),
                run_vendor(&spec, &w, seed()).map(|(g, _)| g),
            ];
            for (i, other) in others.iter().enumerate() {
                if let Some(g) = other {
                    if *g > 0.0 && heron.best_gflops > 0.0 {
                        speedups[i].push(heron.best_gflops / g);
                    }
                }
            }
        }
        let cells = [
            op.to_string(),
            format!("{:.0}", geomean(&heron_scores)),
            format!("{:.2}", geomean(&speedups[0])),
            format!("{:.2}", geomean(&speedups[1])),
            format!("{:.2}", geomean(&speedups[2])),
            format!("{:.2}", geomean(&speedups[3])),
        ];
        println!("{}", cells.join("\t"));
        for i in 0..4 {
            all[i].extend(speedups[i].iter());
        }
    }
    println!(
        "geomean\t-\t{}\t{}\t{}\t{}",
        ratio(geomean(&all[0]), 1.0),
        ratio(geomean(&all[1]), 1.0),
        ratio(geomean(&all[2]), 1.0),
        ratio(geomean(&all[3]), 1.0)
    );
    println!();
    println!("(paper: AutoTVM 1.55x, Ansor 2.85x, AMOS 1.52x, PyTorch/cuDNN 2.69x)");
}
