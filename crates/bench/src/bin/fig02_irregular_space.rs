//! Regenerates **Figure 2**: RAND vs SA vs GA in Heron's irregular
//! constrained search space (GEMM on TensorCore). The paper's observation:
//! SA gets stuck early, GA behaves almost randomly, so neither beats plain
//! random sampling of valid programs.

use heron_bench::{downsample, seed, trials};
use heron_core::explore::classic::{GaExplorer, RandomExplorer, SaExplorer};
use heron_core::explore::Explorer;
use heron_core::generate::{SpaceGenerator, SpaceOptions};
use heron_core::tuner::evaluate;
use heron_dla::{v100, Measurer};
use heron_rng::HeronRng;
use heron_tensor::ops;

fn main() {
    let spec = v100();
    let dag = ops::gemm(1024, 1024, 1024);
    let space = SpaceGenerator::new(spec.clone())
        .generate_named(&dag, &SpaceOptions::heron(), "G1")
        .expect("generates");
    let measurer = Measurer::new(spec);
    let steps = trials();

    println!("Figure 2: exploration in the irregular space (GEMM G1, V100)");
    println!("algorithm\tstep\tbest_gflops");
    let mut explorers: Vec<Box<dyn Explorer>> = vec![
        Box::new(RandomExplorer),
        Box::new(SaExplorer::default()),
        Box::new(GaExplorer::default()),
    ];
    for explorer in &mut explorers {
        let mut rng = HeronRng::from_seed(seed());
        let mut measure = |sol: &heron_csp::Solution| {
            evaluate(&space, &measurer, sol).ok().map(|(_, m)| m.gflops)
        };
        let curve = explorer.explore(&space, &mut measure, steps, &mut rng);
        for (step, best) in downsample(&curve, 20) {
            println!("{}\t{step}\t{best:.1}", explorer.name());
        }
    }
}
