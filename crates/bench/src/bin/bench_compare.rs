//! `bench_compare` — the perf-trajectory regression gate (DESIGN.md §7).
//!
//! ```text
//! bench_compare BASE.json NEW.json [--max-perf-drop F] [--max-latency-rise F]
//!               [--max-throughput-drop F] [--max-accuracy-drop F]
//! ```
//!
//! Reads two `BENCH_heron.json` snapshots (both must validate against
//! the `heron-bench-v1` schema), runs [`heron_insight::compare`] with
//! the default deterministic thresholds (overridable per-metric via the
//! `--max-*` flags, fractions not percent), prints every regression
//! message, and exits non-zero when the gate fails. Comparing a
//! snapshot against itself always passes, which is what `verify.sh`
//! uses as its smoke check.

use heron_bench::flag;
use heron_insight::{compare, validate_bench, BenchReport, CompareConfig};

fn load(path: &str) -> BenchReport {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read `{path}`: {e}");
            std::process::exit(2);
        }
    };
    let doc = match heron_trace::json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("`{path}` is not valid JSON: {e}");
            std::process::exit(2);
        }
    };
    if let Err(errors) = validate_bench(&doc) {
        eprintln!("`{path}` fails the heron-bench-v1 schema:");
        let stale_randsat = errors
            .iter()
            .any(|e| e.contains("randsat_") || e.contains("sol_per_kprop"));
        for e in errors {
            eprintln!("  {e}");
        }
        if stale_randsat {
            eprintln!(
                "  note: `{path}` predates the solver-throughput snapshot fields; \
                 regenerate it with bench_snapshot (only `randsat_max_trail` and \
                 `incremental_hits` are optional for old baselines)"
            );
        }
        std::process::exit(2);
    }
    match BenchReport::from_json(&doc) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot parse `{path}`: {e}");
            if e.contains("randsat_") || e.contains("sol_per_kprop") {
                eprintln!(
                    "  note: `{path}` predates the solver-throughput snapshot fields; \
                     regenerate it with bench_snapshot (only `randsat_max_trail` and \
                     `incremental_hits` are optional for old baselines)"
                );
            }
            std::process::exit(2);
        }
    }
}

fn frac(args: &[String], name: &str, default: f64) -> f64 {
    match flag(args, name) {
        None => default,
        Some(v) => match v.parse::<f64>() {
            Ok(f) if f.is_finite() && f >= 0.0 => f,
            _ => {
                eprintln!("{name} expects a non-negative fraction, got `{v}`");
                std::process::exit(2);
            }
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let positional: Vec<&String> = {
        // Drop `--flag value` pairs, keep bare operands.
        let mut out = Vec::new();
        let mut i = 0;
        while i < args.len() {
            if args[i].starts_with("--") {
                i += 2;
            } else {
                out.push(&args[i]);
                i += 1;
            }
        }
        out
    };
    let [base_path, new_path] = positional.as_slice() else {
        eprintln!(
            "usage: bench_compare BASE.json NEW.json [--max-perf-drop F] \
             [--max-latency-rise F] [--max-throughput-drop F] [--max-accuracy-drop F]"
        );
        std::process::exit(2);
    };

    let defaults = CompareConfig::default();
    let cfg = CompareConfig {
        max_perf_drop: frac(&args, "--max-perf-drop", defaults.max_perf_drop),
        max_latency_rise: frac(&args, "--max-latency-rise", defaults.max_latency_rise),
        max_throughput_drop: frac(&args, "--max-throughput-drop", defaults.max_throughput_drop),
        max_accuracy_drop: frac(&args, "--max-accuracy-drop", defaults.max_accuracy_drop),
    };

    let base = load(base_path);
    let new = load(new_path);
    let regressions = compare(&base, &new, &cfg);
    if regressions.is_empty() {
        println!(
            "bench_compare: OK — {} workloads, geomean {:.2} → {:.2} Gops",
            base.workloads.len(),
            base.geomean_gflops(),
            new.geomean_gflops()
        );
        return;
    }
    eprintln!(
        "bench_compare: FAIL — {} regression(s) vs `{base_path}`:",
        regressions.len()
    );
    for r in &regressions {
        eprintln!("  {r}");
    }
    std::process::exit(1);
}
