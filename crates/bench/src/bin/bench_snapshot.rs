//! `bench_snapshot` — emits the canonical `BENCH_heron.json`
//! perf-trajectory snapshot (DESIGN.md §7).
//!
//! ```text
//! bench_snapshot [--out BENCH_heron.json] [--trials N] [--seed S]
//!                [--append-history results/bench_trajectory.jsonl]
//! ```
//!
//! Runs the full Heron pipeline (space generation → CGA + ε-greedy
//! tuning → cost-model refits) on a fixed workload set and records, per
//! workload: best score/latency, trial counts, rounds, *simulated*
//! measurement wall-clock, RandSAT solve throughput (a count-based probe
//! of `CSP_initial`), model refit count and final training rank
//! accuracy. Every number is deterministic for a fixed seed — host
//! wall-clock is deliberately excluded — so the emitted file is
//! byte-stable and can be committed as the regression baseline for
//! `bench_compare`.
//!
//! A TSV summary of the same numbers goes to stdout.
//!
//! `--append-history FILE` additionally appends one compact
//! `heron-bench-traj-v1` line (seed, trials, geomean, per-workload best
//! scores) to the committed trajectory history, after validating every
//! line already there — a corrupt history fails loudly instead of
//! growing silently.

use heron_bench::{flag, TsvTable};
use heron_core::generate::{SpaceGenerator, SpaceOptions};
use heron_core::tuner::{TuneConfig, Tuner};
use heron_dla::{v100, Measurer};
use heron_insight::{
    trajectory_line, validate_bench, validate_trajectory, BenchReport, WorkloadBench,
};
use heron_rng::HeronRng;
use heron_tensor::{ops, Dag};

/// The fixed snapshot workload set: small enough to run in CI, diverse
/// enough (GEMM + conv) that a solver or model regression shows up.
fn workloads() -> Vec<(&'static str, Dag)> {
    vec![
        ("gemm-256", ops::gemm(256, 256, 256)),
        ("gemm-512", ops::gemm(512, 512, 512)),
        (
            "c2d-14x64",
            ops::conv2d(ops::Conv2dConfig::new(1, 14, 14, 64, 64, 3, 3, 1, 1)),
        ),
    ]
}

/// Count-based RandSAT throughput probe: solutions per 1000 propagations
/// when drawing `n` samples of `CSP_initial`. Deterministic (counts, not
/// time).
fn randsat_probe(csp: &heron_csp::Csp, seed: u64, n: usize) -> (heron_csp::SolveStats, f64) {
    // Session-based, mirroring how the tuner consumes the solver: the
    // one-time root fixpoint is session setup (see the `SolveSession`
    // determinism note) and is excluded from the probe's counts.
    let mut rng = HeronRng::from_seed(seed);
    let mut session = heron_csp::SolveSession::new(csp);
    let stats = session
        .solve(
            &mut rng,
            n,
            &heron_csp::SolvePolicy::default(),
            &heron_trace::Tracer::disabled(),
        )
        .stats;
    let per_kprop = if stats.propagations == 0 {
        0.0
    } else {
        stats.solutions as f64 * 1000.0 / stats.propagations as f64
    };
    (stats, per_kprop)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = flag(&args, "--out").unwrap_or_else(|| "BENCH_heron.json".into());
    let trials = flag(&args, "--trials")
        .and_then(|t| t.parse().ok())
        .unwrap_or_else(heron_bench::trials);
    let seed = flag(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(heron_bench::seed);

    let spec = v100();
    let mut report = BenchReport::new(seed, trials as u32);
    let mut table = TsvTable::new(
        "bench",
        &[
            "workload",
            "best_gflops",
            "best_latency_us",
            "trials",
            "valid",
            "rounds",
            "hw_measure_s",
            "sol_per_kprop",
            "max_trail",
            "incr_hits",
            "model_fits",
            "rank_acc",
        ],
    );
    for (name, dag) in workloads() {
        let space = SpaceGenerator::new(spec.clone())
            .generate_named(&dag, &SpaceOptions::heron(), name)
            .expect("space generates");
        let (probe, per_kprop) = randsat_probe(&space.csp, seed, 64);
        let mut tuner = Tuner::new(
            space,
            Measurer::new(spec.clone()),
            TuneConfig::quick(trials),
            seed,
        )
        .with_insight(8);
        let result = tuner.run();
        let log = tuner.insight().expect("insight enabled");
        let w = WorkloadBench {
            name: name.to_string(),
            best_gflops: result.best_gflops,
            best_latency_us: result.best_latency_s * 1e6,
            trials: result.curve.len() as u32,
            valid_trials: result.valid_trials as u32,
            rounds: log.rounds.len() as u32,
            hw_measure_s: result.timing.hw_measure_s,
            randsat_solutions: probe.solutions,
            randsat_propagations: probe.propagations,
            sol_per_kprop: per_kprop,
            randsat_max_trail: log
                .rounds
                .iter()
                .map(|r| r.solver_max_trail)
                .max()
                .unwrap_or(0)
                .max(probe.max_trail_depth),
            incremental_hits: log.rounds.iter().map(|r| r.solver_incremental).sum(),
            model_fits: log.refits.len() as u32,
            final_rank_accuracy: result.model_rank_accuracy.unwrap_or(0.0),
        };
        table.emit(&[
            w.name.clone(),
            format!("{:.3}", w.best_gflops),
            format!("{:.3}", w.best_latency_us),
            w.trials.to_string(),
            w.valid_trials.to_string(),
            w.rounds.to_string(),
            format!("{:.3}", w.hw_measure_s),
            format!("{:.4}", w.sol_per_kprop),
            w.randsat_max_trail.to_string(),
            w.incremental_hits.to_string(),
            w.model_fits.to_string(),
            format!("{:.4}", w.final_rank_accuracy),
        ]);
        report.push(w);
    }

    let doc = report.to_json();
    if let Err(errors) = validate_bench(&doc) {
        eprintln!("internal error: snapshot fails its own schema:");
        for e in errors {
            eprintln!("  {e}");
        }
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&out, doc.render_pretty()) {
        eprintln!("cannot write `{out}`: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "snapshot written to `{out}` ({} workloads, geomean {:.2} Gops, seed {seed}, {trials} trials)",
        report.workloads.len(),
        report.geomean_gflops()
    );

    if let Some(history) = flag(&args, "--append-history") {
        let existing = match std::fs::read_to_string(&history) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => {
                eprintln!("cannot read history `{history}`: {e}");
                std::process::exit(1);
            }
        };
        let prior = match validate_trajectory(&existing) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("refusing to append: corrupt history `{history}`: {e}");
                std::process::exit(1);
            }
        };
        let appended = format!("{existing}{}\n", trajectory_line(&report));
        // Re-validate the would-be file so a bug in the line renderer
        // can never poison the committed history.
        if let Err(e) = validate_trajectory(&appended) {
            eprintln!("internal error: new history line fails its own schema: {e}");
            std::process::exit(1);
        }
        if let Err(e) = std::fs::write(&history, appended) {
            eprintln!("cannot write history `{history}`: {e}");
            std::process::exit(1);
        }
        eprintln!("history `{history}` now has {} line(s)", prior + 1);
    }
}
