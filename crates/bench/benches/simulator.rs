//! Criterion bench: the DLA measurer — lowering plus analytic latency
//! estimation, which replaces hardware measurement in this reproduction.

use criterion::{criterion_group, criterion_main, Criterion};
use heron_core::generate::{SpaceGenerator, SpaceOptions};
use heron_core::tuner::evaluate;
use heron_dla::Measurer;
use heron_sched::lower;
use heron_tensor::ops;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_measure(c: &mut Criterion) {
    for (name, spec, dag) in [
        ("v100", heron_dla::v100(), ops::gemm(1024, 1024, 1024)),
        (
            "dlboost",
            heron_dla::dlboost(),
            ops::gemm_dtyped(1024, 1024, 1024, heron_tensor::DType::I8),
        ),
        ("vta", heron_dla::vta(), ops::gemm_dtyped(1024, 1024, 1024, heron_tensor::DType::I8)),
    ] {
        let space = SpaceGenerator::new(spec.clone())
            .generate_named(&dag, &SpaceOptions::heron(), name)
            .expect("generates");
        let measurer = Measurer::new(spec);
        let mut rng = StdRng::seed_from_u64(1);
        let sol = heron_csp::rand_sat(&space.csp, &mut rng, 1).pop().expect("solvable");
        let csp = space.csp.clone();
        let kernel = lower(&space.template, sol.fingerprint(), &|n| sol.value_by_name(&csp, n))
            .expect("lowers");

        c.bench_function(&format!("lower/{name}"), |b| {
            b.iter(|| {
                let k = lower(&space.template, sol.fingerprint(), &|n| {
                    sol.value_by_name(&csp, n)
                })
                .expect("lowers");
                black_box(k.grid)
            });
        });
        c.bench_function(&format!("measure/{name}"), |b| {
            b.iter(|| black_box(measurer.measure(&kernel).expect("valid").latency_s));
        });
        c.bench_function(&format!("evaluate/{name}"), |b| {
            b.iter(|| black_box(evaluate(&space, &measurer, &sol).expect("valid").1.gflops));
        });
    }
}

criterion_group!(benches, bench_measure);
criterion_main!(benches);
