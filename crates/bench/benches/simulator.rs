//! Micro-bench (heron-testkit): the DLA measurer — lowering plus
//! analytic latency estimation, which replaces hardware measurement in
//! this reproduction.

use heron_core::generate::{SpaceGenerator, SpaceOptions};
use heron_core::tuner::evaluate;
use heron_dla::Measurer;
use heron_rng::HeronRng;
use heron_sched::lower;
use heron_tensor::ops;
use heron_testkit::bench::{black_box, Harness};

fn main() {
    let mut h = Harness::new("simulator");
    for (name, spec, dag) in [
        ("v100", heron_dla::v100(), ops::gemm(1024, 1024, 1024)),
        (
            "dlboost",
            heron_dla::dlboost(),
            ops::gemm_dtyped(1024, 1024, 1024, heron_tensor::DType::I8),
        ),
        (
            "vta",
            heron_dla::vta(),
            ops::gemm_dtyped(1024, 1024, 1024, heron_tensor::DType::I8),
        ),
    ] {
        let space = SpaceGenerator::new(spec.clone())
            .generate_named(&dag, &SpaceOptions::heron(), name)
            .expect("generates");
        let measurer = Measurer::new(spec);
        let mut rng = HeronRng::from_seed(1);
        let sol = heron_csp::rand_sat(&space.csp, &mut rng, 1)
            .one()
            .expect("solvable");
        let csp = space.csp.clone();
        let kernel = lower(&space.template, sol.fingerprint(), &|n| {
            sol.value_by_name(&csp, n)
        })
        .expect("lowers");

        h.bench(&format!("lower/{name}"), || {
            let k = lower(&space.template, sol.fingerprint(), &|n| {
                sol.value_by_name(&csp, n)
            })
            .expect("lowers");
            black_box(k.grid)
        });
        h.bench(&format!("measure/{name}"), || {
            black_box(measurer.measure(&kernel).expect("valid").latency_s)
        });
        h.bench(&format!("evaluate/{name}"), || {
            black_box(evaluate(&space, &measurer, &sol).expect("valid").1.gflops)
        });
    }
    h.finish();
}
