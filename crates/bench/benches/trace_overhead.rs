//! Micro-bench (heron-testkit): cost of the tracing subsystem.
//!
//! The acceptance bar for `heron-trace` is that a **disabled** tracer is
//! effectively free (<2% on instrumented hot paths), so instrumentation
//! can stay compiled into the solver and tuner unconditionally. This
//! bench times the two instrumented hot paths (RandSAT solving, GBDT
//! fitting) four ways — uninstrumented entry point, disabled tracer,
//! enabled manual-clock tracer, and the bounded flight-recorder ring
//! sink (`set_ring(64, true)`, the always-on mode long-lived
//! `heron_serve` runs use) — plus the raw per-op tracer costs, and
//! prints the measured disabled- and ring-vs-baseline overheads. The
//! ring numbers back DESIGN.md §12's <2% hot-path claim.

use heron_core::generate::{SpaceGenerator, SpaceOptions};
use heron_cost::{Gbdt, GbdtParams};
use heron_dla::v100;
use heron_rng::{HeronRng, Rng};
use heron_tensor::ops;
use heron_testkit::bench::{black_box, Harness};
use heron_trace::Tracer;

fn synthetic(n: usize, d: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = HeronRng::from_seed(seed);
    let x: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.random::<f64>() * 8.0).collect())
        .collect();
    let y: Vec<f64> = x
        .iter()
        .map(|r| 3.0 * r[0] - 2.0 * r[1] + (r[2] * r[3]).sqrt())
        .collect();
    (x, y)
}

fn main() {
    let mut h = Harness::new("trace_overhead");

    // Hot path 1: RandSAT over a real generated space (csp.solve spans +
    // attempt/propagation counters when traced).
    let dag = ops::gemm(512, 512, 512);
    let space = SpaceGenerator::new(v100())
        .generate_named(&dag, &SpaceOptions::heron(), "gemm-512")
        .expect("generates");
    let mut rng = HeronRng::from_seed(7);
    let base = h
        .bench("rand_sat/baseline", || {
            black_box(
                heron_csp::rand_sat_with_budget(&space.csp, &mut rng, 16, 4096)
                    .solutions
                    .len(),
            )
        })
        .median_ns;
    let mut rng = HeronRng::from_seed(7);
    let policy = heron_csp::SolvePolicy::fixed(4096);
    let off = Tracer::disabled();
    let disabled = h
        .bench("rand_sat/tracer-disabled", || {
            black_box(
                heron_csp::rand_sat_traced(&space.csp, &mut rng, 16, &policy, &off)
                    .solutions
                    .len(),
            )
        })
        .median_ns;
    let mut rng = HeronRng::from_seed(7);
    let on = Tracer::manual();
    h.bench("rand_sat/tracer-enabled", || {
        black_box(
            heron_csp::rand_sat_traced(&space.csp, &mut rng, 16, &policy, &on)
                .solutions
                .len(),
        )
    });
    // The flight-recorder mode heron_serve runs long-lived jobs under:
    // events land in the bounded ring only, nothing accumulates.
    let mut rng = HeronRng::from_seed(7);
    let ring = Tracer::manual();
    ring.set_ring(64, true);
    let ringed = h
        .bench("rand_sat/tracer-ring", || {
            black_box(
                heron_csp::rand_sat_traced(&space.csp, &mut rng, 16, &policy, &ring)
                    .solutions
                    .len(),
            )
        })
        .median_ns;
    let overhead = disabled as f64 / base as f64 - 1.0;
    eprintln!(
        "  rand_sat disabled-tracer overhead: {:+.2}%",
        overhead * 100.0
    );
    let ring_overhead = ringed as f64 / base as f64 - 1.0;
    eprintln!(
        "  rand_sat ring-sink overhead: {:+.2}%",
        ring_overhead * 100.0
    );

    // Hot path 2: GBDT fit (cost.fit span + fit counters when traced).
    let (x, y) = synthetic(512, 80, 9);
    let mut rng = HeronRng::from_seed(1);
    let base = h
        .bench("gbdt-fit/baseline", || {
            black_box(Gbdt::fit(&x, &y, &GbdtParams::default(), &mut rng).num_trees())
        })
        .median_ns;
    let mut rng = HeronRng::from_seed(1);
    let disabled = h
        .bench("gbdt-fit/tracer-disabled", || {
            black_box(Gbdt::fit_traced(&x, &y, &GbdtParams::default(), &mut rng, &off).num_trees())
        })
        .median_ns;
    let mut rng = HeronRng::from_seed(1);
    let ringed = h
        .bench("gbdt-fit/tracer-ring", || {
            black_box(Gbdt::fit_traced(&x, &y, &GbdtParams::default(), &mut rng, &ring).num_trees())
        })
        .median_ns;
    let overhead = disabled as f64 / base as f64 - 1.0;
    eprintln!(
        "  gbdt-fit disabled-tracer overhead: {:+.2}%",
        overhead * 100.0
    );
    let ring_overhead = ringed as f64 / base as f64 - 1.0;
    eprintln!(
        "  gbdt-fit ring-sink overhead: {:+.2}%",
        ring_overhead * 100.0
    );

    // Hot path 3: the full tuner step loop, with search-health insight
    // disabled (the default — every insight hook behind a `is_some`
    // branch) vs enabled. The disabled-insight overhead relative to a
    // hypothetical uninstrumented tuner is a handful of branch tests per
    // round, so the enabled-vs-disabled delta printed here is a strict
    // upper bound on it; the acceptance bar is <2% for the disabled
    // path, which holds as long as the printed enabled overhead stays
    // single-digit.
    let tuner_dag = ops::gemm(256, 256, 256);
    let tuner_space = || {
        SpaceGenerator::new(v100())
            .generate_named(&tuner_dag, &SpaceOptions::heron(), "gemm-256")
            .expect("generates")
    };
    let base = h
        .bench("tuner/insight-disabled", || {
            let mut tuner = heron_core::tuner::Tuner::new(
                tuner_space(),
                heron_dla::Measurer::new(v100()),
                heron_core::tuner::TuneConfig::quick(16),
                7,
            );
            black_box(tuner.run().curve.len())
        })
        .median_ns;
    let enabled = h
        .bench("tuner/insight-enabled", || {
            let mut tuner = heron_core::tuner::Tuner::new(
                tuner_space(),
                heron_dla::Measurer::new(v100()),
                heron_core::tuner::TuneConfig::quick(16),
                7,
            )
            .with_insight(8);
            black_box(tuner.run().curve.len())
        })
        .median_ns;
    let overhead = enabled as f64 / base as f64 - 1.0;
    eprintln!(
        "  tuner insight-enabled overhead (upper bound on disabled): {:+.2}%",
        overhead * 100.0
    );

    // Raw per-operation cost of the insight log itself.
    let mut log = heron_insight::SearchLog::new("bench", "v100", 7, 8);
    log.set_vars((0..20).map(|i| (format!("v{i}"), 16u64)));
    let mut rng = HeronRng::from_seed(3);
    let rows: Vec<Vec<i64>> = (0..32)
        .map(|_| (0..20).map(|_| (rng.random::<u64>() % 16) as i64).collect())
        .collect();
    h.bench("insight/observe-assignment/10k", || {
        for _ in 0..500u32 {
            for row in &rows {
                log.observe_assignment(row);
            }
        }
        black_box(log.vars.len())
    });
    h.bench("insight/population-entropy/32x20", || {
        black_box(heron_insight::population_entropy_bits(&rows))
    });

    // Raw per-operation cost of the tracer itself.
    h.bench("tracer/span-disabled/10k", || {
        for i in 0..10_000u64 {
            let _g = off.span_with("bench.span", || [("i", i.to_string())]);
        }
        black_box(off.event_count())
    });
    h.bench("tracer/counter-disabled/10k", || {
        for _ in 0..10_000u64 {
            off.counter_add("bench.count", 1);
        }
        black_box(off.metrics_len())
    });
    let live = Tracer::manual();
    h.bench("tracer/span-enabled/10k", || {
        for i in 0..10_000u64 {
            let _g = live.span_with("bench.span", || [("i", i.to_string())]);
        }
        black_box(live.event_count())
    });
    let ring_raw = Tracer::manual();
    ring_raw.set_ring(64, true);
    h.bench("tracer/span-ring/10k", || {
        for i in 0..10_000u64 {
            let _g = ring_raw.span_with("bench.span", || [("i", i.to_string())]);
        }
        black_box(ring_raw.event_count())
    });
    h.bench("tracer/counter-enabled/10k", || {
        for _ in 0..10_000u64 {
            live.counter_add("bench.count", 1);
        }
        black_box(live.metrics_len())
    });
    h.finish();
}
