//! Micro-bench (heron-testkit): the constraint-based
//! crossover/mutation operator (Algorithm 3) — building one offspring
//! CSP and materialising a valid chromosome from it — plus a short
//! end-to-end tuning run.

use heron_core::explore::cga::offspring_csp;
use heron_core::generate::{SpaceGenerator, SpaceOptions};
use heron_core::tuner::{TuneConfig, Tuner};
use heron_rng::HeronRng;
use heron_tensor::ops;
use heron_testkit::bench::{black_box, Harness};

fn main() {
    let mut h = Harness::new("cga");

    let dag = ops::gemm(1024, 1024, 1024);
    let space = SpaceGenerator::new(heron_dla::v100())
        .generate_named(&dag, &SpaceOptions::heron(), "g1")
        .expect("generates");
    let mut rng = HeronRng::from_seed(1);
    let parents = heron_csp::rand_sat(&space.csp, &mut rng, 2).expect_sat("gemm space");
    let keys: Vec<_> = space.csp.tunables().into_iter().take(8).collect();

    h.bench("cga/offspring_csp", || {
        let csp = offspring_csp(&space.csp, &keys, &parents[0], &parents[1], &mut rng);
        black_box(csp.num_constraints())
    });

    h.bench("cga/offspring_csp+solve", || {
        let csp = offspring_csp(&space.csp, &keys, &parents[0], &parents[1], &mut rng);
        let sol = heron_csp::rand_sat_with_budget(&csp, &mut rng, 1, 400);
        black_box(sol.solutions.len())
    });

    let tune_dag = ops::gemm(512, 512, 512);
    h.bench("cga/tune-32-trials", || {
        let space = SpaceGenerator::new(heron_dla::v100())
            .generate_named(&tune_dag, &SpaceOptions::heron(), "g")
            .expect("generates");
        let mut tuner = Tuner::new(
            space,
            heron_dla::Measurer::new(heron_dla::v100()),
            TuneConfig::quick(32),
            7,
        );
        black_box(tuner.run().best_gflops)
    });

    h.finish();
}
