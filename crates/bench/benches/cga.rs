//! Criterion bench: the constraint-based crossover/mutation operator
//! (Algorithm 3) — building one offspring CSP and materialising a valid
//! chromosome from it.

use criterion::{criterion_group, criterion_main, Criterion};
use heron_core::explore::cga::offspring_csp;
use heron_core::generate::{SpaceGenerator, SpaceOptions};
use heron_tensor::ops;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_offspring(c: &mut Criterion) {
    let dag = ops::gemm(1024, 1024, 1024);
    let space = SpaceGenerator::new(heron_dla::v100())
        .generate_named(&dag, &SpaceOptions::heron(), "g1")
        .expect("generates");
    let mut rng = StdRng::seed_from_u64(1);
    let parents = heron_csp::rand_sat(&space.csp, &mut rng, 2);
    let keys: Vec<_> = space.csp.tunables().into_iter().take(8).collect();

    c.bench_function("cga/offspring_csp", |b| {
        b.iter(|| {
            let csp = offspring_csp(&space.csp, &keys, &parents[0], &parents[1], &mut rng);
            black_box(csp.num_constraints())
        });
    });

    c.bench_function("cga/offspring_csp+solve", |b| {
        b.iter(|| {
            let csp = offspring_csp(&space.csp, &keys, &parents[0], &parents[1], &mut rng);
            let sol = heron_csp::rand_sat_with_budget(&csp, &mut rng, 1, 400);
            black_box(sol.len())
        });
    });
}

fn bench_tuner_iteration(c: &mut Criterion) {
    use heron_core::tuner::{TuneConfig, Tuner};
    let dag = ops::gemm(512, 512, 512);
    let mut group = c.benchmark_group("cga");
    group.sample_size(10);
    group.bench_function("tune-32-trials", |b| {
        b.iter(|| {
            let space = SpaceGenerator::new(heron_dla::v100())
                .generate_named(&dag, &SpaceOptions::heron(), "g")
                .expect("generates");
            let mut tuner = Tuner::new(
                space,
                heron_dla::Measurer::new(heron_dla::v100()),
                TuneConfig::quick(32),
                7,
            );
            black_box(tuner.run().best_gflops)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_offspring, bench_tuner_iteration);
criterion_main!(benches);
