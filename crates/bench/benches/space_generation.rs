//! Micro-bench (heron-testkit): constrained space generation
//! (Algorithm 1) per operator and platform — the fixed cost paid once
//! per workload.

use heron_core::generate::{SpaceGenerator, SpaceOptions};
use heron_tensor::ops;
use heron_testkit::bench::{black_box, Harness};

fn main() {
    let cases = [
        (
            "generate/gemm-1024/v100",
            heron_dla::v100(),
            ops::gemm(1024, 1024, 1024),
        ),
        (
            "generate/c2d-resnet/v100",
            heron_dla::v100(),
            ops::conv2d(ops::Conv2dConfig::new(16, 14, 14, 256, 256, 3, 3, 1, 1)),
        ),
        (
            "generate/c3d/v100",
            heron_dla::v100(),
            ops::conv3d(1, 16, 28, 28, 64, 64, 3, 1, 1),
        ),
        (
            "generate/gemm-1024/dlboost",
            heron_dla::dlboost(),
            ops::gemm_dtyped(1024, 1024, 1024, heron_tensor::DType::I8),
        ),
        (
            "generate/gemm-1024/vta",
            heron_dla::vta(),
            ops::gemm_dtyped(1024, 1024, 1024, heron_tensor::DType::I8),
        ),
    ];
    let mut h = Harness::new("space_generation");
    for (name, spec, dag) in cases {
        let generator = SpaceGenerator::new(spec);
        h.bench(name, || {
            let space = generator
                .generate_named(&dag, &SpaceOptions::heron(), name)
                .expect("generates");
            black_box(space.csp.num_constraints())
        });
    }
    h.finish();
}
