//! Criterion bench: constrained space generation (Algorithm 1) per
//! operator and platform — the fixed cost paid once per workload.

use criterion::{criterion_group, criterion_main, Criterion};
use heron_core::generate::{SpaceGenerator, SpaceOptions};
use heron_tensor::ops;
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let cases = [
        ("gemm-1024/v100", heron_dla::v100(), ops::gemm(1024, 1024, 1024)),
        (
            "c2d-resnet/v100",
            heron_dla::v100(),
            ops::conv2d(ops::Conv2dConfig::new(16, 14, 14, 256, 256, 3, 3, 1, 1)),
        ),
        (
            "c3d/v100",
            heron_dla::v100(),
            ops::conv3d(1, 16, 28, 28, 64, 64, 3, 1, 1),
        ),
        (
            "gemm-1024/dlboost",
            heron_dla::dlboost(),
            ops::gemm_dtyped(1024, 1024, 1024, heron_tensor::DType::I8),
        ),
        (
            "gemm-1024/vta",
            heron_dla::vta(),
            ops::gemm_dtyped(1024, 1024, 1024, heron_tensor::DType::I8),
        ),
    ];
    let mut group = c.benchmark_group("generate");
    group.sample_size(20);
    for (name, spec, dag) in cases {
        let generator = SpaceGenerator::new(spec);
        group.bench_function(name, |b| {
            b.iter(|| {
                let space = generator
                    .generate_named(&dag, &SpaceOptions::heron(), name)
                    .expect("generates");
                black_box(space.csp.num_constraints())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
