//! Criterion bench: RandSAT sampling and propagation on the GEMM
//! `CSP_initial` — the inner loop of CGA (called thousands of times per
//! tuning session, so its cost sets the "CGA" slice of Figure 14).

use criterion::{criterion_group, criterion_main, Criterion};
use heron_core::generate::{SpaceGenerator, SpaceOptions};
use heron_csp::propagate::Propagator;
use heron_tensor::ops;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn space() -> heron_core::generate::GeneratedSpace {
    let dag = ops::gemm(1024, 1024, 1024);
    SpaceGenerator::new(heron_dla::v100())
        .generate_named(&dag, &SpaceOptions::heron(), "g1")
        .expect("generates")
}

fn bench_rand_sat(c: &mut Criterion) {
    let space = space();
    let mut group = c.benchmark_group("rand_sat");
    group.sample_size(20);
    group.bench_function("gemm-1024/1-solution", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let sols = heron_csp::rand_sat_with_budget(&space.csp, &mut rng, 1, 400);
            black_box(sols.len())
        });
    });
    group.bench_function("gemm-1024/16-solutions", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            let sols = heron_csp::rand_sat_with_budget(&space.csp, &mut rng, 16, 400);
            black_box(sols.len())
        });
    });
    group.finish();
}

fn bench_propagation(c: &mut Criterion) {
    let space = space();
    c.bench_function("propagate/gemm-1024/run_all", |b| {
        let prop = Propagator::new(&space.csp);
        b.iter(|| {
            let mut domains = prop.initial_domains();
            prop.run_all(&mut domains).expect("feasible");
            black_box(domains.len())
        });
    });
}

fn bench_validate(c: &mut Criterion) {
    let space = space();
    let mut rng = StdRng::seed_from_u64(3);
    let sol = heron_csp::rand_sat(&space.csp, &mut rng, 1).pop().expect("solvable");
    c.bench_function("validate/gemm-1024", |b| {
        b.iter(|| black_box(heron_csp::validate(&space.csp, &sol)));
    });
}

criterion_group!(benches, bench_rand_sat, bench_propagation, bench_validate);
criterion_main!(benches);
