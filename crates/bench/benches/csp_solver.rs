//! Micro-bench (heron-testkit): RandSAT sampling and propagation on the
//! GEMM `CSP_initial` — the inner loop of CGA (called thousands of
//! times per tuning session, so its cost sets the "CGA" slice of
//! Figure 14).

use heron_core::generate::{SpaceGenerator, SpaceOptions};
use heron_csp::propagate::Propagator;
use heron_rng::HeronRng;
use heron_tensor::ops;
use heron_testkit::bench::{black_box, Harness};

fn space() -> heron_core::generate::GeneratedSpace {
    let dag = ops::gemm(1024, 1024, 1024);
    SpaceGenerator::new(heron_dla::v100())
        .generate_named(&dag, &SpaceOptions::heron(), "g1")
        .expect("generates")
}

fn main() {
    let mut h = Harness::new("csp_solver");
    let space = space();

    let mut rng = HeronRng::from_seed(1);
    h.bench("rand_sat/gemm-1024/1-solution", || {
        let sols = heron_csp::rand_sat_with_budget(&space.csp, &mut rng, 1, 400);
        black_box(sols.solutions.len())
    });

    let mut rng = HeronRng::from_seed(2);
    h.bench("rand_sat/gemm-1024/16-solutions", || {
        let sols = heron_csp::rand_sat_with_budget(&space.csp, &mut rng, 16, 400);
        black_box(sols.solutions.len())
    });

    let prop = Propagator::new(&space.csp);
    h.bench("propagate/gemm-1024/run_all", || {
        let mut store = prop.store();
        prop.run_all(&mut store).expect("feasible");
        black_box(store.min(0))
    });

    let mut rng = HeronRng::from_seed(3);
    let sol = heron_csp::rand_sat(&space.csp, &mut rng, 1)
        .one()
        .expect("solvable");
    h.bench("validate/gemm-1024", || {
        black_box(heron_csp::validate(&space.csp, &sol))
    });

    h.finish();
}
