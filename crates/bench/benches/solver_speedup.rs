//! Micro-bench (heron-testkit): trail+bitset RandSAT vs the historical
//! clone-based engine (`heron_testkit::csp_reference`) on the conv2d
//! `CSP_initial` — the speed-campaign receipt for the solver rewrite.
//!
//! Both engines draw the same 16-solution sample with the same seed and
//! policy, so the comparison is apples-to-apples: identical solution
//! sequences (enforced by `crates/csp/tests/prop_equiv.rs`), different
//! machinery. Besides the usual per-engine timing rows, the run prints
//! a summary with the wall-clock speedup and the propagation-pass
//! counts; the rewrite should show ~2× wall-clock and ≥2× fewer passes
//! for the same sample on this space. (Raw passes/sec is *not*
//! comparable across the engines: a trail-engine `PROD`/`SUM`/`SELECT`
//! pass runs its filter to a local fixpoint, so each pass does strictly
//! more work than a reference pass.)

use heron_core::generate::{SpaceGenerator, SpaceOptions};
use heron_csp::SolvePolicy;
use heron_rng::HeronRng;
use heron_tensor::ops;
use heron_testkit::bench::{black_box, Harness};
use heron_testkit::csp_reference::rand_sat_reference;
use std::time::Instant;

const SEED: u64 = 2023;
const SAMPLES: usize = 16;

fn space() -> heron_core::generate::GeneratedSpace {
    let dag = ops::conv2d(ops::Conv2dConfig::new(1, 14, 14, 64, 64, 3, 3, 1, 1));
    SpaceGenerator::new(heron_dla::v100())
        .generate_named(&dag, &SpaceOptions::heron(), "c2d-14x64")
        .expect("generates")
}

/// Times `reps` fresh-seeded runs of `f`, which returns the run's
/// propagation count. Returns (total seconds, total propagations).
fn measure(reps: u32, mut f: impl FnMut() -> u64) -> (f64, u64) {
    black_box(f()); // warmup
    let mut props = 0u64;
    let t0 = Instant::now();
    for _ in 0..reps {
        props += black_box(f());
    }
    (t0.elapsed().as_secs_f64(), props)
}

fn main() {
    let mut h = Harness::new("solver_speedup");
    let space = space();
    let policy = SolvePolicy::default();

    h.bench("reference/c2d-14x64/16-solutions", || {
        let mut rng = HeronRng::from_seed(SEED);
        let out = rand_sat_reference(&space.csp, &mut rng, SAMPLES, &policy);
        black_box(out.solutions.len())
    });
    h.bench("trail/c2d-14x64/16-solutions", || {
        let mut rng = HeronRng::from_seed(SEED);
        let out = heron_csp::rand_sat(&space.csp, &mut rng, SAMPLES);
        black_box(out.solutions.len())
    });

    let reps = std::env::var("HERON_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(15u32);
    let (ref_s, ref_props) = measure(reps, || {
        let mut rng = HeronRng::from_seed(SEED);
        rand_sat_reference(&space.csp, &mut rng, SAMPLES, &policy)
            .stats
            .propagations
    });
    let (new_s, new_props) = measure(reps, || {
        let mut rng = HeronRng::from_seed(SEED);
        heron_csp::rand_sat(&space.csp, &mut rng, SAMPLES)
            .stats
            .propagations
    });
    let ref_pps = ref_props as f64 / ref_s;
    let new_pps = new_props as f64 / new_s;
    eprintln!(
        "  summary: wall-clock speedup {:.2}x | props/run {} -> {} ({:.2}x fewer) | \
         props/sec {:.2}M -> {:.2}M ({:.2}x)",
        ref_s / new_s,
        ref_props / u64::from(reps),
        new_props / u64::from(reps),
        ref_props as f64 / new_props as f64,
        ref_pps / 1e6,
        new_pps / 1e6,
        new_pps / ref_pps,
    );

    h.finish();
}
