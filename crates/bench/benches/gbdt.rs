//! Criterion bench: cost-model training and prediction (Algorithm 2
//! Step 4 and the fitness evaluations of Step 2).

use criterion::{criterion_group, criterion_main, Criterion};
use heron_cost::{Gbdt, GbdtParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn synthetic(n: usize, d: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let x: Vec<Vec<f64>> =
        (0..n).map(|_| (0..d).map(|_| rng.random::<f64>() * 8.0).collect()).collect();
    let y: Vec<f64> =
        x.iter().map(|r| 3.0 * r[0] - 2.0 * r[1] + (r[2] * r[3]).sqrt()).collect();
    (x, y)
}

fn bench_gbdt(c: &mut Criterion) {
    // Shapes matching a tuning session: ~80 CSP-variable features, growing
    // sample counts.
    let mut group = c.benchmark_group("gbdt-fit");
    group.sample_size(10);
    for n in [128usize, 512, 2000] {
        let (x, y) = synthetic(n, 80, 7);
        group.bench_function(format!("fit/{n}x80"), |b| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let m = Gbdt::fit(&x, &y, &GbdtParams::default(), &mut rng);
                black_box(m.num_trees())
            });
        });
    }
    group.finish();
    let (x, y) = synthetic(512, 80, 9);
    let mut rng = StdRng::seed_from_u64(2);
    let model = Gbdt::fit(&x, &y, &GbdtParams::default(), &mut rng);
    c.bench_function("gbdt/predict/512x80", |b| {
        b.iter(|| black_box(model.predict_batch(&x).len()));
    });
    c.bench_function("gbdt/importance/80", |b| {
        b.iter(|| black_box(model.feature_importance().len()));
    });
}

criterion_group!(benches, bench_gbdt);
criterion_main!(benches);
