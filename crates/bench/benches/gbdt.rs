//! Micro-bench (heron-testkit): cost-model training and prediction
//! (Algorithm 2 Step 4 and the fitness evaluations of Step 2).

use heron_cost::{Gbdt, GbdtParams};
use heron_rng::{HeronRng, Rng};
use heron_testkit::bench::{black_box, Harness};

fn synthetic(n: usize, d: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = HeronRng::from_seed(seed);
    let x: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.random::<f64>() * 8.0).collect())
        .collect();
    let y: Vec<f64> = x
        .iter()
        .map(|r| 3.0 * r[0] - 2.0 * r[1] + (r[2] * r[3]).sqrt())
        .collect();
    (x, y)
}

fn main() {
    let mut h = Harness::new("gbdt");
    // Shapes matching a tuning session: ~80 CSP-variable features,
    // growing sample counts.
    for n in [128usize, 512, 2000] {
        let (x, y) = synthetic(n, 80, 7);
        let mut rng = HeronRng::from_seed(1);
        h.bench(&format!("gbdt-fit/{n}x80"), || {
            let m = Gbdt::fit(&x, &y, &GbdtParams::default(), &mut rng);
            black_box(m.num_trees())
        });
    }
    let (x, y) = synthetic(512, 80, 9);
    let mut rng = HeronRng::from_seed(2);
    let model = Gbdt::fit(&x, &y, &GbdtParams::default(), &mut rng);
    h.bench("gbdt/predict/512x80", || {
        black_box(model.predict_batch(&x).len())
    });
    h.bench("gbdt/importance/80", || {
        black_box(model.feature_importance().len())
    });
    h.finish();
}
