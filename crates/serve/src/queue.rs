//! Bounded admission: the service's backpressure contract.
//!
//! Submission either *admits* a job into the FIFO queue or *rejects* it
//! with a machine-readable [`AdmitError`] — never a silent drop. The
//! queue is bounded at submit time ([`AdmitError::QueueFull`] past
//! capacity), ids are unique for the lifetime of the service
//! ([`AdmitError::Duplicate`] even after the original left the queue,
//! so a retry of a completed job cannot double-run it), and specs are
//! validated up front ([`AdmitError::Invalid`]) so a worker never
//! discovers a malformed workload mid-flight.

use std::collections::{BTreeSet, VecDeque};

use crate::job::{JobError, JobSpec};

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmitError {
    /// The pending queue is at capacity; resubmit later.
    QueueFull {
        /// The configured bound that was hit.
        capacity: usize,
    },
    /// A job with this id was already admitted (possibly long finished).
    Duplicate {
        /// The offending id.
        id: String,
    },
    /// The spec cannot be built into a session.
    Invalid {
        /// The offending id.
        id: String,
        /// The underlying spec error.
        error: JobError,
    },
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity})")
            }
            AdmitError::Duplicate { id } => write!(f, "duplicate job id `{id}`"),
            AdmitError::Invalid { id, error } => write!(f, "invalid job `{id}`: {error}"),
        }
    }
}

impl std::error::Error for AdmitError {}

/// FIFO admission queue with a hard capacity and lifetime id-uniqueness.
#[derive(Debug)]
pub struct AdmitQueue {
    capacity: usize,
    pending: VecDeque<JobSpec>,
    admitted_ids: BTreeSet<String>,
}

impl AdmitQueue {
    /// An empty queue bounded at `capacity` pending jobs.
    pub fn new(capacity: usize) -> Self {
        AdmitQueue {
            capacity,
            pending: VecDeque::new(),
            admitted_ids: BTreeSet::new(),
        }
    }

    /// Admits `spec` or rejects it with a reason. Order of checks:
    /// duplicate id (cheapest, never admits a second copy even when
    /// full), validity, then capacity.
    pub fn submit(&mut self, spec: JobSpec) -> Result<(), AdmitError> {
        if self.admitted_ids.contains(&spec.id) {
            return Err(AdmitError::Duplicate { id: spec.id });
        }
        if let Err(error) = spec.validate() {
            return Err(AdmitError::Invalid { id: spec.id, error });
        }
        if self.pending.len() >= self.capacity {
            return Err(AdmitError::QueueFull {
                capacity: self.capacity,
            });
        }
        self.admitted_ids.insert(spec.id.clone());
        self.pending.push_back(spec);
        Ok(())
    }

    /// Takes the oldest pending job for assignment.
    pub fn pop(&mut self) -> Option<JobSpec> {
        self.pending.pop_front()
    }

    /// Pending (admitted, unassigned) job count.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_is_bounded_unique_and_validated() {
        let mut q = AdmitQueue::new(2);
        q.submit(JobSpec::new("a", "gemm", "8x8x8"))
            .expect("admits");
        q.submit(JobSpec::new("b", "gemm", "8x8x8"))
            .expect("admits");
        assert_eq!(
            q.submit(JobSpec::new("c", "gemm", "8x8x8")),
            Err(AdmitError::QueueFull { capacity: 2 })
        );
        assert_eq!(
            q.submit(JobSpec::new("a", "gemm", "8x8x8")),
            Err(AdmitError::Duplicate {
                id: "a".to_string()
            })
        );
        match q.submit(JobSpec::new("d", "gemm", "8x8")) {
            Err(AdmitError::Invalid { id, .. }) => assert_eq!(id, "d"),
            other => panic!("unexpected {other:?}"),
        }
        // Popping frees capacity but not the id.
        assert_eq!(q.pop().map(|s| s.id), Some("a".to_string()));
        q.submit(JobSpec::new("e", "gemm", "8x8x8"))
            .expect("admits");
        assert_eq!(
            q.submit(JobSpec::new("a", "gemm", "8x8x8")),
            Err(AdmitError::Duplicate {
                id: "a".to_string()
            })
        );
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
}
