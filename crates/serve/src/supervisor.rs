//! The supervisor: admission, assignment, watchdog, recovery, drain.
//!
//! One single-threaded event loop owns the whole job table; workers
//! only ever talk back over an mpsc channel, and every message quotes
//! the worker's **epoch** so a fenced-off zombie can be ignored rather
//! than corrupting the table. The lifecycle per job:
//!
//! ```text
//! submit ──► Queued ──assign──► Running ──► Completed
//!    │                            │  ▲
//!    └─► rejected (with reason)   │  └── recover (≤ restart_budget)
//!                                 │            │
//!                                 ├─ preempt ─► Preempted (checkpointed)
//!                                 └─ budget exhausted ─► Quarantined
//! ```
//!
//! Failure detection is two-pronged, matching the two ways a worker
//! can die:
//!
//! * **crash** — the thread is finished but no event for the current
//!   epoch ever arrived (a real killed process looks exactly like
//!   this). Detected on the next poll; pending events are drained
//!   first so a completion racing the scan is never misread as a
//!   crash.
//! * **hang** — the thread is alive but its heartbeat (bumped by the
//!   tuner at every round boundary) stands still for
//!   `hang_grace_polls` consecutive polls. The supervisor cancels the
//!   epoch (fencing its checkpoint saves off), parks the zombie handle
//!   for later joining, and recovers from the last snapshot.
//!
//! Recovery resumes from the job's last accepted checkpoint — or from
//! scratch if it never checkpointed — after a *simulated* backoff
//! (advancing the manual-clock service trace, not wall time; the
//! deterministic-in-simulated-time watchdog contract). Each job gets
//! `restart_budget` recoveries before it is quarantined as poisoned —
//! the same policy the tuner applies to crashing kernel candidates,
//! lifted to job granularity.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::thread::JoinHandle;
use std::time::Duration;

use heron_core::TunerControl;
use heron_pulse::SloSpec;
use heron_trace::Tracer;

use crate::job::{JobScript, JobSpec, ServeConfig};
use crate::manifest;
use crate::plan::ChaosPlan;
use crate::postmortem::{self, DeathReport, Postmortem};
use crate::queue::{AdmitError, AdmitQueue};
use crate::recorder::FlightRecorder;
use crate::store::CheckpointStore;
use crate::worker::{run_order, Event, JobReport, WorkOrder};

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a worker (terminal only after a drain).
    Queued,
    /// A worker attempt is in flight.
    Running,
    /// Finished; its [`JobReport`] is available.
    Completed,
    /// Preempted (job deadline or drain); checkpoint is in the store.
    Preempted,
    /// Poisoned: failed past the restart budget (or unbuildable).
    Quarantined,
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Preempted => "preempted",
            JobState::Quarantined => "quarantined",
        };
        write!(f, "{s}")
    }
}

/// Supervisor-side record of one admitted job.
struct JobEntry {
    spec: JobSpec,
    state: JobState,
    /// Current (or final) attempt number; attempt 0 is the first run.
    attempt: u32,
    /// Recoveries performed (crash + hang combined).
    recoveries: u32,
    epoch: u64,
    control: TunerControl,
    handle: Option<JoinHandle<()>>,
    last_heartbeat: u64,
    stall_polls: u32,
    report: Option<Box<JobReport>>,
    /// Anomaly warnings (`pulse.warn.*`) recorded for this job.
    warnings: Vec<String>,
    /// Human-readable context for quarantine/preemption.
    note: Option<String>,
    /// Rounds/trials at preemption (from the worker's event).
    preempted_rounds: u64,
    preempted_trials: usize,
    /// Admission order (0-based), for schedule reconstruction.
    submit_seq: usize,
    /// Outcome of every settled attempt, in attempt order.
    attempts_log: Vec<AttemptRecord>,
}

/// The deterministic outcome of one worker attempt, for schedule
/// reconstruction (`heron-scope`, DESIGN.md §12).
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptRecord {
    /// Attempt number (0 = first run).
    pub attempt: u32,
    /// `completed`, `preempted`, `crashed`, `hung`, or `failed`.
    pub outcome: String,
    /// Simulated wall-clock the attempt consumed before settling, ns.
    pub sim_ns: u64,
    /// Lifetime rounds when the attempt settled.
    pub rounds: u64,
}

/// One job's deterministic scheduling facts: submission order, final
/// state, and every attempt's outcome. The projection `heron-scope`
/// rebuilds the service schedule from.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleRow {
    /// Job id.
    pub id: String,
    /// Admission order (0-based).
    pub submit_seq: usize,
    /// Final lifecycle state.
    pub state: JobState,
    /// Attempts in order (empty for jobs that never ran).
    pub attempts: Vec<AttemptRecord>,
}

/// Read-only snapshot of a job for manifests and assertions.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRow {
    /// Job id.
    pub id: String,
    /// Lifecycle state at snapshot time.
    pub state: JobState,
    /// Attempts started (attempt index + 1 once running).
    pub attempts: u32,
    /// Recoveries performed.
    pub recoveries: u32,
    /// Lifetime rounds (completed or preempted sessions; 0 otherwise).
    pub rounds: u64,
    /// Trials completed.
    pub trials: usize,
    /// Final termination (completed jobs).
    pub termination: Option<String>,
    /// Determinism fingerprint (completed jobs).
    pub fingerprint: Option<u64>,
    /// Best throughput in Gops/s (completed jobs).
    pub best_gflops: Option<f64>,
    /// Anomaly warnings (`pulse.warn.*`) recorded for this job.
    pub warnings: Vec<String>,
    /// Quarantine/preemption context.
    pub note: Option<String>,
}

/// The tuning service: a bounded queue, a worker pool, and a watchdog,
/// all driven by [`Supervisor::run`] on the calling thread.
/// How far below baseline a job's solver throughput may fall before a
/// `pulse.warn.solver_throughput` anomaly is recorded (fraction).
const THROUGHPUT_SLACK: f64 = 0.25;

/// Degradation check against a committed per-workload throughput
/// baseline (`sol_per_kprop`, as in `BENCH_heron.json`).
fn throughput_warning(
    baseline: &[(String, f64)],
    spec: &JobSpec,
    report: &JobReport,
) -> Option<String> {
    let name = spec.workload().ok()?.name;
    let base = baseline.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)?;
    let measured = heron_pulse::sol_per_kprop_from_tsv(&report.metrics_tsv)?;
    if base > 0.0 && measured < base * (1.0 - THROUGHPUT_SLACK) {
        Some(format!(
            "pulse.warn.solver_throughput sol_per_kprop={measured:.3} baseline={base:.3}"
        ))
    } else {
        None
    }
}

pub struct Supervisor {
    config: ServeConfig,
    plan: ChaosPlan,
    baseline: Vec<(String, f64)>,
    store: CheckpointStore,
    tracer: Tracer,
    queue: AdmitQueue,
    jobs: BTreeMap<String, JobEntry>,
    rejected: Vec<(String, String)>,
    tx: Sender<Event>,
    rx: Receiver<Event>,
    zombies: Vec<JoinHandle<()>>,
    spawn_counter: usize,
    submit_counter: usize,
    draining: bool,
    recorder: FlightRecorder,
    slo: SloSpec,
    postmortem_dir: Option<PathBuf>,
    postmortems: Vec<Postmortem>,
}

impl Supervisor {
    /// A supervisor with no chaos plan and a fresh in-memory store.
    pub fn new(config: ServeConfig) -> Self {
        let (tx, rx) = channel();
        let queue = AdmitQueue::new(config.queue_capacity);
        Supervisor {
            config,
            plan: ChaosPlan::none(),
            baseline: Vec::new(),
            store: CheckpointStore::new(),
            tracer: Tracer::manual(),
            queue,
            jobs: BTreeMap::new(),
            rejected: Vec::new(),
            tx,
            rx,
            zombies: Vec::new(),
            spawn_counter: 0,
            submit_counter: 0,
            draining: false,
            recorder: FlightRecorder::new(),
            slo: SloSpec::empty(),
            postmortem_dir: None,
            postmortems: Vec::new(),
        }
    }

    /// Installs a kill-injection plan (chaos harness).
    pub fn with_plan(mut self, plan: ChaosPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Installs a per-workload solver-throughput baseline
    /// (`(workload name, sol_per_kprop)`); completed jobs that fall
    /// more than [`THROUGHPUT_SLACK`] below it are flagged with a
    /// `pulse.warn.solver_throughput` anomaly.
    pub fn with_baseline(mut self, baseline: Vec<(String, f64)>) -> Self {
        self.baseline = baseline;
        self
    }

    /// Replaces the checkpoint store (e.g. one with a disk mirror).
    pub fn with_store(mut self, store: CheckpointStore) -> Self {
        self.store = store;
        self
    }

    /// Installs the SLO spec judged inside postmortem bundles (the
    /// "verdicts at time of death"; defaults to the empty spec).
    pub fn with_slo(mut self, slo: SloSpec) -> Self {
        self.slo = slo;
        self
    }

    /// Mirrors every postmortem bundle to `<dir>/<job>.attempt<N>.
    /// <reason>.jsonl`. Bundles are assembled (and listed in the
    /// manifest) whether or not a directory is set, so the manifest is
    /// identical with and without one.
    pub fn with_postmortem_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.postmortem_dir = Some(dir.into());
        self
    }

    /// Builds a supervisor from a parsed job script and submits every
    /// job, recording rejections. Returns the supervisor ready to
    /// [`Supervisor::run`].
    pub fn from_script(script: JobScript) -> Self {
        let mut sup = Supervisor::new(script.config).with_plan(script.plan);
        for spec in script.jobs {
            let _ = sup.submit(spec);
        }
        sup
    }

    /// Submits one job through admission control. Rejections are
    /// recorded (for the manifest) and returned.
    pub fn submit(&mut self, spec: JobSpec) -> Result<(), AdmitError> {
        let id = spec.id.clone();
        match self.queue.submit(spec.clone()) {
            Ok(()) => {
                self.tracer.counter_add("serve.jobs_submitted", 1);
                self.tracer
                    .point_with("serve.submit", || [("job", id.clone())]);
                let submit_seq = self.submit_counter;
                self.submit_counter += 1;
                self.jobs.insert(
                    id,
                    JobEntry {
                        spec,
                        state: JobState::Queued,
                        attempt: 0,
                        recoveries: 0,
                        epoch: 0,
                        control: TunerControl::new(),
                        handle: None,
                        last_heartbeat: 0,
                        stall_polls: 0,
                        report: None,
                        warnings: Vec::new(),
                        note: None,
                        preempted_rounds: 0,
                        preempted_trials: 0,
                        submit_seq,
                        attempts_log: Vec::new(),
                    },
                );
                Ok(())
            }
            Err(e) => {
                self.tracer.counter_add("serve.jobs_rejected", 1);
                self.tracer.point_with("serve.reject", || {
                    [("job", id.clone()), ("reason", e.to_string())]
                });
                self.rejected.push((id, e.to_string()));
                Err(e)
            }
        }
    }

    /// Drives the service to completion: assigns queued jobs to free
    /// workers, processes worker events, runs the watchdog, recovers
    /// failures, and returns once every admitted job is settled
    /// (completed, preempted, quarantined — or still queued after a
    /// drain).
    pub fn run(&mut self) {
        {
            let _span = self.tracer.span("serve.run");
            loop {
                self.assign_ready();
                if self.all_settled() {
                    break;
                }
                match self
                    .rx
                    .recv_timeout(Duration::from_millis(self.config.poll_interval_ms))
                {
                    Ok(ev) => {
                        self.handle_event(ev);
                        while let Ok(ev) = self.rx.try_recv() {
                            self.handle_event(ev);
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    // We hold a sender for the workers; disconnection is
                    // impossible while `self` lives.
                    Err(RecvTimeoutError::Disconnected) => break,
                }
                self.scan_workers();
            }
        }
        self.join_all();
        self.tracer
            .counter_add("serve.checkpoint_saves", self.store.saves());
        self.tracer
            .counter_add("serve.stale_checkpoint_saves", self.store.stale_saves());
    }

    /// Requests a graceful drain: stop assigning, preempt everything
    /// running (each drains to a checkpoint in the store).
    pub fn begin_drain(&mut self) {
        if self.draining {
            return;
        }
        self.draining = true;
        self.tracer.point("serve.drain");
        for entry in self.jobs.values() {
            if entry.state == JobState::Running {
                entry.control.request_preempt();
            }
        }
    }

    fn running_count(&self) -> usize {
        self.jobs
            .values()
            .filter(|e| e.state == JobState::Running)
            .count()
    }

    fn assign_ready(&mut self) {
        if self.draining {
            return;
        }
        while self.running_count() < self.config.workers.max(1) {
            let Some(spec) = self.queue.pop() else { break };
            self.spawn(&spec.id.clone(), None, 0);
        }
    }

    /// Starts (or restarts) a worker attempt for `id`. Opens a fresh
    /// epoch so any previous worker for this job is fenced off.
    fn spawn(&mut self, id: &str, resume_from: Option<String>, attempt: u32) {
        let epoch = self.store.open_epoch(id);
        let control = TunerControl::new();
        let worker_id = self.spawn_counter % self.config.workers.max(1);
        self.spawn_counter += 1;
        let entry = self.jobs.get_mut(id).expect("spawn of unknown job");
        entry.state = JobState::Running;
        entry.attempt = attempt;
        entry.epoch = epoch;
        entry.control = control.clone();
        entry.last_heartbeat = 0;
        entry.stall_polls = 0;
        let order = WorkOrder {
            spec: entry.spec.clone(),
            attempt,
            epoch,
            resume_from,
            control,
            store: self.store.clone(),
            plan: self.plan.clone(),
            checkpoint_every: self.config.checkpoint_every,
            worker_id,
            ring_capacity: self.config.ring_capacity,
            ring_only: self.config.ring_only,
            recorder: self.recorder.clone(),
        };
        let tx = self.tx.clone();
        let handle = std::thread::Builder::new()
            .name(format!("heron-serve-w{worker_id}"))
            .spawn(move || run_order(order, tx))
            .expect("spawn worker thread");
        entry.handle = Some(handle);
        self.tracer.counter_add("serve.assignments", 1);
        let id_owned = id.to_string();
        self.tracer.point_with("serve.assign", move || {
            [
                ("job", id_owned),
                ("attempt", attempt.to_string()),
                ("worker", worker_id.to_string()),
            ]
        });
    }

    fn handle_event(&mut self, ev: Event) {
        match ev {
            Event::Completed { job, epoch, report } => {
                let Some(entry) = self.jobs.get_mut(&job) else {
                    return;
                };
                if entry.epoch != epoch || entry.state != JobState::Running {
                    self.tracer.counter_add("serve.stale_events", 1);
                    return;
                }
                if let Some(h) = entry.handle.take() {
                    let _ = h.join();
                }
                // Anomaly hook: completed-but-degraded solver throughput
                // versus the committed baseline.
                if let Some(warning) = throughput_warning(&self.baseline, &entry.spec, &report) {
                    entry.warnings.push(warning.clone());
                    self.tracer.counter_add("pulse.warn.solver_throughput", 1);
                    let job_owned = job.clone();
                    self.tracer
                        .point_with("pulse.warn.solver_throughput", move || {
                            [("job", job_owned), ("detail", warning)]
                        });
                }
                entry.attempts_log.push(AttemptRecord {
                    attempt: entry.attempt,
                    outcome: "completed".to_string(),
                    sim_ns: report.wall_ns,
                    rounds: report.rounds,
                });
                entry.state = JobState::Completed;
                entry.report = Some(report);
                self.tracer.counter_add("serve.jobs_completed", 1);
                self.tracer
                    .point_with("serve.complete", move || [("job", job)]);
                let done = self
                    .jobs
                    .values()
                    .filter(|e| e.state == JobState::Completed)
                    .count();
                if self.config.drain_after_completions > 0
                    && done >= self.config.drain_after_completions
                {
                    self.begin_drain();
                }
            }
            Event::Preempted {
                job,
                epoch,
                rounds,
                trials,
                wall_ns,
            } => {
                let Some(entry) = self.jobs.get_mut(&job) else {
                    return;
                };
                if entry.epoch != epoch || entry.state != JobState::Running {
                    self.tracer.counter_add("serve.stale_events", 1);
                    return;
                }
                if let Some(h) = entry.handle.take() {
                    let _ = h.join();
                }
                entry.attempts_log.push(AttemptRecord {
                    attempt: entry.attempt,
                    outcome: "preempted".to_string(),
                    sim_ns: wall_ns,
                    rounds,
                });
                entry.state = JobState::Preempted;
                entry.preempted_rounds = rounds;
                entry.preempted_trials = trials;
                entry.note = Some(format!("checkpointed at round {rounds}"));
                self.tracer.counter_add("serve.jobs_preempted", 1);
                self.tracer
                    .point_with("serve.preempt", move || [("job", job)]);
            }
            Event::Failed { job, epoch, reason } => {
                let Some(entry) = self.jobs.get_mut(&job) else {
                    return;
                };
                if entry.epoch != epoch || entry.state != JobState::Running {
                    self.tracer.counter_add("serve.stale_events", 1);
                    return;
                }
                if let Some(h) = entry.handle.take() {
                    let _ = h.join();
                }
                // A session that cannot be built is deterministically
                // poisoned; retrying cannot help.
                entry.attempts_log.push(AttemptRecord {
                    attempt: entry.attempt,
                    outcome: "failed".to_string(),
                    sim_ns: 0,
                    rounds: 0,
                });
                entry.state = JobState::Quarantined;
                entry.note = Some(format!("poisoned: {reason}"));
                self.tracer.counter_add("serve.jobs_quarantined", 1);
                let job_owned = job.clone();
                self.tracer
                    .point_with("serve.quarantine", move || [("job", job_owned)]);
                self.emit_postmortem(&job, "quarantine");
            }
        }
    }

    /// The watchdog pass: detect crashed workers (finished thread, no
    /// event) and hung workers (live thread, flat heartbeat).
    fn scan_workers(&mut self) {
        let running: Vec<String> = self
            .jobs
            .iter()
            .filter(|(_, e)| e.state == JobState::Running && e.handle.is_some())
            .map(|(id, _)| id.clone())
            .collect();
        for id in running {
            let finished = self
                .jobs
                .get(&id)
                .and_then(|e| e.handle.as_ref())
                .is_some_and(|h| h.is_finished());
            if finished {
                // Drain the channel first: a completion racing this scan
                // must never be misread as a crash (a worker's event is
                // sent strictly before its thread exits).
                while let Ok(ev) = self.rx.try_recv() {
                    self.handle_event(ev);
                }
                let entry = self.jobs.get_mut(&id).expect("scanned job exists");
                if entry.state != JobState::Running {
                    continue; // the drained event settled it
                }
                if let Some(h) = entry.handle.take() {
                    let _ = h.join();
                }
                self.tracer.counter_add("serve.crashes_detected", 1);
                let id_owned = id.clone();
                self.tracer
                    .point_with("serve.crash_detected", move || [("job", id_owned)]);
                let (sim_ns, rounds) = self.attempt_facts(&id);
                let entry = self.jobs.get_mut(&id).expect("scanned job exists");
                entry.attempts_log.push(AttemptRecord {
                    attempt: entry.attempt,
                    outcome: "crashed".to_string(),
                    sim_ns,
                    rounds,
                });
                self.emit_postmortem(&id, "crash");
                self.recover(&id);
            } else {
                let entry = self.jobs.get_mut(&id).expect("scanned job exists");
                let hb = entry.control.heartbeat();
                if hb != entry.last_heartbeat {
                    entry.last_heartbeat = hb;
                    entry.stall_polls = 0;
                    continue;
                }
                entry.stall_polls += 1;
                // Anomaly hook, live half: a flat heartbeat at half the
                // hang grace is a stall *precursor* — surfaced as a
                // counter and point well before the watchdog fires. A
                // slow-but-healthy round can trip this too, so only the
                // trace records it; the job's durable warning list
                // (manifest, pulse.json) waits for confirmation below.
                if entry.stall_polls == (self.config.hang_grace_polls / 2).max(1) {
                    let attempt = entry.attempt;
                    self.tracer.counter_add("pulse.warn.heartbeat_stall", 1);
                    let id_owned = id.clone();
                    self.tracer
                        .point_with("pulse.warn.heartbeat_stall", move || {
                            [("job", id_owned), ("attempt", attempt.to_string())]
                        });
                }
                if entry.stall_polls < self.config.hang_grace_polls {
                    continue;
                }
                // Anomaly hook, durable half: the stall is now a
                // confirmed hang — a deterministic function of the
                // chaos plan — so record it on the job.
                entry.warnings.push(format!(
                    "pulse.warn.heartbeat_stall attempt={}",
                    entry.attempt
                ));
                // Hang: fence the epoch off (cancel wakes the zombie so
                // it can exit; its checkpoint saves are already stale
                // the moment we respawn), park the handle, recover.
                entry.control.request_cancel();
                if let Some(h) = entry.handle.take() {
                    self.zombies.push(h);
                }
                self.tracer.counter_add("serve.hangs_detected", 1);
                let id_owned = id.clone();
                self.tracer
                    .point_with("serve.hang_detected", move || [("job", id_owned)]);
                let (sim_ns, rounds) = self.attempt_facts(&id);
                let entry = self.jobs.get_mut(&id).expect("scanned job exists");
                entry.attempts_log.push(AttemptRecord {
                    attempt: entry.attempt,
                    outcome: "hung".to_string(),
                    sim_ns,
                    rounds,
                });
                self.emit_postmortem(&id, "hang");
                self.recover(&id);
            }
        }
    }

    /// Retry-with-backoff, bounded by the restart budget. Resumes from
    /// the last accepted checkpoint, or from scratch if the job died
    /// before ever snapshotting.
    fn recover(&mut self, id: &str) {
        let (recoveries, next_attempt) = {
            let entry = self.jobs.get_mut(id).expect("recovering unknown job");
            entry.recoveries += 1;
            (entry.recoveries, entry.attempt + 1)
        };
        if recoveries > self.config.restart_budget {
            let entry = self.jobs.get_mut(id).expect("recovering unknown job");
            entry.state = JobState::Quarantined;
            entry.note = Some(format!(
                "poisoned: restart budget ({}) exhausted after {} attempts",
                self.config.restart_budget, next_attempt
            ));
            self.tracer.counter_add("serve.jobs_quarantined", 1);
            let id_owned = id.to_string();
            self.tracer
                .point_with("serve.quarantine", move || [("job", id_owned)]);
            self.emit_postmortem(id, "quarantine");
            return;
        }
        // Exponential backoff in *simulated* time: the service trace's
        // manual clock advances, wall time does not. Step-based
        // supervision stays deterministic and tests stay fast.
        let backoff_s = self.config.backoff_base_s * f64::powi(2.0, recoveries as i32 - 1);
        self.tracer.advance_s(backoff_s);
        self.tracer.counter_add("serve.jobs_recovered", 1);
        let resume_from = self.store.load(id);
        let resumed = resume_from.is_some();
        let id_owned = id.to_string();
        self.tracer.point_with("serve.recover", move || {
            [
                ("job", id_owned),
                ("attempt", next_attempt.to_string()),
                ("from_checkpoint", resumed.to_string()),
            ]
        });
        self.spawn(id, resume_from, next_attempt);
    }

    /// The dying attempt's last-flushed `(sim_ns, rounds)` — zeros when
    /// no deposit from the job's current epoch exists (e.g. a session
    /// that never completed a round).
    fn attempt_facts(&self, id: &str) -> (u64, u64) {
        let entry = &self.jobs[id];
        match self.recorder.get(id) {
            Some(f) if f.epoch == entry.epoch => (f.sim_ns, f.rounds),
            _ => (0, 0),
        }
    }

    /// Assembles the postmortem bundle for one death, records it for
    /// the manifest, and mirrors it to `--postmortem-dir` when set.
    fn emit_postmortem(&mut self, id: &str, reason: &str) {
        let entry = self.jobs.get(id).expect("postmortem for unknown job");
        let checkpoint = self.store.load(id);
        let flight = self.recorder.get(id);
        let flight_ref = flight.as_ref().filter(|f| f.epoch == entry.epoch);
        let pm = postmortem::build(&DeathReport {
            job: id,
            attempt: entry.attempt,
            epoch: entry.epoch,
            reason,
            recoveries: entry.recoveries,
            restart_budget: self.config.restart_budget,
            backoff_base_s: self.config.backoff_base_s,
            checkpoint: checkpoint.as_deref(),
            flight: flight_ref,
            slo: &self.slo,
        });
        self.tracer.counter_add("serve.postmortems", 1);
        let id_owned = id.to_string();
        let reason_owned = reason.to_string();
        self.tracer.point_with("serve.postmortem", move || {
            [("job", id_owned), ("reason", reason_owned)]
        });
        if let Some(dir) = &self.postmortem_dir {
            let _ = std::fs::create_dir_all(dir);
            let _ = std::fs::write(dir.join(&pm.file), &pm.bundle);
        }
        self.postmortems.push(pm);
        // Detection order is scheduling-dependent (a hang takes
        // `hang_grace_polls` to confirm; a crash one poll), so the list
        // is kept in canonical (job, attempt, reason) order — the
        // manifest and the byte-identity checks depend on it.
        self.postmortems
            .sort_by(|a, b| (&a.job, a.attempt, &a.reason).cmp(&(&b.job, b.attempt, &b.reason)));
    }

    fn all_settled(&self) -> bool {
        let queue_done = self.draining || self.queue.is_empty();
        queue_done
            && self.jobs.values().all(|e| match e.state {
                JobState::Completed | JobState::Preempted | JobState::Quarantined => true,
                JobState::Queued => self.draining,
                JobState::Running => false,
            })
    }

    fn join_all(&mut self) {
        for entry in self.jobs.values_mut() {
            if let Some(h) = entry.handle.take() {
                entry.control.request_cancel();
                let _ = h.join();
            }
        }
        for h in self.zombies.drain(..) {
            let _ = h.join();
        }
    }

    /// Snapshot of every admitted job, in id order.
    pub fn rows(&self) -> Vec<JobRow> {
        self.jobs
            .iter()
            .map(|(id, e)| {
                let (rounds, trials) = match (&e.report, e.state) {
                    (Some(r), _) => (r.rounds, r.trials),
                    (None, JobState::Preempted) => (e.preempted_rounds, e.preempted_trials),
                    _ => (0, 0),
                };
                JobRow {
                    id: id.clone(),
                    state: e.state,
                    attempts: if e.epoch > 0 { e.attempt + 1 } else { 0 },
                    recoveries: e.recoveries,
                    rounds,
                    trials,
                    termination: e.report.as_ref().map(|r| r.termination.clone()),
                    fingerprint: e.report.as_ref().map(|r| r.fingerprint),
                    best_gflops: e.report.as_ref().map(|r| r.best_gflops),
                    warnings: e.warnings.clone(),
                    note: e.note.clone(),
                }
            })
            .collect()
    }

    /// Rejected submissions as `(id, reason)`, in submission order.
    pub fn rejected(&self) -> &[(String, String)] {
        &self.rejected
    }

    /// Every postmortem bundle assembled this run, in emission order.
    pub fn postmortems(&self) -> &[Postmortem] {
        &self.postmortems
    }

    /// The shared flight recorder (per-job latest ring deposits).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Deterministic scheduling facts for every admitted job, in
    /// submission order — the `heron-scope` input projection.
    pub fn schedule_rows(&self) -> Vec<ScheduleRow> {
        let mut rows: Vec<ScheduleRow> = self
            .jobs
            .iter()
            .map(|(id, e)| ScheduleRow {
                id: id.clone(),
                submit_seq: e.submit_seq,
                state: e.state,
                attempts: e.attempts_log.clone(),
            })
            .collect();
        rows.sort_by_key(|r| r.submit_seq);
        rows
    }

    /// The deterministic results manifest.
    pub fn manifest(&self) -> String {
        manifest::render(&self.rows(), self.rejected(), self.postmortems())
    }

    /// A completed job's report.
    pub fn report(&self, id: &str) -> Option<&JobReport> {
        self.jobs.get(id).and_then(|e| e.report.as_deref())
    }

    /// A job's lifecycle state.
    pub fn state(&self, id: &str) -> Option<JobState> {
        self.jobs.get(id).map(|e| e.state)
    }

    /// The shared checkpoint store (e.g. to resume preempted jobs).
    pub fn store(&self) -> &CheckpointStore {
        &self.store
    }

    /// The service-level trace (lifecycle spans, points, counters).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// One correlated trace for the whole run: the supervisor's own
    /// (untagged) events merged with every completed job's tagged
    /// session trace, in job-id order, resequenced. Validates under
    /// `check_trace` (per-context discipline) and slices losslessly
    /// back apart with `slice_by_job`.
    pub fn merged_trace_jsonl(&self) -> String {
        let service = self.tracer.to_jsonl();
        let mut parts: Vec<&str> = vec![service.as_str()];
        for entry in self.jobs.values() {
            if let Some(report) = &entry.report {
                parts.push(report.trace_jsonl.as_str());
            }
        }
        heron_trace::merge_traces(&parts)
    }

    /// The deterministic projection of this run for the pulse engine
    /// ([`heron_pulse::build_pulse`]): manifest-grade job rows plus
    /// per-job artifacts, nothing scheduling-dependent.
    pub fn pulse_input(&self) -> heron_pulse::ServiceInput {
        let jobs = self
            .jobs
            .iter()
            .map(|(id, e)| {
                let report = e.report.as_deref();
                let (rounds, trials) = match (report, e.state) {
                    (Some(r), _) => (r.rounds, r.trials),
                    (None, JobState::Preempted) => (e.preempted_rounds, e.preempted_trials),
                    _ => (0, 0),
                };
                heron_pulse::JobInput {
                    id: id.clone(),
                    state: e.state.to_string(),
                    attempts: if e.epoch > 0 { e.attempt + 1 } else { 0 },
                    recoveries: e.recoveries,
                    rounds,
                    trials: trials as u64,
                    termination: report.map(|r| r.termination.clone()),
                    warnings: e.warnings.clone(),
                    insight_json: report.map(|r| r.insight_json.clone()).unwrap_or_default(),
                    metrics_tsv: report.map(|r| r.metrics_tsv.clone()).unwrap_or_default(),
                    wall_ns: report.map_or(0, |r| r.wall_ns),
                    postmortems: self.postmortems.iter().filter(|p| p.job == *id).count() as u64,
                    trace_jsonl: report
                        .map(|r| {
                            heron_trace::slice_by_job(&r.trace_jsonl)
                                .remove(id.as_str())
                                .unwrap_or_default()
                        })
                        .unwrap_or_default(),
                }
            })
            .collect();
        heron_pulse::ServiceInput {
            config: heron_pulse::PulseConfig {
                backoff_base_s: self.config.backoff_base_s,
                checkpoint_every: self.config.checkpoint_every,
                workers: self.config.workers,
            },
            jobs,
            rejected: self.rejected.clone(),
        }
    }
}
