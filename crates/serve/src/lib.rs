//! heron-serve: a supervised, crash-recoverable tuning-as-a-service
//! daemon.
//!
//! The one-shot CLI turns each tuning request into a process; a
//! production service turns them into *jobs*: admitted onto a bounded
//! queue (or rejected with a reason — backpressure is explicit), run
//! on a pool of OS-thread workers each owning an independent
//! non-`Send` `Tuner` session, and supervised by a step-based watchdog
//! that is deterministic in simulated time. The robustness substrate
//! is the checkpoint-v2 + deterministic-resume machinery from
//! `heron_core`: a crashed or hung worker costs at most the rounds
//! since its last atomic snapshot, and a recovered job provably
//! produces the **byte-identical** `TuneResult` of an uninterrupted
//! run — the chaos harness in [`chaos`] kill-injects workers mid-round
//! and checks exactly that.
//!
//! Module map, in lifecycle order:
//!
//! * [`job`] — job specs, the deterministic job-script language, and
//!   the service configuration;
//! * [`queue`] — bounded admission with reject-with-reason
//!   ([`queue::AdmitError`]);
//! * [`store`] — the epoch-fenced checkpoint store (zombie workers
//!   cannot clobber their replacement's snapshots);
//! * [`worker`] — one thread, one session: builds the `Tuner`
//!   in-thread from `Send` data, checkpoints periodically, reports
//!   over a channel;
//! * [`supervisor`] — assignment, heartbeat watchdog, crash/hang
//!   detection, retry-with-backoff under a restart budget, quarantine,
//!   graceful drain;
//! * [`plan`] — seeded worker-kill injection for the chaos harness;
//! * [`recorder`] — the flight recorder: per-job ring-snapshot deposits
//!   harvested after a death (DESIGN.md §12);
//! * [`postmortem`] — schema-versioned crash/hang/quarantine autopsy
//!   bundles (`heron-postmortem-v1`);
//! * [`manifest`] — the deterministic results manifest;
//! * [`chaos`] — uninterrupted reference runs and the byte-identity
//!   verifier.
//!
//! # Quickstart
//!
//! ```
//! use heron_serve::{parse_script, Supervisor};
//!
//! let script = "\
//! workers = 2
//! job a op=gemm shape=32x32x32 trials=16 seed=7
//! ";
//! let mut sup = Supervisor::from_script(parse_script(script).unwrap());
//! sup.run();
//! println!("{}", sup.manifest());
//! ```

pub mod chaos;
pub mod job;
pub mod manifest;
pub mod plan;
pub mod postmortem;
pub mod queue;
pub mod recorder;
pub mod store;
pub mod supervisor;
pub mod worker;

pub use job::{parse_script, JobError, JobScript, JobSpec, ServeConfig};
pub use plan::{ChaosPlan, KillKind, KillRule};
pub use postmortem::{
    check_postmortem, DeathReport, Postmortem, PostmortemSummary, POSTMORTEM_SCHEMA,
};
pub use queue::{AdmitError, AdmitQueue};
pub use recorder::{FlightEntry, FlightRecorder};
pub use store::CheckpointStore;
pub use supervisor::{AttemptRecord, JobRow, JobState, ScheduleRow, Supervisor};
pub use worker::{build_session, Event, JobReport, WorkOrder};
