//! The chaos harness: kill workers, then prove nothing was lost.
//!
//! The recovery contract this crate stakes its name on is *byte
//! identity*: a job that crashed, hung, was fenced, backed off and
//! resumed — any number of times within the restart budget — must
//! produce exactly the `TuneResult` it would have produced in a single
//! uninterrupted process. Not "statistically similar", identical: the
//! deterministic record and its fingerprint compare equal as bytes.
//!
//! [`reference_record`] computes the uninterrupted truth through the
//! *same* session constructor the workers use
//! ([`crate::worker::build_session`]); [`verify_run`] compares a
//! finished supervisor against it job by job and also checks the two
//! bookkeeping invariants — no job lost (every admitted job reached a
//! terminal state) and no job double-run (exactly one report per
//! completed job, none elsewhere).

use crate::supervisor::{JobState, Supervisor};
use crate::worker::build_session;
use crate::JobSpec;

/// Runs `spec` uninterrupted in-process and returns its deterministic
/// record and fingerprint — the truth recovered jobs are held to.
pub fn reference_record(spec: &JobSpec) -> Result<(String, u64), String> {
    let mut tuner = build_session(spec, None)?;
    let result = tuner.run();
    Ok((
        result.deterministic_record(),
        result.determinism_fingerprint(),
    ))
}

/// Resumes a checkpointed job to completion in-process (used to verify
/// drained/preempted jobs converge to the uninterrupted result).
pub fn resume_record(spec: &JobSpec, checkpoint_text: &str) -> Result<(String, u64), String> {
    let mut tuner = build_session(spec, Some(checkpoint_text))?;
    let result = tuner.run();
    Ok((
        result.deterministic_record(),
        result.determinism_fingerprint(),
    ))
}

/// Verifies a finished service run against uninterrupted references:
///
/// * every admitted job is settled (nothing lost, nothing left
///   running);
/// * completed jobs carry exactly one report whose record and
///   fingerprint are byte-identical to the reference (nothing
///   double-run or corrupted);
/// * preempted jobs have a checkpoint that resumes to the reference.
///
/// Returns the list of verified job ids, or a description of every
/// divergence.
pub fn verify_run(sup: &Supervisor, specs: &[JobSpec]) -> Result<Vec<String>, String> {
    let mut verified = Vec::new();
    let mut problems = Vec::new();
    for spec in specs {
        let id = &spec.id;
        let state = match sup.state(id) {
            Some(s) => s,
            None => {
                // Never admitted: must be an explicitly recorded
                // rejection, not a silent drop.
                if sup.rejected().iter().any(|(rid, _)| rid == id) {
                    continue;
                }
                problems.push(format!("job `{id}` was lost: no state, no rejection"));
                continue;
            }
        };
        match state {
            JobState::Completed => {
                let Some(report) = sup.report(id) else {
                    problems.push(format!("job `{id}` completed without a report"));
                    continue;
                };
                match reference_record(spec) {
                    Ok((record, fingerprint)) => {
                        if report.record != record {
                            problems.push(format!(
                                "job `{id}`: recovered record diverges from uninterrupted run"
                            ));
                        } else if report.fingerprint != fingerprint {
                            problems.push(format!(
                                "job `{id}`: fingerprint {:016x} != reference {fingerprint:016x}",
                                report.fingerprint
                            ));
                        } else {
                            verified.push(id.clone());
                        }
                    }
                    Err(e) => problems.push(format!("job `{id}`: reference failed: {e}")),
                }
            }
            JobState::Preempted => {
                let Some(text) = sup.store().load(id) else {
                    problems.push(format!("job `{id}` preempted without a checkpoint"));
                    continue;
                };
                match (resume_record(spec, &text), reference_record(spec)) {
                    (Ok((_, resumed_fp)), Ok((_, ref_fp))) if resumed_fp == ref_fp => {
                        verified.push(id.clone());
                    }
                    (Ok((_, resumed_fp)), Ok((_, ref_fp))) => problems.push(format!(
                        "job `{id}`: resume-after-preempt fingerprint {resumed_fp:016x} \
                         != reference {ref_fp:016x}"
                    )),
                    (Err(e), _) | (_, Err(e)) => {
                        problems.push(format!("job `{id}`: preempt verification failed: {e}"))
                    }
                }
            }
            JobState::Quarantined | JobState::Queued => {
                // Deterministically settled without a result; nothing to
                // byte-compare, but not lost either.
            }
            JobState::Running => {
                problems.push(format!("job `{id}` still running after run() returned"));
            }
        }
        // Reports must exist exactly for completed jobs.
        if state != JobState::Completed && sup.report(id).is_some() {
            problems.push(format!("job `{id}` in state {state} carries a report"));
        }
    }
    if problems.is_empty() {
        Ok(verified)
    } else {
        Err(problems.join("\n"))
    }
}
