//! Worker execution: one OS thread, one owned `Tuner` session.
//!
//! `Tuner` is deliberately not `Send` (its tracer and solver sessions
//! are `Rc`-based), so a worker never receives a session object — it
//! receives a [`WorkOrder`] of plain `Send` data (the job spec, the
//! checkpoint *text* to resume from, the shared control handle and
//! store) and constructs the session entirely in-thread via
//! [`build_session`]. That same constructor is what the chaos harness
//! uses for uninterrupted reference runs, which is the crux of the
//! byte-identity proof: service and reference sessions are the same
//! code path, differing only in who calls `step()`.
//!
//! The round loop consults the chaos plan at every round boundary
//! (*after* the round's work, *before* the periodic checkpoint — so a
//! kill always loses the rounds since the last snapshot and recovery
//! genuinely has to replay them) and the [`TunerControl`] is consulted
//! by the tuner itself inside `step()`. Exits:
//!
//! * finished → [`Event::Completed`] with the full [`JobReport`];
//! * preempted (job deadline or supervisor drain) → checkpoint to the
//!   store, then [`Event::Preempted`];
//! * cancelled (epoch fenced off after a false start) → silent exit;
//! * chaos crash → silent exit (the supervisor sees a finished thread
//!   that never reported);
//! * chaos hang → park until cancelled, then silent exit (the
//!   supervisor sees a live thread whose heartbeat stands still).

use std::sync::mpsc::Sender;

use heron_core::checkpoint::TuneCheckpoint;
use heron_core::generate::{SpaceGenerator, SpaceOptions};
use heron_core::tuner::{Termination, Tuner};
use heron_core::TunerControl;
use heron_dla::{FaultPlan, Measurer};
use heron_trace::{TraceContext, Tracer};

use crate::job::JobSpec;
use crate::plan::{ChaosPlan, KillKind};
use crate::recorder::{FlightEntry, FlightRecorder};
use crate::store::CheckpointStore;

/// Everything a worker thread needs to run one attempt of one job.
/// All fields are `Send`; the non-`Send` session is built in-thread.
pub struct WorkOrder {
    /// The job to run.
    pub spec: JobSpec,
    /// Attempt number (0 = first run; increments per recovery).
    pub attempt: u32,
    /// Epoch fencing token quoted on every checkpoint save.
    pub epoch: u64,
    /// Checkpoint text to resume from (`None` = fresh session).
    pub resume_from: Option<String>,
    /// Cancellation/preemption/heartbeat handle shared with the
    /// supervisor.
    pub control: TunerControl,
    /// Shared checkpoint store.
    pub store: CheckpointStore,
    /// Kill-injection schedule.
    pub plan: ChaosPlan,
    /// Periodic checkpoint cadence in rounds (0 = only on preempt).
    pub checkpoint_every: u64,
    /// Pool shard this attempt is pinned to (observability only).
    pub worker_id: usize,
    /// Flight-recorder ring capacity for the session tracer (0 = no
    /// ring sink; the recorder then receives clock/round flushes only).
    pub ring_capacity: usize,
    /// When set, the ring *replaces* the session's unbounded event log
    /// (the always-on recording mode for long-lived runs).
    pub ring_only: bool,
    /// Where per-round ring snapshots are deposited for postmortems.
    pub recorder: FlightRecorder,
}

/// The deterministic outcome of a completed job, shipped back over the
/// event channel (plain data — safe to send across threads).
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// Job id.
    pub job: String,
    /// `TuneResult::deterministic_record()` — the byte string the chaos
    /// harness compares against uninterrupted reference runs.
    pub record: String,
    /// `TuneResult::determinism_fingerprint()` over the record.
    pub fingerprint: u64,
    /// Best throughput found (Gops/s).
    pub best_gflops: f64,
    /// Lifetime rounds (survives checkpoint/resume).
    pub rounds: u64,
    /// Trials completed.
    pub trials: usize,
    /// Final `Termination`, rendered.
    pub termination: String,
    /// Per-job `insight.json` document (search-health analytics).
    pub insight_json: String,
    /// The attempt's metrics registry snapshot (TSV).
    pub metrics_tsv: String,
    /// The attempt's simulated wall-clock, nanoseconds.
    pub wall_ns: u64,
    /// The attempt's session trace (manual clock, JSONL; every line
    /// carries the job's correlation context).
    pub trace_jsonl: String,
}

/// Worker → supervisor notifications. Every event quotes the worker's
/// epoch so the supervisor can discard reports from fenced-off zombies.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The session finished on its own; here is the result.
    Completed {
        /// Job id.
        job: String,
        /// Epoch the reporting worker was started under.
        epoch: u64,
        /// The deterministic result.
        report: Box<JobReport>,
    },
    /// The session honoured a preempt (deadline or drain) and its
    /// checkpoint is in the store.
    Preempted {
        /// Job id.
        job: String,
        /// Epoch the reporting worker was started under.
        epoch: u64,
        /// Lifetime rounds at preemption.
        rounds: u64,
        /// Trials completed at preemption.
        trials: usize,
        /// The attempt's simulated wall-clock at preemption, ns.
        wall_ns: u64,
    },
    /// The session could not be built or resumed.
    Failed {
        /// Job id.
        job: String,
        /// Epoch the reporting worker was started under.
        epoch: u64,
        /// Why.
        reason: String,
    },
}

/// Builds a tuning session for `spec`, fresh or resumed from checkpoint
/// text. This is the *single* session-construction path shared by
/// service workers and uninterrupted chaos-reference runs — byte
/// identity between the two is only meaningful because of that.
pub fn build_session(spec: &JobSpec, resume_from: Option<&str>) -> Result<Tuner, String> {
    let workload = spec.workload().map_err(|e| e.to_string())?;
    let platform = spec.platform().map_err(|e| e.to_string())?;
    let dag = workload.build(platform.in_dtype);
    let config = heron_baselines::tune::heron_config(spec.trials);
    let space = SpaceGenerator::new(platform.clone())
        .generate_named(&dag, &SpaceOptions::heron(), &workload.name)
        .map_err(|e| format!("cannot generate space: {e}"))?;
    let fault_plan = if spec.fault_rate > 0.0 {
        FaultPlan::uniform(spec.seed, spec.fault_rate)
    } else {
        FaultPlan::none(spec.seed)
    };
    let measurer = Measurer::new(platform);
    let mut tuner = match resume_from {
        Some(text) => {
            let ckpt =
                TuneCheckpoint::from_text(text).map_err(|e| format!("corrupt checkpoint: {e}"))?;
            Tuner::resume(space, measurer, config, fault_plan, &ckpt)
                .map_err(|e| format!("cannot resume: {e}"))?
        }
        None => Tuner::new(space, measurer, config, spec.seed).with_faults(fault_plan),
    };
    // Manual clock: session traces advance by simulated measurement
    // time, so they are reproducible from the seed.
    tuner.set_tracer(Tracer::enabled(heron_trace::Clock::manual()));
    // Resume restores the insight log from the checkpoint; resetting it
    // would lose pre-pause rounds and break insight-exact resumption.
    if tuner.insight().is_none() {
        tuner.enable_insight(8);
    }
    Ok(tuner)
}

/// Renders the per-job `insight.json` for a finished session.
pub fn render_insight(tuner: &Tuner) -> String {
    match tuner.insight() {
        Some(log) => heron_insight::analyze(log).to_json(log).render_pretty(),
        None => String::new(),
    }
}

/// The worker thread body: builds the session, runs it round by round
/// under the chaos plan, and reports (or pointedly fails to report)
/// to the supervisor.
pub fn run_order(order: WorkOrder, events: Sender<Event>) {
    let WorkOrder {
        spec,
        attempt,
        epoch,
        resume_from,
        control,
        store,
        plan,
        checkpoint_every,
        worker_id: _,
        ring_capacity,
        ring_only,
        recorder,
    } = order;
    let job = spec.id.clone();

    let mut tuner = match build_session(&spec, resume_from.as_deref()) {
        Ok(t) => t,
        Err(reason) => {
            let _ = events.send(Event::Failed { job, epoch, reason });
            return;
        }
    };
    tuner.set_control(control.clone());
    // Correlation: tag every event this attempt emits so the merged
    // service trace can be sliced back per job. Set here — not in
    // `build_session` — so chaos reference runs stay untagged.
    tuner
        .tracer()
        .set_context(Some(TraceContext::new(job.as_str(), attempt, epoch)));
    // Flight recorder: a bounded ring of the most recent events, so a
    // crash can still be autopsied. Attached before the first span so
    // the ring starts on a safe eviction boundary.
    if ring_capacity > 0 {
        tuner.tracer().set_ring(ring_capacity, ring_only);
    }
    if spec.deadline_rounds > 0 {
        control.set_deadline_rounds(spec.deadline_rounds);
    }

    while tuner.step() {
        let round = tuner.rounds_total() as u64;
        // Flush the ring *before* the chaos kill check: the deposit must
        // cover the fatal round, because a killed worker flushes nothing
        // ever again. Epoch-guarded like checkpoint saves.
        recorder.save(
            &spec.id,
            FlightEntry {
                attempt,
                epoch,
                rounds: round,
                sim_ns: tuner.tracer().now_ns(),
                ring_jsonl: tuner.tracer().ring_snapshot_jsonl(),
            },
        );
        match plan.kill_at(&spec.id, attempt, round) {
            Some(KillKind::Crash) => {
                // A killed process reports nothing; the rounds since the
                // last checkpoint die with it.
                return;
            }
            Some(KillKind::Hang) => {
                // Stop beating but stay alive until the supervisor
                // fences this epoch off and cancels us.
                while !control.cancel_requested() {
                    std::thread::park_timeout(std::time::Duration::from_millis(5));
                }
                return;
            }
            None => {}
        }
        if checkpoint_every > 0 && round.is_multiple_of(checkpoint_every) {
            // Epoch-guarded: a fenced-off zombie's save is rejected (and
            // counted) by the store rather than corrupting its
            // replacement's state.
            store.save(&spec.id, epoch, tuner.checkpoint().to_text());
        }
    }

    let result = tuner.result();
    match result.termination {
        Termination::Preempted => {
            store.save(&spec.id, epoch, tuner.checkpoint().to_text());
            let _ = events.send(Event::Preempted {
                job,
                epoch,
                rounds: result.rounds_total as u64,
                trials: tuner.trials_done(),
                wall_ns: tuner.tracer().now_ns(),
            });
        }
        Termination::Cancelled => {
            // Fenced off; our results are nobody's business.
        }
        _ => {
            let report = JobReport {
                job: job.clone(),
                record: result.deterministic_record(),
                fingerprint: result.determinism_fingerprint(),
                best_gflops: result.best_gflops,
                rounds: result.rounds_total as u64,
                trials: tuner.trials_done(),
                termination: result.termination.to_string(),
                insight_json: render_insight(&tuner),
                metrics_tsv: tuner.tracer().metrics_tsv(),
                wall_ns: tuner.tracer().now_ns(),
                trace_jsonl: tuner.tracer().to_jsonl(),
            };
            let _ = events.send(Event::Completed {
                job,
                epoch,
                report: Box::new(report),
            });
        }
    }
}
