//! The service flight recorder: the supervisor-side mailbox where every
//! worker attempt deposits its latest ring snapshot (DESIGN.md §12).
//!
//! A crashed worker cannot be asked for its trace after the fact — the
//! thread is gone and its `Tracer` died with it. So each worker flushes
//! a bounded [`heron_trace::Tracer::ring_snapshot_jsonl`] into this
//! shared recorder at every round boundary (*before* the chaos kill
//! check, so the snapshot always covers the fatal round). When the
//! watchdog later confirms a crash, hang, or quarantine, the supervisor
//! harvests the job's last deposit into a postmortem bundle
//! ([`crate::postmortem`]).
//!
//! Deposits are epoch-guarded like checkpoint saves: a fenced-off
//! zombie (stale epoch) can never overwrite the state its replacement
//! attempt is writing. Everything stored is a deterministic function of
//! (script, seeds, chaos plan), so same-seed runs harvest byte-identical
//! snapshots.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// One worker attempt's latest flush: where the session stood at its
/// most recent round boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEntry {
    /// Attempt number the snapshot belongs to.
    pub attempt: u32,
    /// Supervisor epoch the attempt was started under.
    pub epoch: u64,
    /// Lifetime rounds at the flush.
    pub rounds: u64,
    /// The session's simulated wall-clock at the flush, nanoseconds.
    pub sim_ns: u64,
    /// The `heron-ring-v1` snapshot (empty when the attempt has no ring
    /// sink attached).
    pub ring_jsonl: String,
}

/// Shared, thread-safe per-job flight-recorder mailbox.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    inner: Arc<Mutex<BTreeMap<String, FlightEntry>>>,
}

impl FlightRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        FlightRecorder::default()
    }

    /// Deposits `entry` as the job's latest snapshot. Rejected (and
    /// `false` is returned) when a newer epoch has already deposited —
    /// the same fencing rule as [`crate::store::CheckpointStore::save`].
    pub fn save(&self, job: &str, entry: FlightEntry) -> bool {
        let mut inner = self.inner.lock().expect("recorder lock");
        if let Some(existing) = inner.get(job) {
            if entry.epoch < existing.epoch {
                return false;
            }
        }
        inner.insert(job.to_string(), entry);
        true
    }

    /// The job's latest deposit, if any attempt ever flushed.
    pub fn get(&self, job: &str) -> Option<FlightEntry> {
        self.inner.lock().expect("recorder lock").get(job).cloned()
    }

    /// Every `(job, entry)` pair in job-id order.
    pub fn entries(&self) -> Vec<(String, FlightEntry)> {
        self.inner
            .lock()
            .expect("recorder lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(attempt: u32, epoch: u64, rounds: u64) -> FlightEntry {
        FlightEntry {
            attempt,
            epoch,
            rounds,
            sim_ns: rounds * 1_000,
            ring_jsonl: format!("ring for attempt {attempt}\n"),
        }
    }

    #[test]
    fn newer_epochs_win_and_stale_deposits_are_fenced() {
        let rec = FlightRecorder::new();
        assert!(rec.save("g1", entry(0, 1, 3)));
        assert!(rec.save("g1", entry(1, 2, 5)));
        // A zombie from epoch 1 limps in after its replacement started.
        assert!(!rec.save("g1", entry(0, 1, 4)));
        let got = rec.get("g1").expect("entry exists");
        assert_eq!(got.attempt, 1);
        assert_eq!(got.rounds, 5);
        assert_eq!(rec.get("g2"), None);
    }

    #[test]
    fn recorder_is_shared_across_clones_and_threads() {
        let rec = FlightRecorder::new();
        let r2 = rec.clone();
        std::thread::spawn(move || {
            assert!(r2.save("j", entry(0, 1, 1)));
        })
        .join()
        .expect("joins");
        assert_eq!(rec.entries().len(), 1);
        assert_eq!(rec.get("j").expect("saved").epoch, 1);
    }
}
