//! The results manifest: the daemon's deterministic output document.
//!
//! Plain text, one `job` line per admitted job in id order plus one
//! `rejected` line per refused submission in submission order. Every
//! field on it is a deterministic function of (script, seeds, chaos
//! plan) — states, attempt counts, round totals, fingerprints — and
//! deliberately **excludes** anything scheduling-dependent (worker
//! ids, epochs, wall-clock), so two runs of the same script produce
//! byte-identical manifests and the verify smoke can diff them.

use crate::postmortem::Postmortem;
use crate::supervisor::{JobRow, JobState};

/// Renders the manifest for a finished service run.
pub fn render(
    rows: &[JobRow],
    rejected: &[(String, String)],
    postmortems: &[Postmortem],
) -> String {
    let mut out = String::new();
    out.push_str("# heron-serve results manifest\n");
    let count = |s: JobState| rows.iter().filter(|r| r.state == s).count();
    out.push_str(&format!("jobs = {}\n", rows.len()));
    out.push_str(&format!("completed = {}\n", count(JobState::Completed)));
    out.push_str(&format!("preempted = {}\n", count(JobState::Preempted)));
    out.push_str(&format!("quarantined = {}\n", count(JobState::Quarantined)));
    out.push_str(&format!("queued = {}\n", count(JobState::Queued)));
    out.push_str(&format!("rejected = {}\n", rejected.len()));
    let warnings: usize = rows.iter().map(|r| r.warnings.len()).sum();
    out.push_str(&format!("warnings = {warnings}\n"));
    out.push_str(&format!("postmortems = {}\n", postmortems.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&format!(
            "job {} state={} attempts={} recoveries={}",
            row.id, row.state, row.attempts, row.recoveries
        ));
        if row.state == JobState::Completed || row.state == JobState::Preempted {
            out.push_str(&format!(" rounds={} trials={}", row.rounds, row.trials));
        }
        if let Some(t) = &row.termination {
            out.push_str(&format!(" termination={t}"));
        }
        if let Some(fp) = row.fingerprint {
            out.push_str(&format!(" fingerprint={fp:016x}"));
        }
        if let Some(b) = row.best_gflops {
            // Exact bits, not a rounded decimal: the manifest is part
            // of the byte-identity contract.
            out.push_str(&format!(" best_bits={:016x}", b.to_bits()));
        }
        if !row.warnings.is_empty() {
            out.push_str(&format!(" warnings={}", row.warnings.len()));
        }
        if let Some(n) = &row.note {
            out.push_str(&format!(" note={n}"));
        }
        out.push('\n');
    }
    for row in rows {
        for warning in &row.warnings {
            out.push_str(&format!("warn {} {warning}\n", row.id));
        }
    }
    for pm in postmortems {
        out.push_str(&format!(
            "postmortem {} attempt={} reason={} file={}\n",
            pm.job, pm.attempt, pm.reason, pm.file
        ));
    }
    for (id, reason) in rejected {
        out.push_str(&format!("rejected {id} reason={reason}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_is_stable_and_complete() {
        let rows = vec![
            JobRow {
                id: "g1".to_string(),
                state: JobState::Completed,
                attempts: 2,
                recoveries: 1,
                rounds: 6,
                trials: 40,
                termination: Some("trials".to_string()),
                fingerprint: Some(0xdead_beef),
                best_gflops: Some(1.5),
                warnings: vec!["pulse.warn.heartbeat_stall attempt=0".to_string()],
                note: None,
            },
            JobRow {
                id: "g2".to_string(),
                state: JobState::Quarantined,
                attempts: 3,
                recoveries: 3,
                rounds: 0,
                trials: 0,
                termination: None,
                fingerprint: None,
                best_gflops: None,
                warnings: vec![],
                note: Some("poisoned: restart budget (2) exhausted after 3 attempts".to_string()),
            },
        ];
        let rejected = vec![("g9".to_string(), "queue full (capacity 1)".to_string())];
        let postmortems = vec![Postmortem {
            job: "g2".to_string(),
            attempt: 2,
            reason: "quarantine".to_string(),
            file: "g2.attempt2.quarantine.jsonl".to_string(),
            bundle: String::new(),
        }];
        let text = render(&rows, &rejected, &postmortems);
        assert_eq!(
            text,
            render(&rows, &rejected, &postmortems),
            "rendering is pure"
        );
        assert!(text.contains("jobs = 2"));
        assert!(text.contains("completed = 1"));
        assert!(text.contains("quarantined = 1"));
        assert!(text.contains("rejected = 1"));
        assert!(text.contains("warnings = 1"));
        assert!(text.contains("postmortems = 1"));
        assert!(text.contains(
            "postmortem g2 attempt=2 reason=quarantine file=g2.attempt2.quarantine.jsonl"
        ));
        assert!(text.contains(
            "job g1 state=completed attempts=2 recoveries=1 rounds=6 trials=40 \
             termination=trials fingerprint=00000000deadbeef best_bits=3ff8000000000000 \
             warnings=1"
        ));
        assert!(text.contains("job g2 state=quarantined attempts=3 recoveries=3 note=poisoned"));
        assert!(text.contains("warn g1 pulse.warn.heartbeat_stall attempt=0"));
        assert!(text.contains("rejected g9 reason=queue full (capacity 1)"));
    }
}
