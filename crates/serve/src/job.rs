//! Job specifications, the deterministic job-script language, and the
//! service configuration.
//!
//! A *job* is one tuning session: workload × platform × budget, plus the
//! session knobs a tenant may set (seed, fault rate, a per-job round
//! deadline). Jobs arrive as lines of a plain-text **job script** — the
//! in-process, no-network stand-in for a submission API — together with
//! service-level directives (`workers`, `queue_capacity`, …) and chaos
//! `kill` rules for the recovery harness:
//!
//! ```text
//! # one tuning service run
//! workers = 3
//! queue_capacity = 5
//! restart_budget = 2
//! checkpoint_every = 2
//!
//! job g1 op=gemm shape=96x96x96 trials=40 seed=11
//! job g2 op=gemv shape=256x256x8 trials=32 seed=13 fault_rate=0.15
//! kill g1 attempt=0 round=3 kind=crash
//! ```
//!
//! Everything here is `Result`-based (no process exits): the daemon must
//! reject a malformed job with a reason, not die.

use heron_dla::DlaSpec;
use heron_tensor::ops::Conv2dConfig;
use heron_workloads::{OpKind, Workload};

use crate::plan::{ChaosPlan, KillKind, KillRule};

/// Why a job spec (or the script containing it) was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// Operator name not in the supported set.
    UnknownOp(String),
    /// Shape has the wrong number of `x`-separated dimensions for the op.
    BadShape {
        /// Operator whose shape was malformed.
        op: String,
        /// Number of dimensions the operator requires.
        expected: usize,
        /// Number of dimensions actually supplied.
        got: usize,
    },
    /// No platform with this name in `heron_dla::platforms::all()`.
    UnknownPlatform(String),
    /// A script line that could not be parsed; carries line number and
    /// reason.
    BadScript {
        /// 1-based line number in the job script.
        line: usize,
        /// Human-readable reason the line was rejected.
        reason: String,
    },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::UnknownOp(op) => write!(f, "unknown op `{op}`"),
            JobError::BadShape { op, expected, got } => {
                write!(
                    f,
                    "op `{op}` expects {expected} shape components, got {got}"
                )
            }
            JobError::UnknownPlatform(p) => write!(f, "unknown platform `{p}`"),
            JobError::BadScript { line, reason } => {
                write!(f, "job script line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for JobError {}

/// One tuning job: what to tune, where, and with what budget.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Unique job id (admission rejects duplicates).
    pub id: String,
    /// Operator name (`gemm`, `bmm`, `gemv`, `scan`, `c1d`, `c2d`, `c3d`).
    pub op: String,
    /// `x`-separated shape, e.g. `1024x1024x1024`.
    pub shape: String,
    /// Target platform name (see `heron_dla::platforms::all()`).
    pub dla: String,
    /// Trial budget for the session.
    pub trials: usize,
    /// Session seed; the whole run is a deterministic function of it.
    pub seed: u64,
    /// Measurement fault-injection rate (0 disables).
    pub fault_rate: f64,
    /// Per-job lifetime round deadline (0 = none): the session preempts
    /// itself with `Termination::Preempted` once `rounds_total` reaches
    /// this bound — the same path the supervisor's drain uses.
    pub deadline_rounds: u64,
}

impl JobSpec {
    /// A job with the service defaults: v100, 48 trials, seed 2023, no
    /// faults, no deadline.
    pub fn new(id: impl Into<String>, op: impl Into<String>, shape: impl Into<String>) -> Self {
        JobSpec {
            id: id.into(),
            op: op.into(),
            shape: shape.into(),
            dla: "v100".to_string(),
            trials: 48,
            seed: 2023,
            fault_rate: 0.0,
            deadline_rounds: 0,
        }
    }

    /// Resolves the workload, or says exactly why it cannot be built.
    pub fn workload(&self) -> Result<Workload, JobError> {
        parse_workload(&self.op, &self.shape)
    }

    /// Resolves the target platform spec.
    pub fn platform(&self) -> Result<DlaSpec, JobError> {
        heron_dla::platforms::all()
            .into_iter()
            .find(|s| s.name == self.dla)
            .ok_or_else(|| JobError::UnknownPlatform(self.dla.clone()))
    }

    /// Validates the spec without building anything expensive; admission
    /// runs this so a bad job is rejected at submit time with a reason.
    pub fn validate(&self) -> Result<(), JobError> {
        self.workload()?;
        self.platform()?;
        Ok(())
    }
}

/// Service-level knobs, settable from script directives.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Worker pool size (max concurrently running sessions).
    pub workers: usize,
    /// Bounded admission queue capacity; submits past it are rejected
    /// with [`crate::queue::AdmitError::QueueFull`].
    pub queue_capacity: usize,
    /// How many *recoveries* a job gets before it is quarantined as
    /// poisoned (budget 2 ⇒ attempts 0, 1, 2 may run; a third failure
    /// quarantines).
    pub restart_budget: u32,
    /// Periodic checkpoint cadence in rounds (every worker snapshots the
    /// session to the store each time `rounds_total` is a multiple).
    pub checkpoint_every: u64,
    /// Supervisor poll period while waiting for worker events.
    pub poll_interval_ms: u64,
    /// Consecutive polls a live worker's heartbeat may stand still
    /// before the supervisor declares a hang. Generous by default so a
    /// slow debug-build round is never mistaken for a hang.
    pub hang_grace_polls: u32,
    /// Simulated backoff (seconds on the service trace's manual clock)
    /// before restart attempt 1; doubles per attempt.
    pub backoff_base_s: f64,
    /// Stop assigning and preempt all running jobs once this many jobs
    /// have completed (0 = never; used to exercise graceful drain
    /// deterministically from a script).
    pub drain_after_completions: usize,
    /// Flight-recorder ring capacity attached to every worker session
    /// tracer (0 disables the ring sink; postmortem bundles then embed
    /// an empty ring). See DESIGN.md §12.
    pub ring_capacity: usize,
    /// When set, the ring *replaces* each session's unbounded event log
    /// — the bounded always-on recording mode for long-lived runs.
    /// Completed jobs then report only their last-K trace events, so
    /// leave it off when full session traces are wanted.
    pub ring_only: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 8,
            restart_budget: 2,
            checkpoint_every: 2,
            poll_interval_ms: 10,
            hang_grace_polls: 500,
            backoff_base_s: 0.5,
            drain_after_completions: 0,
            ring_capacity: 64,
            ring_only: false,
        }
    }
}

/// A fully parsed job script: configuration, jobs in submission order,
/// and the chaos kill plan.
#[derive(Debug, Clone, PartialEq)]
pub struct JobScript {
    /// Service configuration assembled from the directives.
    pub config: ServeConfig,
    /// Jobs in script (submission) order.
    pub jobs: Vec<JobSpec>,
    /// Kill-injection rules for the chaos harness.
    pub plan: ChaosPlan,
}

/// Parses a job script. Jobs are validated syntactically (`key=value`
/// form, numeric fields parse) but *not* semantically — admission owns
/// workload/platform validation so a bad job is rejected, not fatal.
pub fn parse_script(text: &str) -> Result<JobScript, JobError> {
    let mut config = ServeConfig::default();
    let mut jobs: Vec<JobSpec> = Vec::new();
    let mut plan = ChaosPlan::none();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = |reason: String| JobError::BadScript {
            line: line_no,
            reason,
        };
        if let Some((key, value)) = split_directive(line) {
            match key {
                "workers" => config.workers = parse_num(value, key, line_no)?,
                "queue_capacity" => config.queue_capacity = parse_num(value, key, line_no)?,
                "restart_budget" => config.restart_budget = parse_num(value, key, line_no)?,
                "checkpoint_every" => config.checkpoint_every = parse_num(value, key, line_no)?,
                "poll_interval_ms" => config.poll_interval_ms = parse_num(value, key, line_no)?,
                "hang_grace_polls" => config.hang_grace_polls = parse_num(value, key, line_no)?,
                "drain_after_completions" => {
                    config.drain_after_completions = parse_num(value, key, line_no)?
                }
                "ring_capacity" => config.ring_capacity = parse_num(value, key, line_no)?,
                "ring_only" => {
                    config.ring_only = value.parse().map_err(|_| {
                        bad(format!("`ring_only` must be true|false, got `{value}`"))
                    })?
                }
                other => return Err(bad(format!("unknown directive `{other}`"))),
            }
            continue;
        }
        let mut words = line.split_whitespace();
        match words.next() {
            Some("job") => {
                let id = words
                    .next()
                    .ok_or_else(|| bad("`job` needs an id".to_string()))?;
                let mut spec = JobSpec::new(id, "", "");
                for field in words {
                    let (k, v) = field
                        .split_once('=')
                        .ok_or_else(|| bad(format!("expected key=value, got `{field}`")))?;
                    match k {
                        "op" => spec.op = v.to_string(),
                        "shape" => spec.shape = v.to_string(),
                        "dla" => spec.dla = v.to_string(),
                        "trials" => spec.trials = parse_num(v, k, line_no)?,
                        "seed" => spec.seed = parse_num(v, k, line_no)?,
                        "fault_rate" => {
                            spec.fault_rate = v
                                .parse()
                                .map_err(|_| bad(format!("`{k}` is not a number: `{v}`")))?
                        }
                        "deadline_rounds" => spec.deadline_rounds = parse_num(v, k, line_no)?,
                        other => return Err(bad(format!("unknown job field `{other}`"))),
                    }
                }
                if spec.op.is_empty() || spec.shape.is_empty() {
                    return Err(bad(format!("job `{}` needs op= and shape=", spec.id)));
                }
                jobs.push(spec);
            }
            Some("kill") => {
                let job = words
                    .next()
                    .ok_or_else(|| bad("`kill` needs a job id".to_string()))?;
                let mut rule = KillRule {
                    job: job.to_string(),
                    attempt: 0,
                    round: 1,
                    kind: KillKind::Crash,
                };
                for field in words {
                    let (k, v) = field
                        .split_once('=')
                        .ok_or_else(|| bad(format!("expected key=value, got `{field}`")))?;
                    match k {
                        "attempt" => rule.attempt = parse_num(v, k, line_no)?,
                        "round" => rule.round = parse_num(v, k, line_no)?,
                        "kind" => {
                            rule.kind = match v {
                                "crash" => KillKind::Crash,
                                "hang" => KillKind::Hang,
                                other => {
                                    return Err(bad(format!(
                                        "kill kind must be crash|hang, got `{other}`"
                                    )))
                                }
                            }
                        }
                        other => return Err(bad(format!("unknown kill field `{other}`"))),
                    }
                }
                plan.push(rule);
            }
            Some(other) => return Err(bad(format!("unknown statement `{other}`"))),
            None => unreachable!("blank lines are skipped above"),
        }
    }
    Ok(JobScript { config, jobs, plan })
}

fn split_directive(line: &str) -> Option<(&str, &str)> {
    // Directives are `key = value` with a bare identifier key; job/kill
    // statements start with a keyword and contain spaces before any `=`.
    let (k, v) = line.split_once('=')?;
    let key = k.trim();
    if key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') && !key.is_empty() {
        Some((key, v.trim()))
    } else {
        None
    }
}

fn parse_num<T: std::str::FromStr>(value: &str, key: &str, line: usize) -> Result<T, JobError> {
    value.parse().map_err(|_| JobError::BadScript {
        line,
        reason: format!("`{key}` is not a number: `{value}`"),
    })
}

/// Builds the workload for `op` × `shape`, mirroring the CLI's operator
/// table but returning errors instead of exiting.
pub fn parse_workload(op: &str, shape: &str) -> Result<Workload, JobError> {
    let d: Vec<i64> = shape.split('x').filter_map(|t| t.parse().ok()).collect();
    let expect = |n: usize| -> Result<(), JobError> {
        if d.len() == n {
            Ok(())
        } else {
            Err(JobError::BadShape {
                op: op.to_string(),
                expected: n,
                got: d.len(),
            })
        }
    };
    let kind = match op {
        "gemm" => {
            expect(3)?;
            OpKind::Gemm {
                m: d[0],
                n: d[1],
                k: d[2],
            }
        }
        "bmm" => {
            expect(4)?;
            OpKind::Bmm {
                b: d[0],
                m: d[1],
                n: d[2],
                k: d[3],
            }
        }
        "gemv" => {
            expect(3)?;
            OpKind::Gemv {
                m: d[0],
                k: d[1],
                b: d[2],
            }
        }
        "scan" => {
            expect(2)?;
            OpKind::Scan { b: d[0], l: d[1] }
        }
        "c1d" => {
            expect(7)?;
            OpKind::C1d {
                n: d[0],
                l: d[1],
                ci: d[2],
                co: d[3],
                k: d[4],
                p: d[5],
                s: d[6],
            }
        }
        "c2d" => {
            expect(8)?;
            OpKind::C2d(Conv2dConfig::new(
                d[0], d[1], d[2], d[3], d[4], d[5], d[5], d[6], d[7],
            ))
        }
        "c3d" => {
            expect(8)?;
            OpKind::C3d {
                n: d[0],
                d: d[1],
                hw: d[2],
                ci: d[3],
                co: d[4],
                k: d[5],
                s: d[7],
                p: d[6],
            }
        }
        other => return Err(JobError::UnknownOp(other.to_string())),
    };
    Ok(Workload::new(format!("{op}-{shape}"), kind))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_round_trips_config_jobs_and_kills() {
        let script = "\
# demo
workers = 3
queue_capacity = 5
restart_budget = 1
checkpoint_every = 2
ring_capacity = 128
ring_only = true

job g1 op=gemm shape=96x96x96 trials=40 seed=11
job g2 op=gemv shape=256x256x8 trials=32 seed=13 fault_rate=0.15 deadline_rounds=4
kill g1 attempt=0 round=3 kind=crash
kill g2 attempt=1 round=2 kind=hang
";
        let parsed = parse_script(script).expect("parses");
        assert_eq!(parsed.config.workers, 3);
        assert_eq!(parsed.config.queue_capacity, 5);
        assert_eq!(parsed.config.restart_budget, 1);
        assert_eq!(parsed.config.checkpoint_every, 2);
        assert_eq!(parsed.config.ring_capacity, 128);
        assert!(parsed.config.ring_only);
        assert_eq!(parsed.jobs.len(), 2);
        assert_eq!(parsed.jobs[0].id, "g1");
        assert_eq!(parsed.jobs[0].trials, 40);
        assert_eq!(parsed.jobs[1].fault_rate, 0.15);
        assert_eq!(parsed.jobs[1].deadline_rounds, 4);
        assert_eq!(parsed.plan.kill_at("g1", 0, 3), Some(KillKind::Crash));
        assert_eq!(parsed.plan.kill_at("g2", 1, 2), Some(KillKind::Hang));
        assert_eq!(parsed.plan.kill_at("g2", 0, 2), None);
        parsed.jobs[0].validate().expect("g1 is a valid job");
    }

    #[test]
    fn script_errors_carry_line_and_reason() {
        let err = parse_script("job g1 op=gemm\n\nfrobnicate = 7\n").unwrap_err();
        assert_eq!(
            err,
            JobError::BadScript {
                line: 1,
                reason: "job `g1` needs op= and shape=".to_string()
            }
        );
        let err = parse_script("workers = three\n").unwrap_err();
        match err {
            JobError::BadScript { line: 1, reason } => {
                assert!(reason.contains("workers"), "{reason}")
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bad_specs_are_refused_with_reasons() {
        assert_eq!(
            JobSpec::new("a", "gemm", "8x8").validate(),
            Err(JobError::BadShape {
                op: "gemm".to_string(),
                expected: 3,
                got: 2
            })
        );
        assert_eq!(
            JobSpec::new("a", "fft", "8x8").validate(),
            Err(JobError::UnknownOp("fft".to_string()))
        );
        let mut spec = JobSpec::new("a", "gemm", "8x8x8");
        spec.dla = "tpu9".to_string();
        assert_eq!(
            spec.validate(),
            Err(JobError::UnknownPlatform("tpu9".to_string()))
        );
    }
}
