//! Seeded worker-kill injection for the chaos harness.
//!
//! A [`ChaosPlan`] decides, as a pure function of *(job, attempt,
//! round)*, whether the worker running that attempt dies at that round
//! boundary — by **crash** (the thread vanishes without a trace, as a
//! killed process would) or by **hang** (the thread stops making
//! progress but stays alive, so only the heartbeat watchdog can tell).
//! Because the decision depends on nothing but those coordinates and
//! the plan itself, a chaos run is exactly reproducible: the same
//! script yields the same kills, the same recoveries, and — the point
//! of the whole exercise — the same final results.
//!
//! Plans come in two flavours that compose: **explicit rules** (from
//! `kill` script lines, for pinpoint scenarios like "crash g1's first
//! attempt at round 3") and a **seeded background rate** which draws a
//! kill decision per (job, attempt, round) from a hash chain, for
//! soak-style coverage without enumerating rules.

use heron_rng::SplitMix64;

/// How a kill manifests to the supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillKind {
    /// Worker thread exits silently mid-job — detected because the
    /// thread is finished but no completion event ever arrived.
    Crash,
    /// Worker thread stays alive but stops beating — detected by the
    /// heartbeat watchdog after the grace period.
    Hang,
}

impl std::fmt::Display for KillKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KillKind::Crash => write!(f, "crash"),
            KillKind::Hang => write!(f, "hang"),
        }
    }
}

/// One explicit kill: attempt `attempt` of `job` dies at the boundary
/// of round `round` (after the round's work, before its checkpoint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KillRule {
    /// Job id the rule applies to.
    pub job: String,
    /// Which attempt (0 = first run, 1 = first recovery, …).
    pub attempt: u32,
    /// Lifetime round count (`rounds_total`) at which the kill fires.
    pub round: u64,
    /// Crash or hang.
    pub kind: KillKind,
}

/// A deterministic worker-kill schedule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosPlan {
    rules: Vec<KillRule>,
    /// Seeded background kill probability in ppm per (job, attempt,
    /// round); `None` disables the stochastic layer.
    seeded: Option<(u64, u32)>,
}

impl ChaosPlan {
    /// No kills at all.
    pub fn none() -> Self {
        ChaosPlan::default()
    }

    /// Adds an explicit kill rule.
    pub fn push(&mut self, rule: KillRule) {
        self.rules.push(rule);
    }

    /// Builder form of [`ChaosPlan::push`].
    pub fn with_rule(
        mut self,
        job: impl Into<String>,
        attempt: u32,
        round: u64,
        kind: KillKind,
    ) -> Self {
        self.push(KillRule {
            job: job.into(),
            attempt,
            round,
            kind,
        });
        self
    }

    /// Enables the seeded background layer: each (job, attempt, round)
    /// independently crashes with probability `rate` (clamped to [0,1]),
    /// drawn from a hash chain over `seed`. Background kills are always
    /// crashes — hangs cost a watchdog grace period each, so they stay
    /// opt-in via explicit rules.
    pub fn with_seeded(mut self, seed: u64, rate: f64) -> Self {
        let ppm = (rate.clamp(0.0, 1.0) * 1_000_000.0).round() as u32;
        self.seeded = if ppm == 0 { None } else { Some((seed, ppm)) };
        self
    }

    /// Number of explicit rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// True when no rule and no seeded layer can ever fire.
    pub fn is_none(&self) -> bool {
        self.rules.is_empty() && self.seeded.is_none()
    }

    /// The kill decision for attempt `attempt` of `job` at lifetime
    /// round `round` — pure, so every consultation of the same
    /// coordinates agrees.
    pub fn kill_at(&self, job: &str, attempt: u32, round: u64) -> Option<KillKind> {
        for rule in &self.rules {
            if rule.job == job && rule.attempt == attempt && rule.round == round {
                return Some(rule.kind);
            }
        }
        if let Some((seed, ppm)) = self.seeded {
            // FNV-1a over the job id, then SplitMix64 to mix in the
            // coordinates; uniform draw in ppm space.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in job.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut mix = SplitMix64::new(
                seed.wrapping_add(h)
                    .wrapping_add((u64::from(attempt) << 32) | round),
            );
            if mix.next_u64() % 1_000_000 < u64::from(ppm) {
                return Some(KillKind::Crash);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_rules_fire_only_on_their_coordinates() {
        let plan = ChaosPlan::none()
            .with_rule("g1", 0, 3, KillKind::Crash)
            .with_rule("g1", 1, 2, KillKind::Hang);
        assert_eq!(plan.kill_at("g1", 0, 3), Some(KillKind::Crash));
        assert_eq!(plan.kill_at("g1", 1, 2), Some(KillKind::Hang));
        assert_eq!(plan.kill_at("g1", 0, 2), None);
        assert_eq!(plan.kill_at("g2", 0, 3), None);
        assert!(!plan.is_none());
        assert_eq!(plan.rule_count(), 2);
    }

    #[test]
    fn seeded_layer_is_deterministic_and_rate_bounded() {
        let plan = ChaosPlan::none().with_seeded(77, 0.25);
        let again = ChaosPlan::none().with_seeded(77, 0.25);
        let mut kills = 0usize;
        let mut total = 0usize;
        for job in ["a", "b", "c"] {
            for attempt in 0..4u32 {
                for round in 1..=50u64 {
                    total += 1;
                    let k = plan.kill_at(job, attempt, round);
                    assert_eq!(k, again.kill_at(job, attempt, round));
                    if k.is_some() {
                        assert_eq!(k, Some(KillKind::Crash));
                        kills += 1;
                    }
                }
            }
        }
        let rate = kills as f64 / total as f64;
        assert!((0.10..=0.40).contains(&rate), "rate {rate} far from 0.25");
        assert!(ChaosPlan::none().with_seeded(77, 0.0).is_none());
    }
}
