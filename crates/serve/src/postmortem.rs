//! Crash postmortem bundles: the autopsy document the supervisor writes
//! when a job crashes, hangs, or is quarantined (DESIGN.md §12).
//!
//! A bundle is schema-versioned JSONL: one `heron-postmortem-v1` header
//! line carrying the job's state at death — attempt, epoch, rounds,
//! simulated clock, checkpoint presence (and content hash), restart
//! budget state, and the SLO verdicts judged at that instant — followed
//! verbatim by the job's last flight-recorder ring snapshot (its last-K
//! trace events; see [`crate::recorder`]). Every field is a
//! deterministic function of (script, seeds, chaos plan) and the manual
//! clock, so two same-seed chaos runs produce byte-identical bundles.
//!
//! The SLO verdicts are judged over the dying job's *deterministic*
//! SLIs only (`queue_wait_s`, `recovery_max_s` — pure functions of the
//! backoff policy and the recovery count); service-level metrics like
//! `makespan_s` depend on which neighbours happened to finish first and
//! would poison byte-identity, so they judge as no-sample passes.

use heron_pulse::{attach_slo, backoff_last_s, backoff_wait_s, SloSpec};
use heron_trace::{check_ring_snapshot, Json, RingSummary};

use crate::recorder::FlightEntry;

/// The schema identifier stamped into every bundle header.
pub const POSTMORTEM_SCHEMA: &str = "heron-postmortem-v1";

/// FNV-1a over the checkpoint text: the bundle's stable checkpoint id.
///
/// Checkpoint text carries `timing.*` lines measured with real
/// wall-clocks (and a `crc32` footer covering them), so hashing the raw
/// bytes would make same-seed runs disagree. The id therefore hashes
/// only the deterministic lines.
fn fnv64(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for line in text.lines() {
        if line.starts_with("timing.") || line.starts_with("crc32 = ") {
            continue;
        }
        for b in line.bytes().chain(std::iter::once(b'\n')) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Everything the supervisor knows about a job at its time of death.
pub struct DeathReport<'a> {
    /// Job id.
    pub job: &'a str,
    /// The attempt that died.
    pub attempt: u32,
    /// Supervisor epoch of the dying attempt.
    pub epoch: u64,
    /// `crash`, `hang`, or `quarantine`.
    pub reason: &'a str,
    /// Recoveries performed so far (at the instant of death).
    pub recoveries: u32,
    /// The configured restart budget.
    pub restart_budget: u32,
    /// The configured backoff base, simulated seconds.
    pub backoff_base_s: f64,
    /// The job's latest accepted checkpoint text, if any.
    pub checkpoint: Option<&'a str>,
    /// The job's last flight-recorder deposit, if any attempt flushed.
    pub flight: Option<&'a FlightEntry>,
    /// The SLO spec to judge at time of death.
    pub slo: &'a SloSpec,
}

/// One finished bundle, ready to list in the manifest and (optionally)
/// write to `--postmortem-dir`.
#[derive(Debug, Clone, PartialEq)]
pub struct Postmortem {
    /// Job id.
    pub job: String,
    /// The attempt that died.
    pub attempt: u32,
    /// `crash`, `hang`, or `quarantine`.
    pub reason: String,
    /// Deterministic bundle file name (`<job>.attempt<N>.<reason>.jsonl`).
    pub file: String,
    /// The full bundle text (header line + ring snapshot).
    pub bundle: String,
}

/// The SLO verdicts at time of death, judged over the dying job's
/// deterministic SLIs. Returns the `rules` array of
/// [`heron_pulse::attach_slo`].
fn slo_at_death(report: &DeathReport<'_>) -> Json {
    let slis = Json::Obj(vec![
        (
            "queue_wait_s".to_string(),
            Json::Num(backoff_wait_s(report.backoff_base_s, report.recoveries)),
        ),
        (
            "recovery_max_s".to_string(),
            Json::Num(backoff_last_s(report.backoff_base_s, report.recoveries)),
        ),
    ]);
    let doc = Json::Obj(vec![(
        "jobs".to_string(),
        Json::Arr(vec![Json::Obj(vec![
            ("id".to_string(), Json::Str(report.job.to_string())),
            ("slis".to_string(), slis),
        ])]),
    )]);
    let judged = attach_slo(doc, report.slo);
    judged
        .get("slo")
        .and_then(|slo| slo.get("rules"))
        .cloned()
        .unwrap_or_else(|| Json::Arr(Vec::new()))
}

/// A synthetic empty ring snapshot for jobs that died before any flush
/// (e.g. an unbuildable session): still a valid `heron-ring-v1`
/// document, so every bundle body validates the same way.
fn empty_ring() -> String {
    "{\"schema\":\"heron-ring-v1\",\"capacity\":0,\"evicted\":0,\"events\":0,\"now_ns\":0}\n"
        .to_string()
}

/// Assembles the bundle for one death. Pure: no IO, no clock reads.
pub fn build(report: &DeathReport<'_>) -> Postmortem {
    let (rounds, sim_ns, ring) = match report.flight {
        Some(f) if !f.ring_jsonl.is_empty() => (f.rounds, f.sim_ns, f.ring_jsonl.clone()),
        Some(f) => (f.rounds, f.sim_ns, empty_ring()),
        None => (0, 0, empty_ring()),
    };
    let checkpoint = Json::Obj(vec![
        (
            "present".to_string(),
            Json::Bool(report.checkpoint.is_some()),
        ),
        (
            "id".to_string(),
            report
                .checkpoint
                .map_or(Json::Null, |t| Json::Str(format!("{:016x}", fnv64(t)))),
        ),
    ]);
    let restart = Json::Obj(vec![
        (
            "recoveries".to_string(),
            Json::Num(f64::from(report.recoveries)),
        ),
        (
            "budget".to_string(),
            Json::Num(f64::from(report.restart_budget)),
        ),
    ]);
    let header = Json::Obj(vec![
        ("schema".to_string(), Json::Str(POSTMORTEM_SCHEMA.into())),
        ("job".to_string(), Json::Str(report.job.to_string())),
        ("attempt".to_string(), Json::Num(f64::from(report.attempt))),
        ("epoch".to_string(), Json::Num(report.epoch as f64)),
        ("reason".to_string(), Json::Str(report.reason.to_string())),
        ("rounds".to_string(), Json::Num(rounds as f64)),
        ("sim_ns".to_string(), Json::Num(sim_ns as f64)),
        ("checkpoint".to_string(), checkpoint),
        ("restart".to_string(), restart),
        ("slo".to_string(), slo_at_death(report)),
    ]);
    let file = format!(
        "{}.attempt{}.{}.jsonl",
        report.job, report.attempt, report.reason
    );
    let bundle = format!("{}\n{}", header.render(), ring);
    Postmortem {
        job: report.job.to_string(),
        attempt: report.attempt,
        reason: report.reason.to_string(),
        file,
        bundle,
    }
}

/// A validated bundle: the header facts plus the checked ring snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct PostmortemSummary {
    /// Job id from the header.
    pub job: String,
    /// Attempt from the header.
    pub attempt: u32,
    /// Death reason from the header.
    pub reason: String,
    /// Rounds at death.
    pub rounds: u64,
    /// Number of SLO rules judged at death.
    pub slo_rules: usize,
    /// The validated ring snapshot that forms the bundle body.
    pub ring: RingSummary,
}

/// Validates a `heron-postmortem-v1` bundle: header schema and fields,
/// then the embedded ring snapshot via
/// [`heron_trace::check_ring_snapshot`].
///
/// # Errors
/// A message naming the offending header field or ring line.
pub fn check_postmortem(text: &str) -> Result<PostmortemSummary, String> {
    let mut parts = text.splitn(2, '\n');
    let header = parts.next().unwrap_or("");
    let body = parts.next().unwrap_or("");
    let doc = heron_trace::json::parse(header).map_err(|e| format!("postmortem header: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| "postmortem header: missing string `schema`".to_string())?;
    if schema != POSTMORTEM_SCHEMA {
        return Err(format!(
            "postmortem header: expected `{POSTMORTEM_SCHEMA}`, found `{schema}`"
        ));
    }
    let want_str = |key: &str| {
        doc.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("postmortem header: missing string `{key}`"))
    };
    let want_u64 = |key: &str| {
        doc.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("postmortem header: missing or non-integer `{key}`"))
    };
    let job = want_str("job")?;
    let reason = want_str("reason")?;
    let attempt = want_u64("attempt")? as u32;
    let rounds = want_u64("rounds")?;
    for key in ["checkpoint", "restart"] {
        if doc.get(key).is_none() {
            return Err(format!("postmortem header: missing object `{key}`"));
        }
    }
    let slo_rules = doc
        .get("slo")
        .and_then(Json::as_arr)
        .ok_or_else(|| "postmortem header: missing array `slo`".to_string())?
        .len();
    let ring = check_ring_snapshot(body).map_err(|e| format!("postmortem ring: {e}"))?;
    Ok(PostmortemSummary {
        job,
        attempt,
        reason,
        rounds,
        slo_rules,
        ring,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use heron_trace::Tracer;

    fn flight_with_ring(rounds: u64) -> FlightEntry {
        let t = Tracer::manual();
        t.set_ring(8, false);
        for _ in 0..rounds {
            let _s = t.span("tuner.step");
            t.advance_s(0.5);
        }
        FlightEntry {
            attempt: 0,
            epoch: 1,
            rounds,
            sim_ns: t.now_ns(),
            ring_jsonl: t.ring_snapshot_jsonl(),
        }
    }

    fn death<'a>(flight: Option<&'a FlightEntry>, slo: &'a SloSpec) -> DeathReport<'a> {
        DeathReport {
            job: "g1",
            attempt: 0,
            epoch: 1,
            reason: "crash",
            recoveries: 0,
            restart_budget: 2,
            backoff_base_s: 0.5,
            checkpoint: Some("ckpt-text"),
            flight,
            slo,
        }
    }

    #[test]
    fn bundles_are_deterministic_and_validate() {
        let slo = SloSpec::parse("queue_wait_s <= 60\n").unwrap();
        let flight = flight_with_ring(3);
        let a = build(&death(Some(&flight), &slo));
        let b = build(&death(Some(&flight), &slo));
        assert_eq!(a, b, "bundle assembly is pure");
        assert_eq!(a.file, "g1.attempt0.crash.jsonl");
        let summary = check_postmortem(&a.bundle).expect("bundle validates");
        assert_eq!(summary.job, "g1");
        assert_eq!(summary.reason, "crash");
        assert_eq!(summary.rounds, 3);
        assert_eq!(summary.slo_rules, 1);
        assert_eq!(summary.ring.summary.spans.len(), 3);
        assert!(a.bundle.contains("\"present\":true"));
        assert!(a.bundle.contains(&format!("{:016x}", fnv64("ckpt-text"))));
    }

    #[test]
    fn slo_verdicts_at_death_reflect_the_dying_jobs_backoffs() {
        // Two recoveries at base 0.5 ⇒ queue_wait 1.5s; a 1s bound
        // breaches, a 60s bound passes.
        let slo = SloSpec::parse("queue_wait_s <= 1\nrecovery_max_s <= 60\n").unwrap();
        let flight = flight_with_ring(2);
        let mut report = death(Some(&flight), &slo);
        report.recoveries = 2;
        report.reason = "quarantine";
        let pm = build(&report);
        assert!(
            pm.bundle.contains("\"verdict\":\"breach\""),
            "{}",
            pm.bundle
        );
        assert!(pm.bundle.contains("\"verdict\":\"pass\""), "{}", pm.bundle);
        assert_eq!(pm.file, "g1.attempt0.quarantine.jsonl");
    }

    #[test]
    fn deaths_without_a_flush_get_a_valid_empty_ring() {
        let slo = SloSpec::empty();
        let mut report = death(None, &slo);
        report.checkpoint = None;
        report.reason = "quarantine";
        let pm = build(&report);
        let summary = check_postmortem(&pm.bundle).expect("empty-ring bundle validates");
        assert_eq!(summary.rounds, 0);
        assert_eq!(summary.ring.summary.events, 0);
        assert!(pm.bundle.contains("\"present\":false"));
        assert!(pm.bundle.contains("\"id\":null"));
    }

    #[test]
    fn checkpoint_id_ignores_wall_clock_timing_lines() {
        let a = "seed = 7\ntiming.sim_s = 3ff0000000000000\ncrc32 = 11111111\n";
        let b = "seed = 7\ntiming.sim_s = 4000000000000000\ncrc32 = 22222222\n";
        let c = "seed = 8\ntiming.sim_s = 3ff0000000000000\ncrc32 = 11111111\n";
        assert_eq!(fnv64(a), fnv64(b), "timing/crc lines must not matter");
        assert_ne!(fnv64(a), fnv64(c), "deterministic lines must matter");
    }

    #[test]
    fn damaged_bundles_are_rejected_with_named_errors() {
        let slo = SloSpec::empty();
        let flight = flight_with_ring(1);
        let pm = build(&death(Some(&flight), &slo));
        let wrong = pm.bundle.replace(POSTMORTEM_SCHEMA, "heron-postmortem-v0");
        assert!(check_postmortem(&wrong)
            .unwrap_err()
            .contains(POSTMORTEM_SCHEMA));
        let headless = pm.bundle.replace("\"reason\":\"crash\",", "");
        assert!(check_postmortem(&headless).unwrap_err().contains("reason"));
        assert!(check_postmortem("").unwrap_err().contains("header"));
    }
}
