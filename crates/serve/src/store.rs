//! Epoch-fenced checkpoint store shared by workers and the supervisor.
//!
//! Each job has one slot holding its latest checkpoint-v2 text plus a
//! monotonically increasing **epoch** — a fencing token. A worker is
//! handed the epoch that was current when it was (re)started and every
//! save quotes it; the supervisor bumps the epoch the moment it decides
//! to recover the job, so a zombie worker (one that was declared hung
//! but is in fact still limping along) can never clobber the state its
//! replacement is building. Stale saves are counted, not silently
//! swallowed, so the chaos harness can assert the fence actually fired.
//!
//! The store keeps checkpoint *text* (the CRC-framed `key = value`
//! format from `heron_core::checkpoint`), not parsed structs: that is
//! exactly the byte string an on-disk snapshot would hold, so the
//! optional disk mirror is a plain write-through.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

#[derive(Debug, Default)]
struct Slot {
    epoch: u64,
    text: Option<String>,
}

#[derive(Debug, Default)]
struct StoreInner {
    slots: BTreeMap<String, Slot>,
    stale_saves: u64,
    saves: u64,
    mirror_dir: Option<PathBuf>,
}

/// Shared, thread-safe checkpoint store with per-job epoch fencing.
#[derive(Debug, Clone, Default)]
pub struct CheckpointStore {
    inner: Arc<Mutex<StoreInner>>,
}

impl CheckpointStore {
    /// An empty in-memory store.
    pub fn new() -> Self {
        CheckpointStore::default()
    }

    /// Mirrors every accepted save to `<dir>/<job>.ckpt` (best-effort:
    /// a failed mirror write does not fail the in-memory save).
    pub fn with_mirror(self, dir: impl Into<PathBuf>) -> Self {
        self.inner.lock().expect("store lock").mirror_dir = Some(dir.into());
        self
    }

    /// Bumps and returns the job's epoch. Called by the supervisor at
    /// every (re)start; the returned token is what the new worker must
    /// quote on saves, and every older token is now fenced off.
    pub fn open_epoch(&self, job: &str) -> u64 {
        let mut inner = self.inner.lock().expect("store lock");
        let slot = inner.slots.entry(job.to_string()).or_default();
        slot.epoch += 1;
        slot.epoch
    }

    /// The job's current epoch (0 if never opened).
    pub fn current_epoch(&self, job: &str) -> u64 {
        let inner = self.inner.lock().expect("store lock");
        inner.slots.get(job).map(|s| s.epoch).unwrap_or(0)
    }

    /// Saves checkpoint text for `job` if `epoch` is still current;
    /// returns whether the save was accepted. A rejected (stale) save
    /// is counted for observability.
    pub fn save(&self, job: &str, epoch: u64, text: String) -> bool {
        let mut inner = self.inner.lock().expect("store lock");
        let current = inner.slots.get(job).map(|s| s.epoch).unwrap_or(0);
        if epoch != current {
            inner.stale_saves += 1;
            return false;
        }
        let mirror = inner.mirror_dir.clone();
        let slot = inner.slots.entry(job.to_string()).or_default();
        slot.text = Some(text.clone());
        inner.saves += 1;
        drop(inner);
        if let Some(dir) = mirror {
            let _ = std::fs::create_dir_all(&dir);
            let _ = std::fs::write(dir.join(format!("{job}.ckpt")), text);
        }
        true
    }

    /// The latest accepted checkpoint text for `job`, if any.
    pub fn load(&self, job: &str) -> Option<String> {
        let inner = self.inner.lock().expect("store lock");
        inner.slots.get(job).and_then(|s| s.text.clone())
    }

    /// Accepted saves so far.
    pub fn saves(&self) -> u64 {
        self.inner.lock().expect("store lock").saves
    }

    /// Rejected (fenced-off) saves so far.
    pub fn stale_saves(&self) -> u64 {
        self.inner.lock().expect("store lock").stale_saves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_fence_rejects_stale_writers() {
        let store = CheckpointStore::new();
        let e1 = store.open_epoch("job");
        assert_eq!(e1, 1);
        assert!(store.save("job", e1, "first".to_string()));
        assert_eq!(store.load("job").as_deref(), Some("first"));

        // Supervisor decides to recover: epoch bumps, old worker fenced.
        let e2 = store.open_epoch("job");
        assert_eq!(e2, 2);
        assert!(!store.save("job", e1, "zombie".to_string()));
        assert_eq!(store.load("job").as_deref(), Some("first"));
        assert!(store.save("job", e2, "second".to_string()));
        assert_eq!(store.load("job").as_deref(), Some("second"));
        assert_eq!(store.saves(), 2);
        assert_eq!(store.stale_saves(), 1);
        assert_eq!(store.current_epoch("job"), 2);
        assert_eq!(store.current_epoch("other"), 0);
    }

    #[test]
    fn store_is_shared_across_clones_and_threads() {
        let store = CheckpointStore::new();
        let e = store.open_epoch("j");
        let s2 = store.clone();
        std::thread::spawn(move || {
            assert!(s2.save("j", e, "from thread".to_string()));
        })
        .join()
        .expect("joins");
        assert_eq!(store.load("j").as_deref(), Some("from thread"));
    }
}
