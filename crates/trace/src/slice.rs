//! Per-job trace slicing and merging for service traces.
//!
//! A supervised service run produces one merged JSONL trace: the
//! supervisor's own (untagged) lifecycle events plus each completed
//! job's worker-session segment, every worker line carrying a trailing
//! `"ctx"` member ([`TraceContext`]). This module is the read side of
//! that schema:
//!
//! * [`slice_by_job`] splits a merged trace into per-job sub-traces —
//!   ctx stripped and sequence numbers rewritten, so each slice is a
//!   self-contained trace that validates under
//!   [`crate::check_trace`] and compares byte-for-byte against an
//!   uninterrupted single-session run;
//! * [`service_slice`] extracts the untagged service-level events the
//!   same way;
//! * [`tag_jsonl`] / [`merge_traces`] are the write side the
//!   supervisor uses to assemble the merged document.
//!
//! All functions are line-oriented and infallible: callers are
//! expected to validate with [`crate::check_trace`] first, and any
//! line that does not parse is passed through as service-level.

use std::collections::BTreeMap;

use crate::json::{self, Json};
use crate::tracer::TraceContext;

/// The correlation context of one JSONL event line (`None` for
/// untagged/service-level lines and lines that do not parse).
pub fn line_ctx(line: &str) -> Option<TraceContext> {
    let obj = json::parse(line).ok()?;
    crate::check::parse_ctx(&obj, 0).ok().flatten()
}

fn edit_members(line: &str, edit: impl FnOnce(&mut Vec<(String, Json)>)) -> String {
    match json::parse(line) {
        Ok(Json::Obj(mut members)) => {
            edit(&mut members);
            Json::Obj(members).render()
        }
        _ => line.to_string(),
    }
}

/// Removes the `"ctx"` member from one event line. Because the tracer
/// emits ctx as the trailing member and [`Json::render`] round-trips
/// tracer output byte-for-byte, stripping a tagged line yields exactly
/// the bytes the same session would have written untagged.
pub fn strip_ctx_line(line: &str) -> String {
    edit_members(line, |members| members.retain(|(k, _)| k != "ctx"))
}

/// Tags every line of a JSONL trace with `ctx` (replacing any existing
/// tag), keeping timestamps and sequence numbers untouched.
pub fn tag_jsonl(jsonl: &str, ctx: &TraceContext) -> String {
    let tag = Json::Obj(vec![
        ("job".to_string(), Json::Str(ctx.job.clone())),
        ("attempt".to_string(), Json::Num(f64::from(ctx.attempt))),
        ("epoch".to_string(), Json::Num(ctx.epoch as f64)),
    ]);
    let mut out = String::with_capacity(jsonl.len());
    for line in jsonl.lines() {
        out.push_str(&edit_members(line, |members| {
            members.retain(|(k, _)| k != "ctx");
            members.push(("ctx".to_string(), tag.clone()));
        }));
        out.push('\n');
    }
    out
}

/// Rewrites every line's `"seq"` to its line index, making any
/// concatenation of trace segments a well-formed trace again.
pub fn reseq_jsonl(jsonl: &str) -> String {
    let mut out = String::with_capacity(jsonl.len());
    for (idx, line) in jsonl.lines().enumerate() {
        out.push_str(&edit_members(line, |members| {
            for (k, v) in members.iter_mut() {
                if k == "seq" {
                    *v = Json::Num(idx as f64);
                }
            }
        }));
        out.push('\n');
    }
    out
}

/// Concatenates trace segments (skipping empty ones) and rewrites the
/// sequence numbers, producing one merged trace. Each segment must be
/// internally well-formed; segments with distinct contexts validate
/// independently under the per-context checker.
pub fn merge_traces(segments: &[&str]) -> String {
    let mut joined = String::new();
    for seg in segments {
        joined.push_str(seg);
        if !seg.is_empty() && !seg.ends_with('\n') {
            joined.push('\n');
        }
    }
    reseq_jsonl(&joined)
}

/// Distinct job ids tagged in a merged trace, in first-seen order.
pub fn jobs_in(jsonl: &str) -> Vec<String> {
    let mut jobs: Vec<String> = Vec::new();
    for line in jsonl.lines() {
        if let Some(ctx) = line_ctx(line) {
            if !jobs.contains(&ctx.job) {
                jobs.push(ctx.job);
            }
        }
    }
    jobs
}

/// Splits a merged service trace into per-job sub-traces: for each job
/// id, its tagged lines in input order, ctx stripped and re-sequenced.
/// Each slice is a self-contained trace that validates under
/// [`crate::check_trace`] and whose profile tree sums to that job's
/// recorded wall-clock.
pub fn slice_by_job(jsonl: &str) -> BTreeMap<String, String> {
    let mut bodies: BTreeMap<String, String> = BTreeMap::new();
    for line in jsonl.lines() {
        if let Some(ctx) = line_ctx(line) {
            let body = bodies.entry(ctx.job).or_default();
            body.push_str(&strip_ctx_line(line));
            body.push('\n');
        }
    }
    bodies
        .into_iter()
        .map(|(job, body)| (job, reseq_jsonl(&body)))
        .collect()
}

/// The untagged (service-level) lines of a merged trace, re-sequenced
/// into a self-contained trace.
pub fn service_slice(jsonl: &str) -> String {
    let mut body = String::new();
    for line in jsonl.lines() {
        if line_ctx(line).is_none() {
            body.push_str(line);
            body.push('\n');
        }
    }
    reseq_jsonl(&body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_trace;
    use crate::tracer::Tracer;

    fn session(job: &str, attempt: u32, epoch: u64, charge_s: f64) -> String {
        let t = Tracer::manual();
        t.set_context(Some(TraceContext::new(job, attempt, epoch)));
        {
            let _s = t.span("tuner.step");
            {
                let _m = t.span("measure.batch");
                t.advance_s(charge_s);
            }
            t.point("measure.retry");
        }
        t.to_jsonl()
    }

    fn service() -> String {
        let t = Tracer::manual();
        let _run = t.span("serve.run");
        t.advance_s(1.0);
        t.point_with("serve.submit", || [("job", "a".to_string())]);
        drop(_run);
        t.to_jsonl()
    }

    #[test]
    fn merged_trace_validates_and_slices_losslessly() {
        let (svc, a, b) = (service(), session("a", 1, 2, 2.0), session("b", 0, 1, 3.0));
        let merged = merge_traces(&[&svc, &a, &b]);
        let summary = check_trace(&merged).expect("merged trace validates per context");
        assert_eq!(jobs_in(&merged), vec!["a", "b"]);

        // Slices are byte-identical to the original untagged sessions
        // (ctx stripped, reseq restores each segment's own numbering).
        let slices = slice_by_job(&merged);
        let untagged = |jsonl: &str| {
            jsonl
                .lines()
                .map(strip_ctx_line)
                .map(|l| l + "\n")
                .collect::<String>()
        };
        assert_eq!(slices["a"], untagged(&a));
        assert_eq!(slices["b"], untagged(&b));
        assert_eq!(service_slice(&merged), svc);

        // Lossless: the union of slice span multisets plus the service
        // slice reproduces the merged trace's span multiset.
        let count_spans = |jsonl: &str| check_trace(jsonl).expect("valid").spans.len();
        assert_eq!(
            count_spans(&merged),
            count_spans(&slices["a"]) + count_spans(&slices["b"]) + count_spans(&svc)
        );
        assert_eq!(summary.points, 3);
    }

    #[test]
    fn tag_jsonl_then_strip_roundtrips() {
        let t = Tracer::manual();
        {
            let _s = t.span_with("s", || [("k", "v".to_string())]);
            t.advance_s(0.5);
        }
        let plain = t.to_jsonl();
        let tagged = tag_jsonl(&plain, &TraceContext::new("j", 2, 9));
        assert!(tagged.lines().all(|l| l.contains("\"ctx\"")));
        assert_eq!(
            tagged.lines().map(line_ctx).collect::<Vec<_>>(),
            vec![Some(TraceContext::new("j", 2, 9)); 2]
        );
        let stripped: String = tagged.lines().map(|l| strip_ctx_line(l) + "\n").collect();
        assert_eq!(stripped, plain, "tag → strip is the identity");
    }

    #[test]
    fn empty_and_untagged_inputs_are_benign() {
        assert!(slice_by_job("").is_empty());
        assert_eq!(service_slice(""), "");
        assert_eq!(merge_traces(&["", ""]), "");
        let plain = service();
        assert!(slice_by_job(&plain).is_empty());
        assert_eq!(service_slice(&plain), plain);
        assert_eq!(jobs_in(&plain), Vec::<String>::new());
    }
}
