//! `heron-trace`: zero-dependency structured tracing, metrics and
//! profiling for the Heron tuning pipeline.
//!
//! The crate provides four pieces (DESIGN.md §7):
//!
//! * [`Tracer`] — span-based structured tracing with nested spans, point
//!   events and JSONL export. The disabled tracer is a one-branch no-op
//!   so instrumentation can stay in hot paths unconditionally.
//! * [`MetricsRegistry`] — named counters, gauges and fixed-bucket
//!   histograms, snapshotable to TSV (embedded in every enabled tracer).
//! * [`Clock`] — pluggable time: a real monotonic clock for the CLI, a
//!   simulated clock (advanced only by charged simulated seconds) for
//!   byte-identical traces in the determinism tests.
//! * [`check_trace`] / [`ProfileNode`] — a validator that re-parses a
//!   JSONL trace and checks span balance, and a flamegraph-style text
//!   profile tree built from traces or known totals.
//!
//! plus the flight-recorder **ring sink** ([`Tracer::set_ring`],
//! DESIGN.md §12): a fixed-capacity buffer of the most recent events
//! with span-boundary-safe eviction, the bounded always-on recording
//! mode for long-lived service runs.
//!
//! # Example
//!
//! ```
//! use heron_trace::{check_trace, Tracer};
//!
//! let tracer = Tracer::manual();
//! {
//!     let _step = tracer.span("tuner.step");
//!     tracer.advance_s(0.5); // charge simulated time
//!     tracer.counter_add("csp.propagations", 17);
//! }
//! let summary = check_trace(&tracer.to_jsonl()).unwrap();
//! assert_eq!(summary.spans[0].name, "tuner.step");
//! assert_eq!(tracer.counter("csp.propagations"), Some(17));
//! ```

pub mod check;
pub mod clock;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod ring;
pub mod slice;
pub mod tracer;

pub use check::{check_trace, check_trace_lines, SpanRec, TraceChecker, TraceSummary};
pub use clock::Clock;
pub use json::Json;
pub use metrics::{Histogram, Instrument, MetricsRegistry, DEFAULT_BUCKETS};
pub use profile::{profile_from_summary, ProfileNode};
pub use ring::{check_ring_snapshot, RingSummary, RING_SCHEMA};
pub use slice::{jobs_in, merge_traces, service_slice, slice_by_job, tag_jsonl};
pub use tracer::{normalize_jsonl, Event, SpanGuard, TraceContext, Tracer};
