//! Pluggable time sources for span timestamps.
//!
//! Two clocks exist by design (DESIGN.md §7):
//!
//! * [`Clock::real`] — a monotonic wall clock (`std::time::Instant`),
//!   zeroed at tracer creation. Used by the CLI and bench binaries where
//!   human-meaningful durations matter.
//! * [`Clock::manual`] — a simulated clock that starts at zero and
//!   advances **only** when the instrumented code charges simulated time
//!   to it (e.g. the tuner's `hw_measure_s` accounting). Because every
//!   charge is a deterministic function of the session seed, traces taken
//!   on the manual clock are byte-identical across same-seed runs —
//!   timestamps included — which is what the determinism tests compare.

use std::time::Instant;

/// A time source for the tracer. See the [module docs](self).
#[derive(Debug, Clone)]
pub enum Clock {
    /// Monotonic wall clock; origin fixed at construction.
    Real {
        /// The instant that maps to `t_ns = 0`.
        origin: Instant,
    },
    /// Simulated clock: starts at 0, advances only via
    /// [`Clock::advance_ns`].
    Manual {
        /// Current simulated time, nanoseconds.
        now_ns: u64,
    },
}

impl Clock {
    /// A monotonic wall clock zeroed now.
    pub fn real() -> Self {
        Clock::Real {
            origin: Instant::now(),
        }
    }

    /// A simulated clock starting at zero.
    pub fn manual() -> Self {
        Clock::Manual { now_ns: 0 }
    }

    /// Nanoseconds since the clock's origin.
    pub fn now_ns(&self) -> u64 {
        match self {
            Clock::Real { origin } => origin.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
            Clock::Manual { now_ns } => *now_ns,
        }
    }

    /// Advances a manual clock by `ns`; no-op on a real clock (wall time
    /// advances by itself).
    pub fn advance_ns(&mut self, ns: u64) {
        if let Clock::Manual { now_ns } = self {
            *now_ns = now_ns.saturating_add(ns);
        }
    }

    /// Whether this is the simulated (manually advanced) clock.
    pub fn is_manual(&self) -> bool {
        matches!(self, Clock::Manual { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_only_moves_when_advanced() {
        let mut c = Clock::manual();
        assert!(c.is_manual());
        assert_eq!(c.now_ns(), 0);
        c.advance_ns(1_500);
        assert_eq!(c.now_ns(), 1_500);
        c.advance_ns(u64::MAX);
        assert_eq!(c.now_ns(), u64::MAX, "advance saturates");
    }

    #[test]
    fn real_clock_is_monotone() {
        let c = Clock::real();
        assert!(!c.is_manual());
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
        let mut c2 = c.clone();
        c2.advance_ns(1); // no-op on real clocks
        assert!(c2.now_ns() >= a);
    }
}
