//! The flight-recorder ring sink: a fixed-capacity buffer of the most
//! recent trace events with deterministic eviction accounting
//! (DESIGN.md §12).
//!
//! Long-lived `heron_serve` runs cannot keep an unbounded JSONL trace
//! in memory; the ring retains the last ~K events so a crash, hang or
//! quarantine can still be autopsied from a bounded always-on record.
//!
//! # Eviction is span-boundary safe
//!
//! Events are only evicted in whole **top-level groups** — from one
//! event recorded with no span open (a top-level `open` or `point`) up
//! to, but excluding, the next such event. Spans close LIFO before the
//! stack returns to depth zero, so every span opened before a cut point
//! is also closed before it: the retained suffix, re-sequenced from 0,
//! is always a well-formed trace that [`crate::check_trace`] accepts.
//! The price is that capacity is a *soft* bound: a top-level group
//! whose close has not been recorded yet is never torn, so the buffer
//! can transiently hold `capacity + (largest open top-level group)`
//! events. Enable the ring before opening spans — a ring attached
//! mid-span starts on a non-boundary event and its first snapshot may
//! not validate until that group is evicted.
//!
//! Every eviction increments the `trace.ring_evicted` counter in the
//! tracer's metrics registry, so eviction pressure is visible in the
//! TSV snapshot and byte-deterministic across same-seed runs.
//!
//! # Snapshot format (`heron-ring-v1`)
//!
//! [`crate::Tracer::ring_snapshot_jsonl`] renders a header line
//!
//! ```text
//! {"schema":"heron-ring-v1","capacity":64,"evicted":12,"events":60,"now_ns":1500000000}
//! ```
//!
//! followed by the retained events re-sequenced from 0 — the body alone
//! is a valid trace. [`check_ring_snapshot`] validates both parts.

use std::collections::VecDeque;

use crate::check::{check_trace, TraceSummary};
use crate::json::{self, Json};
use crate::tracer::{Event, TraceContext};

/// The schema identifier stamped into every ring snapshot header.
pub const RING_SCHEMA: &str = "heron-ring-v1";

/// The bounded event buffer embedded in a [`crate::Tracer`] when the
/// ring sink is enabled.
#[derive(Debug)]
pub(crate) struct RingBuf {
    /// Soft capacity: eviction runs whenever the buffer exceeds it.
    pub(crate) capacity: usize,
    /// When set, the ring *replaces* the unbounded event log instead of
    /// mirroring it.
    pub(crate) ring_only: bool,
    /// Retained `(event, context, is_top_level_boundary)` triples.
    buf: VecDeque<(Event, Option<TraceContext>, bool)>,
    /// Total events evicted so far.
    pub(crate) evicted: u64,
}

impl RingBuf {
    pub(crate) fn new(capacity: usize, ring_only: bool) -> Self {
        RingBuf {
            capacity: capacity.max(1),
            ring_only,
            buf: VecDeque::new(),
            evicted: 0,
        }
    }

    /// Appends one event; `boundary` marks a safe cut point (an `open`
    /// or `point` recorded with no span open). Returns how many events
    /// were evicted to respect capacity.
    pub(crate) fn push(&mut self, ev: Event, ctx: Option<TraceContext>, boundary: bool) -> u64 {
        self.buf.push_back((ev, ctx, boundary));
        let mut dropped = 0u64;
        while self.buf.len() > self.capacity {
            // Evict the whole top-level group at the front. If no later
            // boundary exists yet (one oversized group, or its close is
            // still pending) the bound is soft until the next top-level
            // event arrives.
            let Some(cut) = self
                .buf
                .iter()
                .skip(1)
                .position(|(_, _, b)| *b)
                .map(|p| p + 1)
            else {
                break;
            };
            drop(self.buf.drain(..cut));
            dropped += cut as u64;
        }
        self.evicted += dropped;
        dropped
    }

    pub(crate) fn len(&self) -> usize {
        self.buf.len()
    }

    /// Retained `(event, context)` pairs, oldest first.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (&Event, Option<&TraceContext>)> {
        self.buf.iter().map(|(ev, ctx, _)| (ev, ctx.as_ref()))
    }
}

/// A validated ring snapshot: the header fields plus the checked body.
#[derive(Debug, Clone, PartialEq)]
pub struct RingSummary {
    /// Configured ring capacity.
    pub capacity: u64,
    /// Events evicted before this snapshot was taken.
    pub evicted: u64,
    /// Clock reading when the snapshot was taken, nanoseconds.
    pub now_ns: u64,
    /// The validated body (retained events).
    pub summary: TraceSummary,
}

fn header_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("ring header: missing or non-integer `{key}`"))
}

/// Validates a `heron-ring-v1` snapshot: parses the header line, checks
/// the schema and event count, and runs the body through
/// [`check_trace`].
///
/// # Errors
/// A message naming the offending header field or body line.
pub fn check_ring_snapshot(jsonl: &str) -> Result<RingSummary, String> {
    let mut parts = jsonl.splitn(2, '\n');
    let header = parts.next().unwrap_or("");
    let body = parts.next().unwrap_or("");
    let doc = json::parse(header).map_err(|e| format!("ring header: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| "ring header: missing string `schema`".to_string())?;
    if schema != RING_SCHEMA {
        return Err(format!(
            "ring header: expected `{RING_SCHEMA}`, found `{schema}`"
        ));
    }
    let capacity = header_u64(&doc, "capacity")?;
    let evicted = header_u64(&doc, "evicted")?;
    let events = header_u64(&doc, "events")?;
    let now_ns = header_u64(&doc, "now_ns")?;
    let summary = check_trace(body)?;
    if summary.events as u64 != events {
        return Err(format!(
            "ring header: declares {events} events but body has {}",
            summary.events
        ));
    }
    Ok(RingSummary {
        capacity,
        evicted,
        now_ns,
        summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;

    /// `steps` top-level spans, each enclosing one child span and one
    /// point (5 events per group), on a manual clock.
    fn run_steps(ring: Option<(usize, bool)>, steps: usize) -> Tracer {
        let t = Tracer::manual();
        if let Some((cap, ring_only)) = ring {
            t.set_ring(cap, ring_only);
        }
        for i in 0..steps {
            let _s = t.span_with("tuner.step", || vec![("round", i.to_string())]);
            {
                let _m = t.span("measure.batch");
                t.advance_s(0.25);
            }
            t.point("tuner.round_done");
            t.advance_s(0.25);
        }
        t
    }

    #[test]
    fn mirror_mode_leaves_the_full_log_untouched() {
        let plain = run_steps(None, 6);
        let ringed = run_steps(Some((8, false)), 6);
        assert_eq!(plain.to_jsonl(), ringed.to_jsonl());
        assert_eq!(plain.event_count(), ringed.event_count());
        // The ring still evicted deterministically alongside.
        assert!(ringed.ring_evicted() > 0);
        assert_eq!(
            ringed.counter("trace.ring_evicted"),
            Some(ringed.ring_evicted())
        );
    }

    #[test]
    fn eviction_is_deterministic_and_snapshot_stays_valid() {
        let a = run_steps(Some((10, false)), 12);
        let b = run_steps(Some((10, false)), 12);
        assert_eq!(a.ring_snapshot_jsonl(), b.ring_snapshot_jsonl());

        let snap = a.ring_snapshot_jsonl();
        let rs = check_ring_snapshot(&snap).expect("snapshot validates");
        assert_eq!(rs.capacity, 10);
        // 12 groups × 5 events = 60 recorded; eviction cuts on whole
        // group boundaries, so the last 2 groups (10 events) remain.
        assert_eq!(rs.summary.events, 10);
        assert_eq!(rs.evicted, 50);
        assert_eq!(a.ring_evicted(), 50);
        // Retained suffix holds the *last* rounds.
        assert!(snap.contains("\"round\":\"11\""), "{snap}");
        assert!(!snap.contains("\"round\":\"9\""), "{snap}");
    }

    #[test]
    fn ring_only_mode_bounds_the_log_and_stays_checkable() {
        let t = run_steps(Some((10, true)), 12);
        let jsonl = t.to_jsonl();
        let summary = check_trace(&jsonl).expect("ring-only log is a valid trace");
        assert_eq!(summary.events, 10);
        // event_count still reports the total recorded, not retained.
        assert_eq!(t.event_count(), 60);
        assert_eq!(t.ring_len(), 10);
    }

    #[test]
    fn open_spans_are_never_torn() {
        let t = Tracer::manual();
        t.set_ring(3, false);
        let _outer = t.span("serve.run");
        for _ in 0..5 {
            let _inner = t.span("tuner.step");
            t.advance_s(0.1);
        }
        // Everything lives under one still-open top-level span: nothing
        // may be evicted even though the buffer exceeds capacity.
        assert_eq!(t.ring_evicted(), 0);
        assert_eq!(t.ring_len(), 11);
    }

    #[test]
    fn tagged_ring_snapshots_carry_context() {
        use crate::tracer::TraceContext;
        let t = Tracer::manual();
        t.set_ring(4, false);
        t.set_context(Some(TraceContext::new("g1", 2, 7)));
        for _ in 0..6 {
            let _s = t.span("tuner.step");
            t.advance_s(0.5);
        }
        let rs = check_ring_snapshot(&t.ring_snapshot_jsonl()).expect("valid");
        assert_eq!(rs.summary.jobs(), vec!["g1"]);
        assert_eq!(rs.summary.spans[0].ctx, Some(TraceContext::new("g1", 2, 7)));
    }

    #[test]
    fn damaged_snapshots_are_rejected_with_named_errors() {
        let t = run_steps(Some((8, false)), 4);
        let snap = t.ring_snapshot_jsonl();
        let wrong_schema = snap.replace(RING_SCHEMA, "heron-ring-v0");
        assert!(check_ring_snapshot(&wrong_schema)
            .unwrap_err()
            .contains("heron-ring-v1"));
        let wrong_count = snap.replace("\"events\":5", "\"events\":9");
        assert!(check_ring_snapshot(&wrong_count)
            .unwrap_err()
            .contains("declares 9 events"));
        assert!(check_ring_snapshot("").unwrap_err().contains("header"));
    }
}
