//! A minimal JSON reader/writer for the trace subsystem.
//!
//! The workspace is zero-dependency by policy, so the JSONL export and
//! its validator cannot use `serde`. This module implements exactly the
//! JSON subset the tracer needs: objects, strings (with the standard
//! escapes), numbers, booleans and null — enough to *emit* trace events
//! and to *parse any* JSON document back for validation, so
//! `trace_report --check` accepts traces produced by other tools too.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects (`None` otherwise).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value back to compact JSON text.
    ///
    /// The output is deterministic: object member order is preserved as
    /// stored, strings use [`escape`], and numbers use Rust's
    /// shortest-roundtrip `f64` formatting (which is
    /// platform-independent). Non-finite numbers have no JSON spelling
    /// and render as `null` — producers that care should never store
    /// them.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) if !n.is_finite() => out.push_str("null"),
            Json::Num(n) => out.push_str(&format!("{n}")),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Renders the value as indented multi-line JSON (two spaces per
    /// level, trailing newline). Deterministic like [`Json::render`].
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render_pretty_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_pretty_into(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.render_pretty_into(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\": ");
                    v.render_pretty_into(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.render_into(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Escapes `s` as the *contents* of a JSON string literal (no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses one complete JSON document; trailing whitespace allowed,
/// anything else after the value is an error.
///
/// # Errors
/// A human-readable message with a byte offset on malformed input.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected `{}` at byte {pos}", *c as char)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        members.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        // Surrogates are rejected rather than paired: the
                        // tracer never emits them.
                        let c = char::from_u32(code)
                            .ok_or_else(|| format!("\\u{hex} is not a scalar value"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => return Err(format!("raw control byte at {pos}")),
            Some(_) => {
                // Consume one UTF-8 code point.
                let s = &b[*pos..];
                let step = match s[0] {
                    c if c < 0x80 => 1,
                    c if (0xc0..0xe0).contains(&c) => 2,
                    c if (0xe0..0xf0).contains(&c) => 3,
                    _ => 4,
                };
                let chunk = s
                    .get(..step)
                    .and_then(|c| std::str::from_utf8(c).ok())
                    .ok_or_else(|| format!("invalid UTF-8 at byte {pos}"))?;
                out.push_str(chunk);
                *pos += step;
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid number bytes")?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_trace_shaped_lines() {
        let line = r#"{"seq":3,"ev":"open","id":2,"parent":1,"name":"csp.solve","t_ns":120,"fields":{"n":"16","budget":"300"}}"#;
        let v = parse(line).expect("parses");
        assert_eq!(v.get("ev").and_then(Json::as_str), Some("open"));
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(2));
        assert_eq!(
            v.get("fields")
                .and_then(|f| f.get("n"))
                .and_then(Json::as_str),
            Some("16")
        );
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f µ";
        let doc = format!("{{\"k\":\"{}\"}}", escape(nasty));
        let v = parse(&doc).expect("parses");
        assert_eq!(v.get("k").and_then(Json::as_str), Some(nasty));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\":1} trailing",
            "\"unterminated",
            "{'single':1}",
            "nul",
            "{\"a\":--1}",
        ] {
            assert!(parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn render_roundtrips_and_is_compact() {
        let doc = r#"{"a":1,"b":[true,null,"x\ny"],"c":{"d":-2.5,"e":1000}}"#;
        let v = parse(doc).expect("parses");
        assert_eq!(v.render(), doc);
        // Round-trip stability: render(parse(render(v))) == render(v).
        let again = parse(&v.render()).expect("reparses");
        assert_eq!(again.render(), v.render());
    }

    #[test]
    fn render_maps_non_finite_to_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
        assert_eq!(Json::Num(0.1 + 0.2).render(), "0.30000000000000004");
    }

    #[test]
    fn render_pretty_parses_back_equal() {
        let v = parse(r#"{"a":[1,2],"b":{},"c":[],"d":{"e":"f"}}"#).unwrap();
        let pretty = v.render_pretty();
        assert!(pretty.ends_with('\n'));
        assert_eq!(parse(&pretty).unwrap(), v);
        assert!(pretty.contains("  \"a\": ["));
    }

    #[test]
    fn numbers_arrays_literals() {
        let v = parse(" [1, -2.5, 1e3, true, false, null] ").expect("parses");
        match v {
            Json::Arr(items) => {
                assert_eq!(items[0].as_f64(), Some(1.0));
                assert_eq!(items[1].as_f64(), Some(-2.5));
                assert_eq!(items[2].as_f64(), Some(1000.0));
                assert_eq!(items[3], Json::Bool(true));
                assert_eq!(items[4], Json::Bool(false));
                assert_eq!(items[5], Json::Null);
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(parse("-2.5").unwrap().as_u64(), None);
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
    }
}
