//! Named-instrument metrics registry: counters, gauges and fixed-bucket
//! histograms, snapshotable to TSV.
//!
//! Naming convention (DESIGN.md §7): `layer.noun_verb`, lower-case, with
//! the pipeline layer as the first dotted component — `csp.propagations`,
//! `cga.offspring_invalid`, `model.fit_ms`, `measure.retries`. Dynamic
//! tags append one more component (`dla.fault_injected.timeout`).
//!
//! The registry is a `BTreeMap`, so snapshots list instruments in stable
//! lexicographic order — a prerequisite for diffable, deterministic TSV
//! output.

use std::collections::BTreeMap;

/// Default histogram bucket upper bounds (inclusive), tuned for
/// millisecond-scale timings: `v <= bound` lands in the bucket. Values
/// above the last bound land in the implicit `inf` bucket.
pub const DEFAULT_BUCKETS: [f64; 7] = [0.01, 0.1, 1.0, 10.0, 100.0, 1_000.0, 10_000.0];

/// A fixed-bucket histogram with running count/sum/min/max.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive upper bounds of the finite buckets, ascending.
    pub bounds: Vec<f64>,
    /// One count per finite bucket, plus a final overflow (`inf`) bucket.
    pub counts: Vec<u64>,
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Smallest recorded value (`inf` when empty).
    pub min: f64,
    /// Largest recorded value (`-inf` when empty).
    pub max: f64,
}

impl Histogram {
    /// An empty histogram over the given bounds.
    pub fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) estimated from the fixed buckets,
    /// linearly interpolated within the bucket that holds the rank.
    ///
    /// Fully deterministic: the estimate depends only on the bucket
    /// counts and the recorded min/max. The interpolation range of a
    /// finite bucket is `[previous bound (or min), bound]`; the overflow
    /// bucket interpolates over `[last bound, max]`. Estimates are
    /// clamped to `[min, max]` so a sparsely filled bucket cannot place
    /// a quantile outside the observed range. Returns `None` when the
    /// histogram is empty or `q` is not in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        // Rank of the target value in [0, count]; rank r means "r
        // recorded values lie at or below the estimate".
        let rank = q * self.count as f64;
        let mut below = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let upto = below + c;
            if rank <= upto as f64 {
                let lo = if idx == 0 {
                    self.min
                } else {
                    self.bounds[idx - 1].max(self.min)
                };
                let hi = if idx < self.bounds.len() {
                    self.bounds[idx].min(self.max)
                } else {
                    self.max
                };
                let frac = (rank - below as f64) / c as f64;
                let est = lo + (hi - lo) * frac.clamp(0.0, 1.0);
                return Some(est.clamp(self.min, self.max));
            }
            below = upto;
        }
        Some(self.max)
    }

    /// Renders the buckets as `le<bound>:<count>;…;inf:<count>`.
    pub fn buckets_string(&self) -> String {
        let mut parts: Vec<String> = self
            .bounds
            .iter()
            .zip(&self.counts)
            .map(|(b, c)| format!("le{b}:{c}"))
            .collect();
        parts.push(format!("inf:{}", self.counts[self.bounds.len()]));
        parts.join(";")
    }
}

/// One registered instrument.
#[derive(Debug, Clone, PartialEq)]
pub enum Instrument {
    /// Monotonically increasing integer count.
    Counter(u64),
    /// Last-write-wins (or accumulated) floating-point value.
    Gauge(f64),
    /// Fixed-bucket distribution.
    Hist(Histogram),
}

impl Instrument {
    /// Short type tag used in the TSV snapshot.
    pub fn type_tag(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Hist(_) => "histogram",
        }
    }
}

/// The registry: instrument name → instrument, in stable order.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    map: BTreeMap<String, Instrument>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `n` to the named counter (created at 0 on first use).
    /// Panics in debug builds if the name is already registered with a
    /// different instrument type.
    pub fn counter_add(&mut self, name: &str, n: u64) {
        match self
            .map
            .entry(name.to_string())
            .or_insert(Instrument::Counter(0))
        {
            Instrument::Counter(c) => *c += n,
            other => debug_assert!(false, "{name} is a {}, not a counter", other.type_tag()),
        }
    }

    /// Sets the named gauge.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        match self
            .map
            .entry(name.to_string())
            .or_insert(Instrument::Gauge(0.0))
        {
            Instrument::Gauge(g) => *g = v,
            other => debug_assert!(false, "{name} is a {}, not a gauge", other.type_tag()),
        }
    }

    /// Adds `v` to the named gauge (accumulating seconds, bytes, …).
    pub fn gauge_add(&mut self, name: &str, v: f64) {
        match self
            .map
            .entry(name.to_string())
            .or_insert(Instrument::Gauge(0.0))
        {
            Instrument::Gauge(g) => *g += v,
            other => debug_assert!(false, "{name} is a {}, not a gauge", other.type_tag()),
        }
    }

    /// Records a value into the named histogram (default buckets on first
    /// use).
    pub fn hist_record(&mut self, name: &str, v: f64) {
        match self
            .map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Hist(Histogram::new(&DEFAULT_BUCKETS)))
        {
            Instrument::Hist(h) => h.record(v),
            other => debug_assert!(false, "{name} is a {}, not a histogram", other.type_tag()),
        }
    }

    /// Number of registered instruments.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up the current value of a counter (`None` when absent or not
    /// a counter).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.map.get(name) {
            Some(Instrument::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// Looks up the current value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.map.get(name) {
            Some(Instrument::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Iterates `(name, instrument)` in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Instrument)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// TSV snapshot: header row plus one row per instrument, in stable
    /// lexicographic order.
    ///
    /// ```text
    /// metric              type       value  count  min  max  p50  p90  p99  buckets
    /// csp.propagations    counter    1234   -      -    -    -    -    -    -
    /// measure.latency_ms  histogram  42.5   16     0.9  9.1  2.1  8.4  9.0  le0.01:0;…;inf:0
    /// ```
    /// (columns are separated by single tab characters; the quantile
    /// columns are bucket-interpolated estimates, see
    /// [`Histogram::quantile`])
    pub fn to_tsv(&self) -> String {
        let mut out =
            String::from("metric\ttype\tvalue\tcount\tmin\tmax\tp50\tp90\tp99\tbuckets\n");
        for (name, inst) in &self.map {
            let row = match inst {
                Instrument::Counter(c) => format!("{name}\tcounter\t{c}\t-\t-\t-\t-\t-\t-\t-"),
                Instrument::Gauge(g) => format!("{name}\tgauge\t{g}\t-\t-\t-\t-\t-\t-\t-"),
                Instrument::Hist(h) => {
                    let (min, max) = if h.count == 0 {
                        ("-".to_string(), "-".to_string())
                    } else {
                        (h.min.to_string(), h.max.to_string())
                    };
                    let quant = |q: f64| {
                        h.quantile(q)
                            .map_or_else(|| "-".to_string(), |v| v.to_string())
                    };
                    format!(
                        "{name}\thistogram\t{}\t{}\t{min}\t{max}\t{}\t{}\t{}\t{}",
                        h.sum,
                        h.count,
                        quant(0.5),
                        quant(0.9),
                        quant(0.99),
                        h.buckets_string()
                    )
                }
            };
            out.push_str(&row);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let mut m = MetricsRegistry::new();
        m.counter_add("csp.propagations", 3);
        m.counter_add("csp.propagations", 4);
        m.gauge_set("tuner.best_gflops", 12.5);
        m.gauge_add("measure.hw_s", 1.5);
        m.gauge_add("measure.hw_s", 2.5);
        m.hist_record("model.fit_ms", 0.5);
        m.hist_record("model.fit_ms", 50.0);
        assert_eq!(m.counter("csp.propagations"), Some(7));
        assert_eq!(m.gauge("tuner.best_gflops"), Some(12.5));
        assert_eq!(m.gauge("measure.hw_s"), Some(4.0));
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn tsv_snapshot_is_sorted_and_complete() {
        let mut m = MetricsRegistry::new();
        m.counter_add("z.last", 1);
        m.counter_add("a.first", 2);
        m.hist_record("m.mid_ms", 5.0);
        let tsv = m.to_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(
            lines[0],
            "metric\ttype\tvalue\tcount\tmin\tmax\tp50\tp90\tp99\tbuckets"
        );
        assert!(lines[1].starts_with("a.first\tcounter\t2"));
        // Single-value histogram: every quantile collapses to that value.
        assert!(lines[2].starts_with("m.mid_ms\thistogram\t5\t1\t5\t5\t5\t5\t5\t"));
        assert!(lines[2].contains("le10:1"));
        assert!(lines[3].starts_with("z.last\tcounter\t1"));
        for line in &lines[1..] {
            assert_eq!(line.split('\t').count(), 10, "row {line}");
        }
    }

    #[test]
    fn histogram_buckets_cover_overflow() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.record(0.5);
        h.record(10.0); // inclusive upper bound
        h.record(99.0); // overflow
        assert_eq!(h.counts, vec![1, 1, 1]);
        assert_eq!(h.count, 3);
        assert_eq!(h.buckets_string(), "le1:1;le10:1;inf:1");
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 99.0);
    }

    /// Every default bound, recorded exactly, must land in its *own*
    /// bucket (the bounds are inclusive), and the next representable
    /// value above it must land in the following bucket.
    #[test]
    fn histogram_default_bounds_are_inclusive_edges() {
        for (i, &bound) in DEFAULT_BUCKETS.iter().enumerate() {
            let mut h = Histogram::new(&DEFAULT_BUCKETS);
            h.record(bound);
            assert_eq!(h.counts[i], 1, "bound {bound} must land in bucket {i}");

            let mut h = Histogram::new(&DEFAULT_BUCKETS);
            let above = bound + bound * f64::EPSILON * 4.0;
            assert!(above > bound);
            h.record(above);
            assert_eq!(
                h.counts[i + 1],
                1,
                "value just above {bound} must land in bucket {}",
                i + 1
            );
        }
    }

    /// Saturation: extreme and non-finite values must not corrupt the
    /// bucket structure. `+inf` (and anything above the last bound)
    /// lands in the overflow bucket; `-inf` and negatives land in the
    /// first bucket; the total count always equals the bucket sum.
    #[test]
    fn histogram_saturates_without_corruption() {
        let mut h = Histogram::new(&DEFAULT_BUCKETS);
        h.record(f64::MAX);
        h.record(f64::INFINITY);
        h.record(1e300);
        assert_eq!(h.counts[DEFAULT_BUCKETS.len()], 3, "all in overflow");

        h.record(-1.0);
        h.record(f64::NEG_INFINITY);
        h.record(f64::MIN_POSITIVE);
        assert_eq!(h.counts[0], 3, "all at or below the first bound");

        assert_eq!(h.count, 6);
        assert_eq!(h.counts.iter().sum::<u64>(), h.count);
        assert_eq!(h.counts.len(), DEFAULT_BUCKETS.len() + 1);
        assert_eq!(h.min, f64::NEG_INFINITY);
        assert_eq!(h.max, f64::INFINITY);
    }

    /// NaN comparisons are all-false, so a NaN value falls through to
    /// the overflow bucket and leaves min/max untouched — the histogram
    /// stays internally consistent (count still matches bucket sum).
    #[test]
    fn histogram_nan_lands_in_overflow_and_keeps_invariants() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.record(0.5);
        h.record(f64::NAN);
        assert_eq!(h.counts, vec![1, 0, 1]);
        assert_eq!(h.count, 2);
        assert_eq!(h.counts.iter().sum::<u64>(), h.count);
        assert_eq!(h.min, 0.5, "NaN must not clobber min");
        assert_eq!(h.max, 0.5, "NaN must not clobber max");
        assert!(h.sum.is_nan());
    }

    /// An empty histogram renders `-` sentinels for min/max in the TSV
    /// snapshot rather than `inf`/`-inf`.
    #[test]
    fn empty_histogram_renders_dash_min_max() {
        let mut m = MetricsRegistry::new();
        // Force an empty histogram into the registry via a typed entry.
        m.hist_record("x.empty_ms", 1.0);
        match m.map.get_mut("x.empty_ms") {
            Some(Instrument::Hist(h)) => *h = Histogram::new(&DEFAULT_BUCKETS),
            _ => unreachable!(),
        }
        let tsv = m.to_tsv();
        let row = tsv.lines().nth(1).unwrap();
        let cols: Vec<&str> = row.split('\t').collect();
        assert_eq!(cols[3], "0", "count");
        assert_eq!(cols[4], "-", "min placeholder");
        assert_eq!(cols[5], "-", "max placeholder");
        assert_eq!(&cols[6..9], ["-", "-", "-"], "quantile placeholders");
    }

    /// Quantiles interpolate linearly within the bucket holding the
    /// rank, with the recorded min/max tightening the edge buckets.
    #[test]
    fn quantiles_interpolate_within_buckets() {
        let mut h = Histogram::new(&[10.0, 20.0, 30.0]);
        // Ten values spread uniformly through (10, 20]: ranks land in
        // the le20 bucket, whose interpolation range [10, 20] tightens
        // to the observed [11, 20].
        for i in 1..=10 {
            h.record(10.0 + i as f64);
        }
        assert_eq!(h.quantile(0.0), Some(11.0), "p0 is the min");
        assert_eq!(h.quantile(0.5), Some(15.5));
        assert_eq!(h.quantile(1.0), Some(20.0), "p100 is the max");
        let p90 = h.quantile(0.9).unwrap();
        assert!((p90 - 19.1).abs() < 1e-9, "p90 ≈ 19.1, got {p90}");
        // Out-of-range q and empty histograms yield None.
        assert_eq!(h.quantile(1.5), None);
        assert_eq!(h.quantile(-0.1), None);
        assert_eq!(Histogram::new(&[1.0]).quantile(0.5), None);
    }

    /// Boundary buckets: values exactly on a bound stay inside it, and
    /// the first bucket interpolates from the observed min, not from an
    /// implicit zero.
    #[test]
    fn quantiles_respect_bucket_boundaries() {
        let mut h = Histogram::new(&[10.0, 20.0]);
        h.record(10.0); // inclusive edge of le10
        h.record(10.0);
        // Both values in the first bucket: min == max == 10.
        assert_eq!(h.quantile(0.5), Some(10.0));
        assert_eq!(h.quantile(0.99), Some(10.0));

        let mut h = Histogram::new(&[10.0, 20.0]);
        h.record(4.0);
        h.record(8.0);
        // First bucket spans [min, max∧bound] = [4, 8]; p50 at rank 1
        // of 2 is the midpoint.
        assert_eq!(h.quantile(0.5), Some(6.0));
    }

    /// A saturated overflow bucket interpolates over the observed
    /// [min∨last bound, max] and never reports beyond the extremes.
    #[test]
    fn quantiles_handle_saturated_overflow_bucket() {
        // Every value in the overflow bucket and identical: all
        // quantiles collapse to that value.
        let mut h = Histogram::new(&[1.0]);
        for _ in 0..100 {
            h.record(50.0);
        }
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(50.0), "q={q}");
        }
        // Spread values in the overflow bucket: interpolate over
        // [min, max] since no finite bound brackets them.
        let mut h = Histogram::new(&[1.0]);
        for i in 1..=10 {
            h.record(i as f64 * 10.0);
        }
        assert_eq!(h.quantile(0.5), Some(55.0));
        assert_eq!(h.quantile(1.0), Some(100.0));
    }

    /// Same recordings ⇒ byte-identical quantile columns (the TSV path
    /// the determinism suite depends on).
    #[test]
    fn quantiles_are_deterministic_in_tsv() {
        let run = || {
            let mut m = MetricsRegistry::new();
            for i in 0..37 {
                m.hist_record("x.lat_ms", (i % 11) as f64 * 0.7 + 0.05);
            }
            m.to_tsv()
        };
        assert_eq!(run(), run());
    }
}
