//! Trace validation: parses a JSONL export back and checks that it is a
//! well-formed span trace (`trace_report --check` and the determinism
//! tests build on this).
//!
//! A trace is valid iff every line parses as a JSON object, events carry
//! the fields their `ev` kind requires, sequence numbers are the line
//! indices, every `close` matches the innermost open span (strict LIFO),
//! timestamps are monotone non-decreasing, and no span is left open at
//! end of input.
//!
//! Span nesting, LIFO discipline and timestamp monotonicity are checked
//! **per correlation context** ([`TraceContext`], the optional trailing
//! `"ctx"` member): a merged service trace interleaves the supervisor's
//! own events with per-job worker segments whose manual clocks each
//! started at zero, so span ids collide and timestamps rewind *between*
//! contexts while staying well-formed *within* each. Untagged traces
//! have a single context (`None`) and validate exactly as before.

use std::collections::BTreeMap;

use crate::json::{self, Json};
use crate::tracer::TraceContext;

/// One reconstructed span (open + close pair).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRec {
    /// Span id as recorded.
    pub id: u64,
    /// Enclosing span id (0 at top level).
    pub parent: u64,
    /// Span name.
    pub name: String,
    /// Timestamp of the open event, nanoseconds.
    pub t_open_ns: u64,
    /// Timestamp of the close event, nanoseconds.
    pub t_close_ns: u64,
    /// Structured fields recorded at open.
    pub fields: Vec<(String, String)>,
    /// Correlation context (`None` = service-level / untagged).
    pub ctx: Option<TraceContext>,
}

impl SpanRec {
    /// Span duration (close − open), nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.t_close_ns.saturating_sub(self.t_open_ns)
    }
}

/// The result of validating a trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Every completed span, in order of the *open* events.
    pub spans: Vec<SpanRec>,
    /// Number of point events.
    pub points: usize,
    /// Total number of events (lines).
    pub events: usize,
}

impl TraceSummary {
    /// The spans with the given parent id, in open order.
    pub fn children_of(&self, parent: u64) -> Vec<&SpanRec> {
        self.spans.iter().filter(|s| s.parent == parent).collect()
    }

    /// Distinct span names, in first-seen order.
    pub fn span_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for s in &self.spans {
            if !names.contains(&s.name.as_str()) {
                names.push(&s.name);
            }
        }
        names
    }

    /// Distinct job ids among tagged spans, in first-seen order.
    pub fn jobs(&self) -> Vec<&str> {
        let mut jobs: Vec<&str> = Vec::new();
        for s in &self.spans {
            if let Some(ctx) = &s.ctx {
                if !jobs.contains(&ctx.job.as_str()) {
                    jobs.push(&ctx.job);
                }
            }
        }
        jobs
    }
}

/// Parses the optional `"ctx"` member of an event line.
///
/// # Errors
/// A message naming the line when `ctx` is present but malformed.
pub fn parse_ctx(obj: &Json, line: usize) -> Result<Option<TraceContext>, String> {
    match obj.get("ctx") {
        None => Ok(None),
        Some(ctx @ Json::Obj(_)) => {
            let job = ctx
                .get("job")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("line {line}: ctx missing string `job`"))?;
            let attempt = ctx
                .get("attempt")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("line {line}: ctx missing integer `attempt`"))?;
            let epoch = ctx
                .get("epoch")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("line {line}: ctx missing integer `epoch`"))?;
            if attempt > u32::MAX as u64 {
                return Err(format!("line {line}: ctx attempt {attempt} out of range"));
            }
            Ok(Some(TraceContext::new(job, attempt as u32, epoch)))
        }
        Some(other) => Err(format!("line {line}: `ctx` is not an object: {other:?}")),
    }
}

fn get_u64(obj: &Json, key: &str, line: usize) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("line {line}: missing or non-integer `{key}`"))
}

fn get_str<'j>(obj: &'j Json, key: &str, line: usize) -> Result<&'j str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("line {line}: missing or non-string `{key}`"))
}

fn get_fields(obj: &Json, line: usize) -> Result<Vec<(String, String)>, String> {
    match obj.get("fields") {
        None => Ok(Vec::new()),
        Some(Json::Obj(members)) => members
            .iter()
            .map(|(k, v)| match v {
                Json::Str(s) => Ok((k.clone(), s.clone())),
                other => Err(format!(
                    "line {line}: field `{k}` is not a string: {other:?}"
                )),
            })
            .collect(),
        Some(other) => Err(format!("line {line}: `fields` is not an object: {other:?}")),
    }
}

/// Validates a JSONL trace and reconstructs its spans.
///
/// # Errors
/// A human-readable message naming the first offending line.
pub fn check_trace(jsonl: &str) -> Result<TraceSummary, String> {
    check_trace_lines(jsonl.lines().map(|l| Ok(l.to_string())))
}

/// Per-context validation state: pending open spans, innermost last
/// (as `(index into spans, id)`), and the monotonicity watermark.
#[derive(Default)]
struct Group {
    stack: Vec<(usize, u64)>,
    last_t_ns: u64,
}

/// Streaming trace validation state, fed one line at a time. Peak
/// memory is the reconstructed spans, never the raw JSONL — this is
/// what lets `trace_report` check multi-gigabyte merged service traces
/// line-at-a-time.
#[derive(Default)]
pub struct TraceChecker {
    groups: BTreeMap<Option<TraceContext>, Group>,
    spans: Vec<SpanRec>,
    points: usize,
    events: usize,
}

impl TraceChecker {
    /// A checker with no lines consumed yet.
    pub fn new() -> Self {
        TraceChecker::default()
    }

    /// Consumes the next line. `last` marks the final line of the input
    /// so a trailing parse failure can be diagnosed as a truncated
    /// write.
    ///
    /// # Errors
    /// A message naming the offending line; the checker must not be fed
    /// further lines after an error.
    pub fn feed(&mut self, line: &str, last: bool) -> Result<(), String> {
        let idx = self.events;
        let lineno = idx + 1;
        if line.trim().is_empty() {
            return Err(format!("line {lineno}: empty line in trace"));
        }
        let obj = json::parse(line).map_err(|e| {
            // A parse failure on the *final* line of a file that does not
            // end in `}` is the signature of a write interrupted mid-line
            // (crash, kill -9, full disk). Name that case explicitly so
            // `trace_report --check` tells the operator what happened
            // instead of surfacing a bare parse error.
            if last && !line.trim_end().ends_with('}') {
                format!(
                    "line {lineno}: final line is truncated (interrupted write?) — \
                     recover by dropping it and re-checking: {e}"
                )
            } else {
                format!("line {lineno}: {e}")
            }
        })?;
        if !matches!(obj, Json::Obj(_)) {
            return Err(format!("line {lineno}: event is not a JSON object"));
        }
        self.events += 1;

        let seq = get_u64(&obj, "seq", lineno)?;
        if seq != idx as u64 {
            return Err(format!(
                "line {lineno}: seq {seq} does not match line index {idx}"
            ));
        }
        let t_ns = get_u64(&obj, "t_ns", lineno)?;
        let ctx = parse_ctx(&obj, lineno)?;
        let group = self.groups.entry(ctx.clone()).or_default();
        if t_ns < group.last_t_ns {
            return Err(format!(
                "line {lineno}: timestamp {t_ns} goes backwards (previous {} in the same context)",
                group.last_t_ns
            ));
        }
        group.last_t_ns = t_ns;

        match get_str(&obj, "ev", lineno)? {
            "open" => {
                let id = get_u64(&obj, "id", lineno)?;
                if id == 0 {
                    return Err(format!("line {lineno}: span id 0 is reserved"));
                }
                let parent = get_u64(&obj, "parent", lineno)?;
                let expected_parent = group.stack.last().map_or(0, |&(_, id)| id);
                if parent != expected_parent {
                    return Err(format!(
                        "line {lineno}: span {id} claims parent {parent} but innermost open span is {expected_parent}"
                    ));
                }
                let name = get_str(&obj, "name", lineno)?.to_string();
                let fields = get_fields(&obj, lineno)?;
                group.stack.push((self.spans.len(), id));
                self.spans.push(SpanRec {
                    id,
                    parent,
                    name,
                    t_open_ns: t_ns,
                    t_close_ns: t_ns,
                    fields,
                    ctx,
                });
            }
            "close" => {
                let id = get_u64(&obj, "id", lineno)?;
                match group.stack.pop() {
                    Some((slot, open_id)) if open_id == id => {
                        self.spans[slot].t_close_ns = t_ns;
                    }
                    Some((_, open_id)) => {
                        return Err(format!(
                            "line {lineno}: close of span {id} but innermost open span is {open_id} (not LIFO)"
                        ));
                    }
                    None => {
                        return Err(format!(
                            "line {lineno}: close of span {id} with no span open"
                        ));
                    }
                }
            }
            "point" => {
                get_str(&obj, "name", lineno)?;
                get_fields(&obj, lineno)?;
                self.points += 1;
            }
            other => return Err(format!("line {lineno}: unknown event kind `{other}`")),
        }
        Ok(())
    }

    /// Finishes validation: every span must be closed.
    ///
    /// # Errors
    /// Names the first never-closed span.
    pub fn finish(self) -> Result<TraceSummary, String> {
        for group in self.groups.values() {
            if let Some(&(slot, id)) = group.stack.last() {
                return Err(format!(
                    "span {id} (`{}`) is never closed",
                    self.spans[slot].name
                ));
            }
        }
        Ok(TraceSummary {
            spans: self.spans,
            points: self.points,
            events: self.events,
        })
    }
}

/// Validates a trace supplied as a fallible line iterator (e.g.
/// [`std::io::BufRead::lines`]), holding only one raw line in memory at
/// a time. [`check_trace`] is this over an in-memory string.
///
/// # Errors
/// An I/O error reading a line, or the first validation failure.
pub fn check_trace_lines<I>(lines: I) -> Result<TraceSummary, String>
where
    I: Iterator<Item = Result<String, std::io::Error>>,
{
    let mut checker = TraceChecker::new();
    let mut lines = lines.peekable();
    while let Some(line) = lines.next() {
        let line = line.map_err(|e| format!("read error: {e}"))?;
        checker.feed(&line, lines.peek().is_none())?;
    }
    checker.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;

    #[test]
    fn accepts_a_real_trace_and_reconstructs_it() {
        let t = Tracer::manual();
        {
            let _a = t.span("tuner.step");
            t.advance_s(0.25);
            {
                let _b = t.span_with("model.fit", || vec![("rows", "32".to_string())]);
                t.advance_s(0.25);
            }
            t.point("measure.retry");
        }
        let summary = check_trace(&t.to_jsonl()).expect("valid");
        assert_eq!(summary.events, 5);
        assert_eq!(summary.points, 1);
        assert_eq!(summary.span_names(), vec!["tuner.step", "model.fit"]);
        let fit = &summary.spans[1];
        assert_eq!(fit.fields, vec![("rows".to_string(), "32".to_string())]);
        assert_eq!(fit.dur_ns(), 250_000_000);
        assert_eq!(summary.children_of(summary.spans[0].id).len(), 1);
    }

    #[test]
    fn rejects_unbalanced_and_malformed_traces() {
        // Unclosed span.
        let open = r#"{"seq":0,"ev":"open","id":1,"parent":0,"name":"a","t_ns":0,"fields":{}}"#;
        let err = check_trace(open).unwrap_err();
        assert!(err.contains("never closed"), "{err}");

        // Close without open.
        let close = r#"{"seq":0,"ev":"close","id":1,"t_ns":0}"#;
        assert!(check_trace(close).unwrap_err().contains("no span open"));

        // Non-LIFO close.
        let bad = [
            r#"{"seq":0,"ev":"open","id":1,"parent":0,"name":"a","t_ns":0,"fields":{}}"#,
            r#"{"seq":1,"ev":"open","id":2,"parent":1,"name":"b","t_ns":0,"fields":{}}"#,
            r#"{"seq":2,"ev":"close","id":1,"t_ns":0}"#,
        ]
        .join("\n");
        assert!(check_trace(&bad).unwrap_err().contains("not LIFO"));

        // Wrong parent claim.
        let orphan = [
            r#"{"seq":0,"ev":"open","id":1,"parent":0,"name":"a","t_ns":0,"fields":{}}"#,
            r#"{"seq":1,"ev":"open","id":2,"parent":7,"name":"b","t_ns":0,"fields":{}}"#,
        ]
        .join("\n");
        assert!(check_trace(&orphan).unwrap_err().contains("claims parent"));

        // Bad seq numbering.
        let seq = r#"{"seq":5,"ev":"point","name":"p","t_ns":0,"fields":{}}"#;
        assert!(check_trace(seq).unwrap_err().contains("seq"));

        // Time going backwards.
        let back = [
            r#"{"seq":0,"ev":"point","name":"p","t_ns":10,"fields":{}}"#,
            r#"{"seq":1,"ev":"point","name":"q","t_ns":5,"fields":{}}"#,
        ]
        .join("\n");
        assert!(check_trace(&back).unwrap_err().contains("backwards"));

        // Not JSON at all.
        assert!(check_trace("not json").is_err());
    }

    #[test]
    fn truncated_final_line_gets_a_specific_message() {
        // A valid point event followed by a line cut off mid-write.
        let trace = [
            r#"{"seq":0,"ev":"point","name":"p","t_ns":0,"fields":{}}"#,
            r#"{"seq":1,"ev":"poi"#,
        ]
        .join("\n");
        let err = check_trace(&trace).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
        assert!(err.contains("interrupted write"), "{err}");
        assert!(err.contains("line 2"), "{err}");

        // A malformed line that is NOT last keeps the plain parse error.
        let trace = [
            r#"{"seq":0,"ev":"poi"#,
            r#"{"seq":1,"ev":"point","name":"p","t_ns":0,"fields":{}}"#,
        ]
        .join("\n");
        let err = check_trace(&trace).unwrap_err();
        assert!(!err.contains("truncated"), "{err}");
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn contexts_validate_independently_in_a_merged_trace() {
        // Service events at t=50 interleaved with a job segment whose
        // manual clock restarted at 0 and whose span id collides with
        // the service span: valid per-context, invalid globally.
        let ctx = r#","ctx":{"job":"a","attempt":0,"epoch":1}"#;
        let merged = [
            r#"{"seq":0,"ev":"open","id":1,"parent":0,"name":"serve.run","t_ns":50,"fields":{}}"#.to_string(),
            format!(r#"{{"seq":1,"ev":"open","id":1,"parent":0,"name":"tuner.step","t_ns":0,"fields":{{}}{ctx}}}"#),
            format!(r#"{{"seq":2,"ev":"close","id":1,"t_ns":7{ctx}}}"#),
            r#"{"seq":3,"ev":"close","id":1,"t_ns":60}"#.to_string(),
        ]
        .join("\n");
        let summary = check_trace(&merged).expect("per-context validation accepts the merge");
        assert_eq!(summary.spans.len(), 2);
        assert_eq!(summary.jobs(), vec!["a"]);
        let tagged = summary.spans.iter().find(|s| s.ctx.is_some()).unwrap();
        assert_eq!(tagged.dur_ns(), 7);
        assert_eq!(tagged.ctx.as_ref().unwrap().job, "a");

        // Within one context the old rules still bite: a backwards
        // timestamp *inside* the job segment is rejected.
        let bad = [
            format!(r#"{{"seq":0,"ev":"point","name":"p","t_ns":9,"fields":{{}}{ctx}}}"#),
            format!(r#"{{"seq":1,"ev":"point","name":"q","t_ns":3,"fields":{{}}{ctx}}}"#),
        ]
        .join("\n");
        assert!(check_trace(&bad).unwrap_err().contains("backwards"));

        // A malformed ctx is named, not ignored.
        let malformed =
            r#"{"seq":0,"ev":"point","name":"p","t_ns":0,"fields":{},"ctx":{"job":"a"}}"#;
        assert!(check_trace(malformed).unwrap_err().contains("attempt"));
    }

    #[test]
    fn empty_trace_is_valid_and_empty() {
        let s = check_trace("").expect("empty ok");
        assert_eq!(s, TraceSummary::default());
    }

    #[test]
    fn streaming_checker_matches_whole_string_validation() {
        let t = Tracer::manual();
        {
            let _a = t.span("tuner.step");
            t.advance_s(0.5);
            t.point("measure.retry");
        }
        let jsonl = t.to_jsonl();
        let streamed = check_trace_lines(jsonl.lines().map(|l| Ok(l.to_string()))).expect("valid");
        assert_eq!(streamed, check_trace(&jsonl).expect("valid"));

        // The truncated-final-line diagnosis survives streaming: the
        // checker only knows "last" via lookahead, not a line count.
        let truncated = [
            r#"{"seq":0,"ev":"point","name":"p","t_ns":0,"fields":{}}"#,
            r#"{"seq":1,"ev":"poi"#,
        ];
        let err = check_trace_lines(truncated.iter().map(|l| Ok((*l).to_string()))).unwrap_err();
        assert!(err.contains("truncated"), "{err}");

        // An I/O error mid-stream is surfaced, not swallowed.
        let io_err = check_trace_lines(std::iter::once(Err(std::io::Error::other("disk gone"))))
            .unwrap_err();
        assert!(io_err.contains("disk gone"), "{io_err}");
    }
}
