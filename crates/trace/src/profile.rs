//! Hierarchical profile reports: a flamegraph-style text tree of where
//! time went, either built directly from known totals (the tuner's
//! `TuneTiming`) or aggregated from a validated trace.

use crate::check::TraceSummary;

/// One node of the profile tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileNode {
    /// Display name (span or layer name).
    pub name: String,
    /// Total seconds attributed to this node, children included.
    pub total_s: f64,
    /// Number of times the span was entered (0 = not applicable).
    pub count: u64,
    /// Optional annotation rendered after the timing.
    pub note: String,
    /// Child nodes, in insertion order.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// A leaf node.
    pub fn new(name: &str, total_s: f64) -> Self {
        ProfileNode {
            name: name.to_string(),
            total_s,
            count: 0,
            note: String::new(),
            children: Vec::new(),
        }
    }

    /// Builder: sets the annotation.
    #[must_use]
    pub fn with_note(mut self, note: &str) -> Self {
        self.note = note.to_string();
        self
    }

    /// Builder: sets the entry count.
    #[must_use]
    pub fn with_count(mut self, count: u64) -> Self {
        self.count = count;
        self
    }

    /// Adds a child and returns `self` for chaining.
    pub fn push(&mut self, child: ProfileNode) -> &mut Self {
        self.children.push(child);
        self
    }

    /// Seconds not covered by any child (`total - Σ children`), clamped
    /// at zero.
    pub fn self_s(&self) -> f64 {
        let covered: f64 = self.children.iter().map(|c| c.total_s).sum();
        (self.total_s - covered).max(0.0)
    }

    /// Renders the tree with box-drawing branches, percentages relative
    /// to this (root) node, and `self` rows for interior nodes whose
    /// children don't account for all their time.
    ///
    /// ```text
    /// tune 12.000s 100.0%
    /// ├─ cga.evolve 3.000s 25.0% (x40)
    /// ├─ model.fit 1.000s 8.3%
    /// └─ measure.hw 8.000s 66.7%
    /// ```
    pub fn render(&self) -> String {
        let root_total = if self.total_s > 0.0 {
            self.total_s
        } else {
            1.0
        };
        let mut out = String::new();
        out.push_str(&self.row_text(root_total));
        out.push('\n');
        render_children(&self.children, "", root_total, &mut out);
        out
    }

    fn row_text(&self, root_total: f64) -> String {
        let pct = 100.0 * self.total_s / root_total;
        let mut row = format!("{} {:.3}s {:.1}%", self.name, self.total_s, pct);
        if self.count > 0 {
            row.push_str(&format!(" (x{})", self.count));
        }
        if !self.note.is_empty() {
            row.push_str(&format!(" [{}]", self.note));
        }
        row
    }
}

fn render_children(children: &[ProfileNode], prefix: &str, root_total: f64, out: &mut String) {
    for (i, child) in children.iter().enumerate() {
        let last = i + 1 == children.len();
        let branch = if last { "└─ " } else { "├─ " };
        out.push_str(prefix);
        out.push_str(branch);
        out.push_str(&child.row_text(root_total));
        out.push('\n');
        let child_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
        if !child.children.is_empty() {
            render_children(&child.children, &child_prefix, root_total, out);
            // An explicit self-time row when the children leave a gap.
            let self_s = child.self_s();
            if self_s > 1e-9 {
                out.push_str(&child_prefix);
                out.push_str("└─ ");
                out.push_str(&ProfileNode::new("(self)", self_s).row_text(root_total));
                out.push('\n');
            }
        }
    }
}

/// Aggregates a validated trace into a profile tree: spans with the same
/// name under the same parent-name path are merged, their durations
/// summed and entries counted. The synthetic root spans the whole trace.
///
/// Parent/child resolution is correlation-context-aware: in a merged
/// service trace span ids restart per worker segment, so a child must
/// match its parent's `ctx` as well as its id — top-level spans from
/// every context merge by name under the root.
pub fn profile_from_summary(summary: &TraceSummary) -> ProfileNode {
    let total_ns = summary
        .spans
        .iter()
        .filter(|s| s.parent == 0)
        .map(super::check::SpanRec::dur_ns)
        .sum::<u64>();
    let mut root = ProfileNode::new("trace", total_ns as f64 / 1e9);
    // Merge top-level spans (across contexts) by name, preserving
    // first-seen order, then recurse within each span's own context.
    for span in summary.spans.iter().filter(|s| s.parent == 0) {
        let node = merge_child(&mut root, &span.name, span.dur_ns());
        aggregate_children(summary, span, node);
    }
    root
}

fn merge_child<'a>(into: &'a mut ProfileNode, name: &str, dur_ns: u64) -> &'a mut ProfileNode {
    let dur_s = dur_ns as f64 / 1e9;
    match into.children.iter_mut().position(|c| c.name == name) {
        Some(i) => {
            into.children[i].total_s += dur_s;
            into.children[i].count += 1;
            &mut into.children[i]
        }
        None => {
            into.children
                .push(ProfileNode::new(name, dur_s).with_count(1));
            into.children.last_mut().expect("just pushed")
        }
    }
}

fn aggregate_children(
    summary: &TraceSummary,
    parent: &super::check::SpanRec,
    into: &mut ProfileNode,
) {
    for span in summary
        .spans
        .iter()
        .filter(|s| s.parent == parent.id && s.ctx == parent.ctx)
    {
        let node = merge_child(into, &span.name, span.dur_ns());
        aggregate_children(summary, span, node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_trace;
    use crate::tracer::Tracer;

    #[test]
    fn render_shows_tree_percentages_and_self_time() {
        let mut root = ProfileNode::new("tune", 12.0);
        let mut evolve = ProfileNode::new("cga.evolve", 3.0).with_count(40);
        evolve.push(ProfileNode::new("cga.crossover", 1.0));
        root.push(evolve);
        root.push(ProfileNode::new("measure.hw", 8.0).with_note("simulated"));
        let text = root.render();
        assert!(text.starts_with("tune 12.000s 100.0%\n"), "{text}");
        assert!(text.contains("├─ cga.evolve 3.000s 25.0% (x40)"), "{text}");
        assert!(text.contains("│  └─ cga.crossover 1.000s 8.3%"), "{text}");
        // evolve's children cover 1.0 of 3.0 → a (self) row for 2.0.
        assert!(text.contains("└─ (self) 2.000s 16.7%"), "{text}");
        assert!(
            text.contains("└─ measure.hw 8.000s 66.7% [simulated]"),
            "{text}"
        );
    }

    #[test]
    fn self_time_never_negative_and_zero_total_renders() {
        let mut n = ProfileNode::new("n", 1.0);
        n.push(ProfileNode::new("big", 5.0));
        assert_eq!(n.self_s(), 0.0);
        let z = ProfileNode::new("zero", 0.0);
        assert!(z.render().contains("zero 0.000s"));
    }

    #[test]
    fn aggregates_repeated_spans_from_a_trace() {
        let t = Tracer::manual();
        for _ in 0..3 {
            let _step = t.span("tuner.step");
            {
                let _e = t.span("cga.evolve");
                t.advance_s(1.0);
            }
            {
                let _m = t.span("measure.batch");
                t.advance_s(2.0);
            }
        }
        let summary = check_trace(&t.to_jsonl()).expect("valid");
        let prof = profile_from_summary(&summary);
        assert_eq!(prof.name, "trace");
        assert!((prof.total_s - 9.0).abs() < 1e-9);
        assert_eq!(prof.children.len(), 1);
        let step = &prof.children[0];
        assert_eq!(step.name, "tuner.step");
        assert_eq!(step.count, 3);
        assert!((step.total_s - 9.0).abs() < 1e-9);
        let evolve = step
            .children
            .iter()
            .find(|c| c.name == "cga.evolve")
            .unwrap();
        assert_eq!(evolve.count, 3);
        assert!((evolve.total_s - 3.0).abs() < 1e-9);
        assert!(step.self_s() < 1e-9);
    }
}
