//! The span tracer: structured, append-only events with nested spans,
//! point events, and an embedded metrics registry.
//!
//! # Design
//!
//! A [`Tracer`] is a cheap handle (`Option<Rc<RefCell<…>>>`). The
//! disabled tracer is `None`: every operation early-returns after one
//! branch, so instrumented code can call the tracer unconditionally in
//! hot paths without measurable cost (verified by the
//! `trace_overhead` micro-bench). Callers that would *allocate* to build
//! an event (dynamic names, field strings) should guard with
//! [`Tracer::is_enabled`] or use the closure-taking `*_with` variants,
//! which never invoke the closure when disabled.
//!
//! # Determinism
//!
//! Events are appended in program order; the sequence number is the
//! event's index. Nothing in the tracer consumes session RNG, so tracing
//! a run cannot change it. With a [`Clock::manual`] clock, timestamps
//! advance only by explicitly charged simulated seconds and the whole
//! JSONL export is byte-identical across same-seed runs; with a real
//! clock, [`normalize_jsonl`] zeroes the `t_ns` fields so the *event
//! sequence and fields* can still be compared byte-for-byte.

use std::cell::RefCell;
use std::rc::Rc;

use crate::clock::Clock;
use crate::json::{escape, Json};
use crate::metrics::MetricsRegistry;
use crate::ring::{RingBuf, RING_SCHEMA};

/// Correlation context stamped on every event recorded while it is set:
/// which service job, which attempt, which supervisor epoch produced
/// the event. A service worker sets the context right after building
/// its session, so every span/point the session emits carries it into
/// the JSONL export (as a trailing `"ctx"` member) and a merged service
/// trace can be split back into per-job sub-traces (`slice_by_job`).
/// Untagged events (context unset) are service-level.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct TraceContext {
    /// Job id the event belongs to.
    pub job: String,
    /// Attempt number (0 = first run; increments per recovery).
    pub attempt: u32,
    /// Supervisor epoch the attempt was started under.
    pub epoch: u64,
}

impl TraceContext {
    /// A context for one attempt of one job.
    pub fn new(job: impl Into<String>, attempt: u32, epoch: u64) -> Self {
        TraceContext {
            job: job.into(),
            attempt,
            epoch,
        }
    }

    /// The canonical JSON spelling: `{"job":…,"attempt":…,"epoch":…}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"job\":\"{}\",\"attempt\":{},\"epoch\":{}}}",
            escape(&self.job),
            self.attempt,
            self.epoch
        )
    }
}

/// One recorded trace event. The event's sequence number is its index in
/// the tracer's event list.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A span opened.
    Open {
        /// Span id (1-based; 0 is the root "no parent" sentinel).
        id: u64,
        /// Id of the enclosing span (0 at top level).
        parent: u64,
        /// Span name, `layer.noun_verb`.
        name: String,
        /// Clock timestamp at open, nanoseconds.
        t_ns: u64,
        /// Structured fields rendered at open time.
        fields: Vec<(&'static str, String)>,
    },
    /// A span closed (LIFO with respect to `Open`).
    Close {
        /// Id of the span being closed.
        id: u64,
        /// Clock timestamp at close, nanoseconds.
        t_ns: u64,
    },
    /// An instantaneous event.
    Point {
        /// Event name, `layer.noun_verb`.
        name: String,
        /// Clock timestamp, nanoseconds.
        t_ns: u64,
        /// Structured fields.
        fields: Vec<(&'static str, String)>,
    },
}

#[derive(Debug)]
struct Inner {
    clock: Clock,
    events: Vec<Event>,
    /// Per-event correlation context, parallel to `events`.
    event_ctx: Vec<Option<TraceContext>>,
    /// Context stamped on events recorded from now on.
    ctx: Option<TraceContext>,
    /// Ids of currently open spans, innermost last.
    stack: Vec<u64>,
    next_id: u64,
    metrics: MetricsRegistry,
    /// Flight-recorder sink (`None` = ring disabled).
    ring: Option<RingBuf>,
}

impl Inner {
    fn push_event(&mut self, ev: Event) {
        // A safe eviction cut point: a top-level open or point. (At this
        // call site the stack holds the depth *before* an open and
        // *after* a close, so `is_empty` is exactly "recorded with no
        // span open".)
        let boundary = self.stack.is_empty() && !matches!(ev, Event::Close { .. });
        if let Some(ring) = &mut self.ring {
            if ring.ring_only {
                let dropped = ring.push(ev, self.ctx.clone(), boundary);
                if dropped > 0 {
                    self.metrics.counter_add("trace.ring_evicted", dropped);
                }
                return;
            }
            let dropped = ring.push(ev.clone(), self.ctx.clone(), boundary);
            if dropped > 0 {
                self.metrics.counter_add("trace.ring_evicted", dropped);
            }
        }
        self.events.push(ev);
        self.event_ctx.push(self.ctx.clone());
    }
}

/// A handle to a trace session. Clones share the same underlying
/// session; [`Tracer::disabled`] is a no-op handle.
#[derive(Debug, Clone, Default)]
pub struct Tracer(Option<Rc<RefCell<Inner>>>);

impl Tracer {
    /// The no-op tracer: every operation returns immediately.
    pub fn disabled() -> Self {
        Tracer(None)
    }

    /// An enabled tracer over the given clock.
    pub fn enabled(clock: Clock) -> Self {
        Tracer(Some(Rc::new(RefCell::new(Inner {
            clock,
            events: Vec::new(),
            event_ctx: Vec::new(),
            ctx: None,
            stack: Vec::new(),
            next_id: 0,
            metrics: MetricsRegistry::new(),
            ring: None,
        }))))
    }

    /// An enabled tracer on the monotonic wall clock.
    pub fn real() -> Self {
        Tracer::enabled(Clock::real())
    }

    /// An enabled tracer on the simulated clock (deterministic
    /// timestamps; used by tests).
    pub fn manual() -> Self {
        Tracer::enabled(Clock::manual())
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Opens a span; the returned guard closes it on drop (LIFO).
    #[inline]
    pub fn span(&self, name: &str) -> SpanGuard {
        self.open_span(name, Vec::new())
    }

    /// Opens a span with fields; the closure is only invoked when the
    /// tracer is enabled, so building field strings is free when
    /// disabled.
    #[inline]
    pub fn span_with<F, I>(&self, name: &str, fields: F) -> SpanGuard
    where
        F: FnOnce() -> I,
        I: IntoIterator<Item = (&'static str, String)>,
    {
        if self.0.is_none() {
            return SpanGuard {
                tracer: Tracer(None),
                id: 0,
            };
        }
        self.open_span(name, fields().into_iter().collect())
    }

    fn open_span(&self, name: &str, fields: Vec<(&'static str, String)>) -> SpanGuard {
        let Some(inner) = &self.0 else {
            return SpanGuard {
                tracer: Tracer(None),
                id: 0,
            };
        };
        let mut inner = inner.borrow_mut();
        inner.next_id += 1;
        let id = inner.next_id;
        let parent = inner.stack.last().copied().unwrap_or(0);
        let t_ns = inner.clock.now_ns();
        inner.push_event(Event::Open {
            id,
            parent,
            name: name.to_string(),
            t_ns,
            fields,
        });
        inner.stack.push(id);
        SpanGuard {
            tracer: self.clone(),
            id,
        }
    }

    fn close_span(&self, id: u64) {
        let Some(inner) = &self.0 else { return };
        let mut inner = inner.borrow_mut();
        // Defensive: close any spans left open above `id` (guards dropped
        // out of order only on panic unwind).
        while let Some(top) = inner.stack.pop() {
            let t_ns = inner.clock.now_ns();
            inner.push_event(Event::Close { id: top, t_ns });
            if top == id {
                break;
            }
        }
    }

    /// Records an instantaneous event.
    #[inline]
    pub fn point(&self, name: &str) {
        if self.0.is_none() {
            return;
        }
        self.record_point(name, Vec::new());
    }

    /// Records an instantaneous event with fields; the closure only runs
    /// when enabled.
    #[inline]
    pub fn point_with<F, I>(&self, name: &str, fields: F)
    where
        F: FnOnce() -> I,
        I: IntoIterator<Item = (&'static str, String)>,
    {
        if self.0.is_none() {
            return;
        }
        self.record_point(name, fields().into_iter().collect());
    }

    fn record_point(&self, name: &str, fields: Vec<(&'static str, String)>) {
        let Some(inner) = &self.0 else { return };
        let mut inner = inner.borrow_mut();
        let t_ns = inner.clock.now_ns();
        inner.push_event(Event::Point {
            name: name.to_string(),
            t_ns,
            fields,
        });
    }

    /// Sets (or clears, with `None`) the correlation context stamped on
    /// every event recorded from now on. Already-recorded events keep
    /// the context they were recorded under. No-op when disabled.
    pub fn set_context(&self, ctx: Option<TraceContext>) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().ctx = ctx;
        }
    }

    /// The currently set correlation context (`None` when unset or
    /// disabled).
    pub fn context(&self) -> Option<TraceContext> {
        self.0.as_ref().and_then(|i| i.borrow().ctx.clone())
    }

    /// The tracer clock's current reading in nanoseconds (0 when
    /// disabled). On a manual clock this is the total simulated time
    /// charged so far — the session's simulated wall-clock.
    pub fn now_ns(&self) -> u64 {
        self.0.as_ref().map_or(0, |i| i.borrow().clock.now_ns())
    }

    /// Adds `n` to a named counter.
    #[inline]
    pub fn counter_add(&self, name: &str, n: u64) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().metrics.counter_add(name, n);
        }
    }

    /// Sets a named gauge.
    #[inline]
    pub fn gauge_set(&self, name: &str, v: f64) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().metrics.gauge_set(name, v);
        }
    }

    /// Accumulates into a named gauge.
    #[inline]
    pub fn gauge_add(&self, name: &str, v: f64) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().metrics.gauge_add(name, v);
        }
    }

    /// Records a value into a named histogram.
    #[inline]
    pub fn hist_record(&self, name: &str, v: f64) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().metrics.hist_record(name, v);
        }
    }

    /// Advances the simulated clock by `seconds` (no-op on a real clock
    /// or a disabled tracer). The tuner charges simulated hardware time
    /// here so manual-clock traces carry the deployment timeline.
    #[inline]
    pub fn advance_s(&self, seconds: f64) {
        if let Some(inner) = &self.0 {
            let ns = (seconds.max(0.0) * 1e9).round() as u64;
            inner.borrow_mut().clock.advance_ns(ns);
        }
    }

    /// Enables the flight-recorder ring sink with the given capacity
    /// (clamped to ≥ 1). With `ring_only = false` (mirror mode) the
    /// unbounded event log is kept unchanged and the ring records the
    /// most recent events alongside it; with `ring_only = true` the
    /// ring *replaces* the event log, bounding memory for long-lived
    /// runs — [`Tracer::to_jsonl`] then exports the retained suffix,
    /// re-sequenced from 0 (still a valid trace). Evictions increment
    /// the `trace.ring_evicted` counter. Call before opening spans so
    /// the ring starts on a safe cut point; no-op when disabled.
    pub fn set_ring(&self, capacity: usize, ring_only: bool) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().ring = Some(RingBuf::new(capacity, ring_only));
        }
    }

    /// Whether a ring sink is attached.
    pub fn has_ring(&self) -> bool {
        self.0.as_ref().is_some_and(|i| i.borrow().ring.is_some())
    }

    /// Total events evicted from the ring so far (0 without a ring).
    pub fn ring_evicted(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |i| i.borrow().ring.as_ref().map_or(0, |r| r.evicted))
    }

    /// Number of events currently retained in the ring (0 without one).
    pub fn ring_len(&self) -> usize {
        self.0
            .as_ref()
            .map_or(0, |i| i.borrow().ring.as_ref().map_or(0, RingBuf::len))
    }

    /// The `heron-ring-v1` snapshot: a header line carrying capacity,
    /// eviction count, retained-event count and the clock reading,
    /// followed by the retained events re-sequenced from 0 (the body
    /// alone is a valid trace — see [`crate::check_ring_snapshot`]).
    /// Empty string when disabled or no ring is attached.
    pub fn ring_snapshot_jsonl(&self) -> String {
        let Some(inner) = &self.0 else {
            return String::new();
        };
        let inner = inner.borrow();
        let Some(ring) = &inner.ring else {
            return String::new();
        };
        let mut out = format!(
            "{{\"schema\":\"{RING_SCHEMA}\",\"capacity\":{},\"evicted\":{},\"events\":{},\"now_ns\":{}}}\n",
            ring.capacity,
            ring.evicted,
            ring.len(),
            inner.clock.now_ns()
        );
        for (seq, (ev, ctx)) in ring.iter().enumerate() {
            out.push_str(&event_json(seq, ev, ctx));
            out.push('\n');
        }
        out
    }

    /// Number of recorded events (0 when disabled). In ring-only mode
    /// this is the total recorded — evicted plus retained — not the
    /// retained count.
    pub fn event_count(&self) -> usize {
        self.0.as_ref().map_or(0, |i| {
            let inner = i.borrow();
            match &inner.ring {
                Some(ring) if ring.ring_only => ring.evicted as usize + ring.len(),
                _ => inner.events.len(),
            }
        })
    }

    /// Number of registered metric instruments (0 when disabled).
    pub fn metrics_len(&self) -> usize {
        self.0.as_ref().map_or(0, |i| i.borrow().metrics.len())
    }

    /// Current value of a named counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.0
            .as_ref()
            .and_then(|i| i.borrow().metrics.counter(name))
    }

    /// Current value of a named gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.0.as_ref().and_then(|i| i.borrow().metrics.gauge(name))
    }

    /// A clone of the recorded events (empty when disabled; the
    /// retained suffix in ring-only mode).
    pub fn events(&self) -> Vec<Event> {
        self.0.as_ref().map_or_else(Vec::new, |i| {
            let inner = i.borrow();
            match &inner.ring {
                Some(ring) if ring.ring_only => ring.iter().map(|(ev, _)| ev.clone()).collect(),
                _ => inner.events.clone(),
            }
        })
    }

    /// The JSONL export: one event object per line, in sequence order.
    /// Empty string when disabled. In ring-only mode this is the
    /// retained suffix, re-sequenced from 0 — still a valid trace.
    pub fn to_jsonl(&self) -> String {
        let Some(inner) = &self.0 else {
            return String::new();
        };
        let inner = inner.borrow();
        let mut out = String::new();
        if let Some(ring) = &inner.ring {
            if ring.ring_only {
                for (seq, (ev, ctx)) in ring.iter().enumerate() {
                    out.push_str(&event_json(seq, ev, ctx));
                    out.push('\n');
                }
                return out;
            }
        }
        for (seq, ev) in inner.events.iter().enumerate() {
            out.push_str(&event_json(seq, ev, inner.event_ctx[seq].as_ref()));
            out.push('\n');
        }
        out
    }

    /// The metrics registry snapshot as TSV (header only when disabled).
    pub fn metrics_tsv(&self) -> String {
        match &self.0 {
            Some(inner) => inner.borrow().metrics.to_tsv(),
            None => MetricsRegistry::new().to_tsv(),
        }
    }

    /// Writes the JSONL export to `path`.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_jsonl(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// Writes the metrics TSV snapshot to `path`.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_metrics_tsv(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.metrics_tsv())
    }
}

/// RAII guard closing its span on drop.
#[derive(Debug)]
pub struct SpanGuard {
    tracer: Tracer,
    id: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id != 0 {
            self.tracer.close_span(self.id);
        }
    }
}

fn fields_json(fields: &[(&'static str, String)]) -> String {
    let members: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", escape(k), escape(v)))
        .collect();
    format!("{{{}}}", members.join(","))
}

fn event_json(seq: usize, ev: &Event, ctx: Option<&TraceContext>) -> String {
    // The context is a *trailing* member, so untagged lines are exactly
    // the pre-context schema (backward compatible byte-for-byte).
    let ctx_suffix = ctx.map_or_else(String::new, |c| format!(",\"ctx\":{}", c.to_json()));
    match ev {
        Event::Open {
            id,
            parent,
            name,
            t_ns,
            fields,
        } => format!(
            "{{\"seq\":{seq},\"ev\":\"open\",\"id\":{id},\"parent\":{parent},\"name\":\"{}\",\"t_ns\":{t_ns},\"fields\":{}{ctx_suffix}}}",
            escape(name),
            fields_json(fields)
        ),
        Event::Close { id, t_ns } => {
            format!("{{\"seq\":{seq},\"ev\":\"close\",\"id\":{id},\"t_ns\":{t_ns}{ctx_suffix}}}")
        }
        Event::Point { name, t_ns, fields } => format!(
            "{{\"seq\":{seq},\"ev\":\"point\",\"name\":\"{}\",\"t_ns\":{t_ns},\"fields\":{}{ctx_suffix}}}",
            escape(name),
            fields_json(fields)
        ),
    }
}

/// Canonicalizes a JSONL trace for comparison: zeroes every top-level
/// `t_ns` value (the determinism contract excludes wall-clock
/// timestamps) and canonicalizes label ordering — `fields` members are
/// sorted by key and the `ctx` member is rewritten to its canonical
/// `{job, attempt, epoch}` order and moved to the end of the line — so
/// tagged real-clock traces from producers that order labels
/// differently compare byte-identical after normalization. Lines that
/// do not parse as JSON fall back to timestamp zeroing only.
pub fn normalize_jsonl(jsonl: &str) -> String {
    let mut out = String::with_capacity(jsonl.len());
    for line in jsonl.lines() {
        match crate::json::parse(line) {
            Ok(Json::Obj(members)) => {
                out.push_str(&Json::Obj(canonicalize_members(members)).render());
            }
            _ => out.push_str(&normalize_line(line)),
        }
        out.push('\n');
    }
    out
}

fn canonicalize_members(mut members: Vec<(String, Json)>) -> Vec<(String, Json)> {
    let mut ctx: Option<Json> = None;
    for (key, value) in &mut members {
        match key.as_str() {
            "t_ns" => *value = Json::Num(0.0),
            "fields" => {
                if let Json::Obj(fields) = value {
                    fields.sort_by(|a, b| a.0.cmp(&b.0));
                }
            }
            _ => {}
        }
    }
    if let Some(pos) = members.iter().position(|(k, _)| k == "ctx") {
        let (_, value) = members.remove(pos);
        ctx = Some(match value {
            Json::Obj(mut m) => {
                // Canonical order: job, attempt, epoch, then anything
                // else a future producer added, key-sorted.
                let rank = |k: &str| match k {
                    "job" => 0,
                    "attempt" => 1,
                    "epoch" => 2,
                    _ => 3,
                };
                m.sort_by(|a, b| rank(&a.0).cmp(&rank(&b.0)).then_with(|| a.0.cmp(&b.0)));
                Json::Obj(m)
            }
            other => other,
        });
    }
    if let Some(ctx) = ctx {
        members.push(("ctx".to_string(), ctx));
    }
    members
}

fn normalize_line(line: &str) -> String {
    const KEY: &str = "\"t_ns\":";
    let mut out = String::with_capacity(line.len());
    let mut rest = line;
    while let Some(idx) = rest.find(KEY) {
        let (head, tail) = rest.split_at(idx + KEY.len());
        out.push_str(head);
        out.push('0');
        let digits = tail.bytes().take_while(u8::is_ascii_digit).count();
        rest = &tail[digits..];
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_trace;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        {
            let _g = t.span("outer");
            let _h = t.span_with("inner", || vec![("k", "v".to_string())]);
            t.point("p");
            t.counter_add("c", 1);
            t.gauge_add("g", 1.0);
            t.hist_record("h", 1.0);
            t.advance_s(10.0);
        }
        assert!(!t.is_enabled());
        assert_eq!(t.event_count(), 0);
        assert_eq!(t.metrics_len(), 0);
        assert_eq!(t.to_jsonl(), "");
        assert_eq!(t.counter("c"), None);
    }

    #[test]
    fn spans_nest_and_balance() {
        let t = Tracer::manual();
        {
            let _a = t.span("tune.step");
            t.advance_s(1.0);
            {
                let _b = t.span_with("csp.solve", || vec![("n", "4".to_string())]);
                t.advance_s(0.5);
                t.point_with("measure.retry", || vec![("tag", "timeout".to_string())]);
            }
        }
        let jsonl = t.to_jsonl();
        let summary = check_trace(&jsonl).expect("valid trace");
        assert_eq!(summary.spans.len(), 2);
        assert_eq!(summary.points, 1);
        // Nested span has the outer as parent.
        let inner = summary
            .spans
            .iter()
            .find(|s| s.name == "csp.solve")
            .expect("inner span present");
        let outer = summary
            .spans
            .iter()
            .find(|s| s.name == "tune.step")
            .expect("outer span present");
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.parent, 0);
        // Manual clock: timestamps reflect charged seconds exactly.
        assert_eq!(inner.t_open_ns, 1_000_000_000);
        assert_eq!(inner.t_close_ns, 1_500_000_000);
        assert_eq!(outer.t_close_ns, 1_500_000_000);
    }

    #[test]
    fn manual_clock_traces_are_byte_identical() {
        let run = || {
            let t = Tracer::manual();
            let _g = t.span("a");
            t.advance_s(2.0);
            t.counter_add("x.count", 3);
            drop(_g);
            (t.to_jsonl(), t.metrics_tsv())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn normalize_zeroes_timestamps_only() {
        let t = Tracer::real();
        {
            let _g = t.span_with("s", || vec![("t_ns_like", "99".to_string())]);
            t.point("p");
        }
        let norm = normalize_jsonl(&t.to_jsonl());
        for line in norm.lines() {
            assert!(
                line.contains("\"t_ns\":0,") || line.contains("\"t_ns\":0}"),
                "{line}"
            );
        }
        // Field values survive normalization.
        assert!(norm.contains("\"t_ns_like\":\"99\""));
        // Normalized output still parses and balances.
        check_trace(&norm).expect("normalized trace stays valid");
    }

    #[test]
    fn panic_unwind_closes_orphan_spans() {
        let t = Tracer::manual();
        let outer = t.span("outer");
        let inner = t.span("inner");
        // Simulate out-of-order drop (as on unwind): outer first.
        drop(outer);
        drop(inner); // already closed defensively; must not double-close
        let summary = check_trace(&t.to_jsonl()).expect("balanced");
        assert_eq!(summary.spans.len(), 2);
    }

    #[test]
    fn context_tags_events_from_set_until_cleared() {
        let t = Tracer::manual();
        t.point("before");
        t.set_context(Some(TraceContext::new("g1", 1, 3)));
        assert_eq!(t.context(), Some(TraceContext::new("g1", 1, 3)));
        {
            let _g = t.span("tagged");
            t.advance_s(1.0);
        }
        t.set_context(None);
        t.point("after");
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert!(!lines[0].contains("\"ctx\""), "{}", lines[0]);
        for tagged in &lines[1..3] {
            assert!(
                tagged.ends_with(",\"ctx\":{\"job\":\"g1\",\"attempt\":1,\"epoch\":3}}"),
                "{tagged}"
            );
        }
        assert!(!lines[3].contains("\"ctx\""), "{}", lines[3]);
        // Tagged traces still validate.
        let summary = check_trace(&jsonl).expect("tagged trace is valid");
        assert_eq!(summary.spans.len(), 1);
        assert_eq!(
            summary.spans[0].ctx,
            Some(TraceContext::new("g1", 1, 3)),
            "span carries its context"
        );
    }

    #[test]
    fn normalize_canonicalizes_label_order_and_ctx() {
        // Two real-clock producers record the same events with fields in
        // different orders; after normalization they are byte-identical.
        let run = |swap: bool| {
            let t = Tracer::real();
            t.set_context(Some(TraceContext::new("j", 0, 1)));
            let fields = || {
                let mut f = vec![("a", "1".to_string()), ("b", "2".to_string())];
                if swap {
                    f.reverse();
                }
                f
            };
            {
                let _g = t.span_with("s", fields);
                t.point_with("p", fields);
            }
            t.to_jsonl()
        };
        let (x, y) = (run(false), run(true));
        assert_ne!(x, y, "raw field order differs");
        assert_eq!(normalize_jsonl(&x), normalize_jsonl(&y));
        check_trace(&normalize_jsonl(&x)).expect("normalized tagged trace stays valid");
    }

    #[test]
    fn metrics_shared_across_clones() {
        let t = Tracer::manual();
        let u = t.clone();
        t.counter_add("shared.count", 2);
        u.counter_add("shared.count", 3);
        assert_eq!(t.counter("shared.count"), Some(5));
        assert_eq!(u.metrics_len(), 1);
    }
}
