//! Property tests of the CGA offspring-repair loop (DESIGN.md §6).
//!
//! The contract: whatever `materialize_offspring` returns, the
//! chromosome always satisfies `CSP_initial` — repair only ever drops
//! *injected* crossover constraints, never constraints of the original
//! space — and repair succeeds whenever the initial space is
//! satisfiable (the fully relaxed offspring *is* `CSP_initial`).

use heron_core::explore::cga::{materialize_offspring, offspring_csp};
use heron_csp::{rand_sat, validate, SolvePolicy};
use heron_rng::HeronRng;
use heron_testkit::csp_corpus::{knife_edge_csp, single_solution_csp, unsat_csp};
use heron_testkit::{property_cases, Gen};
use heron_trace::Tracer;

fn solver_rng(g: &mut Gen) -> HeronRng {
    HeronRng::from_seed(g.int(0, i64::MAX) as u64)
}

/// Genuine Algorithm-3 offspring (crossover `IN`s + one mutation drop)
/// always materialise to a solution that validates against the
/// *initial* CSP, even when repair had to relax constraints.
#[test]
fn materialised_offspring_always_satisfy_initial() {
    property_cases("repair_offspring_valid", 32, |g| {
        let initial = knife_edge_csp(g);
        let mut rng = solver_rng(g);
        let parents = rand_sat(&initial, &mut rng, 2);
        let parents = parents.solutions;
        if parents.len() < 2 {
            return; // solver starved on this case; nothing to cross over
        }
        let key_vars = initial.tunables();
        let off = offspring_csp(&initial, &key_vars, &parents[0], &parents[1], &mut rng);
        let outcome = materialize_offspring(
            &initial,
            off,
            &mut rng,
            &SolvePolicy::default(),
            &Tracer::disabled(),
        );
        let sol = outcome
            .solution
            .expect("satisfiable initial space must always materialise");
        assert!(
            validate(&initial, &sol),
            "repaired offspring must satisfy CSP_initial"
        );
    });
}

/// Poisoned offspring — `IN` constraints pinning a tunable to a value
/// *outside its domain* — are repaired by dropping the injected
/// constraints, and the result still satisfies `CSP_initial`.
#[test]
fn poisoned_offspring_are_repaired() {
    property_cases("repair_poisoned_offspring", 32, |g| {
        let (initial, _expected) = single_solution_csp(g);
        let mut offspring = initial.clone();
        // Inject 1..=3 unsatisfiable INs (value far outside any domain).
        let tunables = initial.tunables();
        let poisons = g.index(1, 4);
        for i in 0..poisons {
            let v = tunables[g.index(0, tunables.len())];
            csp_poison(&mut offspring, v, 1_000 + i as i64);
        }
        let mut rng = solver_rng(g);
        let outcome = materialize_offspring(
            &initial,
            offspring,
            &mut rng,
            &SolvePolicy::default(),
            &Tracer::disabled(),
        );
        let sol = outcome
            .solution
            .expect("repair must recover: relaxing all injected INs leaves CSP_initial");
        assert!(outcome.relaxed >= 1, "at least one poison must be dropped");
        assert!(
            u64::from(outcome.relaxed) <= poisons as u64,
            "repair never drops more than the injected constraints"
        );
        assert!(validate(&initial, &sol));
    });
}

/// When even `CSP_initial` is infeasible, repair refuses to invent a
/// chromosome: the outcome is `None` after relaxing all injected
/// constraints.
#[test]
fn unrepairable_offspring_return_none() {
    property_cases("repair_unsat_initial", 32, |g| {
        let initial = unsat_csp(g);
        let mut offspring = initial.clone();
        if let Some(&v) = initial.tunables().first() {
            csp_poison(&mut offspring, v, 9_999);
        }
        let mut rng = solver_rng(g);
        let outcome = materialize_offspring(
            &initial,
            offspring,
            &mut rng,
            &SolvePolicy::fixed(256),
            &Tracer::disabled(),
        );
        assert!(
            outcome.solution.is_none(),
            "an UNSAT initial space admits no chromosome, repaired or not"
        );
    });
}

fn csp_poison(csp: &mut heron_csp::Csp, v: heron_csp::VarRef, value: i64) {
    csp.post_in(v, [value]);
}
