//! Property tests of constrained space generation: for arbitrary operator
//! shapes, Heron's spaces are satisfiable and every sample is valid on the
//! target DLA.

use heron_core::generate::{SpaceGenerator, SpaceOptions};
use heron_core::tuner::evaluate;
use heron_dla::{dlboost, v100, vta, Measurer};
use heron_tensor::ops;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn check_heron_space(spec: heron_dla::DlaSpec, dag: heron_tensor::Dag) -> Result<(), TestCaseError> {
    let space = SpaceGenerator::new(spec.clone())
        .generate_named(&dag, &SpaceOptions::heron(), "prop")
        .map_err(|e| TestCaseError::fail(format!("generation failed: {e}")))?;
    let mut rng = StdRng::seed_from_u64(13);
    let sols = heron_csp::rand_sat_with_budget(&space.csp, &mut rng, 4, 600);
    prop_assert!(!sols.is_empty(), "space unsatisfiable");
    let measurer = Measurer::new(spec);
    for sol in &sols {
        prop_assert!(heron_csp::validate(&space.csp, sol));
        let (kernel, m) = evaluate(&space, &measurer, sol)
            .map_err(|e| TestCaseError::fail(format!("Heron sample invalid: {e}")))?;
        prop_assert!(m.latency_s > 0.0);
        prop_assert!(kernel.grid >= 1);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary GEMM shapes (including primes and tiny dims) generate
    /// valid-by-construction TensorCore spaces.
    #[test]
    fn gemm_spaces_are_valid_on_v100(m in 1i64..3000, n in 1i64..3000, k in 1i64..3000) {
        check_heron_space(v100(), ops::gemm(m, n, k))?;
    }

    /// Arbitrary conv2d shapes generate valid spaces on every platform.
    #[test]
    fn conv_spaces_are_valid_everywhere(
        batch in 1i64..8,
        hw in 4i64..40,
        ci in 1i64..128,
        co in 1i64..128,
        kk in 1i64..4,
        pad in 0i64..2,
        stride in 1i64..3,
    ) {
        prop_assume!(hw + 2 * pad >= kk);
        let cfg = ops::Conv2dConfig::new(batch, hw, hw, ci, co, kk, kk, pad, stride);
        prop_assume!(cfg.out_height() >= 1);
        check_heron_space(v100(), ops::conv2d(cfg))?;
        check_heron_space(
            dlboost(),
            ops::conv2d(cfg.with_dtype(heron_tensor::DType::I8)),
        )?;
        check_heron_space(vta(), ops::conv2d(cfg.with_dtype(heron_tensor::DType::I8)))?;
    }

    /// BMM batch axes become grid dimensions without breaking validity.
    #[test]
    fn bmm_spaces_are_valid(b in 1i64..64, m in 1i64..512, n in 1i64..512, k in 1i64..512) {
        check_heron_space(v100(), ops::bmm(b, m, n, k))?;
    }
}
