//! Property tests of constrained space generation: for arbitrary operator
//! shapes, Heron's spaces are satisfiable and every sample is valid on the
//! target DLA. (heron-testkit harness; see DESIGN.md, "Zero-dependency &
//! determinism policy".)

use heron_core::generate::{SpaceGenerator, SpaceOptions};
use heron_core::tuner::evaluate;
use heron_dla::{dlboost, v100, vta, Measurer};
use heron_rng::HeronRng;
use heron_tensor::ops;
use heron_testkit::property_cases;

fn check_heron_space(spec: heron_dla::DlaSpec, dag: heron_tensor::Dag) {
    let space = SpaceGenerator::new(spec.clone())
        .generate_named(&dag, &SpaceOptions::heron(), "prop")
        .unwrap_or_else(|e| panic!("generation failed: {e}"));
    let mut rng = HeronRng::from_seed(13);
    let sols = heron_csp::rand_sat_with_budget(&space.csp, &mut rng, 4, 600).solutions;
    assert!(!sols.is_empty(), "space unsatisfiable");
    let measurer = Measurer::new(spec);
    for sol in &sols {
        assert!(heron_csp::validate(&space.csp, sol));
        let (kernel, m) = evaluate(&space, &measurer, sol)
            .unwrap_or_else(|e| panic!("Heron sample invalid: {e}"));
        assert!(m.latency_s > 0.0);
        assert!(kernel.grid >= 1);
    }
}

/// Arbitrary GEMM shapes (including primes and tiny dims) generate
/// valid-by-construction TensorCore spaces.
#[test]
fn gemm_spaces_are_valid_on_v100() {
    property_cases("gemm_spaces_are_valid_on_v100", 24, |g| {
        let m = g.int(1, 3000);
        let n = g.int(1, 3000);
        let k = g.int(1, 3000);
        check_heron_space(v100(), ops::gemm(m, n, k));
    });
}

/// Arbitrary conv2d shapes generate valid spaces on every platform.
#[test]
fn conv_spaces_are_valid_everywhere() {
    property_cases("conv_spaces_are_valid_everywhere", 24, |g| {
        let batch = g.int(1, 8);
        let hw = g.int(4, 40);
        let ci = g.int(1, 128);
        let co = g.int(1, 128);
        let kk = g.int(1, 4);
        let pad = g.int(0, 2);
        let stride = g.int(1, 3);
        if hw + 2 * pad < kk {
            return; // assume
        }
        let cfg = ops::Conv2dConfig::new(batch, hw, hw, ci, co, kk, kk, pad, stride);
        if cfg.out_height() < 1 {
            return; // assume
        }
        check_heron_space(v100(), ops::conv2d(cfg));
        check_heron_space(
            dlboost(),
            ops::conv2d(cfg.with_dtype(heron_tensor::DType::I8)),
        );
        check_heron_space(vta(), ops::conv2d(cfg.with_dtype(heron_tensor::DType::I8)));
    });
}

/// BMM batch axes become grid dimensions without breaking validity.
#[test]
fn bmm_spaces_are_valid() {
    property_cases("bmm_spaces_are_valid", 24, |g| {
        let b = g.int(1, 64);
        let m = g.int(1, 512);
        let n = g.int(1, 512);
        let k = g.int(1, 512);
        check_heron_space(v100(), ops::bmm(b, m, n, k));
    });
}
