//! Property tests of the corruption-proof checkpoint format
//! (DESIGN.md §6): a real checkpoint round-trips exactly, and **any**
//! random single-byte corruption — bit flip or truncation — is rejected
//! with `CheckpointError::Corrupt` before a single field is parsed.

use heron_core::generate::{SpaceGenerator, SpaceOptions};
use heron_core::tuner::{TuneConfig, Tuner};
use heron_core::{CheckpointError, TuneCheckpoint};
use heron_dla::{v100, Measurer};
use heron_tensor::ops;
use heron_testkit::property_cases;

/// One real checkpoint, produced by an actual short tuning session so
/// it exercises every section of the format (curve, samples,
/// survivors, error counts, robustness counters…).
fn real_checkpoint_text() -> String {
    let dag = ops::gemm(64, 64, 64);
    let space = SpaceGenerator::new(v100())
        .generate(&dag, &SpaceOptions::heron())
        .expect("generates");
    let mut tuner = Tuner::new(space, Measurer::new(v100()), TuneConfig::quick(6), 7);
    let _ = tuner.run();
    tuner.checkpoint().to_text()
}

#[test]
fn round_trip_is_exact_and_corruption_is_always_detected() {
    let text = real_checkpoint_text();

    // 1. Clean round-trip: parse → re-serialise is byte-identical.
    let ck = TuneCheckpoint::from_text(&text).expect("clean checkpoint parses");
    assert_eq!(
        ck.to_text(),
        text,
        "checkpoint serialisation must round-trip byte-for-byte"
    );

    // 2. Random single-byte bit flips are always `Corrupt` — never a
    //    silent success, never misreported as a version or field error.
    let bytes = text.as_bytes().to_vec();
    property_cases("checkpoint_bit_flip_rejected", 128, |g| {
        let pos = g.index(0, bytes.len());
        let bit = g.index(0, 8) as u32;
        let mut mutated = bytes.clone();
        mutated[pos] ^= 1u8 << bit;
        // The format is ASCII text; an arbitrary flip may produce
        // invalid UTF-8, which the loader also treats as corruption.
        let parsed = match String::from_utf8(mutated) {
            Ok(s) => TuneCheckpoint::from_text(&s),
            Err(_) => return, // load() maps invalid UTF-8 to Corrupt
        };
        match parsed {
            Err(CheckpointError::Corrupt { .. }) => {}
            Err(other) => {
                panic!("flip at byte {pos} bit {bit}: corruption misclassified as {other:?}")
            }
            Ok(_) => panic!("flip at byte {pos} bit {bit} went undetected"),
        }
    });

    // 3. Random truncations are always `Corrupt` (a prefix of a valid
    //    checkpoint never carries a valid footer).
    property_cases("checkpoint_truncation_rejected", 64, |g| {
        let cut = g.index(0, text.len()); // strictly shorter than full
        let truncated = &text[..floor_char_boundary(&text, cut)];
        match TuneCheckpoint::from_text(truncated) {
            Err(CheckpointError::Corrupt { .. }) => {}
            Err(other) => panic!("truncation at {cut}: misclassified as {other:?}"),
            Ok(_) => panic!("truncation at {cut} went undetected"),
        }
    });
}

/// Stable replacement for the unstable `str::floor_char_boundary`.
fn floor_char_boundary(s: &str, mut i: usize) -> usize {
    while i > 0 && !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}
