//! Heron: automatically constrained high-performance library generation for
//! deep learning accelerators — the paper's primary contribution.
//!
//! Two stages (paper Figure 3):
//!
//! * **Constrained space generation** ([`generate`]): static analysis of the
//!   tensor compute applies schedule generation rules (S1–S3 plus the
//!   Ansor-style rules) to build a schedule template, then constraint
//!   generation rules (C1–C6) to build `CSP_initial` — hundreds of variables
//!   and constraints that exactly characterise the DLA's limits.
//! * **Constrained space exploration** ([`explore`]): a constraint-based
//!   genetic algorithm (CGA) whose crossover and mutation operate on CSPs
//!   (adding/removing `IN` constraints on cost-model-selected key variables)
//!   so that *every* offspring is valid by construction; plus the baseline
//!   explorers the paper compares against (GA, SA, random, stochastic
//!   ranking, SAT-decoder, infeasibility-driven).
//!
//! The [`tuner`] module ties generation, exploration, the XGBoost-style cost
//! model and the DLA measurer into the full Algorithm-2 loop.
//!
//! # Example
//!
//! ```no_run
//! use heron_core::generate::{SpaceGenerator, SpaceOptions};
//! use heron_core::tuner::{TuneConfig, Tuner};
//! use heron_dla::{v100, Measurer};
//! use heron_tensor::ops;
//!
//! let dag = ops::gemm(1024, 1024, 1024);
//! let space = SpaceGenerator::new(v100()).generate(&dag, &SpaceOptions::heron()).unwrap();
//! let mut tuner = Tuner::new(space, Measurer::new(v100()), TuneConfig::quick(64), 42);
//! let best = tuner.run();
//! println!("best: {:.3} Gops", best.best_gflops);
//! ```

pub mod checkpoint;
pub mod control;
pub mod explore;
pub mod generate;
pub mod library;
pub mod model;
pub mod tuner;

pub use checkpoint::{CheckpointError, TuneCheckpoint};
pub use control::TunerControl;
pub use generate::{GeneratedSpace, SpaceGenerator, SpaceOptions};
pub use library::{KernelLibrary, LibraryEntry};
pub use model::CostModel;
pub use tuner::{EvalError, Termination, TuneConfig, TuneResult, Tuner};
