//! The cost model: GBDT over CSP-variable features.
//!
//! Features are the log-scaled values of *all* CSP variables — loop
//! lengths, footprints, vector widths, totals — which the paper notes are
//! available without compiling anything. The model predicts measured
//! throughput, and its gain-based feature importances select CGA's key
//! variables (Algorithm 3, Step 1).

use heron_cost::{Gbdt, GbdtParams};
use heron_csp::{Csp, Solution, VarRef};
use heron_rng::Rng;
use heron_trace::Tracer;

/// Cost model bound to one CSP's variable layout.
#[derive(Debug)]
pub struct CostModel {
    num_vars: usize,
    data_x: Vec<Vec<f64>>,
    data_y: Vec<f64>,
    model: Option<Gbdt>,
    params: GbdtParams,
    tracer: Tracer,
}

impl CostModel {
    /// Creates an empty model for the given CSP.
    pub fn new(csp: &Csp) -> Self {
        CostModel {
            num_vars: csp.num_vars(),
            data_x: Vec::new(),
            data_y: Vec::new(),
            model: None,
            params: GbdtParams::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a tracer: refits run under a `model.fit` span and record
    /// `model.fits` / `model.fit_ms`; predictions count `model.predicts`.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Log-scaled feature vector of a solution.
    pub fn featurize(&self, sol: &Solution) -> Vec<f64> {
        sol.values()
            .iter()
            .map(|&v| ((v.max(0)) as f64 + 1.0).ln())
            .collect()
    }

    /// Records one measured sample (`score` = throughput in Gops; invalid
    /// programs should be recorded with score 0).
    pub fn add_sample(&mut self, sol: &Solution, score: f64) {
        debug_assert_eq!(sol.values().len(), self.num_vars);
        self.data_x.push(self.featurize(sol));
        self.data_y.push(score);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.data_y.len()
    }

    /// Whether no samples have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.data_y.is_empty()
    }

    /// Refits the GBDT on all recorded samples (no-op with < 8 samples).
    pub fn fit<R: Rng>(&mut self, rng: &mut R) {
        if self.data_y.len() < 8 {
            return;
        }
        let span = self
            .tracer
            .span_with("model.fit", || [("samples", self.data_y.len().to_string())]);
        let wall = std::time::Instant::now();
        self.model = Some(Gbdt::fit_traced(
            &self.data_x,
            &self.data_y,
            &self.params,
            rng,
            &self.tracer,
        ));
        self.tracer.counter_add("model.fits", 1);
        self.tracer
            .hist_record("model.fit_ms", wall.elapsed().as_secs_f64() * 1e3);
        drop(span);
    }

    /// Predicted score for a solution (0 before the first fit).
    ///
    /// Predictions are sanitised at the source: a NaN coming out of the
    /// regressor (degenerate fit) is counted on `model.nan_predictions`
    /// and mapped to `-inf`, so it sorts strictly below every real
    /// fitness under `f64::total_cmp` instead of floating arbitrarily
    /// through truncation sorts.
    pub fn predict(&self, sol: &Solution) -> f64 {
        self.tracer.counter_add("model.predicts", 1);
        match &self.model {
            Some(m) => {
                let raw = m.predict(&self.featurize(sol));
                if raw.is_nan() {
                    self.tracer.counter_add("model.nan_predictions", 1);
                    f64::NEG_INFINITY
                } else {
                    raw.max(0.0)
                }
            }
            None => 0.0,
        }
    }

    /// Whether a fitted model is available.
    pub fn is_fitted(&self) -> bool {
        self.model.is_some()
    }

    /// The `k` most important variables by split gain (Algorithm 3 Step 1).
    /// Falls back to an empty vector before the first fit.
    pub fn key_variables(&self, k: usize) -> Vec<VarRef> {
        match &self.model {
            Some(m) => m.top_features(k).into_iter().map(VarRef).collect(),
            None => Vec::new(),
        }
    }

    /// Pairwise rank accuracy of the fitted model on the recorded samples
    /// (`None` before the first fit). The explorer consumes rankings, so
    /// this is the fidelity signal that matters.
    pub fn rank_accuracy(&self) -> Option<f64> {
        let model = self.model.as_ref()?;
        let preds = model.predict_batch(&self.data_x);
        Some(heron_cost::pairwise_rank_accuracy(&preds, &self.data_y))
    }

    /// Training-set fit quality `(rank accuracy, Spearman ρ)` of the
    /// fitted model, or `None` before the first fit. Both are computed on
    /// the same batch prediction pass, which is what the search-health log
    /// records after every refit.
    pub fn train_quality(&self) -> Option<(f64, f64)> {
        let model = self.model.as_ref()?;
        let preds = model.predict_batch(&self.data_x);
        Some((
            heron_cost::pairwise_rank_accuracy(&preds, &self.data_y),
            heron_cost::spearman_rho(&preds, &self.data_y),
        ))
    }

    /// The `k` highest gain-based feature importances as
    /// `(variable index, importance)` pairs, sorted by importance
    /// (descending) with variable index as the deterministic tiebreak.
    /// Empty before the first fit; zero-importance features are skipped.
    pub fn importance_topk(&self, k: usize) -> Vec<(u32, f64)> {
        let Some(m) = &self.model else {
            return Vec::new();
        };
        let mut pairs: Vec<(u32, f64)> = m
            .feature_importance()
            .into_iter()
            .enumerate()
            .filter(|(_, imp)| *imp > 0.0)
            .map(|(i, imp)| (i as u32, imp))
            .collect();
        pairs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs.truncate(k);
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heron_csp::{Domain, VarCategory};
    use heron_rng::HeronRng;

    fn csp2() -> Csp {
        let mut csp = Csp::new();
        csp.add_var("a", Domain::range(1, 64), VarCategory::Tunable);
        csp.add_var("b", Domain::range(1, 64), VarCategory::Tunable);
        csp
    }

    #[test]
    fn predicts_after_fit_and_ranks_keys() {
        let csp = csp2();
        let mut model = CostModel::new(&csp);
        let mut rng = HeronRng::from_seed(0);
        // score depends only on variable a.
        for a in 1..=32_i64 {
            for b in [1_i64, 8, 64] {
                let sol = Solution::new(vec![a, b]);
                model.add_sample(&sol, (a * a) as f64);
            }
        }
        model.fit(&mut rng);
        assert!(model.is_fitted());
        let lo = model.predict(&Solution::new(vec![2, 8]));
        let hi = model.predict(&Solution::new(vec![30, 8]));
        assert!(hi > lo, "prediction must follow the signal: {hi} vs {lo}");
        assert_eq!(model.key_variables(1), vec![VarRef(0)]);
        let acc = model.rank_accuracy().expect("fitted");
        assert!(acc > 0.9, "training rank accuracy too low: {acc}");
        let (acc2, rho) = model.train_quality().expect("fitted");
        assert_eq!(acc, acc2);
        assert!(rho > 0.9, "training spearman too low: {rho}");
        let top = model.importance_topk(2);
        assert_eq!(top[0].0, 0, "variable a carries the signal: {top:?}");
        assert!(top[0].1 > 0.0);
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn unfitted_model_is_neutral() {
        let csp = csp2();
        let mut model = CostModel::new(&csp);
        assert_eq!(model.predict(&Solution::new(vec![1, 1])), 0.0);
        assert!(model.key_variables(3).is_empty());
        let mut rng = HeronRng::from_seed(0);
        model.add_sample(&Solution::new(vec![1, 1]), 1.0);
        model.fit(&mut rng); // too few samples: still unfitted
        assert!(!model.is_fitted());
        assert_eq!(model.len(), 1);
    }
}
