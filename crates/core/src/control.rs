//! Cooperative session control for long-lived tuning services.
//!
//! A [`TunerControl`] is a cloneable, thread-safe handle shared between a
//! running [`crate::tuner::Tuner`] and whoever supervises it (the
//! `heron-serve` daemon, a CLI deadline, a test harness). The tuner
//! consults it **only at round boundaries** — exactly the granularity at
//! which [`crate::tuner::Tuner::checkpoint`] is bit-exact — so honouring
//! a preemption or cancellation request never tears a round in half and
//! never perturbs the deterministic RNG stream:
//!
//! * **preempt** — finish the current round, record
//!   [`crate::tuner::Termination::Preempted`] and stop; the session is
//!   expected to be checkpointed and resumed later. A *deadline* (a bound
//!   on the session's lifetime round counter) preempts through the same
//!   path, so `heron_cli --deadline-rounds` and a service-side preemption
//!   are indistinguishable to the tuner.
//! * **cancel** — finish the current round, record
//!   [`crate::tuner::Termination::Cancelled`] and stop; the session is
//!   being abandoned (e.g. its worker epoch was superseded after a hang)
//!   and no result will be collected from it.
//!
//! In the other direction the tuner publishes a **heartbeat**: a counter
//! bumped at every round boundary. A supervisor that polls the heartbeat
//! and sees it stand still while the worker thread is alive has detected
//! a hang (a stuck measurement, a runaway solve) and can fence the epoch
//! off and recover from the last checkpoint.
//!
//! All state is relaxed atomics behind one `Arc`: requests are sticky
//! level-triggered flags, not a synchronisation protocol, and the
//! heartbeat is a monotone progress counter — no ordering is implied
//! between them and any session data (results always travel through the
//! checkpoint or a channel, never through this handle).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug, Default)]
struct ControlInner {
    preempt: AtomicBool,
    cancel: AtomicBool,
    heartbeat: AtomicU64,
    /// Lifetime round bound; `0` means no deadline.
    deadline_rounds: AtomicU64,
}

/// Shared stop-token + heartbeat between a tuner and its supervisor.
///
/// Cheap to clone (one `Arc`); all clones observe the same state.
/// `Default` is an idle control: no requests, no deadline.
#[derive(Debug, Clone, Default)]
pub struct TunerControl {
    inner: Arc<ControlInner>,
}

impl TunerControl {
    /// A fresh idle control handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a cooperative preemption: the session stops at the next
    /// round boundary with [`crate::tuner::Termination::Preempted`].
    /// Sticky — there is no un-preempt; resume with a fresh control.
    pub fn request_preempt(&self) {
        self.inner.preempt.store(true, Ordering::Relaxed);
    }

    /// Whether preemption has been requested (or a deadline configured
    /// via [`TunerControl::set_deadline_rounds`] has been reached —
    /// callers that need the distinction check the deadline themselves).
    pub fn preempt_requested(&self) -> bool {
        self.inner.preempt.load(Ordering::Relaxed)
    }

    /// Requests a cooperative cancellation: the session stops at the next
    /// round boundary with [`crate::tuner::Termination::Cancelled`] and
    /// its results are to be discarded. Sticky.
    pub fn request_cancel(&self) {
        self.inner.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn cancel_requested(&self) -> bool {
        self.inner.cancel.load(Ordering::Relaxed)
    }

    /// Bounds the session's *lifetime* round counter (which survives
    /// checkpoint/resume): once `rounds_total >= rounds` the tuner
    /// preempts itself at the round boundary. `0` clears the deadline.
    pub fn set_deadline_rounds(&self, rounds: u64) {
        self.inner.deadline_rounds.store(rounds, Ordering::Relaxed);
    }

    /// The configured round deadline (`0` = none).
    pub fn deadline_rounds(&self) -> u64 {
        self.inner.deadline_rounds.load(Ordering::Relaxed)
    }

    /// Publishes one unit of progress (called by the tuner at every
    /// round boundary).
    pub fn beat(&self) {
        self.inner.heartbeat.fetch_add(1, Ordering::Relaxed);
    }

    /// The progress counter: strictly increases while the session makes
    /// progress; a supervisor polling an unchanged value on a live
    /// worker has detected a hang.
    pub fn heartbeat(&self) -> u64 {
        self.inner.heartbeat.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_flags_are_sticky_and_shared_across_clones() {
        let c = TunerControl::new();
        let c2 = c.clone();
        assert!(!c.preempt_requested());
        assert!(!c.cancel_requested());
        assert_eq!(c.deadline_rounds(), 0);
        c2.request_preempt();
        c2.request_cancel();
        c2.set_deadline_rounds(7);
        assert!(c.preempt_requested());
        assert!(c.cancel_requested());
        assert_eq!(c.deadline_rounds(), 7);
        c.set_deadline_rounds(0);
        assert_eq!(c2.deadline_rounds(), 0);
    }

    #[test]
    fn heartbeat_counts_beats_across_threads() {
        let c = TunerControl::new();
        let c2 = c.clone();
        let h = std::thread::spawn(move || {
            for _ in 0..100 {
                c2.beat();
            }
        });
        h.join().expect("joins");
        assert_eq!(c.heartbeat(), 100);
    }
}
