//! Kernel library generation: the end product of the paper's pipeline.
//!
//! A [`KernelLibrary`] maps workload signatures to their best tuned
//! configurations. It supports batch generation over a workload list,
//! lookup (with the lowered kernel reconstructed on demand), and a plain
//! text on-disk format so a generated library ships with an application
//! and is loaded without re-tuning — the "high-performance software
//! library with well-established APIs" of the paper's title.
//!
//! The text format is deliberately simple and diff-friendly:
//!
//! ```text
//! heron-library v1
//! [workload-key]
//! dla = v100
//! gflops = 56203.4
//! latency_s = 3.82e-5
//! var.tile.C.i0 = 16
//! var.tile.C.i1 = 8
//! …
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use heron_csp::Solution;
use heron_dla::Measurer;
use heron_sched::{lower, Kernel};
use heron_tensor::Dag;

use crate::generate::{GeneratedSpace, SpaceGenerator, SpaceOptions};
use crate::tuner::{TuneConfig, Tuner};

/// One tuned entry.
#[derive(Debug, Clone, PartialEq)]
pub struct LibraryEntry {
    /// Target platform name.
    pub dla: String,
    /// Achieved throughput, Gops.
    pub gflops: f64,
    /// Latency, seconds.
    pub latency_s: f64,
    /// Tunable-variable assignment by name (enough to reproduce the
    /// schedule deterministically through the CSP).
    pub tunables: BTreeMap<String, i64>,
}

/// A generated kernel library.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelLibrary {
    entries: BTreeMap<String, LibraryEntry>,
}

/// Errors from loading a library file.
#[derive(Debug)]
pub enum LibraryError {
    /// I/O failure.
    Io(std::io::Error),
    /// Malformed content.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for LibraryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LibraryError::Io(e) => write!(f, "library i/o error: {e}"),
            LibraryError::Parse { line, message } => {
                write!(f, "library parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for LibraryError {}

impl From<std::io::Error> for LibraryError {
    fn from(e: std::io::Error) -> Self {
        LibraryError::Io(e)
    }
}

impl KernelLibrary {
    /// Creates an empty library.
    pub fn new() -> Self {
        KernelLibrary::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry lookup.
    pub fn get(&self, key: &str) -> Option<&LibraryEntry> {
        self.entries.get(key)
    }

    /// Iterates over `(key, entry)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &LibraryEntry)> {
        self.entries.iter()
    }

    /// Inserts or replaces an entry (keeps the better of the two when one
    /// already exists).
    pub fn insert(&mut self, key: impl Into<String>, entry: LibraryEntry) {
        let key = key.into();
        match self.entries.get(&key) {
            Some(old) if old.gflops >= entry.gflops => {}
            _ => {
                self.entries.insert(key, entry);
            }
        }
    }

    /// Tunes `dag` for `spec` and records the result under `key`.
    /// Returns the entry, or `None` when no valid program was found (or
    /// the platform cannot run the operator).
    pub fn tune_and_insert(
        &mut self,
        key: &str,
        dag: &Dag,
        spec: &heron_dla::DlaSpec,
        config: TuneConfig,
        seed: u64,
    ) -> Option<&LibraryEntry> {
        let space = SpaceGenerator::new(spec.clone())
            .generate_named(dag, &SpaceOptions::heron(), key)
            .ok()?;
        let csp_tunables = space.csp.tunables();
        let csp = space.csp.clone();
        let mut tuner = Tuner::new(space, Measurer::new(spec.clone()), config, seed);
        let result = tuner.run();
        let sol = result.best_solution?;
        let tunables: BTreeMap<String, i64> = csp_tunables
            .iter()
            .map(|&v| (csp.var(v).name.clone(), sol.value(v)))
            .collect();
        self.insert(
            key,
            LibraryEntry {
                dla: spec.name.clone(),
                gflops: result.best_gflops,
                latency_s: result.best_latency_s,
                tunables,
            },
        );
        self.get(key)
    }

    /// Reconstructs the lowered kernel of an entry by pinning its tunables
    /// onto a freshly generated space and solving (deterministic: the
    /// tunables functionally determine every other variable).
    pub fn materialize(&self, key: &str, dag: &Dag, spec: &heron_dla::DlaSpec) -> Option<Kernel> {
        let entry = self.get(key)?;
        let space: GeneratedSpace = SpaceGenerator::new(spec.clone())
            .generate_named(dag, &SpaceOptions::heron(), key)
            .ok()?;
        let mut csp = space.csp.clone();
        for (name, value) in &entry.tunables {
            let var = csp.var_by_name(name)?;
            if !csp.var(var).domain.contains(*value) {
                return None;
            }
            csp.post_in(var, [*value]);
        }
        let mut rng = heron_rng::HeronRng::from_seed(0);
        let sol: Solution = heron_csp::rand_sat_with_budget(&csp, &mut rng, 1, 800).one()?;
        lower(&space.template, sol.fingerprint(), &|n| {
            sol.value_by_name(&csp, n)
        })
        .ok()
    }

    /// Serialises the library to its text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("heron-library v1\n");
        for (key, e) in &self.entries {
            out.push_str(&format!("[{key}]\n"));
            out.push_str(&format!("dla = {}\n", e.dla));
            out.push_str(&format!("gflops = {}\n", e.gflops));
            out.push_str(&format!("latency_s = {:e}\n", e.latency_s));
            for (name, value) in &e.tunables {
                out.push_str(&format!("var.{name} = {value}\n"));
            }
        }
        out
    }

    /// Parses the text format.
    ///
    /// # Errors
    /// Returns [`LibraryError::Parse`] on malformed input.
    pub fn from_text(text: &str) -> Result<Self, LibraryError> {
        let mut lines = text.lines().enumerate();
        let parse_err = |line: usize, message: &str| LibraryError::Parse {
            line: line + 1,
            message: message.to_string(),
        };
        match lines.next() {
            Some((_, "heron-library v1")) => {}
            _ => return Err(parse_err(0, "missing `heron-library v1` header")),
        }
        let mut lib = KernelLibrary::new();
        let mut current: Option<(String, LibraryEntry)> = None;
        for (ln, raw) in lines {
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(key) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                if let Some((k, e)) = current.take() {
                    lib.insert(k, e);
                }
                current = Some((
                    key.to_string(),
                    LibraryEntry {
                        dla: String::new(),
                        gflops: 0.0,
                        latency_s: 0.0,
                        tunables: BTreeMap::new(),
                    },
                ));
                continue;
            }
            let Some((field, value)) = line.split_once('=') else {
                return Err(parse_err(ln, "expected `field = value`"));
            };
            let (field, value) = (field.trim(), value.trim());
            let Some((_, entry)) = current.as_mut() else {
                return Err(parse_err(ln, "field before any [workload] section"));
            };
            match field {
                "dla" => entry.dla = value.to_string(),
                "gflops" => {
                    entry.gflops = value
                        .parse()
                        .map_err(|_| parse_err(ln, "bad gflops number"))?;
                }
                "latency_s" => {
                    entry.latency_s = value
                        .parse()
                        .map_err(|_| parse_err(ln, "bad latency number"))?;
                }
                other => {
                    let Some(name) = other.strip_prefix("var.") else {
                        return Err(parse_err(ln, "unknown field"));
                    };
                    let v: i64 = value
                        .parse()
                        .map_err(|_| parse_err(ln, "bad variable value"))?;
                    entry.tunables.insert(name.to_string(), v);
                }
            }
        }
        if let Some((k, e)) = current.take() {
            lib.insert(k, e);
        }
        Ok(lib)
    }

    /// Saves the library to a file.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), LibraryError> {
        std::fs::write(path, self.to_text())?;
        Ok(())
    }

    /// Loads a library from a file.
    ///
    /// # Errors
    /// Propagates I/O and parse failures.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, LibraryError> {
        let text = std::fs::read_to_string(path)?;
        KernelLibrary::from_text(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heron_dla::v100;
    use heron_tensor::ops;

    #[test]
    fn tune_insert_materialize_roundtrip() {
        let dag = ops::gemm(256, 256, 256);
        let spec = v100();
        let mut lib = KernelLibrary::new();
        let entry = lib
            .tune_and_insert("gemm-256", &dag, &spec, TuneConfig::quick(24), 5)
            .expect("tunes")
            .clone();
        assert!(entry.gflops > 0.0);
        assert!(!entry.tunables.is_empty());

        // Materialise and re-measure: identical latency up to measurement
        // noise (same deterministic simulator + same config fingerprint).
        let kernel = lib
            .materialize("gemm-256", &dag, &spec)
            .expect("materialises");
        let m = Measurer::new(spec);
        let meas = m.measure(&kernel).expect("valid");
        let rel = (meas.latency_s - entry.latency_s).abs() / entry.latency_s;
        assert!(rel < 0.05, "materialised kernel differs by {rel}");
    }

    #[test]
    fn text_roundtrip_preserves_everything() {
        let mut lib = KernelLibrary::new();
        lib.insert(
            "gemm-1",
            LibraryEntry {
                dla: "v100".into(),
                gflops: 1234.5,
                latency_s: 3.25e-5,
                tunables: BTreeMap::from([
                    ("tile.C.i0".to_string(), 16),
                    ("vec.A.shared".to_string(), 8),
                ]),
            },
        );
        let text = lib.to_text();
        let back = KernelLibrary::from_text(&text).expect("parses");
        assert_eq!(lib, back);
    }

    #[test]
    fn insert_keeps_the_better_entry() {
        let mut lib = KernelLibrary::new();
        let entry = |g: f64| LibraryEntry {
            dla: "v100".into(),
            gflops: g,
            latency_s: 1.0 / g,
            tunables: BTreeMap::new(),
        };
        lib.insert("k", entry(100.0));
        lib.insert("k", entry(50.0));
        assert_eq!(lib.get("k").expect("exists").gflops, 100.0);
        lib.insert("k", entry(200.0));
        assert_eq!(lib.get("k").expect("exists").gflops, 200.0);
        assert_eq!(lib.len(), 1);
    }

    #[test]
    fn parse_errors_are_located() {
        let bad = "heron-library v1\n[k]\nnonsense line\n";
        match KernelLibrary::from_text(bad) {
            Err(LibraryError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(KernelLibrary::from_text("wrong header").is_err());
    }
}
