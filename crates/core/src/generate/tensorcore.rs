//! Constrained-space construction for TensorCore-style GPUs.
//!
//! Builds the paper's five-stage pipeline (Equation 1):
//!
//! ```text
//! global --s1--> shared --s2--> fragments --s3(tensorized)--> acc --s4/s5--> global
//! ```
//!
//! with four-level spatial tiling (block / warp / serial / intrinsic),
//! three-level reduction tiling, tunable vector widths, `storage_align`
//! pads, compute_at locations for the shared loads (SELECT constraints),
//! and the full Rule-C1…C6 constraint set. A scalar (CUDA-core) variant of
//! the same structure serves both non-tensorizable operators (SCAN) and the
//! Ansor-like baseline.

use heron_csp::VarRef;
use heron_dla::{DlaSpec, GpuParams};
use heron_sched::template::{IntrinsicRef, KernelTemplate, StageSpec};
use heron_sched::{LoopSym, MemScope, StageRole, ThreadAxis};
use heron_tensor::{DType, Dag, IterKind};

use super::axes::MacView;
use super::builder::SpaceBuilder;
use super::{GeneratedSpace, SpaceOptions};

/// Builds the tensorized TensorCore space for a MAC-patterned operator.
pub fn build_tensorized(
    spec: &DlaSpec,
    gpu: &GpuParams,
    dag: &Dag,
    view: &MacView,
    opts: &SpaceOptions,
    workload: &str,
) -> GeneratedSpace {
    let mut b = SpaceBuilder::new();

    // ---- Architectural variables (Rule-C6 dedicated variables) ----------
    let m_cands: Vec<i64> = dedup_sorted(spec.intrinsic_shapes.iter().map(|s| s.0));
    let n_cands: Vec<i64> = dedup_sorted(spec.intrinsic_shapes.iter().map(|s| s.1));
    let k_cands: Vec<i64> = dedup_sorted(spec.intrinsic_shapes.iter().map(|s| s.2));
    let (m, n, k) = if opts.fixed_intrinsic {
        // AutoTVM-style template: hard-coded 16x16x16.
        (
            b.arch_const("m", 16),
            b.arch_const("n", 16),
            b.arch_const("k", 16),
        )
    } else {
        let m = b.arch_candidates("m", &m_cands);
        let n = b.arch_candidates("n", &n_cands);
        let k = b.arch_candidates("k", &k_cands);
        // m * n * k == product constraint (e.g. 4096 on wmma).
        let prod =
            spec.intrinsic_shapes[0].0 * spec.intrinsic_shapes[0].1 * spec.intrinsic_shapes[0].2;
        if spec
            .intrinsic_shapes
            .iter()
            .all(|s| s.0 * s.1 * s.2 == prod)
        {
            let mnk = b.arch_const("mnk", prod);
            b.csp.post_prod(mnk, vec![m, n, k]);
        }
        (m, n, k)
    };

    // ---- Compute stage with fused + tiled loops --------------------------
    // Tail-pad the fused extents to the *largest* legal intrinsic
    // dimension so that every (m, n, k) choice divides the padded extents
    // (awkward shapes such as M = 1000 would otherwise leave no feasible
    // intrinsic assignment).
    let (pad_m, pad_n, pad_k) = if opts.fixed_intrinsic {
        (16, 16, 16)
    } else {
        (
            *m_cands.last().unwrap_or(&8),
            *n_cands.last().unwrap_or(&8),
            *k_cands.last().unwrap_or(&8),
        )
    };
    let fused = fuse_mac_axes(&mut b, view, "C.wmma", pad_m, pad_n, pad_k, spec.in_dtype);
    let tc = "C.wmma";

    let i = b.tile_split(
        tc,
        "C.wmma.M",
        fused.m_ext,
        &["C.i0", "C.i1", "C.i2", "C.i3"],
    );
    let j = b.tile_split(
        tc,
        "C.wmma.N",
        fused.n_ext,
        &["C.j0", "C.j1", "C.j2", "C.j3"],
    );
    let r = b.tile_split(tc, "C.wmma.K", fused.k_ext, &["C.r0", "C.r1", "C.r2"]);
    // Intrinsic equalities: innermost tiles are the wmma shape.
    b.csp.post_eq(i[3], m);
    b.csp.post_eq(j[3], n);
    b.csp.post_eq(r[2], k);
    if opts.fixed_serial_level {
        // AutoTVM-style fixed structure: limited serial blocking.
        b.candidates(i[2], &[1, 2, 4]);
        b.candidates(j[2], &[1, 2, 4]);
        b.candidates(r[1], &[1, 2, 4]);
    }
    if opts.manual_bounds {
        // Hand-written template ranges: at most 4 warps per dimension and
        // modest reduction chunks keep nearly all samples valid at the
        // price of excluding the largest (often optimal) tiles.
        b.candidates(i[1], &[1, 2, 4]);
        b.candidates(j[1], &[1, 2, 4]);
    }

    b.state.reorder(
        tc,
        &[
            "C.i0", "C.j0", "C.i1", "C.j1", "C.r0", "C.r1", "C.i2", "C.j2", "C.i3", "C.j3", "C.r2",
        ],
    );
    b.state.bind(tc, "C.i0", ThreadAxis::BlockX);
    b.state.bind(tc, "C.j0", ThreadAxis::BlockY);
    b.state.bind(tc, "C.i1", ThreadAxis::ThreadY);
    b.state.bind(tc, "C.j1", ThreadAxis::ThreadY);
    b.state
        .tensorize(tc, &["C.i3", "C.j3", "C.r2"], "m", "n", "k");

    // ---- Launch geometry --------------------------------------------------
    let batch = b.arch_const("batch", fused.batch_ext);
    let _grid = b.prod("grid", &[batch, i[0], j[0]]);
    let warps = b.prod("warps", &[i[1], j[1]]);
    if opts.arch_constraints {
        let wl = b.constant(gpu.max_warps_per_block);
        b.csp.post_le(warps, wl);
    }

    // ---- Shared-memory load stages (Rules S2 + C4 + C5) ------------------
    let in_bytes = spec.in_dtype.bytes();
    let a_stage = shared_load_stage(
        &mut b,
        spec,
        opts,
        SharedLoad {
            tensor: "A",
            stage: "A.shared",
            fixed_dim: &[i[1], i[2], i[3]],
            dep_shallow: &[r[1], r[2]],
            dep_deep: r[2],
            contiguous_is_fixed: false,
            execs_shallow: r[0],
            execs_deep: &[r[0], r[1]],
            dtype: spec.in_dtype,
            max_row: fused.k_ext,
        },
    );
    let b_stage = shared_load_stage(
        &mut b,
        spec,
        opts,
        SharedLoad {
            tensor: "B",
            stage: "B.shared",
            fixed_dim: &[j[1], j[2], j[3]],
            dep_shallow: &[r[1], r[2]],
            dep_deep: r[2],
            contiguous_is_fixed: true,
            execs_shallow: r[0],
            execs_deep: &[r[0], r[1]],
            dtype: spec.in_dtype,
            max_row: fused.n_ext,
        },
    );
    if opts.arch_constraints {
        let cap = spec.capacity(MemScope::Shared).unwrap_or(48 * 1024);
        b.cap_total("smem.total", &[a_stage.bytes, b_stage.bytes], cap);
    }
    let _ = in_bytes;

    // ---- Fragment load stages (Rule S3: multi-scope SPM) -----------------
    let frag_a = fragment_stage(
        &mut b,
        spec,
        opts,
        "A.wmma",
        MemScope::FragA,
        &[i[2], i[3], r[2]],
        &[r[0], r[1], warps],
        &a_stage,
    );
    let frag_b = fragment_stage(
        &mut b,
        spec,
        opts,
        "B.wmma",
        MemScope::FragB,
        &[r[2], j[2], j[3]],
        &[r[0], r[1], warps],
        &b_stage,
    );

    // Accumulator fragments per warp (register budget).
    let acc_elems = b.prod("elems.C.frag", &[i[2], i[3], j[2], j[3]]);
    let acc_bytes = b.mem_limit("C.frag", MemScope::FragAcc, acc_elems, 4);
    if opts.register_constraints {
        let cap = spec.capacity(MemScope::FragAcc).unwrap_or(16 * 16 * 16 * 4);
        let capv = b.constant(cap as i64);
        b.csp.post_le(acc_bytes, capv);
    }

    // ---- Compute + store specs -------------------------------------------
    let intrin_execs = b.prod("intrin.C", &[warps, i[2], j[2], r[0], r[1]]);
    let unroll = b.tunable("unroll", &[0, 16, 64, 512]);
    b.state.unroll(tc, "unroll");

    // ---- Output path (Eq. 1 stages 4 and 5): TensorCores → shared →
    // global. Each warp drains one accumulator fragment at a time through a
    // small shared staging buffer (counted against the 48 KiB budget), so
    // coalesced vectorised stores reach global memory; the staging buffer's
    // row is storage_align-tunable like the input tiles.
    b.state.cache_write(
        "C",
        MemScope::Shared,
        "C.shared",
        MemScope::Global,
        DType::F32,
        vec![
            LoopSym::new("C.shared.rows".to_string(), IterKind::Spatial, "rows"),
            LoopSym::new("C.shared.cols".to_string(), IterKind::Spatial, "cols"),
        ],
    );
    let frag_elems = b.prod("elems.C.stage4", &[m, n]);
    let stage4_execs = b.prod("execs.C.stage4", &[warps, i[2], j[2]]);
    let out_pad = if opts.storage_align {
        let pad = b.tunable("pad.C.shared", &[0, 1, 2, 4, 8]);
        b.state.storage_align("C.shared", "pad.C.shared");
        pad
    } else {
        b.constant(opts.fixed_align_pad.unwrap_or(0))
    };
    let out_row = b.loop_twin("C.shared.cols.len", n);
    let padded_out_row = b.sum("prow.C.shared", &[out_row, out_pad]);
    let stage_buf_rows = b.prod("rows.C.shared", &[warps, m]);
    let stage_buf_elems = b.prod("belems.C.shared", &[stage_buf_rows, padded_out_row]);
    let cshared_bytes = b.mem_limit("C.shared", MemScope::Shared, stage_buf_elems, 4);
    if opts.arch_constraints {
        // The staging buffer shares the shared-memory budget with A and B.
        let cap = spec.capacity(MemScope::Shared).unwrap_or(48 * 1024);
        b.cap_total(
            "smem.total.out",
            &[a_stage.bytes, b_stage.bytes, cshared_bytes],
            cap,
        );
    }

    let store_elems = b.prod("elems.C.store", &[i[1], i[2], i[3], j[1], j[2], j[3]]);
    let vec_store = b.tunable("vec.C", &[1, 2, 4]);

    // ---- Assemble the kernel template -------------------------------------
    let mut template =
        KernelTemplate::from_state(&spec.name, workload, dag.total_flops(), &b.state);
    template.var_grid = "grid".into();
    template.var_threads = "warps".into();
    template.stages.push(a_stage.spec);
    template.stages.push(b_stage.spec);
    template.stages.push(frag_a);
    template.stages.push(frag_b);

    let mut compute = StageSpec::new(
        tc,
        StageRole::Compute,
        MemScope::FragA,
        MemScope::FragAcc,
        spec.in_dtype,
    );
    compute.intrinsic = Some(IntrinsicRef {
        m: "m".into(),
        n: "n".into(),
        k: "k".into(),
    });
    compute.var_intrinsic_execs = Some(b.name_of(intrin_execs));
    compute.var_unroll = Some(b.name_of(unroll));
    template.stages.push(compute);

    // Stage 4: accumulator fragments → shared staging buffer.
    let mut stage4 = StageSpec::new(
        "C.shared",
        StageRole::Store,
        MemScope::FragAcc,
        MemScope::Shared,
        DType::F32,
    );
    stage4.var_elems = Some(b.name_of(frag_elems));
    stage4.var_execs = Some(b.name_of(stage4_execs));
    stage4.var_row_elems = Some(b.name_of(out_row));
    stage4.var_align_pad = Some(b.name_of(out_pad));
    template.stages.push(stage4);

    // Stage 5: shared → global, vectorised and coalesced.
    let mut store = StageSpec::new(
        "C",
        StageRole::Store,
        MemScope::Shared,
        MemScope::Global,
        DType::F32,
    );
    store.var_elems = Some(b.name_of(store_elems));
    store.var_vector = Some(b.name_of(vec_store));
    template.stages.push(store);

    finish(b, template, spec, workload)
}

/// Builds the scalar (CUDA-core) GPU space: the Ansor-like template, also
/// used by Heron itself for non-tensorizable operators such as SCAN.
pub fn build_scalar(
    spec: &DlaSpec,
    gpu: &GpuParams,
    dag: &Dag,
    view: &MacView,
    opts: &SpaceOptions,
    workload: &str,
) -> GeneratedSpace {
    let mut b = SpaceBuilder::new();
    let fused = fuse_mac_axes(&mut b, view, "C", 1, 1, 1, spec.in_dtype);
    let tc = "C";

    let i = b.tile_split(tc, "C.M", fused.m_ext, &["C.i0", "C.i1", "C.i2", "C.i3"]);
    let j = b.tile_split(tc, "C.N", fused.n_ext, &["C.j0", "C.j1", "C.j2", "C.j3"]);
    let r = b.tile_split(tc, "C.K", fused.k_ext, &["C.r0", "C.r1"]);
    b.state.reorder(
        tc,
        &[
            "C.i0", "C.j0", "C.i1", "C.j1", "C.r0", "C.r1", "C.i2", "C.j2", "C.i3", "C.j3",
        ],
    );
    b.state.bind(tc, "C.i0", ThreadAxis::BlockX);
    b.state.bind(tc, "C.j0", ThreadAxis::BlockY);
    b.state.bind(tc, "C.i1", ThreadAxis::ThreadY);
    b.state.bind(tc, "C.j1", ThreadAxis::ThreadY);

    let batch = b.arch_const("batch", fused.batch_ext);
    let grid = b.prod("grid", &[batch, i[0], j[0]]);
    let warps = b.prod("warps", &[i[1], j[1]]);
    if opts.arch_constraints {
        let wl = b.constant(gpu.max_warps_per_block);
        b.csp.post_le(warps, wl);
    }
    let _ = grid;

    // Shared caches for both operands.
    let a_stage = shared_load_stage(
        &mut b,
        spec,
        opts,
        SharedLoad {
            tensor: "A",
            stage: "A.shared",
            fixed_dim: &[i[1], i[2], i[3]],
            dep_shallow: &[r[1]],
            dep_deep: r[1],
            contiguous_is_fixed: false,
            execs_shallow: r[0],
            execs_deep: &[r[0]],
            dtype: spec.in_dtype,
            max_row: fused.k_ext,
        },
    );
    let b_stage = shared_load_stage(
        &mut b,
        spec,
        opts,
        SharedLoad {
            tensor: "B",
            stage: "B.shared",
            fixed_dim: &[j[1], j[2], j[3]],
            dep_shallow: &[r[1]],
            dep_deep: r[1],
            contiguous_is_fixed: true,
            execs_shallow: r[0],
            execs_deep: &[r[0]],
            dtype: spec.in_dtype,
            max_row: fused.n_ext,
        },
    );
    if opts.arch_constraints {
        let cap = spec.capacity(MemScope::Shared).unwrap_or(48 * 1024);
        b.cap_total("smem.total", &[a_stage.bytes, b_stage.bytes], cap);
    }

    // Scalar arithmetic per block: 2 * blockM * blockN * K.
    let two = b.constant(2);
    let kc = b.constant(fused.k_ext);
    let scalar_ops = b.prod("scalar.C", &[two, i[1], i[2], i[3], j[1], j[2], j[3], kc]);
    let unroll = b.tunable("unroll", &[0, 16, 64, 512]);
    b.state.unroll(tc, "unroll");
    let store_elems = b.prod("elems.C.store", &[i[1], i[2], i[3], j[1], j[2], j[3]]);
    let vec_store = b.tunable("vec.C", &[1, 2, 4]);

    let mut template =
        KernelTemplate::from_state(&spec.name, workload, dag.total_flops(), &b.state);
    template.var_grid = "grid".into();
    template.var_threads = "warps".into();
    template.stages.push(a_stage.spec);
    template.stages.push(b_stage.spec);
    let mut compute = StageSpec::new(
        tc,
        StageRole::Compute,
        MemScope::Shared,
        MemScope::Register,
        DType::F32,
    );
    compute.var_scalar_ops = Some(b.name_of(scalar_ops));
    compute.var_unroll = Some(b.name_of(unroll));
    template.stages.push(compute);
    let mut store = StageSpec::new(
        "C.st",
        StageRole::Store,
        MemScope::Register,
        MemScope::Global,
        DType::F32,
    );
    store.var_elems = Some(b.name_of(store_elems));
    store.var_vector = Some(b.name_of(vec_store));
    template.stages.push(store);

    finish(b, template, spec, workload)
}

/// Fused MAC loop extents after padding.
pub(super) struct FusedMac {
    pub m_ext: i64,
    pub n_ext: i64,
    pub k_ext: i64,
    pub batch_ext: i64,
}

/// Creates the compute stage in the schedule state, logging the Rule-C2
/// fuse primitives that collapse the original operator axes into the fused
/// `M`, `N`, `K` loops (the implicit im2col view), and returns the padded
/// fused extents the tile splits operate on.
pub(super) fn fuse_mac_axes(
    b: &mut SpaceBuilder,
    view: &MacView,
    prefix: &str,
    m_base: i64,
    n_base: i64,
    k_base: i64,
    dtype: DType,
) -> FusedMac {
    // Initial loops: original axis names, except that single-axis groups are
    // born with their fused name directly (there is nothing to fuse).
    let group_names = [
        (&view.m_axes, format!("{prefix}.M"), IterKind::Spatial),
        (&view.n_axes, format!("{prefix}.N"), IterKind::Spatial),
        (&view.k_axes, format!("{prefix}.K"), IterKind::Reduce),
    ];
    let mut loops = Vec::new();
    for (axes, fused, kind) in &group_names {
        if axes.len() == 1 {
            loops.push(LoopSym::new(fused.clone(), *kind, axes[0].clone()));
        } else {
            for a in axes.iter() {
                loops.push(LoopSym::new(format!("{prefix}.{a}"), *kind, a.clone()));
            }
        }
    }
    b.state.add_stage(
        prefix,
        StageRole::Compute,
        MemScope::Global,
        MemScope::Global,
        dtype,
        loops,
    );
    // Declare the per-axis loop-length variables of the census (paper
    // Table 4: `stage.i6` et al.) and log the Rule-C2 fusions for
    // multi-axis groups, tying the fused product to the padded extent.
    for (name, ext) in &view.axis_extents {
        b.csp.add_var(
            format!("{prefix}.ax.{name}"),
            heron_csp::Domain::singleton(*ext),
            heron_csp::VarCategory::LoopLength,
        );
    }
    for ((axes, fused, _), base) in group_names.iter().zip([m_base, n_base, k_base]) {
        if axes.len() >= 2 {
            let names: Vec<String> = axes.iter().map(|a| format!("{prefix}.{a}")).collect();
            let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
            b.state.fuse(prefix, &name_refs, fused);
            // Rule-C2: fused-loop product, bounded by the padded extent.
            let parts: Vec<heron_csp::VarRef> = axes
                .iter()
                .filter_map(|a| b.csp.var_by_name(&format!("{prefix}.ax.{a}")))
                .collect();
            let orig = b.prod(&format!("{fused}.orig"), &parts);
            let padded_ext = super::axes::round_up(
                parts.iter().map(|p| b.csp.var(*p).domain.max()).product(),
                base,
            );
            let padded = b.constant(padded_ext);
            b.csp.post_le(orig, padded);
        }
    }
    FusedMac {
        m_ext: super::axes::round_up(view.m_extent, m_base),
        n_ext: super::axes::round_up(view.n_extent, n_base),
        k_ext: super::axes::round_up(view.k_extent, k_base),
        batch_ext: view.batch_extent,
    }
}

fn dedup_sorted(vals: impl Iterator<Item = i64>) -> Vec<i64> {
    let mut v: Vec<i64> = vals.collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Parameters for one global→shared load stage.
///
/// A shared tile has a *fixed* dimension (the operand's spatial tile: the
/// M block for `A`, the N block for `B`) and a *location-dependent*
/// dimension (the K chunk, which shrinks when the load is anchored deeper
/// in the reduction nest). Exactly one of the two is contiguous in memory:
/// the K chunk for row-major `A[M, K]`, the N tile for `B[K, N]`.
struct SharedLoad<'a> {
    tensor: &'a str,
    stage: &'a str,
    /// Variables whose product is the fixed (spatial) tile dimension.
    fixed_dim: &'a [VarRef],
    /// K-chunk factors when computed at the shallow location (`r0`).
    dep_shallow: &'a [VarRef],
    /// K-chunk variable at the deep location (`r1`), i.e. `r2`.
    dep_deep: VarRef,
    /// Whether the contiguous row is the fixed dimension (`B`) or the
    /// location-dependent K chunk (`A`).
    contiguous_is_fixed: bool,
    /// Executions per block at the shallow location (`r0`).
    execs_shallow: VarRef,
    /// Execution factors at the deep location (`r0 * r1`).
    execs_deep: &'a [VarRef],
    dtype: DType,
    /// Upper bound of the contiguous row length.
    max_row: i64,
}

/// Result of building a shared-load stage.
struct SharedStage {
    spec: StageSpec,
    bytes: VarRef,
}

/// Builds one shared-memory load stage with location SELECTs (Rule-C4),
/// footprint PRODs (Rule-C5), vector alignment and storage_align (Rule-C6).
#[allow(clippy::too_many_arguments)]
fn shared_load_stage(
    b: &mut SpaceBuilder,
    spec: &DlaSpec,
    opts: &SpaceOptions,
    p: SharedLoad<'_>,
) -> SharedStage {
    let st = p.stage;
    let parent = b
        .state
        .stages()
        .first()
        .map(|s| s.name.clone())
        .unwrap_or_default();
    b.state.cache_read(
        p.tensor,
        MemScope::Shared,
        st,
        MemScope::Global,
        p.dtype,
        vec![
            LoopSym::new(format!("{st}.rows"), IterKind::Spatial, "rows"),
            LoopSym::new(format!("{st}.cols"), IterKind::Spatial, "cols"),
        ],
    );

    let fixed = b.prod(&format!("fixdim.{st}"), p.fixed_dim);
    let dep_shallow = b.prod(&format!("kchunk.{st}.at0"), p.dep_shallow);
    let execs_deep = b.prod(&format!("execs.{st}.at1"), p.execs_deep);

    // The K chunk and execution count depend on the compute_at location
    // (Rule-C4); total traffic is invariant, but footprint and granularity
    // trade off.
    let (dep, execs) = if opts.tunable_locations {
        let loc = b.tunable(&format!("loc.{st}"), &[0, 1]);
        // Anchor in the schedule state when the parent has those loops.
        if b.state
            .stage(&parent)
            .is_some_and(|s| s.loops.iter().any(|l| l.name == "C.r0"))
        {
            b.state
                .compute_at(st, &parent, &format!("loc.{st}"), &["C.r0", "C.r1"]);
        }
        let dep = b.aux(&format!("kchunk.{st}"), 1, i64::from(u32::MAX));
        b.select(dep, loc, vec![dep_shallow, p.dep_deep]);
        let execs = b.aux(&format!("execs.{st}"), 1, i64::from(u32::MAX));
        b.select(execs, loc, vec![p.execs_shallow, execs_deep]);
        (dep, execs)
    } else {
        (dep_shallow, p.execs_shallow)
    };

    // Contiguous row of the tile, aliased under a stable name for the
    // template and the bank-conflict model.
    let row = b.aux(&format!("row.{st}"), 1, p.max_row);
    let contiguous = if p.contiguous_is_fixed { fixed } else { dep };
    b.csp.post_eq(row, contiguous);

    // Vectorised access width must divide the row (Rule-C6).
    let legal_vecs: Vec<i64> = spec.vector_lengths.clone();
    let vec = b.tunable(&format!("vec.{st}"), &legal_vecs);
    b.state.vectorize(st, &format!("vec.{st}"));
    if opts.arch_constraints {
        b.divides(vec, row, st);
    }

    // storage_align padding (Rule-C6 on TensorCore).
    let pad = if opts.storage_align {
        let pad = b.tunable(&format!("pad.{st}"), &[0, 1, 2, 4, 8]);
        b.state.storage_align(st, &format!("pad.{st}"));
        pad
    } else {
        b.constant(opts.fixed_align_pad.unwrap_or(0))
    };
    let padded_row = b.sum(&format!("prow.{st}"), &[row, pad]);

    // Footprints: transfer elements (unpadded) and buffer bytes (padded):
    // (#rows of the buffer) x (padded contiguous row).
    let elems = b.prod(&format!("elems.{st}"), &[fixed, dep]);
    let nrows = if p.contiguous_is_fixed { dep } else { fixed };
    let buf_elems = b.prod(&format!("belems.{st}"), &[nrows, padded_row]);
    let bytes = b.mem_limit(st, MemScope::Shared, buf_elems, p.dtype.bytes());

    // Per-stage loop-length variables (the cache stage's own nest).
    b.loop_twin(&format!("{st}.rows.len"), nrows);
    b.loop_twin(&format!("{st}.cols.len"), row);

    let mut spec_out = StageSpec::new(
        st,
        StageRole::Load,
        MemScope::Global,
        MemScope::Shared,
        p.dtype,
    );
    spec_out.var_elems = Some(b.name_of(elems));
    spec_out.var_execs = Some(b.name_of(execs));
    spec_out.var_vector = Some(b.name_of(vec));
    spec_out.var_align_pad = Some(b.name_of(pad));
    spec_out.var_row_elems = Some(b.name_of(row));
    SharedStage {
        spec: spec_out,
        bytes,
    }
}

/// Builds one shared→fragment load stage (Rule-S3 multi-scope SPM).
#[allow(clippy::too_many_arguments)]
fn fragment_stage(
    b: &mut SpaceBuilder,
    spec: &DlaSpec,
    opts: &SpaceOptions,
    name: &str,
    scope: MemScope,
    elem_factors: &[VarRef],
    exec_factors: &[VarRef],
    src: &SharedStage,
) -> StageSpec {
    b.state.cache_read(
        name.split('.').next().unwrap_or(name),
        scope,
        name,
        MemScope::Shared,
        spec.in_dtype,
        vec![LoopSym::new(format!("{name}.x"), IterKind::Spatial, "x")],
    );
    let elems = b.prod(&format!("elems.{name}"), elem_factors);
    let execs = b.prod(&format!("execs.{name}"), exec_factors);
    let bytes = b.mem_limit(name, scope, elems, spec.in_dtype.bytes());
    if opts.register_constraints {
        if let Some(cap) = spec.capacity(scope) {
            let capv = b.constant(cap as i64);
            b.csp.post_le(bytes, capv);
        }
    }
    b.loop_twin(&format!("{name}.x.len"), elems);
    let mut s = StageSpec::new(
        name,
        StageRole::Load,
        MemScope::Shared,
        scope,
        spec.in_dtype,
    );
    s.var_elems = Some(b.name_of(elems));
    s.var_execs = Some(b.name_of(execs));
    // Reads shared memory with the producer's row geometry: bank conflicts
    // depend on the shared buffer's stride and padding.
    s.var_row_elems = src.spec.var_row_elems.clone();
    s.var_align_pad = src.spec.var_align_pad.clone();
    s
}

/// Finalises the generated space.
fn finish(
    b: SpaceBuilder,
    mut template: KernelTemplate,
    spec: &DlaSpec,
    workload: &str,
) -> GeneratedSpace {
    template.buffers = b.buffers.clone();
    template.primitives = b.state.template().to_vec();
    template.tunables = b
        .csp
        .tunables()
        .iter()
        .map(|r| b.csp.var(*r).name.clone())
        .collect();
    GeneratedSpace {
        csp: b.csp,
        template,
        dla: spec.clone(),
        workload: workload.to_string(),
    }
}
