//! The space builder: a thin facade coupling the CSP, the symbolic schedule
//! state, and the kernel template so that every schedule decision and its
//! constraints stay consistent.
//!
//! The constraint generation rules C1–C6 are methods here:
//!
//! * [`SpaceBuilder::tile_split`] — Rule-C1 `AddLoopSplit` (PROD over the
//!   split parts, plus the paper's `tile.*` twin variables),
//! * [`SpaceBuilder::fuse_loops`] — Rule-C2 `AddLoopFuse`,
//! * [`SpaceBuilder::candidates`] — Rule-C3 `AddCandidates` (IN),
//! * [`SpaceBuilder::select`] — Rule-C4 `AddStageFuse` (SELECT over
//!   location-dependent loop lengths),
//! * [`SpaceBuilder::mem_limit`] — Rule-C5 `AddMemLimit` (PROD footprints,
//!   SUM totals, LE capacity),
//! * free-form constraints for Rule-C6 `AddDLASpecific`.

use std::collections::HashMap;

use heron_csp::{Csp, Domain, VarCategory, VarRef};
use heron_sched::template::BufferSpec;
use heron_sched::{MemScope, ScheduleState};

/// Builder accumulating the CSP and the schedule state side by side.
#[derive(Debug, Default)]
pub struct SpaceBuilder {
    /// The growing `CSP_initial`.
    pub csp: Csp,
    /// The growing symbolic schedule.
    pub state: ScheduleState,
    /// On-chip buffers registered so far (for the kernel template).
    pub buffers: Vec<BufferSpec>,
    consts: HashMap<i64, VarRef>,
}

impl SpaceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        SpaceBuilder::default()
    }

    /// A shared constant variable (named `const.<v>`), categorised as an
    /// architectural variable.
    pub fn constant(&mut self, v: i64) -> VarRef {
        if let Some(&r) = self.consts.get(&v) {
            return r;
        }
        let r = self.csp.add_const(format!("const.{v}"), v);
        self.consts.insert(v, r);
        r
    }

    /// A named constant in the Arch category (dedicated architectural
    /// variables such as `m`, `cap.shared`).
    pub fn arch_const(&mut self, name: &str, v: i64) -> VarRef {
        self.csp.add_const(name, v)
    }

    /// An architectural variable restricted to candidate values
    /// (Rule-C3, e.g. `m ∈ {8, 16, 32}`).
    pub fn arch_candidates(&mut self, name: &str, values: &[i64]) -> VarRef {
        let r = self.csp.add_var(
            name,
            Domain::values(values.iter().copied()),
            VarCategory::Arch,
        );
        self.csp.post_in(r, values.iter().copied());
        self.add_indicators(r, name, values);
        r
    }

    /// The paper expresses `v ∈ {c1, …, cn}` with helper boolean variables
    /// (`m == 8`, `m == 16`, … in Table 4's "others" column). We encode the
    /// same structure with a selector index plus one indicator boolean per
    /// candidate, each tied through a SELECT constraint.
    fn add_indicators(&mut self, var: VarRef, tag: &str, values: &[i64]) {
        if values.len() < 2 || values.len() > 8 {
            return;
        }
        let consts: Vec<VarRef> = values.iter().map(|&c| self.constant(c)).collect();
        let idx = self.aux(&format!("idx.{tag}"), 0, values.len() as i64 - 1);
        self.csp.post_select(var, idx, consts);
        for (i, &c) in values.iter().enumerate() {
            let b = self.csp.add_var(
                format!("is.{tag}.{c}"),
                Domain::boolean(),
                VarCategory::Other,
            );
            let choices: Vec<VarRef> = (0..values.len())
                .map(|j| self.constant(i64::from(j == i)))
                .collect();
            self.csp.post_select(b, idx, choices);
        }
    }

    /// A loop-length variable with range `[1, max]`.
    pub fn loop_var(&mut self, name: &str, max: i64) -> VarRef {
        self.csp
            .add_var(name, Domain::range(1, max.max(1)), VarCategory::LoopLength)
    }

    /// A tunable variable with an explicit value set (Rule-C3 posts the IN,
    /// plus the paper's indicator-boolean helpers).
    pub fn tunable(&mut self, name: &str, values: &[i64]) -> VarRef {
        let r = self.csp.add_var(
            name,
            Domain::values(values.iter().copied()),
            VarCategory::Tunable,
        );
        self.csp.post_in(r, values.iter().copied());
        self.add_indicators(r, name, values);
        r
    }

    /// An auxiliary variable with range `[lo, hi]`.
    pub fn aux(&mut self, name: &str, lo: i64, hi: i64) -> VarRef {
        self.csp
            .add_var(name, Domain::range(lo, hi.max(lo)), VarCategory::Other)
    }

    /// Rule-C1 `AddLoopSplit`: splits `loop_name` of `stage` into parts.
    ///
    /// For each part this declares a loop-length variable (divisors of
    /// `extent`) and a tunable twin `tile.<part>` with an EQ constraint —
    /// the structure the paper's Table 4 describes — and posts
    /// `PROD(extent, parts)`.
    ///
    /// Returns the part loop-length variables, outermost first.
    pub fn tile_split(
        &mut self,
        stage: &str,
        loop_name: &str,
        extent: i64,
        parts: &[&str],
    ) -> Vec<VarRef> {
        self.state.split(stage, loop_name, parts);
        let total = self.constant(extent);
        let divisors = Domain::divisors_of(extent);
        let mut refs = Vec::with_capacity(parts.len());
        for part in parts {
            let lv = self
                .csp
                .add_var(*part, divisors.clone(), VarCategory::LoopLength);
            let tv = self.csp.add_var(
                format!("tile.{part}"),
                divisors.clone(),
                VarCategory::Tunable,
            );
            self.csp.post_eq(tv, lv);
            refs.push(lv);
        }
        self.csp.post_prod(total, refs.clone());
        refs
    }

    /// Rule-C2 `AddLoopFuse`: declares the fused loop length as the product
    /// of the fused parts.
    pub fn fuse_loops(
        &mut self,
        stage: &str,
        loops: &[&str],
        fused: &str,
        part_refs: &[VarRef],
        max: i64,
    ) -> VarRef {
        self.state.fuse(stage, loops, fused);
        let f = self.loop_var(fused, max);
        self.csp.post_prod(f, part_refs.to_vec());
        f
    }

    /// Rule-C3 `AddCandidates`: posts `var ∈ values`.
    pub fn candidates(&mut self, var: VarRef, values: &[i64]) {
        self.csp.post_in(var, values.iter().copied());
    }

    /// Rule-C4 `AddStageFuse`: `out == choices[index]`.
    pub fn select(&mut self, out: VarRef, index: VarRef, choices: Vec<VarRef>) {
        self.csp.post_select(out, index, choices);
    }

    /// PROD helper: declares `name = Π factors` as an auxiliary variable.
    pub fn prod(&mut self, name: &str, factors: &[VarRef]) -> VarRef {
        let hi = factors
            .iter()
            .map(|f| self.csp.var(*f).domain.max())
            .fold(1_i64, |a, b| a.saturating_mul(b))
            .min(1 << 56);
        let lo = factors
            .iter()
            .map(|f| self.csp.var(*f).domain.min())
            .product::<i64>()
            .max(0);
        let out = self.aux(name, lo.min(hi), hi);
        self.csp.post_prod(out, factors.to_vec());
        out
    }

    /// SUM helper: declares `name = Σ terms` as an auxiliary variable.
    pub fn sum(&mut self, name: &str, terms: &[VarRef]) -> VarRef {
        let lo: i64 = terms.iter().map(|t| self.csp.var(*t).domain.min()).sum();
        let hi: i64 = terms
            .iter()
            .map(|t| self.csp.var(*t).domain.max())
            .fold(0_i64, |a, b| a.saturating_add(b));
        let out = self.aux(name, lo, hi);
        self.csp.post_sum(out, terms.to_vec());
        out
    }

    /// Rule-C5 `AddMemLimit`: registers a buffer of `elem_vars`-product
    /// elements × `elem_bytes`, posts the byte-count PROD, and returns the
    /// byte variable. Call [`SpaceBuilder::cap_total`] afterwards to post
    /// the SUM + LE over a scope.
    pub fn mem_limit(
        &mut self,
        buffer: &str,
        scope: MemScope,
        elems: VarRef,
        elem_bytes: u64,
    ) -> VarRef {
        let b = self.constant(elem_bytes as i64);
        let bytes = self.prod(&format!("bytes.{buffer}"), &[elems, b]);
        self.buffers.push(BufferSpec {
            name: buffer.to_string(),
            scope,
            var_bytes: self.csp.var(bytes).name.clone(),
        });
        bytes
    }

    /// Posts `Σ byte_vars <= capacity` for a scope (the second half of
    /// Rule-C5).
    pub fn cap_total(&mut self, name: &str, byte_vars: &[VarRef], capacity: u64) -> VarRef {
        let total = self.sum(name, byte_vars);
        let cap = self.constant(capacity as i64);
        self.csp.post_le(total, cap);
        total
    }

    /// Posts a divisibility requirement `divisor | value` by introducing a
    /// hidden quotient: `value == divisor * q` (used for vectorised access
    /// alignment, a Rule-C6 pattern).
    pub fn divides(&mut self, divisor: VarRef, value: VarRef, tag: &str) {
        let hi = self.csp.var(value).domain.max();
        let q = self.aux(&format!("quot.{tag}"), 1, hi);
        self.csp.post_prod(value, vec![divisor, q]);
    }

    /// Declares a loop-length twin variable `name` EQ-linked to `of` —
    /// the paper's per-stage loop-length variables (`stage.i6`, …) that
    /// mirror quantities already defined by the tile structure.
    pub fn loop_twin(&mut self, name: &str, of: VarRef) -> VarRef {
        let hi = self.csp.var(of).domain.max();
        let lo = self.csp.var(of).domain.min();
        let v = self.csp.add_var(
            name,
            Domain::range(lo.max(0), hi.max(lo.max(0))),
            VarCategory::LoopLength,
        );
        self.csp.post_eq(v, of);
        v
    }

    /// Name of a variable (for wiring template slots).
    pub fn name_of(&self, r: VarRef) -> String {
        self.csp.var(r).name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heron_rng::HeronRng;
    use heron_sched::{LoopSym, StageRole};
    use heron_tensor::{DType, IterKind};

    fn builder_with_stage() -> SpaceBuilder {
        let mut b = SpaceBuilder::new();
        b.state.add_stage(
            "C",
            StageRole::Compute,
            MemScope::Global,
            MemScope::Global,
            DType::F16,
            vec![
                LoopSym::new("C.i", IterKind::Spatial, "i"),
                LoopSym::new("C.r", IterKind::Reduce, "r"),
            ],
        );
        b
    }

    #[test]
    fn tile_split_posts_prod_and_twins() {
        let mut b = builder_with_stage();
        let parts = b.tile_split("C", "C.i", 64, &["C.i0", "C.i1", "C.i2"]);
        assert_eq!(parts.len(), 3);
        assert!(b.csp.var_by_name("tile.C.i1").is_some());
        // Solve: every sample multiplies to 64.
        let mut rng = HeronRng::from_seed(0);
        let sols = heron_csp::rand_sat(&b.csp, &mut rng, 8).expect_sat("builder space");
        assert!(!sols.is_empty());
        for s in &sols {
            let p: i64 = parts.iter().map(|r| s.value(*r)).product();
            assert_eq!(p, 64);
            // twins track the loop vars
            let t = s.value_by_name(&b.csp, "tile.C.i0").expect("twin");
            assert_eq!(t, s.value(parts[0]));
        }
    }

    #[test]
    fn mem_limit_and_cap_total_bound_tiles() {
        let mut b = builder_with_stage();
        let parts = b.tile_split("C", "C.i", 4096, &["C.i0", "C.i1"]);
        let elems = b.prod("elems.buf", &[parts[1]]);
        let bytes = b.mem_limit("buf", MemScope::Shared, elems, 2);
        b.cap_total("smem.total", &[bytes], 1024); // tile_inner * 2 <= 1024
        let mut rng = HeronRng::from_seed(1);
        let sols = heron_csp::rand_sat(&b.csp, &mut rng, 16).expect_sat("builder space");
        assert!(!sols.is_empty());
        for s in &sols {
            assert!(s.value(parts[1]) * 2 <= 1024);
        }
        assert_eq!(b.buffers.len(), 1);
        assert_eq!(b.buffers[0].var_bytes, "bytes.buf");
    }

    #[test]
    fn divides_enforces_alignment() {
        let mut b = builder_with_stage();
        let parts = b.tile_split("C", "C.r", 96, &["C.r0", "C.r1"]);
        let vec = b.tunable("vec", &[1, 2, 4, 8]);
        b.divides(vec, parts[1], "vec.row");
        let mut rng = HeronRng::from_seed(2);
        let sols = heron_csp::rand_sat(&b.csp, &mut rng, 24).expect_sat("builder space");
        assert!(!sols.is_empty());
        for s in &sols {
            let v = s.value(vec);
            let r1 = s.value(parts[1]);
            assert_eq!(r1 % v, 0, "vec {v} must divide row {r1}");
        }
    }

    #[test]
    fn constants_are_shared() {
        let mut b = SpaceBuilder::new();
        let a = b.constant(48 * 1024);
        let c = b.constant(48 * 1024);
        assert_eq!(a, c);
        assert_eq!(b.csp.num_vars(), 1);
    }
}
