//! Constrained-space construction for DL Boost (VNNI) CPUs.
//!
//! The template parallelises outer tiles across cores, stages packed
//! operand panels through L2 and L1 (with Rule-C5 capacity constraints on
//! both), fixes the innermost tiles to the VNNI `(1, 16, 4)` intrinsic, and
//! exposes the two knobs the paper highlights for this platform: tunable
//! compute locations for the packing stages (SELECT constraints that AMOS
//! cannot express) and a cache-friendly weight-layout choice worth ~30%.

use heron_dla::{CpuParams, DlaSpec};
use heron_sched::template::{IntrinsicRef, KernelTemplate, StageSpec};
use heron_sched::{LoopSym, MemScope, StageRole, ThreadAxis};
use heron_tensor::{DType, Dag, IterKind};

use super::axes::MacView;
use super::builder::SpaceBuilder;
use super::tensorcore::fuse_mac_axes;
use super::{GeneratedSpace, SpaceOptions};

/// Builds the VNNI-tensorized CPU space.
pub fn build(
    spec: &DlaSpec,
    cpu: &CpuParams,
    dag: &Dag,
    view: &MacView,
    opts: &SpaceOptions,
    workload: &str,
) -> GeneratedSpace {
    let mut b = SpaceBuilder::new();
    let (im, inn, ik) = spec.intrinsic_shapes[0];
    let m = b.arch_const("m", im);
    let n = b.arch_const("n", inn);
    let k = b.arch_const("k", ik);

    let fused = fuse_mac_axes(&mut b, view, "C.wmma", im, inn, ik, spec.in_dtype);
    let tc = "C.wmma";

    let i = b.tile_split(tc, "C.wmma.M", fused.m_ext, &["C.i0", "C.i1", "C.i2"]);
    let j = b.tile_split(tc, "C.wmma.N", fused.n_ext, &["C.j0", "C.j1", "C.j2"]);
    let r = b.tile_split(tc, "C.wmma.K", fused.k_ext, &["C.r0", "C.r1", "C.r2"]);
    // VNNI consumes fixed (1, 16, 4) tiles; the M direction is register
    // blocking (i2 rows of independent accumulators).
    b.csp.post_eq(j[2], n);
    b.csp.post_eq(r[2], k);
    let _ = m;
    if opts.manual_bounds {
        // Hand-written template ranges (fixed AutoTVM tiling structure).
        b.candidates(i[1], &[1, 2, 4, 8, 16, 32]);
        b.candidates(j[1], &[1, 2, 4, 8, 16, 32]);
    }
    if opts.fixed_serial_level {
        b.candidates(i[2], &[1, 2, 4, 8, 14]);
        b.candidates(r[1], &[1, 2, 4, 8]);
    } else {
        // Register blocking cannot exceed the 32 zmm accumulators.
        b.candidates(i[2], &[1, 2, 4, 6, 8, 12, 14]);
    }

    b.state.reorder(
        tc,
        &[
            "C.i0", "C.j0", "C.r0", "C.i1", "C.j1", "C.r1", "C.i2", "C.j2", "C.r2",
        ],
    );
    b.state.bind(tc, "C.i0", ThreadAxis::BlockX);
    b.state.bind(tc, "C.j0", ThreadAxis::BlockY);
    b.state.tensorize(tc, &["C.j2", "C.r2"], "m", "n", "k");

    let batch = b.arch_const("batch", fused.batch_ext);
    let grid = b.prod("grid", &[batch, i[0], j[0]]);
    let threads = b.arch_const("warps", 1);
    let _ = (grid, threads);

    // ---- Packed operand stages through L2 (Rules S2/C4/C5) --------------
    let a_rows = b.prod("rows.A.l2", &[i[1], i[2]]);
    let kc_shallow = b.prod("row.A.l2.at0", &[r[1], r[2]]);
    let a_execs_deep = b.prod("execs.A.l2.at1", &[r[0], r[1]]);
    let (a_row, a_execs) = if opts.tunable_locations {
        let loc = b.tunable("loc.A.l2", &[0, 1]);
        b.state.cache_read(
            "A",
            MemScope::L2,
            "A.l2",
            MemScope::Global,
            spec.in_dtype,
            vec![
                LoopSym::new("A.l2.rows".to_string(), IterKind::Spatial, "rows"),
                LoopSym::new("A.l2.cols".to_string(), IterKind::Spatial, "cols"),
            ],
        );
        b.state
            .compute_at("A.l2", tc, "loc.A.l2", &["C.r0", "C.r1"]);
        let row = b.aux("row.A.l2", 1, fused.k_ext);
        b.select(row, loc, vec![kc_shallow, r[2]]);
        let execs = b.aux("execs.A.l2", 1, i64::from(u32::MAX));
        b.select(execs, loc, vec![r[0], a_execs_deep]);
        (row, execs)
    } else {
        b.state.cache_read(
            "A",
            MemScope::L2,
            "A.l2",
            MemScope::Global,
            spec.in_dtype,
            vec![
                LoopSym::new("A.l2.rows".to_string(), IterKind::Spatial, "rows"),
                LoopSym::new("A.l2.cols".to_string(), IterKind::Spatial, "cols"),
            ],
        );
        if opts.fixed_align_pad.is_some() {
            // AutoTVM's manual template hard-codes the sensible shallow
            // fusion point.
            (kc_shallow, r[0])
        } else {
            // AMOS cannot tune the compute location of the fused packing
            // stage (paper Section 7.1, DL Boost): its mapping fixes the
            // stage at the inner reduction level, fragmenting the stream
            // into intrinsic-width rows.
            (r[2], a_execs_deep)
        }
    };
    let a_elems = b.prod("elems.A.l2", &[a_rows, a_row]);
    let a_bytes = b.mem_limit("A.l2", MemScope::L2, a_elems, spec.in_dtype.bytes());

    // Weight panel, packed: the layout tunable chooses the contiguous run
    // the streaming-efficiency model sees (Ohwi16o-style packing).
    b.state.cache_read(
        "B",
        MemScope::L2,
        "B.l2",
        MemScope::Global,
        spec.in_dtype,
        vec![
            LoopSym::new("B.l2.rows".to_string(), IterKind::Spatial, "rows"),
            LoopSym::new("B.l2.cols".to_string(), IterKind::Spatial, "cols"),
        ],
    );
    let b_cols = b.prod("cols.B.l2", &[j[1], j[2]]);
    let b_rows = b.prod("rows.B.l2", &[r[1], r[2]]);
    let b_elems = b.prod("elems.B.l2", &[b_rows, b_cols]);
    let b_bytes = b.mem_limit("B.l2", MemScope::L2, b_elems, spec.in_dtype.bytes());
    let packed = b.prod("row.B.l2.packed", &[b_rows, j[2]]);
    let b_row = if opts.storage_align {
        // `storage_align` on CPU models layout packing: contiguous run is
        // either one intrinsic column tile (plain layout) or the whole
        // packed panel row.
        let layout = b.tunable("layout.B", &[0, 1]);
        let row = b.aux("row.B.l2", 1, fused.n_ext.max(fused.k_ext * 16));
        b.select(row, layout, vec![j[2], packed]);
        row
    } else if opts.fixed_align_pad.is_some() {
        // AutoTVM's manual x86 templates ship a packed weight layout.
        packed
    } else {
        // AMOS cannot express the packed layout (plain 16-wide tiles).
        j[2]
    };

    if opts.arch_constraints {
        let l2cap = spec.capacity(MemScope::L2).unwrap_or(cpu.l2_bytes);
        b.cap_total("l2.total", &[a_bytes, b_bytes], l2cap);
    }

    // ---- L1 micro-kernel working set (Rule-C5 on L1) ---------------------
    let a_mk = b.prod("elems.A.l1", &[i[2], r[1], r[2]]);
    let a_l1_bytes = b.mem_limit("A.l1", MemScope::L1, a_mk, spec.in_dtype.bytes());
    let b_panel = b.prod("elems.B.l1", &[r[1], r[2], j[2]]);
    let b_l1_bytes = b.mem_limit("B.l1", MemScope::L1, b_panel, spec.in_dtype.bytes());
    let c_tile = b.prod("elems.C.l1", &[i[2], j[2]]);
    let c_l1_bytes = b.mem_limit("C.l1", MemScope::L1, c_tile, 4);
    if opts.arch_constraints {
        let l1cap = spec.capacity(MemScope::L1).unwrap_or(cpu.l1_bytes);
        b.cap_total("l1.total", &[a_l1_bytes, b_l1_bytes, c_l1_bytes], l1cap);
    }

    // ---- Compute and store ------------------------------------------------
    let intrin = b.prod("intrin.C", &[i[1], i[2], j[1], r[0], r[1]]);
    let unroll = b.tunable("unroll", &[0, 16, 64, 512]);
    b.state.unroll(tc, "unroll");
    let store_elems = b.prod("elems.C.store", &[i[1], i[2], j[1], j[2]]);
    let vec_store = b.tunable("vec.C", &[1, 4, 16]);

    let mut template =
        KernelTemplate::from_state(&spec.name, workload, dag.total_flops(), &b.state);
    template.var_grid = "grid".into();
    template.var_threads = "warps".into();

    b.loop_twin("A.l2.rows.len", a_rows);
    b.loop_twin("A.l2.cols.len", a_row);
    b.loop_twin("B.l2.rows.len", b_rows);
    b.loop_twin("B.l2.cols.len", b_cols);
    let mut a_spec = StageSpec::new(
        "A.l2",
        StageRole::Load,
        MemScope::Global,
        MemScope::L2,
        spec.in_dtype,
    );
    a_spec.var_elems = Some(b.name_of(a_elems));
    a_spec.var_execs = Some(b.name_of(a_execs));
    a_spec.var_row_elems = Some(b.name_of(a_row));
    template.stages.push(a_spec);

    let mut b_spec = StageSpec::new(
        "B.l2",
        StageRole::Load,
        MemScope::Global,
        MemScope::L2,
        spec.in_dtype,
    );
    b_spec.var_elems = Some(b.name_of(b_elems));
    b_spec.var_execs = Some(b.name_of(r[0]));
    b_spec.var_row_elems = Some(b.name_of(b_row));
    template.stages.push(b_spec);

    let mut l1_spec = StageSpec::new(
        "A.l1",
        StageRole::Load,
        MemScope::L2,
        MemScope::L1,
        spec.in_dtype,
    );
    l1_spec.var_elems = Some(b.name_of(a_mk));
    let l1_execs = b.prod("execs.A.l1", &[r[0], i[1], j[1]]);
    l1_spec.var_execs = Some(b.name_of(l1_execs));
    template.stages.push(l1_spec);

    let mut compute = StageSpec::new(
        tc,
        StageRole::Compute,
        MemScope::L1,
        MemScope::L1,
        spec.in_dtype,
    );
    compute.intrinsic = Some(IntrinsicRef {
        m: "m".into(),
        n: "n".into(),
        k: "k".into(),
    });
    compute.var_intrinsic_execs = Some(b.name_of(intrin));
    compute.var_unroll = Some(b.name_of(unroll));
    template.stages.push(compute);

    let mut store = StageSpec::new(
        "C",
        StageRole::Store,
        MemScope::L1,
        MemScope::Global,
        DType::I32,
    );
    store.var_elems = Some(b.name_of(store_elems));
    store.var_vector = Some(b.name_of(vec_store));
    store.var_row_elems = Some(b.name_of(b_cols));
    template.stages.push(store);

    template.buffers = b.buffers.clone();
    template.primitives = b.state.template().to_vec();
    template.tunables = b
        .csp
        .tunables()
        .iter()
        .map(|v| b.csp.var(*v).name.clone())
        .collect();
    GeneratedSpace {
        csp: b.csp,
        template,
        dla: spec.clone(),
        workload: workload.to_string(),
    }
}

/// Builds the scalar (AVX, non-VNNI) CPU space: the Ansor-like baseline on
/// DL Boost, and Heron's own fallback for non-tensorizable operators.
pub fn build_scalar(
    spec: &DlaSpec,
    cpu: &CpuParams,
    dag: &Dag,
    view: &MacView,
    opts: &SpaceOptions,
    workload: &str,
) -> GeneratedSpace {
    let mut b = SpaceBuilder::new();
    let fused = fuse_mac_axes(&mut b, view, "C", 1, 1, 1, spec.in_dtype);
    let tc = "C";

    let i = b.tile_split(tc, "C.M", fused.m_ext, &["C.i0", "C.i1", "C.i2"]);
    let j = b.tile_split(tc, "C.N", fused.n_ext, &["C.j0", "C.j1", "C.j2"]);
    let r = b.tile_split(tc, "C.K", fused.k_ext, &["C.r0", "C.r1"]);
    b.state.reorder(
        tc,
        &[
            "C.i0", "C.j0", "C.r0", "C.i1", "C.j1", "C.r1", "C.i2", "C.j2",
        ],
    );
    b.state.bind(tc, "C.i0", ThreadAxis::BlockX);
    b.state.bind(tc, "C.j0", ThreadAxis::BlockY);

    let batch = b.arch_const("batch", fused.batch_ext);
    let grid = b.prod("grid", &[batch, i[0], j[0]]);
    b.arch_const("warps", 1);
    let _ = grid;

    b.state.cache_read(
        "A",
        MemScope::L2,
        "A.l2",
        MemScope::Global,
        spec.in_dtype,
        vec![
            LoopSym::new("A.l2.rows".to_string(), IterKind::Spatial, "rows"),
            LoopSym::new("A.l2.cols".to_string(), IterKind::Spatial, "cols"),
        ],
    );
    let a_rows = b.prod("rows.A.l2", &[i[1], i[2]]);
    let a_elems = b.prod("elems.A.l2", &[a_rows, r[1]]);
    let a_bytes = b.mem_limit("A.l2", MemScope::L2, a_elems, spec.in_dtype.bytes());
    b.state.cache_read(
        "B",
        MemScope::L2,
        "B.l2",
        MemScope::Global,
        spec.in_dtype,
        vec![
            LoopSym::new("B.l2.rows".to_string(), IterKind::Spatial, "rows"),
            LoopSym::new("B.l2.cols".to_string(), IterKind::Spatial, "cols"),
        ],
    );
    let b_cols = b.prod("cols.B.l2", &[j[1], j[2]]);
    let b_elems = b.prod("elems.B.l2", &[r[1], b_cols]);
    let b_bytes = b.mem_limit("B.l2", MemScope::L2, b_elems, spec.in_dtype.bytes());
    if opts.arch_constraints {
        let l2cap = spec.capacity(MemScope::L2).unwrap_or(cpu.l2_bytes);
        b.cap_total("l2.total", &[a_bytes, b_bytes], l2cap);
    }

    let two = b.constant(2);
    let kc = b.constant(fused.k_ext);
    let scalar_ops = b.prod("scalar.C", &[two, i[1], i[2], j[1], j[2], kc]);
    let unroll = b.tunable("unroll", &[0, 16, 64, 512]);
    b.state.unroll(tc, "unroll");
    let store_elems = b.prod("elems.C.store", &[i[1], i[2], j[1], j[2]]);
    let vec_store = b.tunable("vec.C", &[1, 4, 16]);

    let mut template =
        KernelTemplate::from_state(&spec.name, workload, dag.total_flops(), &b.state);
    template.var_grid = "grid".into();
    template.var_threads = "warps".into();

    let mut a_spec = StageSpec::new(
        "A.l2",
        StageRole::Load,
        MemScope::Global,
        MemScope::L2,
        spec.in_dtype,
    );
    a_spec.var_elems = Some(b.name_of(a_elems));
    a_spec.var_execs = Some(b.name_of(r[0]));
    a_spec.var_row_elems = Some(b.name_of(r[1]));
    template.stages.push(a_spec);
    let mut b_spec = StageSpec::new(
        "B.l2",
        StageRole::Load,
        MemScope::Global,
        MemScope::L2,
        spec.in_dtype,
    );
    b_spec.var_elems = Some(b.name_of(b_elems));
    b_spec.var_execs = Some(b.name_of(r[0]));
    b_spec.var_row_elems = Some(b.name_of(b_cols));
    template.stages.push(b_spec);

    let mut compute = StageSpec::new(
        tc,
        StageRole::Compute,
        MemScope::L2,
        MemScope::L1,
        spec.in_dtype,
    );
    compute.var_scalar_ops = Some(b.name_of(scalar_ops));
    compute.var_unroll = Some(b.name_of(unroll));
    template.stages.push(compute);

    let mut store = StageSpec::new(
        "C.st",
        StageRole::Store,
        MemScope::L1,
        MemScope::Global,
        DType::I32,
    );
    store.var_elems = Some(b.name_of(store_elems));
    store.var_vector = Some(b.name_of(vec_store));
    template.stages.push(store);

    template.buffers = b.buffers.clone();
    template.primitives = b.state.template().to_vec();
    template.tunables = b
        .csp
        .tunables()
        .iter()
        .map(|v| b.csp.var(*v).name.clone())
        .collect();
    GeneratedSpace {
        csp: b.csp,
        template,
        dla: spec.clone(),
        workload: workload.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::super::{SpaceGenerator, SpaceOptions};
    use heron_csp::SpaceCensus;
    use heron_dla::dlboost;
    use heron_rng::HeronRng;
    use heron_tensor::{ops, DType};

    #[test]
    fn vnni_space_pins_intrinsic_dimensions() {
        let dag = ops::gemm_dtyped(512, 512, 512, DType::I8);
        let space = SpaceGenerator::new(dlboost())
            .generate_named(&dag, &SpaceOptions::heron(), "g")
            .expect("generates");
        let mut rng = HeronRng::from_seed(3);
        for sol in heron_csp::rand_sat(&space.csp, &mut rng, 8).solutions {
            assert_eq!(sol.value_by_name(&space.csp, "C.j2"), Some(16));
            assert_eq!(sol.value_by_name(&space.csp, "C.r2"), Some(4));
            // L1 working set respects the cache.
            let total = sol.value_by_name(&space.csp, "l1.total").expect("declared");
            assert!(total <= 32 * 1024, "L1 overflow: {total}");
        }
    }

    #[test]
    fn layout_select_links_row_length() {
        let dag = ops::gemm_dtyped(512, 512, 512, DType::I8);
        let space = SpaceGenerator::new(dlboost())
            .generate_named(&dag, &SpaceOptions::heron(), "g")
            .expect("generates");
        let mut rng = HeronRng::from_seed(4);
        let mut seen_packed = false;
        for sol in heron_csp::rand_sat(&space.csp, &mut rng, 24).solutions {
            let layout = sol.value_by_name(&space.csp, "layout.B").expect("tunable");
            let row = sol.value_by_name(&space.csp, "row.B.l2").expect("declared");
            if layout == 0 {
                assert_eq!(row, 16, "plain layout streams one intrinsic tile");
            } else {
                seen_packed = true;
                assert!(row >= 16, "packed layout streams at least a tile");
            }
        }
        assert!(seen_packed, "sampling never chose the packed layout");
    }

    #[test]
    fn scalar_cpu_space_has_no_intrinsic() {
        let dag = ops::gemm_dtyped(256, 256, 256, DType::I8);
        let space = SpaceGenerator::new(dlboost())
            .generate_named(&dag, &SpaceOptions::ansor(), "g")
            .expect("generates");
        assert!(space.template.stages.iter().all(|s| s.intrinsic.is_none()));
        assert!(space
            .template
            .stages
            .iter()
            .any(|s| s.var_scalar_ops.is_some()));
    }

    #[test]
    fn census_counts_both_cache_levels() {
        let dag = ops::gemm_dtyped(512, 512, 512, DType::I8);
        let space = SpaceGenerator::new(dlboost())
            .generate_named(&dag, &SpaceOptions::heron(), "g")
            .expect("generates");
        let census = SpaceCensus::of(&space.csp);
        // L1 + L2 capacity rows both posted.
        assert!(census.constraints_by_type["LE"] >= 2);
        assert!(space
            .template
            .buffers
            .iter()
            .any(|b| b.name.contains("l1") || b.name.contains("A.l1")));
    }
}
