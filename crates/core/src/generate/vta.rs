//! Constrained-space construction for VTA-style explicit-SRAM accelerators.
//!
//! Two-level tiling: an outer DRAM loop streams tiles into the input,
//! weight, and accumulator SRAMs (each with a Rule-C5 capacity constraint),
//! and an inner schedule drives the fixed `(1, 16, 16)` GEMM unit. The
//! platform's special Rule-C6 constraint — at least `min_access_cycle`
//! cycles between writes to the same accumulator address — becomes a lower
//! bound on the innermost reduction extent, exactly the "constraints on the
//! tiling structures" the paper credits Heron with handling on VTA.

use heron_dla::{DlaSpec, VtaParams};
use heron_sched::template::{IntrinsicRef, KernelTemplate, StageSpec};
use heron_sched::{LoopSym, MemScope, StageRole, ThreadAxis};
use heron_tensor::{DType, Dag, IterKind};

use super::axes::MacView;
use super::builder::SpaceBuilder;
use super::tensorcore::fuse_mac_axes;
use super::{GeneratedSpace, SpaceOptions};

/// Builds the VTA space.
pub fn build(
    spec: &DlaSpec,
    vta: &VtaParams,
    dag: &Dag,
    view: &MacView,
    opts: &SpaceOptions,
    workload: &str,
) -> GeneratedSpace {
    let mut b = SpaceBuilder::new();
    // Intrinsic shape: fixed for VTA proper; flexible accelerators in the
    // same family (Cambricon-style) expose several legal (m, n, k) tuples,
    // encoded with a selector index and SELECT constraints so only legal
    // combinations are reachable (Rule-C6).
    let shapes = &spec.intrinsic_shapes;
    let (m, n, k) = if shapes.len() == 1 {
        let (im, inn, ik) = shapes[0];
        (
            b.arch_const("m", im),
            b.arch_const("n", inn),
            b.arch_const("k", ik),
        )
    } else {
        let idx = b.tunable(
            "intrin.shape",
            &(0..shapes.len() as i64).collect::<Vec<_>>(),
        );
        let m_choices: Vec<_> = shapes.iter().map(|s| b.constant(s.0)).collect();
        let n_choices: Vec<_> = shapes.iter().map(|s| b.constant(s.1)).collect();
        let k_choices: Vec<_> = shapes.iter().map(|s| b.constant(s.2)).collect();
        let mmax = shapes.iter().map(|s| s.0).max().expect("non-empty");
        let nmax = shapes.iter().map(|s| s.1).max().expect("non-empty");
        let kmax = shapes.iter().map(|s| s.2).max().expect("non-empty");
        let m = b.csp.add_var(
            "m",
            heron_csp::Domain::range(1, mmax),
            heron_csp::VarCategory::Arch,
        );
        let n = b.csp.add_var(
            "n",
            heron_csp::Domain::range(1, nmax),
            heron_csp::VarCategory::Arch,
        );
        let k = b.csp.add_var(
            "k",
            heron_csp::Domain::range(1, kmax),
            heron_csp::VarCategory::Arch,
        );
        b.select(m, idx, m_choices);
        b.select(n, idx, n_choices);
        b.select(k, idx, k_choices);
        (m, n, k)
    };
    let pad_m = shapes.iter().map(|s| s.0).max().expect("non-empty");
    let pad_n = shapes.iter().map(|s| s.1).max().expect("non-empty");
    let pad_k = shapes.iter().map(|s| s.2).max().expect("non-empty");

    let fused = fuse_mac_axes(&mut b, view, "C.wmma", pad_m, pad_n, pad_k, spec.in_dtype);
    let tc = "C.wmma";

    let i = b.tile_split(tc, "C.wmma.M", fused.m_ext, &["C.i0", "C.i1", "C.i2"]);
    let j = b.tile_split(tc, "C.wmma.N", fused.n_ext, &["C.j0", "C.j1", "C.j2"]);
    let r = b.tile_split(tc, "C.wmma.K", fused.k_ext, &["C.r0", "C.r1", "C.r2"]);
    b.csp.post_eq(i[2], m);
    b.csp.post_eq(j[2], n);
    b.csp.post_eq(r[2], k);
    if opts.fixed_serial_level && fused.k_ext > pad_k {
        // The template author knows the access-cycle rule, so the manual
        // range starts at 2 — but the fixed structure cannot explore the
        // deeper tilings Heron reaches.
        b.candidates(r[1], &[2, 4]);
    }
    if opts.manual_bounds {
        b.candidates(i[1], &[1, 2, 4, 8, 16, 32, 64]);
        b.candidates(j[1], &[1, 2, 4, 8, 16]);
    }

    b.state.reorder(
        tc,
        &[
            "C.i0", "C.j0", "C.r0", "C.i1", "C.j1", "C.r1", "C.i2", "C.j2", "C.r2",
        ],
    );
    b.state.bind(tc, "C.i0", ThreadAxis::BlockX);
    b.state
        .tensorize(tc, &["C.i2", "C.j2", "C.r2"], "m", "n", "k");

    // Rule-C6: accumulator write-port hazard — the inner reduction extent
    // must cover the pipeline latency. The hazard only exists when the
    // reduction iterates at all (K > k); a single-step reduction writes
    // each accumulator address once.
    let reduction_iterates = fused.k_ext > pad_k;
    if opts.arch_constraints && reduction_iterates {
        let min_cycle = b.constant(vta.min_access_cycle);
        b.csp.post_le(min_cycle, r[1]);
    }

    let batch = b.arch_const("batch", fused.batch_ext);
    let grid = b.prod("grid", &[batch, i[0], j[0]]);
    b.arch_const("warps", 1);
    let _ = grid;

    // ---- SRAM tiles (Rule-C5 on all three buffers) -----------------------
    b.state.cache_read(
        "A",
        MemScope::VtaInput,
        "A.sram",
        MemScope::Global,
        spec.in_dtype,
        vec![
            LoopSym::new("A.sram.rows".to_string(), IterKind::Spatial, "rows"),
            LoopSym::new("A.sram.cols".to_string(), IterKind::Spatial, "cols"),
        ],
    );
    let kc = b.prod("row.A.sram", &[r[1], r[2]]);
    let in_elems = b.prod("elems.A.sram", &[i[1], i[2], kc]);
    let in_bytes = b.mem_limit(
        "A.sram",
        MemScope::VtaInput,
        in_elems,
        spec.in_dtype.bytes(),
    );

    b.state.cache_read(
        "B",
        MemScope::VtaWeight,
        "B.sram",
        MemScope::Global,
        spec.in_dtype,
        vec![
            LoopSym::new("B.sram.rows".to_string(), IterKind::Spatial, "rows"),
            LoopSym::new("B.sram.cols".to_string(), IterKind::Spatial, "cols"),
        ],
    );
    let nc = b.prod("cols.B.sram", &[j[1], j[2]]);
    let w_elems = b.prod("elems.B.sram", &[kc, nc]);
    let w_bytes = b.mem_limit(
        "B.sram",
        MemScope::VtaWeight,
        w_elems,
        spec.in_dtype.bytes(),
    );

    let acc_elems = b.prod("elems.C.sram", &[i[1], i[2], nc]);
    let acc_bytes = b.mem_limit("C.sram", MemScope::VtaAcc, acc_elems, 4);

    if opts.arch_constraints {
        let icap = b.constant(vta.input_buf_bytes as i64);
        b.csp.post_le(in_bytes, icap);
        let wcap = b.constant(vta.weight_buf_bytes as i64);
        b.csp.post_le(w_bytes, wcap);
        let acap = b.constant(vta.acc_buf_bytes as i64);
        b.csp.post_le(acc_bytes, acap);
    }

    // ---- Compute / stores -------------------------------------------------
    let intrin = b.prod("intrin.C", &[i[1], j[1], r[0], r[1]]);
    let unroll = b.tunable("unroll", &[0, 8, 32, 128]);
    b.state.unroll(tc, "unroll");
    let vec_st = b.tunable("vec.C", &[1, 4, 16]);

    let mut template =
        KernelTemplate::from_state(&spec.name, workload, dag.total_flops(), &b.state);
    template.var_grid = "grid".into();
    template.var_threads = "warps".into();

    b.loop_twin("A.sram.rows.len", i[1]);
    b.loop_twin("A.sram.cols.len", kc);
    b.loop_twin("B.sram.rows.len", kc);
    b.loop_twin("B.sram.cols.len", nc);
    let mut a_spec = StageSpec::new(
        "A.sram",
        StageRole::Load,
        MemScope::Global,
        MemScope::VtaInput,
        spec.in_dtype,
    );
    a_spec.var_elems = Some(b.name_of(in_elems));
    a_spec.var_execs = Some(b.name_of(r[0]));
    a_spec.var_row_elems = Some(b.name_of(kc));
    template.stages.push(a_spec);

    let mut w_spec = StageSpec::new(
        "B.sram",
        StageRole::Load,
        MemScope::Global,
        MemScope::VtaWeight,
        spec.in_dtype,
    );
    w_spec.var_elems = Some(b.name_of(w_elems));
    w_spec.var_execs = Some(b.name_of(r[0]));
    w_spec.var_row_elems = Some(b.name_of(nc));
    template.stages.push(w_spec);

    let mut compute = StageSpec::new(
        tc,
        StageRole::Compute,
        MemScope::VtaInput,
        MemScope::VtaAcc,
        spec.in_dtype,
    );
    compute.intrinsic = Some(IntrinsicRef {
        m: "m".into(),
        n: "n".into(),
        k: "k".into(),
    });
    compute.var_intrinsic_execs = Some(b.name_of(intrin));
    compute.var_unroll = Some(b.name_of(unroll));
    // The access-cycle extent the VTA model checks (skipped for
    // single-step reductions, which have no write hazard).
    if reduction_iterates {
        compute.var_row_elems = Some(b.name_of(r[1]));
    }
    template.stages.push(compute);

    let mut store = StageSpec::new(
        "C",
        StageRole::Store,
        MemScope::VtaAcc,
        MemScope::Global,
        DType::I32,
    );
    store.var_elems = Some(b.name_of(acc_elems));
    store.var_vector = Some(b.name_of(vec_st));
    template.stages.push(store);

    template.buffers = b.buffers.clone();
    template.primitives = b.state.template().to_vec();
    template.tunables = b
        .csp
        .tunables()
        .iter()
        .map(|v| b.csp.var(*v).name.clone())
        .collect();
    GeneratedSpace {
        csp: b.csp,
        template,
        dla: spec.clone(),
        workload: workload.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::super::{SpaceGenerator, SpaceOptions};
    use heron_dla::{cambricon, vta};
    use heron_rng::HeronRng;
    use heron_tensor::{ops, DType};

    #[test]
    fn access_cycle_constraint_holds_in_every_sample() {
        let dag = ops::gemm_dtyped(512, 512, 512, DType::I8);
        let space = SpaceGenerator::new(vta())
            .generate_named(&dag, &SpaceOptions::heron(), "g")
            .expect("generates");
        let mut rng = HeronRng::from_seed(5);
        let sols = heron_csp::rand_sat(&space.csp, &mut rng, 16).expect_sat("vta space");
        assert!(!sols.is_empty());
        for sol in sols {
            let r1 = sol.value_by_name(&space.csp, "C.r1").expect("declared");
            assert!(r1 >= 2, "access-cycle rule violated: r1={r1}");
        }
    }

    #[test]
    fn buffer_capacities_hold_in_every_sample() {
        let dag = ops::gemm_dtyped(1024, 1024, 1024, DType::I8);
        let space = SpaceGenerator::new(vta())
            .generate_named(&dag, &SpaceOptions::heron(), "g")
            .expect("generates");
        let mut rng = HeronRng::from_seed(6);
        for sol in heron_csp::rand_sat(&space.csp, &mut rng, 12).solutions {
            let input = sol
                .value_by_name(&space.csp, "bytes.A.sram")
                .expect("declared");
            let weight = sol
                .value_by_name(&space.csp, "bytes.B.sram")
                .expect("declared");
            let acc = sol
                .value_by_name(&space.csp, "bytes.C.sram")
                .expect("declared");
            assert!(input <= 32 * 1024);
            assert!(weight <= 256 * 1024);
            assert!(acc <= 128 * 1024);
        }
    }

    #[test]
    fn multi_shape_intrinsics_stay_legal() {
        let spec = cambricon();
        let dag = ops::gemm_dtyped(512, 512, 512, DType::I8);
        let space = SpaceGenerator::new(spec.clone())
            .generate_named(&dag, &SpaceOptions::heron(), "g")
            .expect("generates");
        let mut rng = HeronRng::from_seed(7);
        let mut shapes_seen = std::collections::HashSet::new();
        for sol in heron_csp::rand_sat(&space.csp, &mut rng, 32).solutions {
            let m = sol.value_by_name(&space.csp, "m").expect("declared");
            let n = sol.value_by_name(&space.csp, "n").expect("declared");
            let k = sol.value_by_name(&space.csp, "k").expect("declared");
            assert!(
                spec.allows_intrinsic(m, n, k),
                "illegal shape ({m},{n},{k})"
            );
            shapes_seen.insert((m, n, k));
        }
        assert!(
            shapes_seen.len() > 1,
            "sampling never varied the intrinsic shape"
        );
    }
}
