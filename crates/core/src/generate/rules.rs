//! Algorithm 1's rule engine: schedule generation rules with explicit
//! conditions, applied to DAG nodes in reverse topological order.
//!
//! The engine produces a [`RulePlan`]: which stages are inlined
//! (Always-Inline), whether the output is tensorized (Rule-S1), and which
//! cache levels/scopes the platform's SPM hierarchy injects (Rules S2/S3).
//! The platform space builders then materialise the plan — mirroring how
//! the paper's rules "apply" transformations returning a new program.

use heron_dla::{DlaFamily, DlaSpec};
use heron_sched::MemScope;
use heron_tensor::{Dag, StageId};

use super::axes::{mac_view, MacView};

/// One recorded rule application (for reporting and tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleApplication {
    /// Rule identifier (`S1`, `S2`, `S3`, `Always-Inline`,
    /// `Multi-Level-Tiling`).
    pub rule: &'static str,
    /// Stage the rule fired on.
    pub stage: String,
}

/// The outcome of running Algorithm 1's condition checks over a DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct RulePlan {
    /// Stages fused into their consumers (padding stages, element-wise
    /// epilogues).
    pub inlined: Vec<String>,
    /// The MAC view when Rule-S1's `Tensorizable` condition holds.
    pub mac: Option<MacView>,
    /// SPM scopes Rule-S2 (multi-level) injects cache stages for.
    pub cache_levels: Vec<MemScope>,
    /// SPM scopes Rule-S3 (multi-scope) injects cache stages for.
    pub cache_scopes: Vec<MemScope>,
    /// Every rule application in firing order.
    pub applications: Vec<RuleApplication>,
}

/// Runs the rule conditions of Algorithm 1 over `dag` for `spec`.
pub fn plan(dag: &Dag, spec: &DlaSpec, allow_tensorize: bool) -> RulePlan {
    let mut plan = RulePlan {
        inlined: Vec::new(),
        mac: None,
        cache_levels: Vec::new(),
        cache_scopes: Vec::new(),
        applications: Vec::new(),
    };
    // Visit nodes output-first (pop from the back of the post-order list).
    let mut order: Vec<StageId> = dag.post_order_traverse();
    while let Some(id) = order.pop() {
        let stage = dag.stage(id);
        let Some(op) = stage.compute() else { continue };
        let is_output = id == dag.output();

        // Rule Always-Inline: strictly inlinable non-output stages fuse
        // into their consumers (the padding stages of convolutions).
        if !is_output && op.is_strict_inlinable() {
            plan.inlined.push(stage.name.clone());
            plan.applications.push(RuleApplication {
                rule: "Always-Inline",
                stage: stage.name.clone(),
            });
            continue;
        }
        if !is_output {
            continue;
        }

        // Rule-S1 Tensorize: the MAC pattern must match and the platform
        // must expose an intrinsic.
        if allow_tensorize && !spec.intrinsic_shapes.is_empty() {
            if let Some(view) = mac_view(dag) {
                plan.mac = Some(view);
                plan.applications.push(RuleApplication {
                    rule: "S1-Tensorize",
                    stage: stage.name.clone(),
                });
            }
        }

        // Rules S2/S3 need data reuse.
        if op.has_data_reuse() {
            plan.applications.push(RuleApplication {
                rule: "Multi-Level-Tiling",
                stage: stage.name.clone(),
            });
            match &spec.family {
                DlaFamily::Gpu(_) => {
                    // S2: two levels of SPM (shared memory + fragments).
                    plan.cache_levels.push(MemScope::Shared);
                    plan.applications.push(RuleApplication {
                        rule: "S2-MultiLevelSPM",
                        stage: stage.name.clone(),
                    });
                    if plan.mac.is_some() {
                        // S3: distinct fragment scopes per operand.
                        plan.cache_scopes.push(MemScope::FragA);
                        plan.cache_scopes.push(MemScope::FragB);
                        plan.applications.push(RuleApplication {
                            rule: "S3-MultiScopeSPM",
                            stage: stage.name.clone(),
                        });
                    }
                }
                DlaFamily::Cpu(_) => {
                    plan.cache_levels.push(MemScope::L2);
                    plan.cache_levels.push(MemScope::L1);
                    plan.applications.push(RuleApplication {
                        rule: "S2-MultiLevelSPM",
                        stage: stage.name.clone(),
                    });
                }
                DlaFamily::Vta(_) => {
                    plan.cache_scopes.push(MemScope::VtaInput);
                    plan.cache_scopes.push(MemScope::VtaWeight);
                    plan.cache_scopes.push(MemScope::VtaAcc);
                    plan.applications.push(RuleApplication {
                        rule: "S3-MultiScopeSPM",
                        stage: stage.name.clone(),
                    });
                }
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use heron_dla::{dlboost, v100, vta};
    use heron_tensor::ops;

    #[test]
    fn gemm_on_v100_fires_s1_s2_s3() {
        let dag = ops::gemm(512, 512, 512);
        let p = plan(&dag, &v100(), true);
        let rules: Vec<&str> = p.applications.iter().map(|a| a.rule).collect();
        assert!(rules.contains(&"S1-Tensorize"));
        assert!(rules.contains(&"S2-MultiLevelSPM"));
        assert!(rules.contains(&"S3-MultiScopeSPM"));
        assert!(p.mac.is_some());
        assert!(p.inlined.is_empty());
    }

    #[test]
    fn padded_conv_inlines_pad_stage() {
        let dag = ops::conv2d(ops::Conv2dConfig::new(1, 28, 28, 64, 64, 3, 3, 1, 1));
        let p = plan(&dag, &v100(), true);
        assert_eq!(p.inlined, vec!["pad"]);
        assert!(p.mac.is_some());
    }

    #[test]
    fn scan_is_not_tensorized_but_still_tiled() {
        let dag = ops::scan(16, 512);
        let p = plan(&dag, &v100(), true);
        assert!(p.mac.is_none());
        let rules: Vec<&str> = p.applications.iter().map(|a| a.rule).collect();
        assert!(rules.contains(&"Multi-Level-Tiling"));
    }

    #[test]
    fn tensorize_can_be_disabled_for_ansor() {
        let dag = ops::gemm(256, 256, 256);
        let p = plan(&dag, &v100(), false);
        assert!(p.mac.is_none());
        assert!(p.cache_scopes.is_empty());
    }

    #[test]
    fn cpu_plan_uses_cache_levels() {
        let dag = ops::gemm(256, 256, 256);
        let p = plan(&dag, &dlboost(), true);
        assert_eq!(p.cache_levels, vec![MemScope::L2, MemScope::L1]);
    }

    #[test]
    fn vta_plan_uses_three_scopes() {
        let dag = ops::gemm(256, 256, 256);
        let p = plan(&dag, &vta(), true);
        assert_eq!(
            p.cache_scopes,
            vec![MemScope::VtaInput, MemScope::VtaWeight, MemScope::VtaAcc]
        );
    }
}
