//! Static analysis of a compute DAG: tensorizability (Rule-S1's condition)
//! and the mapping of loop axes onto the matrix-multiply view `(M, N, K)`.
//!
//! Every tensorizable operator — GEMM, BMM, GEMV and all convolutions (via
//! the implicit im2col the paper describes) — reduces to a MAC over three
//! axis groups:
//!
//! * **M**: spatial axes absent from the second operand (`i`; `n, oh, ow`),
//! * **N**: spatial axes absent from the first operand (`j`; `co`),
//! * **K**: the reduction axes (`r`; `rc, rh, rw`).
//!
//! Axes read by both operands (the batch axis of BMM) become independent
//! grid dimensions.

use heron_tensor::{Dag, IterKind, ReduceKind, StageId};

/// The matrix-multiply view of a compute stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacView {
    /// Stage analysed (the DAG output).
    pub stage: StageId,
    /// Names of the M-group axes.
    pub m_axes: Vec<String>,
    /// Names of the N-group axes.
    pub n_axes: Vec<String>,
    /// Names of the K-group (reduction) axes.
    pub k_axes: Vec<String>,
    /// Names of batch axes (read by both operands).
    pub batch_axes: Vec<String>,
    /// Product of M-axis extents.
    pub m_extent: i64,
    /// Product of N-axis extents.
    pub n_extent: i64,
    /// Product of K-axis extents.
    pub k_extent: i64,
    /// Product of batch-axis extents (1 if none).
    pub batch_extent: i64,
    /// Extent of every original axis, in DAG order (for the per-axis
    /// loop-length variables of the census).
    pub axis_extents: Vec<(String, i64)>,
}

impl MacView {
    /// M extent rounded up to a multiple of `base` (tail padding for
    /// intrinsic alignment).
    pub fn m_padded(&self, base: i64) -> i64 {
        round_up(self.m_extent, base)
    }

    /// N extent rounded up to a multiple of `base`.
    pub fn n_padded(&self, base: i64) -> i64 {
        round_up(self.n_extent, base)
    }

    /// K extent rounded up to a multiple of `base`.
    pub fn k_padded(&self, base: i64) -> i64 {
        round_up(self.k_extent, base)
    }
}

/// Rounds `v` up to the next multiple of `base`.
pub fn round_up(v: i64, base: i64) -> i64 {
    assert!(base >= 1);
    v.div_euclid(base) * base + if v.rem_euclid(base) == 0 { 0 } else { base }
}

/// Analyses the DAG's output stage for the MAC pattern (paper Rule-S1:
/// `Tensorizable(S, i)`).
///
/// Returns `None` when the output is not a sum-reduction of a product of
/// two tensor loads — e.g. the SCAN operator, which then follows the
/// non-tensorized (CUDA-core / scalar) template instead.
pub fn mac_view(dag: &Dag) -> Option<MacView> {
    let out = dag.output();
    let op = dag.stage(out).compute()?;
    if op.reduce != ReduceKind::Sum || op.reduce_axes.is_empty() {
        return None;
    }
    let (lhs, rhs) = op.body.as_mac_pattern()?;
    let lhs_vars = lhs.vars();
    let rhs_vars = rhs.vars();

    let mut view = MacView {
        stage: out,
        m_axes: Vec::new(),
        n_axes: Vec::new(),
        k_axes: Vec::new(),
        batch_axes: Vec::new(),
        m_extent: 1,
        n_extent: 1,
        k_extent: 1,
        batch_extent: 1,
        axis_extents: Vec::new(),
    };
    for axis in op.axes.iter().chain(op.reduce_axes.iter()) {
        view.axis_extents.push((axis.name.clone(), axis.extent));
    }
    for axis in &op.axes {
        debug_assert_eq!(axis.kind, IterKind::Spatial);
        let in_lhs = lhs_vars.contains(&axis.id);
        let in_rhs = rhs_vars.contains(&axis.id);
        match (in_lhs, in_rhs) {
            (true, true) => {
                view.batch_axes.push(axis.name.clone());
                view.batch_extent *= axis.extent;
            }
            (true, false) | (false, false) => {
                // Axes read by neither operand still index the output and
                // behave like M rows.
                view.m_axes.push(axis.name.clone());
                view.m_extent *= axis.extent;
            }
            (false, true) => {
                view.n_axes.push(axis.name.clone());
                view.n_extent *= axis.extent;
            }
        }
    }
    for axis in &op.reduce_axes {
        view.k_axes.push(axis.name.clone());
        view.k_extent *= axis.extent;
    }
    if view.m_axes.is_empty() || view.n_axes.is_empty() {
        return None;
    }
    Some(view)
}

#[cfg(test)]
mod tests {
    use super::*;
    use heron_tensor::ops;

    #[test]
    fn gemm_maps_directly() {
        let dag = ops::gemm(128, 256, 64);
        let v = mac_view(&dag).expect("gemm is tensorizable");
        assert_eq!(v.m_axes, vec!["i"]);
        assert_eq!(v.n_axes, vec!["j"]);
        assert_eq!(v.k_axes, vec!["r"]);
        assert_eq!((v.m_extent, v.n_extent, v.k_extent), (128, 256, 64));
        assert_eq!(v.batch_extent, 1);
    }

    #[test]
    fn bmm_batch_axis_detected() {
        let dag = ops::bmm(16, 64, 64, 32);
        let v = mac_view(&dag).expect("bmm is tensorizable");
        assert_eq!(v.batch_axes, vec!["b"]);
        assert_eq!(v.batch_extent, 16);
        assert_eq!((v.m_extent, v.n_extent, v.k_extent), (64, 64, 32));
    }

    #[test]
    fn conv2d_im2col_grouping() {
        let dag = ops::conv2d(ops::Conv2dConfig::new(8, 28, 28, 512, 128, 1, 1, 1, 1));
        let v = mac_view(&dag).expect("conv2d is tensorizable");
        // M = n * oh * ow, N = co, K = rc * rh * rw.
        assert_eq!(v.m_axes, vec!["n", "oh", "ow"]);
        assert_eq!(v.n_axes, vec!["co"]);
        assert_eq!(v.m_extent, 8 * 30 * 30);
        assert_eq!(v.n_extent, 128);
        assert_eq!(v.k_extent, 512);
    }

    #[test]
    fn conv3d_has_four_k_axes() {
        let dag = ops::conv3d(1, 8, 8, 8, 16, 32, 3, 1, 1);
        let v = mac_view(&dag).expect("conv3d is tensorizable");
        assert_eq!(v.k_axes.len(), 4);
        assert_eq!(v.k_extent, 16 * 27);
    }

    #[test]
    fn scan_is_not_tensorizable() {
        let dag = ops::scan(16, 128);
        assert!(mac_view(&dag).is_none(), "guarded body is not a MAC");
    }

    #[test]
    fn rounding_helper() {
        assert_eq!(round_up(49, 8), 56);
        assert_eq!(round_up(56, 8), 56);
        assert_eq!(round_up(1, 16), 16);
    }

    #[test]
    fn padded_extents() {
        let dag = ops::gemm(100, 100, 100);
        let v = mac_view(&dag).expect("tensorizable");
        assert_eq!(v.m_padded(8), 104);
        assert_eq!(v.k_padded(16), 112);
    }
}
