//! Constrained space generation (the paper's Section 4).
//!
//! [`SpaceGenerator::generate`] runs Algorithm 1: the rule engine
//! ([`rules`]) decides which schedule generation rules fire on the compute
//! DAG; the platform builders ([`tensorcore`], [`dlboost`], [`vta`]) then
//! materialise the schedule template and post the Rule-C1…C6 constraints
//! through the [`builder::SpaceBuilder`], yielding `CSP_initial` plus a
//! symbolic kernel template.
//!
//! [`SpaceOptions`] selects which expressive features the space includes;
//! the non-default configurations model the paper's baselines (AutoTVM's
//! fixed manual template, Ansor's intrinsic-free auto-scheduling, AMOS's
//! mapping exploration without `storage_align`/location tuning).

pub mod axes;
pub mod builder;
pub mod dlboost;
pub mod rules;
pub mod tensorcore;
pub mod vta;

use std::fmt;

use heron_csp::Csp;
use heron_dla::{DlaFamily, DlaSpec};
use heron_sched::KernelTemplate;
use heron_tensor::Dag;

/// Which features the generated space exposes — Heron's full space or one
/// of the baseline approximations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpaceOptions {
    /// Apply Rule-S1 (use the DLA intrinsic). Off for the Ansor baseline.
    pub tensorize: bool,
    /// Tune `storage_align` pads (GPU) / packed layouts (CPU).
    pub storage_align: bool,
    /// Tune compute_at locations with SELECT constraints (Rule-C4).
    pub tunable_locations: bool,
    /// Hard-code the intrinsic shape to 16×16×16 (AutoTVM-style template).
    pub fixed_intrinsic: bool,
    /// Restrict serial blocking levels (AutoTVM's fixed tiling structure).
    pub fixed_serial_level: bool,
    /// Post the architectural constraints (capacities, launch limits,
    /// alignment) into the CSP. Ansor/AMOS know these generic hardware
    /// parameters; AutoTVM's template relies on manual bounds instead and
    /// discovers violations only when measurement fails.
    pub arch_constraints: bool,
    /// Post the register/fragment budget constraints. AMOS's hardware
    /// abstraction does not model register pressure, so its mappings can
    /// fail at compile time — the invalid-trial source on TensorCore.
    pub register_constraints: bool,
    /// Apply AutoTVM-style conservative hand-written bounds on the tile
    /// factors (the "few simple constraints" of the paper's Figure 1a):
    /// they keep most samples valid but exclude many high-performance
    /// programs.
    pub manual_bounds: bool,
    /// Hand-chosen storage_align padding used when `storage_align` tuning
    /// is off: AutoTVM's manual template ships a fixed pad of 8 halves;
    /// AMOS cannot use the primitive at all (`None` = no padding).
    pub fixed_align_pad: Option<i64>,
}

impl SpaceOptions {
    /// Heron's full automatically-constrained space.
    pub fn heron() -> Self {
        SpaceOptions {
            tensorize: true,
            storage_align: true,
            tunable_locations: true,
            fixed_intrinsic: false,
            fixed_serial_level: false,
            arch_constraints: true,
            register_constraints: true,
            manual_bounds: false,
            fixed_align_pad: None,
        }
    }

    /// AutoTVM-like manual template: fixed intrinsic and tiling structure,
    /// conservative hand-written tile bounds instead of derived
    /// constraints, no storage_align/location tuning.
    pub fn autotvm() -> Self {
        SpaceOptions {
            tensorize: true,
            storage_align: false,
            tunable_locations: false,
            fixed_intrinsic: true,
            fixed_serial_level: true,
            arch_constraints: false,
            register_constraints: false,
            manual_bounds: true,
            fixed_align_pad: Some(8),
        }
    }

    /// Ansor-like auto-scheduling: generic GPU hardware parameters are
    /// respected but the DLA intrinsics are not usable.
    pub fn ansor() -> Self {
        SpaceOptions {
            tensorize: false,
            storage_align: false,
            tunable_locations: false,
            fixed_intrinsic: false,
            fixed_serial_level: false,
            arch_constraints: true,
            register_constraints: true,
            manual_bounds: false,
            fixed_align_pad: Some(2),
        }
    }

    /// AMOS-like mapping exploration: free intrinsic mapping with validated
    /// memory capacities, but no storage_align, fixed compute locations,
    /// and no register-pressure model.
    pub fn amos() -> Self {
        SpaceOptions {
            tensorize: true,
            storage_align: false,
            tunable_locations: false,
            fixed_intrinsic: false,
            fixed_serial_level: false,
            arch_constraints: true,
            register_constraints: false,
            manual_bounds: false,
            fixed_align_pad: None,
        }
    }
}

/// A generated constrained search space: `CSP_initial` plus the symbolic
/// kernel template it parameterises.
#[derive(Debug, Clone)]
pub struct GeneratedSpace {
    /// The constraint satisfaction problem (`CSP_initial`).
    pub csp: Csp,
    /// The symbolic kernel template for lowering.
    pub template: KernelTemplate,
    /// The target platform.
    pub dla: DlaSpec,
    /// Workload label.
    pub workload: String,
}

/// Errors from space generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenerateError {
    /// The platform requires tensorization but the compute has no MAC
    /// pattern (e.g. SCAN on VTA).
    NotTensorizable {
        /// Platform name.
        platform: String,
    },
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerateError::NotTensorizable { platform } => {
                write!(f, "operator has no MAC pattern required by `{platform}`")
            }
        }
    }
}

impl std::error::Error for GenerateError {}

/// The space generator for one platform.
#[derive(Debug, Clone)]
pub struct SpaceGenerator {
    spec: DlaSpec,
}

impl SpaceGenerator {
    /// Creates a generator targeting `spec`.
    pub fn new(spec: DlaSpec) -> Self {
        SpaceGenerator { spec }
    }

    /// The target platform.
    pub fn spec(&self) -> &DlaSpec {
        &self.spec
    }

    /// Runs Algorithm 1 on `dag`, deriving a workload label from the DAG.
    ///
    /// # Errors
    /// Returns [`GenerateError`] when the platform cannot execute the
    /// operator at all.
    pub fn generate(
        &self,
        dag: &Dag,
        opts: &SpaceOptions,
    ) -> Result<GeneratedSpace, GenerateError> {
        let out = dag.stage(dag.output());
        let label = format!("{}{:?}", out.name, out.tensor().shape);
        self.generate_named(dag, opts, &label)
    }

    /// Runs Algorithm 1 with an explicit workload label.
    ///
    /// # Errors
    /// Returns [`GenerateError`] when the platform cannot execute the
    /// operator at all.
    pub fn generate_named(
        &self,
        dag: &Dag,
        opts: &SpaceOptions,
        workload: &str,
    ) -> Result<GeneratedSpace, GenerateError> {
        let plan = rules::plan(dag, &self.spec, opts.tensorize);
        match (&self.spec.family, &plan.mac) {
            (DlaFamily::Gpu(g), Some(view)) if opts.tensorize => Ok(tensorcore::build_tensorized(
                &self.spec, g, dag, view, opts, workload,
            )),
            (DlaFamily::Gpu(g), _) => {
                // Scalar CUDA path: Ansor baseline or non-tensorizable ops.
                let view = plan.mac.clone().or_else(|| fallback_view(dag));
                let view = view.expect("every operator has a fallback view");
                Ok(tensorcore::build_scalar(
                    &self.spec, g, dag, &view, opts, workload,
                ))
            }
            (DlaFamily::Cpu(c), Some(view)) if opts.tensorize => {
                Ok(dlboost::build(&self.spec, c, dag, view, opts, workload))
            }
            (DlaFamily::Cpu(c), _) => {
                let view = plan.mac.clone().or_else(|| fallback_view(dag));
                let view = view.expect("every operator has a fallback view");
                Ok(dlboost::build_scalar(
                    &self.spec, c, dag, &view, opts, workload,
                ))
            }
            (DlaFamily::Vta(v), Some(view)) => {
                Ok(vta::build(&self.spec, v, dag, view, opts, workload))
            }
            (DlaFamily::Vta(_), None) => Err(GenerateError::NotTensorizable {
                platform: self.spec.name.clone(),
            }),
        }
    }
}

/// Pseudo-MAC view for non-tensorizable operators: the last spatial axis
/// becomes N, the rest M, reductions K.
fn fallback_view(dag: &Dag) -> Option<axes::MacView> {
    let out = dag.output();
    let op = dag.stage(out).compute()?;
    let mut view = axes::MacView {
        stage: out,
        m_axes: Vec::new(),
        n_axes: Vec::new(),
        k_axes: Vec::new(),
        batch_axes: Vec::new(),
        m_extent: 1,
        n_extent: 1,
        k_extent: 1,
        batch_extent: 1,
        axis_extents: op
            .axes
            .iter()
            .chain(op.reduce_axes.iter())
            .map(|a| (a.name.clone(), a.extent))
            .collect(),
    };
    let spatial = &op.axes;
    for (idx, a) in spatial.iter().enumerate() {
        if idx + 1 == spatial.len() && spatial.len() > 1 {
            view.n_axes.push(a.name.clone());
            view.n_extent *= a.extent;
        } else {
            view.m_axes.push(a.name.clone());
            view.m_extent *= a.extent;
        }
    }
    if view.n_axes.is_empty() {
        view.n_axes.push("one".into());
    }
    for a in &op.reduce_axes {
        view.k_axes.push(a.name.clone());
        view.k_extent *= a.extent;
    }
    if view.k_axes.is_empty() {
        view.k_axes.push("rk".into());
    }
    Some(view)
}

#[cfg(test)]
mod tests {
    use super::*;
    use heron_csp::SpaceCensus;
    use heron_dla::{dlboost, v100, vta};
    use heron_rng::HeronRng;
    use heron_sched::lower;
    use heron_tensor::ops;

    fn solve_and_lower(space: &GeneratedSpace, seed: u64) -> heron_sched::Kernel {
        let mut rng = HeronRng::from_seed(seed);
        let sols = heron_csp::rand_sat(&space.csp, &mut rng, 4).solutions;
        assert!(!sols.is_empty(), "space must be satisfiable");
        let sol = &sols[0];
        let csp = &space.csp;
        lower(&space.template, sol.fingerprint(), &|name| {
            sol.value_by_name(csp, name)
        })
        .expect("lowering must cover every referenced variable")
    }

    #[test]
    fn gemm_v100_space_solves_and_lowers() {
        let dag = ops::gemm(256, 256, 256);
        let space = SpaceGenerator::new(v100())
            .generate_named(&dag, &SpaceOptions::heron(), "gemm-256")
            .expect("generates");
        let k = solve_and_lower(&space, 1);
        assert!(k.grid >= 1);
        assert!(k.threads >= 1);
        assert!(k.tensorized_stage().is_some());
        // Every Heron solution passes the measurer's validation.
        let m = heron_dla::Measurer::new(v100());
        m.validate(&k)
            .expect("heron kernels are valid by construction");
    }

    #[test]
    fn gemm_census_magnitude_matches_table4() {
        let dag = ops::gemm(512, 512, 512);
        let space = SpaceGenerator::new(v100())
            .generate_named(&dag, &SpaceOptions::heron(), "gemm-512")
            .expect("generates");
        let c = SpaceCensus::of(&space.csp);
        // Paper Table 4/5: 173 variables, 372 constraints for GEMM. Ours
        // should be the same order of magnitude.
        assert!(c.total_vars() >= 60, "vars {}", c.total_vars());
        assert!(
            c.total_constraints() >= 60,
            "constraints {}",
            c.total_constraints()
        );
        assert!(c.tunable_vars >= 15, "tunables {}", c.tunable_vars);
    }

    #[test]
    fn conv2d_dlboost_space_solves() {
        let dag = ops::conv2d(
            ops::Conv2dConfig::new(1, 28, 28, 128, 128, 3, 3, 1, 1)
                .with_dtype(heron_tensor::DType::I8),
        );
        let space = SpaceGenerator::new(dlboost())
            .generate_named(&dag, &SpaceOptions::heron(), "c2d")
            .expect("generates");
        let k = solve_and_lower(&space, 2);
        let m = heron_dla::Measurer::new(dlboost());
        m.validate(&k).expect("valid");
        assert_eq!(
            k.tensorized_stage().and_then(|s| s.intrinsic),
            Some((1, 16, 4))
        );
    }

    #[test]
    fn gemm_vta_space_solves() {
        let dag = ops::gemm_dtyped(256, 256, 256, heron_tensor::DType::I8);
        let space = SpaceGenerator::new(vta())
            .generate_named(&dag, &SpaceOptions::heron(), "gemm-vta")
            .expect("generates");
        let k = solve_and_lower(&space, 3);
        let m = heron_dla::Measurer::new(vta());
        m.validate(&k).expect("valid");
    }

    #[test]
    fn scan_falls_back_to_scalar_gpu() {
        let dag = ops::scan(16, 512);
        let space = SpaceGenerator::new(v100())
            .generate_named(&dag, &SpaceOptions::heron(), "scan")
            .expect("generates");
        let k = solve_and_lower(&space, 4);
        assert!(k.tensorized_stage().is_none());
    }

    #[test]
    fn scan_on_vta_is_rejected() {
        let dag = ops::scan(4, 64);
        let err = SpaceGenerator::new(vta())
            .generate_named(&dag, &SpaceOptions::heron(), "scan")
            .expect_err("vta requires the GEMM intrinsic");
        assert!(matches!(err, GenerateError::NotTensorizable { .. }));
    }

    #[test]
    fn baseline_spaces_have_fewer_constraints() {
        let dag = ops::gemm(512, 512, 512);
        let heron = SpaceGenerator::new(v100())
            .generate_named(&dag, &SpaceOptions::heron(), "g")
            .expect("generates");
        let amos = SpaceGenerator::new(v100())
            .generate_named(&dag, &SpaceOptions::amos(), "g")
            .expect("generates");
        assert!(
            SpaceCensus::of(&amos.csp).total_constraints()
                < SpaceCensus::of(&heron.csp).total_constraints()
        );
    }

    fn invalid_fraction(space: &GeneratedSpace, n: usize, seed: u64) -> (usize, usize) {
        let mut rng = HeronRng::from_seed(seed);
        let sols = heron_csp::rand_sat(&space.csp, &mut rng, n).solutions;
        assert!(!sols.is_empty());
        let measurer = heron_dla::Measurer::new(space.dla.clone());
        let csp = &space.csp;
        let invalid = sols
            .iter()
            .filter(|s| {
                let k = lower(&space.template, s.fingerprint(), &|n| {
                    s.value_by_name(csp, n)
                })
                .expect("lowers");
                measurer.validate(&k).is_err()
            })
            .count();
        (invalid, sols.len())
    }

    #[test]
    fn baseline_spaces_contain_invalid_kernels_but_herons_does_not() {
        let dag = ops::gemm(1024, 1024, 1024);
        let gen = SpaceGenerator::new(v100());
        // AMOS: no register-pressure model => compile failures.
        let amos = gen
            .generate_named(&dag, &SpaceOptions::amos(), "g")
            .expect("generates");
        let (amos_bad, amos_n) = invalid_fraction(&amos, 40, 7);
        assert!(
            amos_bad > 0,
            "AMOS mappings should sometimes overflow registers"
        );
        assert!(amos_bad < amos_n, "AMOS still finds runnable mappings");
        // Heron: valid by construction.
        let heron = gen
            .generate_named(&dag, &SpaceOptions::heron(), "g")
            .expect("generates");
        let (heron_bad, _) = invalid_fraction(&heron, 40, 7);
        assert_eq!(heron_bad, 0, "Heron samples are valid by construction");
    }
}
