//! The constraint-based genetic algorithm (paper Algorithms 2 and 3).
//!
//! The defining move: crossover and mutation act on **CSPs**, not on
//! concrete chromosomes. Each offspring is described by
//! `CSP_initial + IN(v, [c1_v, c2_v]) for key variables v` minus one
//! randomly removed crossover constraint (mutation); a `RandSAT` call then
//! materialises a concrete, *guaranteed-valid* chromosome.

use heron_csp::{rand_sat_with_budget, Csp, Solution, VarRef};
use heron_rng::HeronRng;
use heron_rng::IndexedRandom;
use heron_rng::Rng;

use crate::generate::GeneratedSpace;
use crate::model::CostModel;

use super::{push_best, roulette_wheel, Chromosome, Evaluate, Explorer};

/// Builds one offspring CSP: Algorithm 3 for a single offspring.
///
/// `key_vars` are the cost-model-selected variables; `c1`/`c2` the two
/// parent chromosomes. Crossover posts one `IN` constraint per key
/// variable; mutation removes one of them at random.
pub fn offspring_csp<R: Rng>(
    initial: &Csp,
    key_vars: &[VarRef],
    c1: &Solution,
    c2: &Solution,
    rng: &mut R,
) -> Csp {
    let mut csp = initial.clone();
    if key_vars.is_empty() {
        return csp;
    }
    // Step-3 mutation: drop one crossover constraint at random.
    let dropped = rng.random_range(0..key_vars.len());
    for (idx, &v) in key_vars.iter().enumerate() {
        if idx == dropped {
            continue;
        }
        csp.post_in(v, [c1.value(v), c2.value(v)]);
    }
    csp
}

/// Configuration of the CGA explorer.
#[derive(Debug, Clone, Copy)]
pub struct CgaConfig {
    /// Population size per iteration.
    pub population: usize,
    /// Generations evolved between measurement rounds (Algorithm 2 Step 2).
    pub generations: usize,
    /// Offspring produced per generation.
    pub offspring: usize,
    /// Number of key variables extracted from the cost model.
    pub key_vars: usize,
    /// ε of the ε-greedy measurement selection.
    pub eps: f64,
    /// Candidates measured per iteration (Algorithm 2 Step 3).
    pub measure_batch: usize,
    /// Backtracking budget per RandSAT call.
    pub solver_budget: u32,
}

impl Default for CgaConfig {
    fn default() -> Self {
        CgaConfig {
            population: 40,
            generations: 3,
            offspring: 24,
            key_vars: 8,
            eps: 0.15,
            measure_batch: 16,
            solver_budget: 400,
        }
    }
}

/// The CGA explorer: Heron's Algorithm 2 with the cost model in the loop.
#[derive(Debug)]
pub struct CgaExplorer {
    config: CgaConfig,
    /// CGA-1 ablation: choose key variables at random instead of by
    /// feature importance.
    random_key_vars: bool,
    model: Option<CostModel>,
}

impl CgaExplorer {
    /// Full CGA with model-derived key variables.
    pub fn new(config: CgaConfig) -> Self {
        CgaExplorer {
            config,
            random_key_vars: false,
            model: None,
        }
    }

    /// The CGA-1 variant (random key variables) of Figure 13.
    pub fn cga1(config: CgaConfig) -> Self {
        CgaExplorer {
            config,
            random_key_vars: true,
            model: None,
        }
    }

    /// Access to the trained cost model after exploration.
    pub fn model(&self) -> Option<&CostModel> {
        self.model.as_ref()
    }
}

/// Random key variables among the tunables (CGA-1's policy, and CGA's
/// fallback before the cost model is first fitted).
fn random_keys(csp: &Csp, k: usize, rng: &mut HeronRng) -> Vec<VarRef> {
    let tunables = csp.tunables();
    let mut keys = Vec::new();
    for _ in 0..k.min(tunables.len()) {
        if let Some(&v) = tunables.as_slice().choose(rng) {
            keys.push(v);
        }
    }
    keys.sort_unstable();
    keys.dedup();
    keys
}

impl Explorer for CgaExplorer {
    fn name(&self) -> &'static str {
        if self.random_key_vars {
            "CGA-1"
        } else {
            "CGA"
        }
    }

    fn explore(
        &mut self,
        space: &GeneratedSpace,
        measure: &mut Evaluate<'_>,
        steps: usize,
        rng: &mut HeronRng,
    ) -> Vec<f64> {
        let cfg = self.config;
        let mut model = CostModel::new(&space.csp);
        let mut curve = Vec::with_capacity(steps);
        let mut measured: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut survivors: Vec<Chromosome> = Vec::new();

        while curve.len() < steps {
            // Step-1: first generation = survivors + fresh random solutions.
            let need = cfg.population.saturating_sub(survivors.len());
            let fresh = rand_sat_with_budget(&space.csp, rng, need, cfg.solver_budget);
            if fresh.is_empty() && survivors.is_empty() {
                break; // infeasible space
            }
            let mut pop: Vec<Chromosome> = survivors.clone();
            pop.extend(fresh.into_iter().map(|solution| {
                let fitness = model.predict(&solution);
                Chromosome { solution, fitness }
            }));

            // Step-2: evolve on CSPs.
            for _ in 0..cfg.generations {
                let parents = roulette_wheel(&pop, pop.len().min(cfg.population), rng);
                let key_vars = if !self.random_key_vars && model.is_fitted() {
                    let keys = model.key_variables(cfg.key_vars);
                    if keys.is_empty() {
                        random_keys(&space.csp, cfg.key_vars, rng)
                    } else {
                        keys
                    }
                } else {
                    random_keys(&space.csp, cfg.key_vars, rng)
                };
                let mut children = Vec::with_capacity(cfg.offspring);
                for _ in 0..cfg.offspring {
                    let &i1 = parents.as_slice().choose(rng).expect("non-empty");
                    let &i2 = parents.as_slice().choose(rng).expect("non-empty");
                    let csp = offspring_csp(
                        &space.csp,
                        &key_vars,
                        &pop[i1].solution,
                        &pop[i2].solution,
                        rng,
                    );
                    if let Some(sol) = rand_sat_with_budget(&csp, rng, 1, cfg.solver_budget).pop() {
                        debug_assert!(
                            heron_csp::validate(&space.csp, &sol),
                            "CGA offspring must satisfy CSP_initial"
                        );
                        let fitness = model.predict(&sol);
                        children.push(Chromosome {
                            solution: sol,
                            fitness,
                        });
                    }
                }
                pop.extend(children);
                // Keep the population bounded: best by predicted fitness.
                pop.sort_by(|a, b| {
                    b.fitness
                        .partial_cmp(&a.fitness)
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                pop.truncate(cfg.population * 2);
            }

            // Step-3: ε-greedy measurement of unmeasured candidates.
            let unmeasured: Vec<&Chromosome> = pop
                .iter()
                .filter(|c| !measured.contains(&c.solution.fingerprint()))
                .collect();
            if unmeasured.is_empty() {
                // Space exhausted around the population; restart randomly.
                survivors.clear();
                continue;
            }
            let predicted: Vec<f64> = unmeasured.iter().map(|c| c.fitness).collect();
            let budget = cfg.measure_batch.min(steps - curve.len());
            let picks = super::eps_greedy(&predicted, budget, cfg.eps, rng);
            for idx in picks {
                let sol = unmeasured[idx].solution.clone();
                measured.insert(sol.fingerprint());
                let score = measure(&sol).unwrap_or(0.0);
                model.add_sample(&sol, score);
                push_best(&mut curve, score);
                if curve.len() >= steps {
                    break;
                }
            }

            // Step-4: update the cost model, refresh predicted fitness and
            // carry the best chromosomes into the next iteration.
            model.fit(rng);
            for c in &mut pop {
                c.fitness = model.predict(&c.solution);
            }
            pop.sort_by(|a, b| {
                b.fitness
                    .partial_cmp(&a.fitness)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            survivors = pop.into_iter().take(cfg.population / 2).collect();
        }
        self.model = Some(model);
        curve
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heron_csp::{Domain, VarCategory};

    fn toy_csp() -> Csp {
        let mut csp = Csp::new();
        let x = csp.add_var("x", Domain::values([1, 2, 4, 8, 16]), VarCategory::Tunable);
        let y = csp.add_var("y", Domain::values([1, 2, 4, 8, 16]), VarCategory::Tunable);
        let n = csp.add_const("n", 16);
        csp.post_prod(n, vec![x, y]);
        csp
    }

    #[test]
    fn offspring_satisfy_initial_constraints() {
        let csp = toy_csp();
        let mut rng = HeronRng::from_seed(0);
        let parents = heron_csp::rand_sat(&csp, &mut rng, 2);
        let keys: Vec<VarRef> = csp.tunables();
        for _ in 0..20 {
            let child_csp = offspring_csp(&csp, &keys, &parents[0], &parents[1], &mut rng);
            for sol in heron_csp::rand_sat(&child_csp, &mut rng, 2) {
                assert!(heron_csp::validate(&csp, &sol));
            }
        }
    }

    #[test]
    fn mutation_removes_exactly_one_constraint() {
        let csp = toy_csp();
        let mut rng = HeronRng::from_seed(1);
        let parents = heron_csp::rand_sat(&csp, &mut rng, 2);
        let keys: Vec<VarRef> = csp.tunables();
        let child = offspring_csp(&csp, &keys, &parents[0], &parents[1], &mut rng);
        assert_eq!(
            child.num_constraints(),
            csp.num_constraints() + keys.len() - 1
        );
    }
}
