//! The constraint-based genetic algorithm (paper Algorithms 2 and 3).
//!
//! The defining move: crossover and mutation act on **CSPs**, not on
//! concrete chromosomes. Each offspring is described by
//! `CSP_initial + IN(v, [c1_v, c2_v]) for key variables v` minus one
//! randomly removed crossover constraint (mutation); a `RandSAT` call then
//! materialises a concrete, *guaranteed-valid* chromosome.
//!
//! Hardening (see DESIGN.md §6, "Solver-side failure & repair"): an
//! offspring CSP whose injected `IN` constraints over-constrain the space
//! is *repaired* by dropping the most-recently-injected constraint and
//! retrying, instead of being silently discarded. The explorer also
//! degrades gracefully when `RandSAT` starves — falling back to random
//! samples of `CSP_initial` and bailing out after a bounded number of
//! stalled rounds instead of spinning forever.

use heron_csp::{
    rand_sat_traced, Csp, Solution, SolvePolicy, SolveSession, SolveStats, SolveStatus, VarRef,
};
use heron_rng::HeronRng;
use heron_rng::IndexedRandom;
use heron_rng::Rng;
use heron_trace::Tracer;

use crate::generate::GeneratedSpace;
use crate::model::CostModel;

use super::{push_best, roulette_wheel, Chromosome, Evaluate, Explorer};

/// Builds one offspring CSP: Algorithm 3 for a single offspring.
///
/// `key_vars` are the cost-model-selected variables; `c1`/`c2` the two
/// parent chromosomes. Crossover posts one `IN` constraint per key
/// variable; mutation removes one of them at random.
pub fn offspring_csp<R: Rng>(
    initial: &Csp,
    key_vars: &[VarRef],
    c1: &Solution,
    c2: &Solution,
    rng: &mut R,
) -> Csp {
    let mut csp = initial.clone();
    if key_vars.is_empty() {
        return csp;
    }
    // Step-3 mutation: drop one crossover constraint at random.
    let dropped = rng.random_range(0..key_vars.len());
    for (idx, &v) in key_vars.iter().enumerate() {
        if idx == dropped {
            continue;
        }
        csp.post_in(v, [c1.value(v), c2.value(v)]);
    }
    csp
}

/// The *pin form* of one offspring: Algorithm 3's crossover `IN`
/// constraints compiled to `(variable, allowed values)` pairs for
/// [`SolveSession::solve_pinned`], instead of a cloned-and-reposted CSP.
///
/// Consumes the RNG exactly like [`offspring_csp`] (one draw for the
/// mutation drop), and produces the same constraint set — values sorted
/// and deduplicated as `Csp::post_in` would — so the two representations
/// sample identical chromosome streams from the same seed.
pub fn offspring_pins<R: Rng>(
    key_vars: &[VarRef],
    c1: &Solution,
    c2: &Solution,
    rng: &mut R,
) -> Vec<(VarRef, Vec<i64>)> {
    if key_vars.is_empty() {
        return Vec::new();
    }
    // Step-3 mutation: drop one crossover constraint at random.
    let dropped = rng.random_range(0..key_vars.len());
    let mut pins = Vec::with_capacity(key_vars.len().saturating_sub(1));
    for (idx, &v) in key_vars.iter().enumerate() {
        if idx == dropped {
            continue;
        }
        let mut values = vec![c1.value(v), c2.value(v)];
        values.sort_unstable();
        values.dedup();
        pins.push((v, values));
    }
    pins
}

/// Result of materialising one offspring CSP, possibly after repair.
#[derive(Debug, Clone)]
pub struct OffspringOutcome {
    /// The concrete chromosome, or `None` when even the fully relaxed
    /// offspring (== `CSP_initial`) could not be solved.
    pub solution: Option<Solution>,
    /// How many injected crossover constraints were dropped to make the
    /// offspring solvable (0 == solved as posted).
    pub relaxed: u32,
    /// Whether any solve attempt hit the step deadline.
    pub deadline_hit: bool,
    /// Solver counters aggregated over every solve attempt (initial and
    /// repair retries).
    pub stats: SolveStats,
}

/// Materialises an offspring chromosome, repairing over-constrained CSPs.
///
/// Repair policy: when the posted offspring CSP yields no solution, drop
/// the **most recently injected** `IN` constraint (last posted first) and
/// retry, until either a solution appears or all injected constraints are
/// gone. Constraints belonging to `initial` are never removed, so any
/// returned solution still satisfies `CSP_initial` by construction.
///
/// Emits `csp.repairs` (+1 per repaired offspring) and
/// `csp.relaxed_constraints` (+dropped count) on the tracer.
pub fn materialize_offspring<R: Rng>(
    initial: &Csp,
    mut offspring: Csp,
    rng: &mut R,
    policy: &SolvePolicy,
    tracer: &Tracer,
) -> OffspringOutcome {
    let injected = offspring
        .num_constraints()
        .saturating_sub(initial.num_constraints()) as u32;
    let mut relaxed = 0u32;
    let mut deadline_hit = false;
    let mut stats = SolveStats::default();
    loop {
        let outcome = rand_sat_traced(&offspring, rng, 1, policy, tracer);
        stats.absorb(&outcome.stats);
        if outcome.status == SolveStatus::DeadlineExceeded {
            deadline_hit = true;
        }
        if let Some(sol) = outcome.one() {
            if relaxed > 0 {
                tracer.counter_add("csp.repairs", 1);
                tracer.counter_add("csp.relaxed_constraints", u64::from(relaxed));
            }
            return OffspringOutcome {
                solution: Some(sol),
                relaxed,
                deadline_hit,
                stats,
            };
        }
        if relaxed >= injected {
            return OffspringOutcome {
                solution: None,
                relaxed,
                deadline_hit,
                stats,
            };
        }
        offspring.pop_constraints(1);
        relaxed += 1;
    }
}

/// [`materialize_offspring`] on a [`SolveSession`]: the incremental-solve
/// fast path. The offspring is described by `pins`
/// (see [`offspring_pins`]) and solved from the session's cached root
/// fixpoint; repair pops the **most recently injected** pin and retries,
/// matching the CSP-materialising path's drop order — and, because the
/// pinned fixpoint equals the from-scratch fixpoint, its exact solution
/// stream.
///
/// Emits the same `csp.repairs` / `csp.relaxed_constraints` counters.
pub fn materialize_offspring_session<R: Rng>(
    session: &mut SolveSession,
    mut pins: Vec<(VarRef, Vec<i64>)>,
    rng: &mut R,
    policy: &SolvePolicy,
    tracer: &Tracer,
) -> OffspringOutcome {
    let mut relaxed = 0u32;
    let mut deadline_hit = false;
    let mut stats = SolveStats::default();
    loop {
        let outcome = session.solve_pinned(&pins, rng, 1, policy, tracer);
        stats.absorb(&outcome.stats);
        if outcome.status == SolveStatus::DeadlineExceeded {
            deadline_hit = true;
        }
        if let Some(sol) = outcome.one() {
            if relaxed > 0 {
                tracer.counter_add("csp.repairs", 1);
                tracer.counter_add("csp.relaxed_constraints", u64::from(relaxed));
            }
            return OffspringOutcome {
                solution: Some(sol),
                relaxed,
                deadline_hit,
                stats,
            };
        }
        if pins.is_empty() {
            return OffspringOutcome {
                solution: None,
                relaxed,
                deadline_hit,
                stats,
            };
        }
        pins.pop();
        relaxed += 1;
    }
}

/// Configuration of the CGA explorer.
#[derive(Debug, Clone, Copy)]
pub struct CgaConfig {
    /// Population size per iteration.
    pub population: usize,
    /// Generations evolved between measurement rounds (Algorithm 2 Step 2).
    pub generations: usize,
    /// Offspring produced per generation.
    pub offspring: usize,
    /// Number of key variables extracted from the cost model.
    pub key_vars: usize,
    /// ε of the ε-greedy measurement selection.
    pub eps: f64,
    /// Candidates measured per iteration (Algorithm 2 Step 3).
    pub measure_batch: usize,
    /// Backtracking budget per RandSAT call.
    pub solver_budget: u32,
    /// Step deadline per RandSAT call (0 = none). One step == one
    /// candidate-value trial inside the solver's dive.
    pub solve_deadline: u64,
    /// Rounds without progress (no fresh population, or nothing left to
    /// measure) tolerated before the explorer gives up.
    pub max_stall_rounds: usize,
    /// Fraction of the best-so-far score recorded as a penalty sample for
    /// candidates whose measurement fails (mirrors the tuner loop's
    /// penalty policy; keeps the cost model from learning that failures
    /// score exactly 0.0).
    pub penalty_fraction: f64,
}

impl CgaConfig {
    /// The solve policy implied by this configuration (budget escalation
    /// enabled, with the configured fixed budget and step deadline).
    pub fn solver_policy(&self) -> SolvePolicy {
        SolvePolicy::default()
            .with_budget(self.solver_budget)
            .with_deadline(self.solve_deadline)
    }
}

impl Default for CgaConfig {
    fn default() -> Self {
        CgaConfig {
            population: 40,
            generations: 3,
            offspring: 24,
            key_vars: 8,
            eps: 0.15,
            measure_batch: 16,
            solver_budget: 400,
            solve_deadline: 0,
            max_stall_rounds: 16,
            penalty_fraction: 0.1,
        }
    }
}

/// Counters accumulated over one `explore` run (read by the stress bench
/// and surfaced as trace counters by the tuner).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CgaRunStats {
    /// Offspring that needed at least one constraint dropped.
    pub repairs: u64,
    /// Total injected constraints dropped across all repairs.
    pub relaxed_constraints: u64,
    /// Solve calls that hit the step deadline.
    pub deadline_hits: u64,
    /// Offspring replaced by a fresh random sample of `CSP_initial`.
    pub fallback_samples: u64,
    /// Rounds that made no exploration progress.
    pub stall_rounds: u64,
}

/// The CGA explorer: Heron's Algorithm 2 with the cost model in the loop.
#[derive(Debug)]
pub struct CgaExplorer {
    config: CgaConfig,
    /// CGA-1 ablation: choose key variables at random instead of by
    /// feature importance.
    random_key_vars: bool,
    model: Option<CostModel>,
    stats: CgaRunStats,
    tracer: Tracer,
}

impl CgaExplorer {
    /// Full CGA with model-derived key variables.
    pub fn new(config: CgaConfig) -> Self {
        CgaExplorer {
            config,
            random_key_vars: false,
            model: None,
            stats: CgaRunStats::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// The CGA-1 variant (random key variables) of Figure 13.
    pub fn cga1(config: CgaConfig) -> Self {
        CgaExplorer {
            config,
            random_key_vars: true,
            model: None,
            stats: CgaRunStats::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a tracer: repairs, relaxations and deadline hits are
    /// recorded as `csp.*` counters during `explore`.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Access to the trained cost model after exploration.
    pub fn model(&self) -> Option<&CostModel> {
        self.model.as_ref()
    }

    /// Robustness counters from the most recent `explore` run.
    pub fn run_stats(&self) -> CgaRunStats {
        self.stats
    }
}

/// Random key variables among the tunables (CGA-1's policy, and CGA's
/// fallback before the cost model is first fitted).
fn random_keys(csp: &Csp, k: usize, rng: &mut HeronRng) -> Vec<VarRef> {
    let tunables = csp.tunables();
    let mut keys = Vec::new();
    for _ in 0..k.min(tunables.len()) {
        if let Some(&v) = tunables.as_slice().choose(rng) {
            keys.push(v);
        }
    }
    keys.sort_unstable();
    keys.dedup();
    keys
}

impl Explorer for CgaExplorer {
    fn name(&self) -> &'static str {
        if self.random_key_vars {
            "CGA-1"
        } else {
            "CGA"
        }
    }

    fn explore(
        &mut self,
        space: &GeneratedSpace,
        measure: &mut Evaluate<'_>,
        steps: usize,
        rng: &mut HeronRng,
    ) -> Vec<f64> {
        let cfg = self.config;
        let policy = cfg.solver_policy();
        let mut model = CostModel::new(&space.csp);
        model.set_tracer(self.tracer.clone());
        let mut stats = CgaRunStats::default();
        let mut curve = Vec::with_capacity(steps);
        let mut measured: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut survivors: Vec<Chromosome> = Vec::new();
        let mut stalls = 0usize;
        // One propagator + root fixpoint for the whole run; offspring are
        // solved incrementally from it via value pins.
        let mut session = SolveSession::new(&space.csp);

        while curve.len() < steps {
            // Step-1: first generation = survivors + fresh random solutions.
            let need = cfg.population.saturating_sub(survivors.len());
            let outcome = session.solve(rng, need, &policy, &self.tracer);
            if outcome.status == SolveStatus::DeadlineExceeded {
                stats.deadline_hits += 1;
            }
            if outcome.solutions.is_empty() && survivors.is_empty() {
                if outcome.status == SolveStatus::RootInfeasible {
                    break; // proven infeasible space: nothing to explore
                }
                // Solver starved (budget/deadline) on a possibly-feasible
                // space: retry a bounded number of rounds before giving up.
                stalls += 1;
                stats.stall_rounds += 1;
                if stalls > cfg.max_stall_rounds {
                    break;
                }
                continue;
            }
            let mut pop: Vec<Chromosome> = survivors.clone();
            pop.extend(outcome.solutions.into_iter().map(|solution| {
                let fitness = model.predict(&solution);
                Chromosome { solution, fitness }
            }));

            // Step-2: evolve on CSPs.
            for _ in 0..cfg.generations {
                let parents = roulette_wheel(&pop, pop.len().min(cfg.population), rng);
                let key_vars = if !self.random_key_vars && model.is_fitted() {
                    let keys = model.key_variables(cfg.key_vars);
                    if keys.is_empty() {
                        random_keys(&space.csp, cfg.key_vars, rng)
                    } else {
                        keys
                    }
                } else {
                    random_keys(&space.csp, cfg.key_vars, rng)
                };
                let mut children = Vec::with_capacity(cfg.offspring);
                for _ in 0..cfg.offspring {
                    let &i1 = parents.as_slice().choose(rng).expect("non-empty");
                    let &i2 = parents.as_slice().choose(rng).expect("non-empty");
                    let pins = offspring_pins(&key_vars, &pop[i1].solution, &pop[i2].solution, rng);
                    let off = materialize_offspring_session(
                        &mut session,
                        pins,
                        rng,
                        &policy,
                        &self.tracer,
                    );
                    if off.relaxed > 0 && off.solution.is_some() {
                        stats.repairs += 1;
                        stats.relaxed_constraints += u64::from(off.relaxed);
                    }
                    if off.deadline_hit {
                        stats.deadline_hits += 1;
                    }
                    let sol = match off.solution {
                        Some(sol) => Some(sol),
                        None => {
                            // Graceful degradation: sample CSP_initial
                            // directly instead of dropping the slot.
                            let fb = session.solve(rng, 1, &policy, &self.tracer).one();
                            if fb.is_some() {
                                stats.fallback_samples += 1;
                                self.tracer.counter_add("cga.fallback_samples", 1);
                            }
                            fb
                        }
                    };
                    if let Some(sol) = sol {
                        debug_assert!(
                            heron_csp::validate(&space.csp, &sol),
                            "CGA offspring must satisfy CSP_initial"
                        );
                        let fitness = model.predict(&sol);
                        children.push(Chromosome {
                            solution: sol,
                            fitness,
                        });
                    }
                }
                pop.extend(children);
                // Keep the population bounded: best by predicted fitness.
                // NaN predictions were sanitised to -inf at the source, so
                // total_cmp gives a strict, deterministic order.
                pop.sort_by(|a, b| b.fitness.total_cmp(&a.fitness));
                pop.truncate(cfg.population * 2);
            }

            // Step-3: ε-greedy measurement of unmeasured candidates.
            let unmeasured: Vec<&Chromosome> = pop
                .iter()
                .filter(|c| !measured.contains(&c.solution.fingerprint()))
                .collect();
            if unmeasured.is_empty() {
                // Space exhausted around the population; restart randomly,
                // but only a bounded number of times.
                stalls += 1;
                stats.stall_rounds += 1;
                if stalls > cfg.max_stall_rounds {
                    break;
                }
                survivors.clear();
                continue;
            }
            stalls = 0;
            let predicted: Vec<f64> = unmeasured.iter().map(|c| c.fitness).collect();
            let budget = cfg.measure_batch.min(steps - curve.len());
            let picks = super::eps_greedy(&predicted, budget, cfg.eps, rng);
            for idx in picks {
                let sol = unmeasured[idx].solution.clone();
                measured.insert(sol.fingerprint());
                // Failed measurements feed a *penalty* sample into the
                // model (a fraction of the best-so-far score), mirroring
                // the tuner loop's EvalError policy, instead of a hard 0.0
                // that would poison the regressor near real low scores.
                let best = curve.last().copied().unwrap_or_default();
                let score = match measure(&sol) {
                    Some(s) => s,
                    None => cfg.penalty_fraction * best,
                };
                model.add_sample(&sol, score);
                push_best(&mut curve, score);
                if curve.len() >= steps {
                    break;
                }
            }

            // Step-4: update the cost model, refresh predicted fitness and
            // carry the best chromosomes into the next iteration.
            model.fit(rng);
            for c in &mut pop {
                c.fitness = model.predict(&c.solution);
            }
            pop.sort_by(|a, b| b.fitness.total_cmp(&a.fitness));
            survivors = pop.into_iter().take(cfg.population / 2).collect();
        }
        self.model = Some(model);
        self.stats = stats;
        curve
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heron_csp::{Domain, VarCategory};

    fn toy_csp() -> Csp {
        let mut csp = Csp::new();
        let x = csp.add_var("x", Domain::values([1, 2, 4, 8, 16]), VarCategory::Tunable);
        let y = csp.add_var("y", Domain::values([1, 2, 4, 8, 16]), VarCategory::Tunable);
        let n = csp.add_const("n", 16);
        csp.post_prod(n, vec![x, y]);
        csp
    }

    #[test]
    fn offspring_satisfy_initial_constraints() {
        let csp = toy_csp();
        let mut rng = HeronRng::from_seed(0);
        let parents = heron_csp::rand_sat(&csp, &mut rng, 2).expect_sat("toy csp");
        let keys: Vec<VarRef> = csp.tunables();
        for _ in 0..20 {
            let child_csp = offspring_csp(&csp, &keys, &parents[0], &parents[1], &mut rng);
            for sol in heron_csp::rand_sat(&child_csp, &mut rng, 2).solutions {
                assert!(heron_csp::validate(&csp, &sol));
            }
        }
    }

    #[test]
    fn mutation_removes_exactly_one_constraint() {
        let csp = toy_csp();
        let mut rng = HeronRng::from_seed(1);
        let parents = heron_csp::rand_sat(&csp, &mut rng, 2).expect_sat("toy csp");
        let keys: Vec<VarRef> = csp.tunables();
        let child = offspring_csp(&csp, &keys, &parents[0], &parents[1], &mut rng);
        assert_eq!(
            child.num_constraints(),
            csp.num_constraints() + keys.len() - 1
        );
    }

    #[test]
    fn repair_recovers_over_constrained_offspring() {
        // Inject IN constraints that contradict each other: x in {1} and
        // x in {16} cannot both hold with x*y == 16 and y in {1}.
        let csp = toy_csp();
        let mut rng = HeronRng::from_seed(7);
        let mut off = csp.clone();
        off.post_in(VarRef(0), [1]);
        off.post_in(VarRef(1), [3]); // y == 3 impossible: domain lacks 3? domain has 1,2,4,8,16 → empty IN intersection
        let policy = SolvePolicy::fixed(500);
        let tracer = Tracer::disabled();
        let out = materialize_offspring(&csp, off, &mut rng, &policy, &tracer);
        let sol = out.solution.expect("repair must recover a solution");
        assert!(heron_csp::validate(&csp, &sol));
        assert!(out.relaxed >= 1, "must have dropped the impossible IN");
    }

    #[test]
    fn repair_drops_most_recent_first() {
        // First injected IN is satisfiable (x in {2}); the second is the
        // poison (y in {3}, not in domain). Dropping most-recent-first
        // must keep the x constraint: solution has x == 2.
        let csp = toy_csp();
        let mut rng = HeronRng::from_seed(9);
        let mut off = csp.clone();
        off.post_in(VarRef(0), [2]);
        off.post_in(VarRef(1), [3]);
        let policy = SolvePolicy::fixed(500);
        let tracer = Tracer::disabled();
        let out = materialize_offspring(&csp, off, &mut rng, &policy, &tracer);
        let sol = out.solution.expect("solvable after one drop");
        assert_eq!(out.relaxed, 1);
        assert_eq!(sol.value(VarRef(0)), 2, "older IN constraint must survive");
    }

    #[test]
    fn session_offspring_matches_materialised_offspring() {
        // The pin-based incremental path and the CSP-materialising path
        // must sample identical chromosome streams from identical seeds,
        // including under repair.
        let csp = toy_csp();
        let keys: Vec<VarRef> = csp.tunables();
        let policy = SolvePolicy::fixed(500);
        let tracer = Tracer::disabled();
        let mut rng = HeronRng::from_seed(4);
        let parents = heron_csp::rand_sat(&csp, &mut rng, 2).expect_sat("toy csp");
        let mut session = SolveSession::new(&csp);
        for seed in 0..10u64 {
            let mut rng_a = HeronRng::from_seed(seed);
            let mut rng_b = HeronRng::from_seed(seed);
            let pins = offspring_pins(&keys, &parents[0], &parents[1], &mut rng_a);
            let child = offspring_csp(&csp, &keys, &parents[0], &parents[1], &mut rng_b);
            let a = materialize_offspring_session(&mut session, pins, &mut rng_a, &policy, &tracer);
            let b = materialize_offspring(&csp, child, &mut rng_b, &policy, &tracer);
            assert_eq!(a.solution, b.solution, "offspring stream diverged");
            assert_eq!(a.relaxed, b.relaxed);
            assert_eq!(a.deadline_hit, b.deadline_hit);
            assert!(a.stats.incremental_hits >= 1);
            assert!(
                a.stats.propagations <= b.stats.propagations,
                "incremental offspring solve must not propagate more"
            );
        }
    }

    #[test]
    fn session_repair_recovers_over_constrained_pins() {
        let csp = toy_csp();
        let mut session = SolveSession::new(&csp);
        let mut rng = HeronRng::from_seed(7);
        // x pinned to {2} is satisfiable; the later y pin to {3} (not in
        // the domain) is poison — repair must drop it and keep x == 2.
        let pins = vec![(VarRef(0), vec![2]), (VarRef(1), vec![3])];
        let policy = SolvePolicy::fixed(500);
        let out = materialize_offspring_session(
            &mut session,
            pins,
            &mut rng,
            &policy,
            &Tracer::disabled(),
        );
        let sol = out.solution.expect("solvable after one drop");
        assert_eq!(out.relaxed, 1);
        assert_eq!(sol.value(VarRef(0)), 2, "older pin must survive repair");
        assert!(heron_csp::validate(&csp, &sol));
    }

    #[test]
    fn unrepairable_offspring_returns_none() {
        // CSP_initial itself is infeasible: no amount of relaxation helps.
        let mut csp = Csp::new();
        let x = csp.add_var("x", Domain::values([1, 2]), VarCategory::Tunable);
        let n = csp.add_const("n", 7);
        csp.post_prod(n, vec![x]);
        let mut rng = HeronRng::from_seed(3);
        let mut off = csp.clone();
        off.post_in(x, [1]);
        let policy = SolvePolicy::fixed(200);
        let tracer = Tracer::disabled();
        let out = materialize_offspring(&csp, off, &mut rng, &policy, &tracer);
        assert!(out.solution.is_none());
        assert_eq!(out.relaxed, 1, "tried dropping the one injected IN");
    }
}
