//! Constrained space exploration (the paper's Section 5).
//!
//! [`cga`] implements the constraint-based genetic algorithm; [`classic`]
//! the RAND / SA / GA baselines of Figures 2 and 12; [`variants`] the
//! constraint-handling techniques of Figure 13 (CGA-1, GA-1 stochastic
//! ranking, GA-2 SAT-decoder, GA-3 infeasibility-driven).
//!
//! All explorers share one interface: they spend a budget of *measurement
//! steps* (hardware trials) and report the best-so-far score after each
//! step, which is exactly how the paper plots exploration efficiency.

pub mod cga;
pub mod classic;
pub mod variants;

use heron_csp::Solution;
use heron_rng::HeronRng;
use heron_rng::IndexedRandom;
use heron_rng::Rng;

/// Measurement callback: evaluates one candidate, returning its score in
/// Gops, or `None` when the program is invalid (compile/run failure).
pub type Evaluate<'a> = dyn FnMut(&Solution) -> Option<f64> + 'a;

/// A scored population member.
#[derive(Debug, Clone)]
pub struct Chromosome {
    /// The concrete assignment.
    pub solution: Solution,
    /// Fitness score (0 for invalid programs).
    pub fitness: f64,
}

/// An exploration algorithm with a measured-trial budget.
pub trait Explorer {
    /// Short display name (`CGA`, `GA-2`, …).
    fn name(&self) -> &'static str;

    /// Spends up to `steps` measurements and returns the best-so-far score
    /// after each of them (length == number of measurements actually
    /// performed).
    fn explore(
        &mut self,
        space: &crate::generate::GeneratedSpace,
        measure: &mut Evaluate<'_>,
        steps: usize,
        rng: &mut HeronRng,
    ) -> Vec<f64>;
}

/// Roulette-wheel selection: draws `n` indices with probability
/// proportional to fitness (uniform when all fitness is 0).
pub fn roulette_wheel<R: Rng>(pop: &[Chromosome], n: usize, rng: &mut R) -> Vec<usize> {
    assert!(!pop.is_empty(), "cannot select from an empty population");
    let total: f64 = pop.iter().map(|c| c.fitness.max(0.0)).sum();
    let mut picks = Vec::with_capacity(n);
    for _ in 0..n {
        if total <= 0.0 {
            picks.push(rng.random_range(0..pop.len()));
            continue;
        }
        let mut ticket = rng.random::<f64>() * total;
        let mut chosen = pop.len() - 1;
        for (i, c) in pop.iter().enumerate() {
            ticket -= c.fitness.max(0.0);
            if ticket <= 0.0 {
                chosen = i;
                break;
            }
        }
        picks.push(chosen);
    }
    picks
}

/// ε-greedy selection of `n` candidates for measurement: with probability
/// `1 - eps` the best-predicted unmeasured candidate, otherwise a random
/// one. Returns indices into `candidates`.
pub fn eps_greedy<R: Rng>(predicted: &[f64], n: usize, eps: f64, rng: &mut R) -> Vec<usize> {
    eps_greedy_detailed(predicted, n, eps, rng).picks
}

/// The result of one ε-greedy selection round, with the exploit/explore
/// split that the search-health log records per round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpsGreedyPicks {
    /// Chosen indices into the candidate slice, in pick order.
    pub picks: Vec<usize>,
    /// Picks that took the greedy (best-predicted) branch.
    pub exploit: u32,
    /// Picks that took the random-exploration branch.
    pub explore: u32,
}

/// [`eps_greedy`] with bookkeeping: identical RNG draw sequence and pick
/// set, plus counts of how many picks were greedy vs random.
pub fn eps_greedy_detailed<R: Rng>(
    predicted: &[f64],
    n: usize,
    eps: f64,
    rng: &mut R,
) -> EpsGreedyPicks {
    let mut order: Vec<usize> = (0..predicted.len()).collect();
    // total_cmp: NaN predictions are sanitised to -inf at the model, so
    // the order is strict and deterministic.
    order.sort_by(|&a, &b| predicted[b].total_cmp(&predicted[a]));
    let mut picked = Vec::with_capacity(n);
    let mut used = vec![false; predicted.len()];
    let mut next_best = 0usize;
    let mut exploit = 0u32;
    let mut explore = 0u32;
    while picked.len() < n && picked.len() < predicted.len() {
        let greedy = rng.random::<f64>() >= eps;
        let idx = if greedy {
            while next_best < order.len() && used[order[next_best]] {
                next_best += 1;
            }
            if next_best >= order.len() {
                break;
            }
            order[next_best]
        } else {
            let free: Vec<usize> = (0..predicted.len()).filter(|&i| !used[i]).collect();
            match free.as_slice().choose(rng) {
                Some(&i) => i,
                None => break,
            }
        };
        if greedy {
            exploit += 1;
        } else {
            explore += 1;
        }
        used[idx] = true;
        picked.push(idx);
    }
    EpsGreedyPicks {
        picks: picked,
        exploit,
        explore,
    }
}

/// Extends a best-so-far curve with a new score.
pub(crate) fn push_best(curve: &mut Vec<f64>, score: f64) {
    let prev = curve.last().copied().unwrap_or_default();
    curve.push(prev.max(score));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop(fit: &[f64]) -> Vec<Chromosome> {
        fit.iter()
            .map(|&f| Chromosome {
                solution: Solution::new(vec![]),
                fitness: f,
            })
            .collect()
    }

    #[test]
    fn roulette_prefers_fit() {
        let p = pop(&[1.0, 100.0, 1.0]);
        let mut rng = HeronRng::from_seed(0);
        let picks = roulette_wheel(&p, 300, &mut rng);
        let ones = picks.iter().filter(|&&i| i == 1).count();
        assert!(ones > 200, "fit chromosome under-selected: {ones}");
    }

    #[test]
    fn roulette_uniform_when_zero() {
        let p = pop(&[0.0, 0.0, 0.0, 0.0]);
        let mut rng = HeronRng::from_seed(1);
        let picks = roulette_wheel(&p, 400, &mut rng);
        for i in 0..4 {
            let cnt = picks.iter().filter(|&&x| x == i).count();
            assert!(cnt > 50, "index {i} starved: {cnt}");
        }
    }

    #[test]
    fn eps_greedy_zero_eps_is_pure_ranking() {
        let pred = [0.5, 3.0, 1.0, 2.0];
        let mut rng = HeronRng::from_seed(2);
        let picks = eps_greedy(&pred, 3, 0.0, &mut rng);
        assert_eq!(picks, vec![1, 3, 2]);
    }

    #[test]
    fn eps_greedy_never_repeats() {
        let pred = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut rng = HeronRng::from_seed(3);
        let picks = eps_greedy(&pred, 5, 0.8, &mut rng);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), picks.len());
    }

    #[test]
    fn eps_greedy_detailed_matches_plain_and_splits() {
        let pred = [0.5, 3.0, 1.0, 2.0, 4.0, 0.1];
        for eps in [0.0, 0.3, 1.0] {
            let mut a = HeronRng::from_seed(9);
            let mut b = HeronRng::from_seed(9);
            let plain = eps_greedy(&pred, 4, eps, &mut a);
            let detail = eps_greedy_detailed(&pred, 4, eps, &mut b);
            assert_eq!(plain, detail.picks, "eps = {eps}");
            assert_eq!(
                (detail.exploit + detail.explore) as usize,
                detail.picks.len()
            );
        }
        // Pure greed / pure exploration pin the split exactly.
        let mut rng = HeronRng::from_seed(4);
        let d = eps_greedy_detailed(&pred, 3, 0.0, &mut rng);
        assert_eq!((d.exploit, d.explore), (3, 0));
        let d = eps_greedy_detailed(&pred, 3, 1.0, &mut rng);
        assert_eq!((d.exploit, d.explore), (0, 3));
    }

    #[test]
    fn best_curve_is_monotone() {
        let mut curve = Vec::new();
        for s in [1.0, 0.5, 3.0, 2.0] {
            push_best(&mut curve, s);
        }
        assert_eq!(curve, vec![1.0, 1.0, 3.0, 3.0]);
    }
}
