//! Classic exploration baselines: random search, simulated annealing, and
//! the traditional genetic algorithm (paper Figures 2 and 12).
//!
//! All three operate on concrete chromosomes. SA and GA mutate/crossover
//! tunable values directly, so in Heron's irregular constrained space most
//! of their offspring are invalid — the inefficiency the paper's Figure 2
//! demonstrates. RAND samples valid programs through the solver, which is
//! why it is a surprisingly strong baseline there.

use heron_csp::{rand_sat_with_budget, validate, Solution};
use heron_rng::HeronRng;
use heron_rng::IndexedRandom;
use heron_rng::Rng;

use crate::generate::GeneratedSpace;

use super::{push_best, roulette_wheel, Chromosome, Evaluate, Explorer};

/// Random search: every step measures a fresh solver sample.
#[derive(Debug, Default)]
pub struct RandomExplorer;

impl Explorer for RandomExplorer {
    fn name(&self) -> &'static str {
        "RAND"
    }

    fn explore(
        &mut self,
        space: &GeneratedSpace,
        measure: &mut Evaluate<'_>,
        steps: usize,
        rng: &mut HeronRng,
    ) -> Vec<f64> {
        let mut curve = Vec::with_capacity(steps);
        while curve.len() < steps {
            let batch = rand_sat_with_budget(&space.csp, rng, 16.min(steps - curve.len()), 400);
            if batch.solutions.is_empty() {
                break;
            }
            for sol in batch.solutions {
                let score = measure(&sol).unwrap_or_default();
                push_best(&mut curve, score);
                if curve.len() >= steps {
                    break;
                }
            }
        }
        curve
    }
}

/// Replaces one random tunable with a random value from its declared
/// domain — the classic mutation that ignores all constraints.
pub fn mutate_tunable(space: &GeneratedSpace, sol: &Solution, rng: &mut HeronRng) -> Solution {
    let tunables = space.csp.tunables();
    let mut values = sol.values().to_vec();
    if let Some(&var) = tunables.as_slice().choose(rng) {
        let domain = &space.csp.var(var).domain;
        let options: Vec<i64> = domain.iter_values().collect();
        if let Some(&v) = options.as_slice().choose(rng) {
            values[var.0] = v;
        }
    }
    Solution::new(values)
}

/// Repairs the auxiliary variables after tunables changed, by re-solving
/// the CSP with every tunable pinned. Returns `None` when the tunable
/// assignment is inconsistent — the common case that makes plain GA/SA
/// flounder.
pub fn complete_from_tunables(
    space: &GeneratedSpace,
    tunable_values: &Solution,
    rng: &mut HeronRng,
) -> Option<Solution> {
    let mut csp = space.csp.clone();
    for var in csp.tunables() {
        let v = tunable_values.value(var);
        if !csp.var(var).domain.contains(v) {
            return None;
        }
        csp.post_in(var, [v]);
    }
    let sol = rand_sat_with_budget(&csp, rng, 1, 200).one()?;
    validate(&space.csp, &sol).then_some(sol)
}

/// Simulated annealing over tunable assignments.
#[derive(Debug)]
pub struct SaExplorer {
    /// Initial temperature relative to typical score.
    pub start_temp: f64,
    /// Multiplicative cooling per step.
    pub cooling: f64,
}

impl Default for SaExplorer {
    fn default() -> Self {
        SaExplorer {
            start_temp: 1.0,
            cooling: 0.98,
        }
    }
}

impl Explorer for SaExplorer {
    fn name(&self) -> &'static str {
        "SA"
    }

    fn explore(
        &mut self,
        space: &GeneratedSpace,
        measure: &mut Evaluate<'_>,
        steps: usize,
        rng: &mut HeronRng,
    ) -> Vec<f64> {
        let mut curve = Vec::with_capacity(steps);
        // Initial valid program from the solver (as in the paper's setup).
        let Some(start) = rand_sat_with_budget(&space.csp, rng, 1, 400).one() else {
            return curve;
        };
        let mut current = start;
        let mut current_score = measure(&current).unwrap_or_default();
        push_best(&mut curve, current_score);
        let mut temp = self.start_temp * current_score.max(1.0);
        while curve.len() < steps {
            temp *= self.cooling;
            let proposal = mutate_tunable(space, &current, rng);
            let Some(candidate) = complete_from_tunables(space, &proposal, rng) else {
                // Invalid neighbour: the move is wasted (a failed trial).
                push_best(&mut curve, 0.0);
                continue;
            };
            let score = measure(&candidate).unwrap_or_default();
            push_best(&mut curve, score);
            let accept = score >= current_score
                || rng.random::<f64>() < ((score - current_score) / temp.max(1e-9)).exp();
            if accept {
                current = candidate;
                current_score = score;
            }
        }
        curve
    }
}

/// Traditional GA: single-point crossover and value mutation on concrete
/// chromosomes; invalid offspring are measured as failures (score 0) and
/// replaced by random restarts.
#[derive(Debug)]
pub struct GaExplorer {
    /// Population size.
    pub population: usize,
    /// Mutation probability per offspring.
    pub mutation_rate: f64,
}

impl Default for GaExplorer {
    fn default() -> Self {
        GaExplorer {
            population: 20,
            mutation_rate: 0.3,
        }
    }
}

/// Single-point crossover over the tunable positions.
pub fn crossover_tunables(
    space: &GeneratedSpace,
    a: &Solution,
    b: &Solution,
    rng: &mut HeronRng,
) -> Solution {
    let tunables = space.csp.tunables();
    let mut values = a.values().to_vec();
    if tunables.len() >= 2 {
        let point = rng.random_range(1..tunables.len());
        for var in &tunables[point..] {
            values[var.0] = b.value(*var);
        }
    }
    Solution::new(values)
}

impl Explorer for GaExplorer {
    fn name(&self) -> &'static str {
        "GA"
    }

    fn explore(
        &mut self,
        space: &GeneratedSpace,
        measure: &mut Evaluate<'_>,
        steps: usize,
        rng: &mut HeronRng,
    ) -> Vec<f64> {
        let mut curve = Vec::with_capacity(steps);
        let init = rand_sat_with_budget(&space.csp, rng, self.population, 400);
        if init.solutions.is_empty() {
            return curve;
        }
        let mut pop: Vec<Chromosome> = Vec::new();
        for sol in init.solutions {
            if curve.len() >= steps {
                break;
            }
            let fitness = measure(&sol).unwrap_or_default();
            push_best(&mut curve, fitness);
            pop.push(Chromosome {
                solution: sol,
                fitness,
            });
        }
        while curve.len() < steps {
            let parents = roulette_wheel(&pop, 2, rng);
            let child = crossover_tunables(
                space,
                &pop[parents[0]].solution,
                &pop[parents[1]].solution,
                rng,
            );
            let child = if rng.random::<f64>() < self.mutation_rate {
                mutate_tunable(space, &child, rng)
            } else {
                child
            };
            match complete_from_tunables(space, &child, rng) {
                Some(sol) => {
                    let fitness = measure(&sol).unwrap_or_default();
                    push_best(&mut curve, fitness);
                    pop.push(Chromosome {
                        solution: sol,
                        fitness,
                    });
                }
                None => {
                    // Invalid offspring: wasted trial + random restart, the
                    // behaviour the paper observes for plain GA.
                    push_best(&mut curve, 0.0);
                    if let Some(sol) = rand_sat_with_budget(&space.csp, rng, 1, 200).one() {
                        if curve.len() < steps {
                            let fitness = measure(&sol).unwrap_or_default();
                            push_best(&mut curve, fitness);
                            pop.push(Chromosome {
                                solution: sol,
                                fitness,
                            });
                        }
                    }
                }
            }
            // Bound the population.
            pop.sort_by(|a, b| b.fitness.total_cmp(&a.fitness));
            pop.truncate(self.population);
        }
        curve
    }
}
